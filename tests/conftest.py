"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import erdos_renyi, synthetic_classification
from repro.graphs.prep import prepare_adjacency
from repro.tensor.csr import CSRMatrix


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_adjacency() -> CSRMatrix:
    """A 60-vertex ER adjacency with self loops (float64)."""
    return prepare_adjacency(erdos_renyi(60, 420, seed=7), dtype=np.float64)


@pytest.fixture(scope="session")
def medium_adjacency() -> CSRMatrix:
    """A 200-vertex ER adjacency with self loops (float64)."""
    return prepare_adjacency(erdos_renyi(200, 3000, seed=3), dtype=np.float64)


@pytest.fixture(scope="session")
def sbm_data():
    """A learnable node-classification dataset (module-shared)."""
    return synthetic_classification(n=300, feature_dim=12, seed=0)


def random_csr(
    rng: np.random.Generator,
    n_rows: int,
    n_cols: int,
    density: float = 0.2,
    dtype=np.float64,
    ensure_empty_row: bool = False,
) -> CSRMatrix:
    """Random CSR with controllable density; optionally forces an empty
    row (the reduceat edge case)."""
    dense = (rng.random((n_rows, n_cols)) < density).astype(dtype)
    dense *= rng.normal(1.0, 0.3, (n_rows, n_cols)).astype(dtype)
    if ensure_empty_row and n_rows > 2:
        dense[n_rows // 2, :] = 0
    return CSRMatrix.from_dense(dense)


def numeric_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        out[i] = (fp - fm) / (2 * eps)
    return grad
