"""Sampling substrate: seeded fan-out sampling and layered blocks.

Covers the edge cases the mini-batch engine must survive — zero-degree
seeds, fan-outs exceeding the degree (no replacement, so no duplicate
edges), entirely empty hop blocks flowing through the fused megakernel —
plus a hypothesis property test that the local-id compaction round-trips
to the global adjacency exactly (topology *and* edge values).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion.layer import DagLayer
from repro.models.base import GnnModel
from repro.tensor.csr import CSRMatrix
from repro.tensor.sampling_graph import (
    sample_blocks,
    sample_one_hop,
    sampling_graph_of,
)
from repro.training.minibatch import backward_blocks, forward_blocks
from tests.conftest import random_csr


@pytest.fixture(scope="module")
def holey_adjacency() -> CSRMatrix:
    """A 24-vertex square CSR with several zero-degree rows."""
    rng = np.random.default_rng(11)
    dense = (rng.random((24, 24)) < 0.25).astype(np.float64)
    dense *= rng.normal(1.0, 0.3, (24, 24))
    dense[[3, 10, 23], :] = 0.0  # isolated as destinations
    return CSRMatrix.from_dense(dense)


class TestSamplingGraph:
    def test_interned_on_the_pattern(self, small_adjacency):
        g1 = sampling_graph_of(small_adjacency)
        g2 = sampling_graph_of(small_adjacency)
        assert g1 is g2
        # Index arrays are shared with the pattern, not copied.
        assert g1.indptr is small_adjacency.structure.indptr
        assert g1.indices is small_adjacency.structure.indices

    def test_shared_across_matrices_with_same_pattern(self, small_adjacency):
        other = small_adjacency.with_data(
            np.arange(small_adjacency.nnz, dtype=np.float64)
        )
        assert sampling_graph_of(other) is sampling_graph_of(small_adjacency)

    def test_rejects_rectangular_patterns(self, rng):
        rect = random_csr(rng, 6, 9)
        with pytest.raises(ValueError, match="square"):
            sampling_graph_of(rect)

    def test_degrees(self, small_adjacency):
        graph = sampling_graph_of(small_adjacency)
        seeds = np.array([0, 7, 13], dtype=np.int64)
        expect = (
            small_adjacency.indptr[seeds + 1] - small_adjacency.indptr[seeds]
        )
        assert np.array_equal(graph.degrees(seeds), expect)

    def test_seed_out_of_range(self, small_adjacency):
        graph = sampling_graph_of(small_adjacency)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="out of range"):
            graph.sample_edges(np.array([graph.num_nodes]), 2, rng)
        with pytest.raises(ValueError, match="out of range"):
            graph.sample_edges(np.array([-1]), 2, rng)


class TestSampleEdges:
    def test_counts_are_degree_capped(self, small_adjacency):
        graph = sampling_graph_of(small_adjacency)
        seeds = np.arange(graph.num_nodes, dtype=np.int64)
        eids, counts = graph.sample_edges(seeds, 3, np.random.default_rng(1))
        assert np.array_equal(counts, np.minimum(graph.degrees(seeds), 3))
        assert eids.shape[0] == int(counts.sum())

    def test_no_duplicates_within_a_seed(self, small_adjacency):
        # Without replacement: every seed's segment holds distinct,
        # ascending edge ids drawn from that seed's own CSR slice.
        graph = sampling_graph_of(small_adjacency)
        seeds = np.arange(graph.num_nodes, dtype=np.int64)
        eids, counts = graph.sample_edges(seeds, 4, np.random.default_rng(2))
        offset = 0
        for seed, count in zip(seeds, counts):
            segment = eids[offset : offset + count]
            offset += count
            assert np.all(np.diff(segment) > 0)  # unique and ascending
            assert np.all(segment >= graph.indptr[seed])
            assert np.all(segment < graph.indptr[seed + 1])

    def test_fanout_above_degree_takes_full_slice(self, small_adjacency):
        graph = sampling_graph_of(small_adjacency)
        seeds = np.arange(graph.num_nodes, dtype=np.int64)
        degrees = graph.degrees(seeds)
        huge = int(degrees.max()) + 5
        rng = np.random.default_rng(3)
        state_before = rng.bit_generator.state
        eids, counts = graph.sample_edges(seeds, huge, rng)
        assert np.array_equal(counts, degrees)
        assert np.array_equal(
            eids, np.arange(small_adjacency.nnz, dtype=np.int64)
        )
        # Full-neighbour sampling never consults the RNG, so a stream
        # shared across hops stays aligned regardless of fan-out slack.
        assert rng.bit_generator.state == state_before

    def test_fanout_none_is_unlimited(self, small_adjacency):
        graph = sampling_graph_of(small_adjacency)
        seeds = np.arange(graph.num_nodes, dtype=np.int64)
        eids, counts = graph.sample_edges(
            seeds, None, np.random.default_rng(4)
        )
        assert np.array_equal(counts, graph.degrees(seeds))
        assert eids.shape[0] == small_adjacency.nnz

    def test_zero_fanout(self, small_adjacency):
        graph = sampling_graph_of(small_adjacency)
        eids, counts = graph.sample_edges(
            np.array([0, 1], dtype=np.int64), 0, np.random.default_rng(5)
        )
        assert eids.shape == (0,)
        assert np.array_equal(counts, [0, 0])

    def test_negative_fanout_rejected(self, small_adjacency):
        graph = sampling_graph_of(small_adjacency)
        with pytest.raises(ValueError, match="fanout"):
            graph.sample_edges(
                np.array([0], dtype=np.int64), -1, np.random.default_rng(6)
            )

    def test_seeded_streams_reproduce(self, small_adjacency):
        graph = sampling_graph_of(small_adjacency)
        seeds = np.arange(graph.num_nodes, dtype=np.int64)
        a1, _ = graph.sample_edges(seeds, 2, np.random.default_rng(7))
        a2, _ = graph.sample_edges(seeds, 2, np.random.default_rng(7))
        b, _ = graph.sample_edges(seeds, 2, np.random.default_rng(8))
        assert np.array_equal(a1, a2)
        assert not np.array_equal(a1, b)  # different seed, different draw

    def test_every_neighbour_reachable(self, small_adjacency):
        # Sub-fan-out draws are uniform subsets: across repeated draws
        # every neighbour of a high-degree seed eventually appears.
        graph = sampling_graph_of(small_adjacency)
        seed = int(np.argmax(graph.degrees(np.arange(graph.num_nodes))))
        lo, hi = graph.indptr[seed], graph.indptr[seed + 1]
        rng = np.random.default_rng(9)
        seen: set[int] = set()
        for _ in range(60):
            eids, _ = graph.sample_edges(np.array([seed]), 2, rng)
            seen.update(int(e) for e in eids)
        assert seen == set(range(int(lo), int(hi)))


class TestSampleOneHop:
    def test_rejects_unsorted_or_duplicate_dst(self, small_adjacency):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="strictly increasing"):
            sample_one_hop(small_adjacency, np.array([3, 1]), 2, rng)
        with pytest.raises(ValueError, match="strictly increasing"):
            sample_one_hop(small_adjacency, np.array([2, 2]), 2, rng)

    def test_zero_degree_seeds(self, holey_adjacency):
        dst = np.array([3, 10, 23], dtype=np.int64)
        block = sample_one_hop(
            holey_adjacency, dst, 4, np.random.default_rng(1)
        )
        # Isolated destinations still appear in the source set (their
        # own features flow forward); their rows are simply empty.
        assert np.array_equal(block.src_nodes, dst)
        assert np.array_equal(block.dst_nodes, dst)
        assert block.matrix.nnz == 0
        assert block.sampled_edges == 0

    def test_full_fanout_all_vertices_is_the_adjacency(self, small_adjacency):
        n = small_adjacency.shape[0]
        block = sample_one_hop(
            small_adjacency,
            np.arange(n, dtype=np.int64),
            None,
            np.random.default_rng(2),
        )
        # The bit-identity anchor: compaction is the identity map and
        # the block *is* the adjacency, arrays equal element for element.
        assert np.array_equal(block.src_nodes, np.arange(n))
        assert np.array_equal(block.dst_positions, np.arange(n))
        assert np.array_equal(block.matrix.indptr, small_adjacency.indptr)
        assert np.array_equal(block.matrix.indices, small_adjacency.indices)
        assert np.array_equal(block.matrix.data, small_adjacency.data)

    def test_edge_values_travel_with_the_topology(self, small_adjacency):
        weighted = small_adjacency.with_data(
            np.arange(1.0, small_adjacency.nnz + 1, dtype=np.float64)
        )
        dst = np.arange(0, weighted.shape[0], 5, dtype=np.int64)
        block = sample_one_hop(weighted, dst, 3, np.random.default_rng(3))
        m = block.matrix
        for r, g in zip(block.dst_positions, block.dst_nodes):
            lo, hi = m.indptr[r], m.indptr[r + 1]
            cols = block.src_nodes[m.indices[lo:hi]]
            row_cols = weighted.indices[
                weighted.indptr[g] : weighted.indptr[g + 1]
            ]
            row_vals = weighted.data[
                weighted.indptr[g] : weighted.indptr[g + 1]
            ]
            pos = np.searchsorted(row_cols, cols)
            assert np.array_equal(row_cols[pos], cols)
            assert np.array_equal(m.data[lo:hi], row_vals[pos])


class TestSampleBlocks:
    def test_layer_contract(self, small_adjacency):
        blocks = sample_blocks(
            small_adjacency,
            np.array([4, 9, 40]),
            (3, 2),
            np.random.default_rng(0),
        )
        assert len(blocks) == 2
        assert np.array_equal(blocks[1].dst_nodes, [4, 9, 40])
        # Inter-layer contract: each hop's destinations are exactly the
        # next hop's sources (same values, the trainer chains on it).
        assert np.array_equal(blocks[0].dst_nodes, blocks[1].src_nodes)

    def test_targets_deduplicated_and_sorted(self, small_adjacency):
        blocks = sample_blocks(
            small_adjacency,
            np.array([12, 4, 12, 4, 30]),
            (2,),
            np.random.default_rng(1),
        )
        assert np.array_equal(blocks[-1].dst_nodes, [4, 12, 30])

    def test_empty_target_set(self, small_adjacency):
        blocks = sample_blocks(
            small_adjacency, np.array([], dtype=np.int64), (2, 2),
            np.random.default_rng(2),
        )
        assert [b.num_src for b in blocks] == [0, 0]
        assert [b.matrix.shape for b in blocks] == [(0, 0), (0, 0)]

    def test_needs_at_least_one_fanout(self, small_adjacency):
        with pytest.raises(ValueError, match="at least one"):
            sample_blocks(
                small_adjacency, np.array([0]), (), np.random.default_rng(3)
            )

    def test_one_stream_reproduces_the_whole_batch(self, small_adjacency):
        targets = np.array([1, 2, 3, 20, 21])
        first = sample_blocks(
            small_adjacency, targets, (2, 3), np.random.default_rng(6)
        )
        second = sample_blocks(
            small_adjacency, targets, (2, 3), np.random.default_rng(6)
        )
        for b1, b2 in zip(first, second):
            assert np.array_equal(b1.matrix.indptr, b2.matrix.indptr)
            assert np.array_equal(b1.matrix.indices, b2.matrix.indices)
            assert np.array_equal(b1.src_nodes, b2.src_nodes)

    def test_payload_round_trip(self, small_adjacency):
        from repro.tensor.sampling_graph import Block

        (block,) = sample_blocks(
            small_adjacency, np.array([0, 5]), (3,), np.random.default_rng(7)
        )
        clone = Block.from_payload(block.to_payload())
        assert np.array_equal(clone.matrix.indptr, block.matrix.indptr)
        assert np.array_equal(clone.matrix.indices, block.matrix.indices)
        assert np.array_equal(clone.matrix.data, block.matrix.data)
        assert np.array_equal(clone.src_nodes, block.src_nodes)
        assert np.array_equal(clone.dst_positions, block.dst_positions)
        assert clone.sampled_edges == block.sampled_edges


class TestEmptyBlocksThroughMegakernel:
    """Zero-edge hop blocks must survive the fused attention chain."""

    def test_isolated_seeds_forward_and_backward(self, holey_adjacency):
        targets = np.array([3, 10, 23], dtype=np.int64)
        blocks = sample_blocks(
            holey_adjacency, targets, (4, 4), np.random.default_rng(0)
        )
        assert all(b.matrix.nnz == 0 for b in blocks)
        model = GnnModel([
            DagLayer("gat", 5, 6, seed=0, fused=True, dtype=np.float64),
            DagLayer("gat", 6, 4, seed=1, fused=True,
                     activation="identity", dtype=np.float64),
        ])
        h0 = np.random.default_rng(1).normal(size=(blocks[0].num_src, 5))
        out, caches = forward_blocks(model, blocks, h0)
        assert out.shape == (3, 4)
        assert np.all(np.isfinite(out))
        grads = backward_blocks(
            model, blocks, caches, np.ones_like(out)
        )
        for layer_grads in grads:
            for grad in layer_grads.values():
                assert np.all(np.isfinite(grad))

    def test_zero_fanout_blocks_run_fused(self, small_adjacency):
        # fanout=0 keeps only the (empty) self rows: the degenerate but
        # legal "no neighbours at all" configuration.
        blocks = sample_blocks(
            small_adjacency.astype(np.float64),
            np.array([0, 1, 2]), (0,), np.random.default_rng(0),
        )
        model = GnnModel(
            [DagLayer("agnn", 4, 4, seed=0, fused=True, dtype=np.float64)]
        )
        h0 = np.random.default_rng(2).normal(size=(blocks[0].num_src, 4))
        out, _ = forward_blocks(model, blocks, h0)
        assert out.shape == (3, 4)
        assert np.all(np.isfinite(out))


class TestCompactionProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(4, 32),
        fanout=st.integers(1, 5),
        layers=st.integers(1, 3),
    )
    def test_round_trip_to_global_adjacency(self, seed, n, fanout, layers):
        """Every block edge maps back to a real global edge (with its
        value), counts honour ``min(degree, fanout)``, the compaction
        map is monotone, and non-destination rows are empty."""
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < 0.25).astype(np.float64)
        dense *= rng.normal(1.0, 0.4, (n, n))
        a = CSRMatrix.from_dense(dense)
        targets = rng.choice(n, size=int(rng.integers(1, n + 1)),
                             replace=False)
        blocks = sample_blocks(a, targets, (fanout,) * layers, rng)
        assert len(blocks) == layers
        dst_expect = np.unique(targets)
        for block in reversed(blocks):
            assert np.array_equal(block.dst_nodes, dst_expect)
            assert np.all(np.diff(block.src_nodes) > 0)  # monotone map
            m = block.matrix
            assert m.shape == (block.num_src, block.num_src)
            for r, g_dst in zip(block.dst_positions, block.dst_nodes):
                lo, hi = m.indptr[r], m.indptr[r + 1]
                local = m.indices[lo:hi]
                global_src = block.src_nodes[local]
                # local -> global -> local is the identity
                assert np.array_equal(
                    np.searchsorted(block.src_nodes, global_src), local
                )
                row = slice(a.indptr[g_dst], a.indptr[g_dst + 1])
                row_cols = a.indices[row]
                assert hi - lo == min(row_cols.shape[0], fanout)
                pos = np.searchsorted(row_cols, global_src)
                assert np.array_equal(row_cols[pos], global_src)
                assert np.array_equal(m.data[lo:hi], a.data[row][pos])
            non_dst = np.setdiff1d(
                np.arange(block.num_src), block.dst_positions
            )
            assert np.all(
                m.indptr[non_dst + 1] - m.indptr[non_dst] == 0
            )
            dst_expect = block.src_nodes


class TestWeightedSampling:
    """Importance sampling (per-edge propensities) on the same substrate."""

    def test_unweighted_path_bit_identical_with_uniform_weights_absent(
        self, small_adjacency
    ):
        # Passing weights=None must be the exact historical stream; the
        # weighted code path only engages when an array is supplied.
        graph = sampling_graph_of(small_adjacency)
        seeds = np.arange(graph.num_nodes, dtype=np.int64)
        a1, _ = graph.sample_edges(seeds, 2, np.random.default_rng(7))
        a2, _ = graph.sample_edges(
            seeds, 2, np.random.default_rng(7), None
        )
        assert np.array_equal(a1, a2)

    def test_full_fanout_never_consults_weights_or_rng(
        self, small_adjacency
    ):
        graph = sampling_graph_of(small_adjacency)
        seeds = np.arange(graph.num_nodes, dtype=np.int64)
        weights = np.random.default_rng(0).random(small_adjacency.nnz)
        rng = np.random.default_rng(5)
        state_before = rng.bit_generator.state
        eids, counts = graph.sample_edges(seeds, None, rng, weights)
        assert rng.bit_generator.state == state_before
        # Full fan-out is the identity gather regardless of weights.
        assert np.array_equal(eids, np.arange(small_adjacency.nnz))
        assert np.array_equal(
            counts, np.diff(small_adjacency.indptr)
        )

    def test_seeded_weighted_draws_reproduce(self, small_adjacency):
        graph = sampling_graph_of(small_adjacency)
        seeds = np.arange(graph.num_nodes, dtype=np.int64)
        weights = np.random.default_rng(1).random(small_adjacency.nnz)
        a1, _ = graph.sample_edges(
            seeds, 2, np.random.default_rng(7), weights
        )
        a2, _ = graph.sample_edges(
            seeds, 2, np.random.default_rng(7), weights
        )
        assert np.array_equal(a1, a2)

    def test_zero_weight_edges_lose_to_positive_ones(self, small_adjacency):
        # Zero-weight edges draw an infinite race key: whenever a seed
        # has >= fanout positive-weight candidates, no zero-weight edge
        # is ever selected for it.
        graph = sampling_graph_of(small_adjacency)
        fanout = 2
        rng = np.random.default_rng(0)
        weights = np.ones(small_adjacency.nnz)
        dead = rng.random(small_adjacency.nnz) < 0.3
        weights[dead] = 0.0
        deg = np.diff(small_adjacency.indptr)
        alive_per_seed = np.zeros(graph.num_nodes, dtype=np.int64)
        for v in range(graph.num_nodes):
            row = slice(
                small_adjacency.indptr[v], small_adjacency.indptr[v + 1]
            )
            alive_per_seed[v] = int(np.count_nonzero(weights[row]))
        seeds = np.flatnonzero(
            (alive_per_seed >= fanout) & (deg > fanout)
        ).astype(np.int64)
        assert seeds.size  # the graph is dense enough for this regime
        for trial in range(20):
            eids, _ = graph.sample_edges(
                seeds, fanout, np.random.default_rng(trial), weights
            )
            assert np.all(weights[eids] > 0.0)

    def test_heavier_edges_sampled_more_often(self, small_adjacency):
        # Bias sanity: give one neighbour of a high-degree seed 50x the
        # weight of its siblings; it must dominate repeated draws.
        graph = sampling_graph_of(small_adjacency)
        deg = np.diff(small_adjacency.indptr)
        seed = int(np.argmax(deg))
        lo, hi = (
            int(small_adjacency.indptr[seed]),
            int(small_adjacency.indptr[seed + 1]),
        )
        assert hi - lo >= 3
        weights = np.ones(small_adjacency.nnz)
        favoured = lo
        weights[favoured] = 50.0
        hits = 0
        trials = 200
        for trial in range(trials):
            eids, _ = graph.sample_edges(
                np.array([seed]), 1, np.random.default_rng(trial), weights
            )
            hits += int(eids[0] == favoured)
        # P(favoured) = 50 / (49 + deg); with deg <= 60 that is > 0.45,
        # while uniform would be 1/deg < 0.17. Split the difference.
        assert hits / trials > 0.3

    def test_invalid_weights_rejected(self, small_adjacency):
        graph = sampling_graph_of(small_adjacency)
        seeds = np.arange(graph.num_nodes, dtype=np.int64)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="per-edge"):
            graph.sample_edges(
                seeds, 2, rng, np.ones(small_adjacency.nnz - 1)
            )
        bad = np.ones(small_adjacency.nnz)
        bad[0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            graph.sample_edges(seeds, 1, rng, bad)
        bad[0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            graph.sample_edges(seeds, 1, rng, bad)

    def test_hub_bias_weights_values(self, small_adjacency):
        from repro.tensor.sampling_graph import hub_bias_weights

        weights = hub_bias_weights(small_adjacency)
        deg = np.maximum(
            np.diff(small_adjacency.indptr), 1
        ).astype(np.float64)
        assert np.array_equal(weights, deg[small_adjacency.indices])
        assert np.array_equal(
            hub_bias_weights(small_adjacency, power=0.0),
            np.ones(small_adjacency.nnz),
        )
        inv = hub_bias_weights(small_adjacency, power=-1.0)
        assert np.all(np.isfinite(inv)) and np.all(inv > 0.0)
        assert np.array_equal(inv, 1.0 / deg[small_adjacency.indices])

    def test_weighted_blocks_keep_the_layer_contract(self, small_adjacency):
        from repro.tensor.sampling_graph import hub_bias_weights

        weights = hub_bias_weights(small_adjacency)
        rng = np.random.default_rng(3)
        targets = np.arange(0, small_adjacency.shape[0], 4)
        blocks = sample_blocks(
            small_adjacency, targets, (2, 2), rng, weights
        )
        assert np.array_equal(
            blocks[0].dst_nodes, blocks[1].src_nodes
        )
        # Every sampled edge is a real global edge with its value.
        for block in blocks:
            m = block.matrix
            for r in block.dst_positions:
                g_dst = block.src_nodes[r]
                local = m.indices[m.indptr[r]:m.indptr[r + 1]]
                global_src = block.src_nodes[local]
                row = slice(
                    small_adjacency.indptr[g_dst],
                    small_adjacency.indptr[g_dst + 1],
                )
                assert np.all(
                    np.isin(global_src, small_adjacency.indices[row])
                )
