"""Permutation equivariance — a structural correctness property.

GNNs are permutation-equivariant by construction: relabelling the
vertices permutes the output rows and changes nothing else,

.. math:: f(P A P^T, P H) = P\\, f(A, H)

for any permutation matrix ``P``. Any indexing bug in the kernels
(row/column swaps in SDDMM gathers, transpose-permutation errors,
segment misalignment) breaks this property for *some* permutation, so
checking it under random relabellings is a broad-spectrum detector that
complements the value-level reference tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import erdos_renyi
from repro.graphs.prep import prepare_adjacency
from repro.graphs.reorder import permute, random_order
from repro.models import build_model, normalize_adjacency

MODELS = ["VA", "AGNN", "GAT", "GCN", "GIN"]


def _forward(name, a, h, seed):
    a = normalize_adjacency(a) if name == "GCN" else a
    model = build_model(name, h.shape[1], 6, 3, num_layers=2, seed=seed,
                        dtype=np.float64)
    return model.forward(a, h, training=False)


class TestPermutationEquivariance:
    @pytest.mark.parametrize("name", MODELS)
    def test_fixed_permutation(self, rng, name):
        n, k = 40, 5
        a = prepare_adjacency(erdos_renyi(n, 200, seed=3), dtype=np.float64)
        h = rng.normal(size=(n, k))
        order = random_order(n, seed=7)

        base = _forward(name, a, h, seed=11)
        permuted_a = permute(a, order)
        permuted_h = np.empty_like(h)
        permuted_h[order] = h
        permuted_out = _forward(name, permuted_a, permuted_h, seed=11)
        # Row v of the base output must appear at row order[v].
        assert np.allclose(permuted_out[order], base, atol=1e-9)

    @given(
        st.sampled_from(MODELS),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_permutations(self, name, seed):
        rng = np.random.default_rng(seed)
        n, k = 25, 4
        a = prepare_adjacency(
            erdos_renyi(n, 80, seed=seed), dtype=np.float64
        )
        h = rng.normal(size=(n, k))
        order = random_order(n, seed=seed + 1)
        base = _forward(name, a, h, seed=seed % 13)
        permuted_h = np.empty_like(h)
        permuted_h[order] = h
        permuted_out = _forward(name, permute(a, order), permuted_h,
                                seed=seed % 13)
        assert np.allclose(permuted_out[order], base, atol=1e-8)

    def test_distributed_execution_is_equivariant_too(self, rng):
        """The 1.5D engine inherits the property despite blocking the
        graph differently for every permutation."""
        from repro.distributed.api import distributed_inference

        n, k = 36, 4
        a = prepare_adjacency(erdos_renyi(n, 150, seed=2), dtype=np.float64)
        h = rng.normal(size=(n, k))
        order = random_order(n, seed=5)
        base = distributed_inference("GAT", a, h, 6, 3, num_layers=2,
                                     p=4, seed=1, dtype=np.float64).output
        permuted_h = np.empty_like(h)
        permuted_h[order] = h
        permuted = distributed_inference(
            "GAT", permute(a, order), permuted_h, 6, 3, num_layers=2,
            p=4, seed=1, dtype=np.float64,
        ).output
        assert np.allclose(permuted[order], base, atol=1e-9)
