"""Module-level SPMD rank programs for process-backend tests.

The spawn start method pickles rank functions *by reference*, so every
program that must run on the process backend lives here at module
level — a closure defined inside a test function would raise
:class:`repro.runtime.process_fabric.ProcessBackendError`.
"""

from __future__ import annotations

import os
import signal

import numpy as np


def collective_roundtrip(comm, n: int = 50_000):
    """Exercise allreduce + allgather + barrier; returns a checksum."""
    x = np.full(n, float(comm.rank + 1))
    total = comm.allreduce(x)
    blocks = comm.allgather(np.array([comm.rank * 10.0]))
    comm.barrier()
    return float(total[0]) + sum(float(b[0]) for b in blocks)


def large_array_pingpong(comm, shape=(512, 128)):
    """Ship arrays above the SharedMemory threshold both directions."""
    payload = np.full(shape, float(comm.rank), dtype=np.float64)
    partner = comm.size - 1 - comm.rank
    if comm.rank == partner:
        return float(payload.sum())
    comm.send(payload, partner, tag="pp")
    received = comm.recv(partner, tag="pp")
    assert received.shape == shape
    assert np.all(received == float(partner))
    return float(received[0, 0])


def echo_rank(comm):
    """Identity program for ordering / backend-selection tests."""
    return comm.rank


def crash_on_rank_one(comm):
    """Rank 1 raises; everyone else blocks until the abort unblocks them."""
    if comm.rank == 1:
        raise ValueError("rank 1 exploded in a child process")
    comm.recv(1, tag="never-sent")


def die_on_rank_one(comm):
    """Rank 1 dies without any Python-level cleanup (SIGKILL)."""
    if comm.rank == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    comm.recv(1, tag="never-sent")


def deadlock_rank_zero(comm):
    """Rank 0 waits for a message nobody sends (with a decoy pending)."""
    if comm.rank == 0:
        comm.recv(1, tag="missing")
    else:
        comm.send(np.ones(4), 0, tag="decoy")
        comm.recv(0, tag="reply-never-sent")


def self_deadlock(comm):
    """Deterministic single-rank deadlock: a decoy self-send is pending
    while the rank waits on a tag nobody uses."""
    comm.send(np.ones(4), comm.rank, tag="decoy")
    comm.recv(comm.rank, tag="missing")


def traced_sends(comm):
    """A few phase-labelled sends for trace plumbing tests."""
    comm.stats.set_phase("alpha")
    comm.bcast(np.zeros(64, dtype=np.float32), root=0)
    comm.stats.set_phase("beta")
    comm.allreduce(np.ones(8))
    return comm.stats.messages_sent


def isend_then_deadlock(comm):
    """Rank 1's pending *isend* must appear in rank 0's deadlock report."""
    if comm.rank == 0:
        comm.recv(1, tag="missing")
    else:
        comm.isend(np.ones(4), 0, tag="decoy")
        comm.recv(0, tag="reply-never-sent")


def nonblocking_collective_mix(comm, n: int = 2_048):
    """Initiate several collectives, wait them out of initiation order.

    Returns a checksum tuple so thread and process backends can be
    compared; the engine's ordered completion makes the out-of-order
    waits legal (waiting a later handle drains the earlier ones first).
    """
    h_bcast = comm.ibcast(np.arange(n, dtype=np.float64), root=0)
    h_sum = comm.iallreduce(np.full(n, float(comm.rank + 1)))
    h_gather = comm.iallgather(np.array([float(comm.rank)]))
    gathered = h_gather.wait()     # initiated last, waited first
    total = h_sum.wait()
    bcast = h_bcast.wait()
    comm.barrier()
    return (
        float(bcast.sum()),
        float(total[0]),
        sum(float(b[0]) for b in gathered),
    )


def waity_pingpong(comm, sleep_s: float = 0.15):
    """Rank 0 blocks on a receive rank 1 delays — creates real wait_s."""
    import time as _time

    comm.stats.set_phase("stall")
    if comm.rank == 0:
        payload = comm.recv(1, tag="late")
        return float(payload.sum())
    _time.sleep(sleep_s)
    comm.send(np.ones(8), 0, tag="late")
    return 0.0


def bump_named_event(comm, label: str = "obs_merge_probe"):
    """Bump a unique event label child-side (EventCounter merge test)."""
    from repro.util.counters import event_counter

    event_counter().bump(label, comm.rank + 1)
    comm.allreduce(np.ones(4))
    return comm.rank


def traced_span_work(comm):
    """Open spans rank-side so tracing plumbing can be asserted."""
    from repro.obs.tracer import tracer

    with tracer().span("child.step", rank=comm.rank):
        comm.stats.set_phase("work")
        comm.allreduce(np.ones(8))
    return len(tracer().spans)
