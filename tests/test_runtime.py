"""Tests for the simulated MPI runtime: fabric, collectives, grid, cost."""

import numpy as np
import pytest

from repro.runtime import (
    CommStats,
    CostModel,
    Fabric,
    MachineParams,
    RunStats,
    run_spmd,
    square_grid,
)
from repro.runtime.fabric import FabricTimeoutError

P_GRID = [1, 2, 3, 4, 5, 8]


class TestFabric:
    def test_put_get_fifo(self):
        fabric = Fabric(2)
        fabric.put(0, 1, "t", 1)
        fabric.put(0, 1, "t", 2)
        assert fabric.get(0, 1, "t") == 1
        assert fabric.get(0, 1, "t") == 2

    def test_tags_isolate_messages(self):
        fabric = Fabric(2)
        fabric.put(0, 1, "a", "first")
        fabric.put(0, 1, "b", "second")
        assert fabric.get(0, 1, "b") == "second"
        assert fabric.get(0, 1, "a") == "first"

    def test_timeout_raises(self):
        fabric = Fabric(1, timeout=0.05)
        with pytest.raises(FabricTimeoutError):
            fabric.get(0, 0, "never")

    def test_rank_bounds_checked(self):
        fabric = Fabric(2)
        with pytest.raises(ValueError):
            fabric.put(0, 5, "t", 1)


class TestCollectives:
    @pytest.mark.parametrize("p", P_GRID)
    def test_bcast_all_roots(self, p):
        def program(comm):
            for root in range(comm.size):
                payload = np.arange(4.0) + root if comm.rank == root else None
                out = comm.bcast(payload, root=root)
                assert np.allclose(out, np.arange(4.0) + root)
            return True

        assert all(run_spmd(p, program, timeout=20).values)

    @pytest.mark.parametrize("p", P_GRID)
    def test_allreduce_sum_max_min(self, p):
        def program(comm):
            x = np.array([float(comm.rank + 1)])
            assert comm.allreduce(x)[0] == p * (p + 1) / 2
            assert comm.allreduce(x, op="max")[0] == p
            assert comm.allreduce(x, op="min")[0] == 1
            return True

        assert all(run_spmd(p, program, timeout=20).values)

    @pytest.mark.parametrize("p", P_GRID)
    def test_allgather_order(self, p):
        def program(comm):
            blocks = comm.allgather(np.array([comm.rank * 10]))
            assert [int(b[0]) for b in blocks] == [r * 10 for r in range(p)]
            return True

        assert all(run_spmd(p, program, timeout=20).values)

    @pytest.mark.parametrize("p", P_GRID)
    def test_alltoall_permutation(self, p):
        def program(comm):
            outs = comm.alltoall(
                [np.array([comm.rank, dst]) for dst in range(comm.size)]
            )
            for src, payload in enumerate(outs):
                assert list(payload) == [src, comm.rank]
            return True

        assert all(run_spmd(p, program, timeout=20).values)

    @pytest.mark.parametrize("p", P_GRID)
    def test_reduce_scatter(self, p):
        def program(comm):
            blocks = [np.full(3, float(comm.rank + idx))
                      for idx in range(comm.size)]
            out = comm.reduce_scatter(blocks)
            expected = sum(r + comm.rank for r in range(comm.size))
            assert np.allclose(out, expected)
            return True

        assert all(run_spmd(p, program, timeout=20).values)

    @pytest.mark.parametrize("p", P_GRID)
    def test_gather_scatter(self, p):
        def program(comm):
            gathered = comm.gather(comm.rank * 2, root=0)
            if comm.rank == 0:
                assert gathered == [r * 2 for r in range(p)]
                scattered = comm.scatter([r + 100 for r in range(p)], root=0)
            else:
                assert gathered is None
                scattered = comm.scatter(None, root=0)
            assert scattered == comm.rank + 100
            return True

        assert all(run_spmd(p, program, timeout=20).values)

    def test_send_recv_point_to_point(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.array([42.0]), 1, tag="x")
            elif comm.rank == 1:
                assert comm.recv(0, tag="x")[0] == 42.0
            comm.barrier()
            return True

        assert all(run_spmd(2, program, timeout=20).values)

    def test_split_forms_correct_groups(self):
        def program(comm):
            sub = comm.split(color=comm.rank % 2)
            total = sub.allreduce(np.array([1.0]))
            expected = (comm.size + (1 - comm.rank % 2)) // 2
            assert total[0] == expected
            return True

        assert all(run_spmd(5, program, timeout=20).values)

    def test_sends_are_copies(self):
        """Mutating a buffer after send must not corrupt the receiver."""

        def program(comm):
            if comm.rank == 0:
                buf = np.ones(3)
                comm.send(buf, 1, tag=0)
                buf[:] = -1
            else:
                out = comm.recv(0, tag=0)
                assert np.allclose(out, 1.0)
            comm.barrier()
            return True

        assert all(run_spmd(2, program, timeout=20).values)


class TestExecutor:
    def test_error_propagation_reports_root_cause(self):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1 exploded"):
            run_spmd(3, program, timeout=5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)

    def test_return_values_ordered(self):
        result = run_spmd(4, lambda comm: comm.rank * 11, timeout=10)
        assert result.values == [0, 11, 22, 33]


class TestGrid:
    @pytest.mark.parametrize("p", [1, 4, 9, 16])
    def test_square_grid_coordinates(self, p):
        def program(comm):
            grid = square_grid(comm)
            assert grid.px == grid.py == int(np.sqrt(p))
            assert grid.row * grid.py + grid.col == comm.rank
            assert grid.row_comm.size == grid.py
            assert grid.col_comm.size == grid.px
            # Row communicator local rank equals the grid column.
            assert grid.row_comm.rank == grid.col
            assert grid.col_comm.rank == grid.row
            return True

        assert all(run_spmd(p, program, timeout=20).values)

    def test_rectangular_grid(self):
        def program(comm):
            grid = square_grid(comm, px=2, py=3)
            assert grid.size == 6
            return True

        assert all(run_spmd(6, program, timeout=20).values)

    def test_mismatched_grid_rejected(self):
        def program(comm):
            with pytest.raises(ValueError):
                square_grid(comm, px=2, py=2)
            return True

        assert all(run_spmd(6, program, timeout=20).values)


class TestStatsAndCost:
    def test_volume_accounting(self):
        def program(comm):
            comm.bcast(np.zeros(1000, dtype=np.float32), root=0)
            return None

        stats = run_spmd(4, program, timeout=20).stats
        # Root sends at least one 4000-byte copy; volume counted in words.
        assert stats.max_words_sent >= 1000
        assert stats.total_bytes_sent >= 4000
        assert stats.max_messages_sent >= 1

    def test_single_rank_is_silent(self):
        stats = run_spmd(1, lambda comm: comm.bcast(np.ones(10)), timeout=10).stats
        assert stats.max_bytes_sent == 0

    def test_phase_attribution(self):
        def program(comm):
            comm.stats.set_phase("alpha")
            comm.bcast(np.zeros(100, dtype=np.float32), root=0)
            comm.stats.set_phase("beta")
            comm.allreduce(np.zeros(100, dtype=np.float32))
            return None

        stats = run_spmd(2, program, timeout=20).stats
        phases = stats.phase_bytes()
        assert phases.get("alpha", 0) > 0
        assert phases.get("beta", 0) > 0

    def test_cost_model_monotonic_in_traffic(self):
        quiet = RunStats(per_rank=[CommStats(0)])
        busy_stats = CommStats(0)
        busy_stats.record_send(10**6)
        busy_stats.flops.add(10**9)
        busy = RunStats(per_rank=[busy_stats])
        model = CostModel()
        assert model.time(busy) > model.time(quiet)
        breakdown = model.breakdown(busy)
        assert breakdown["total_s"] == pytest.approx(
            breakdown["compute_s"] + breakdown["communication_s"]
        )

    def test_machine_params_validated(self):
        with pytest.raises(ValueError):
            MachineParams(alpha=0)

    def test_summary_keys(self):
        stats = run_spmd(2, lambda comm: comm.barrier(), timeout=10).stats
        summary = stats.summary()
        assert summary["ranks"] == 2
        assert "max_words_sent" in summary
