"""Unit tests for the CSR sparse format."""

import numpy as np
import pytest

from repro.tensor.csr import CSRMatrix
from tests.conftest import random_csr


class TestValidation:
    def test_rejects_bad_indptr_length(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (2, 2))

    def test_rejects_inconsistent_endpoints(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 1, 3]), np.array([0]), np.array([1.0]), (2, 2))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 1.0]),
                (2, 2),
            )

    def test_rejects_column_out_of_range(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                np.array([0, 1, 2]), np.array([0, 5]), np.array([1.0, 1.0]),
                (2, 2),
            )


class TestBasics:
    def test_row_lengths_and_expand_rows(self, rng):
        csr = random_csr(rng, 8, 8, ensure_empty_row=True)
        lengths = csr.row_lengths()
        assert lengths.sum() == csr.nnz
        rows = csr.expand_rows()
        for i in range(8):
            assert np.sum(rows == i) == lengths[i]

    def test_with_data_shares_pattern(self, rng):
        csr = random_csr(rng, 6, 6)
        new = csr.with_data(np.arange(csr.nnz, dtype=float))
        assert new.indptr is csr.indptr
        assert new.indices is csr.indices
        assert new.data[3] == 3.0

    def test_with_data_rejects_wrong_length(self, rng):
        csr = random_csr(rng, 6, 6)
        with pytest.raises(ValueError):
            csr.with_data(np.zeros(csr.nnz + 1))


class TestScaling:
    def test_scale_rows(self, rng):
        csr = random_csr(rng, 5, 7)
        factors = rng.normal(size=5)
        out = csr.scale_rows(factors).to_dense()
        assert np.allclose(out, factors[:, None] * csr.to_dense())

    def test_scale_cols(self, rng):
        csr = random_csr(rng, 5, 7)
        factors = rng.normal(size=7)
        out = csr.scale_cols(factors).to_dense()
        assert np.allclose(out, csr.to_dense() * factors[None, :])

    def test_row_and_col_sums(self, rng):
        csr = random_csr(rng, 6, 4, ensure_empty_row=True)
        dense = csr.to_dense()
        assert np.allclose(csr.row_sum(), dense.sum(axis=1))
        assert np.allclose(csr.col_sum(), dense.sum(axis=0))


class TestTranspose:
    def test_transpose_matches_dense(self, rng):
        csr = random_csr(rng, 9, 5)
        assert np.allclose(csr.transpose().to_dense(), csr.to_dense().T)

    def test_double_transpose_identity(self, rng):
        csr = random_csr(rng, 7, 7)
        back = csr.transpose().transpose()
        assert np.allclose(back.to_dense(), csr.to_dense())

    def test_transpose_permutation_consistency(self, rng):
        csr = random_csr(rng, 8, 6)
        perm = csr.transpose_permutation()
        t = csr.transpose()
        assert np.allclose(t.data, csr.data[perm])


class TestBlocks:
    def test_extract_block_matches_dense(self, rng):
        csr = random_csr(rng, 12, 10, ensure_empty_row=True)
        dense = csr.to_dense()
        block = csr.extract_block(3, 9, 2, 8)
        assert np.allclose(block.to_dense(), dense[3:9, 2:8])

    def test_extract_full_block_is_identity(self, rng):
        csr = random_csr(rng, 6, 6)
        block = csr.extract_block(0, 6, 0, 6)
        assert np.allclose(block.to_dense(), csr.to_dense())

    def test_extract_empty_block(self, rng):
        csr = random_csr(rng, 6, 6)
        block = csr.extract_block(2, 2, 0, 6)
        assert block.shape == (0, 6)
        assert block.nnz == 0

    def test_extract_block_bounds_checked(self, rng):
        csr = random_csr(rng, 6, 6)
        with pytest.raises(ValueError):
            csr.extract_block(0, 7, 0, 6)
        with pytest.raises(ValueError):
            csr.extract_block(0, 6, 3, 2)

    def test_extract_submatrix_matches_dense(self, rng):
        csr = random_csr(rng, 15, 15)
        verts = np.array([1, 4, 5, 9, 14])
        sub = csr.extract_submatrix(verts)
        assert np.allclose(sub.to_dense(), csr.to_dense()[np.ix_(verts, verts)])

    def test_extract_submatrix_requires_sorted(self, rng):
        csr = random_csr(rng, 6, 6)
        with pytest.raises(ValueError):
            csr.extract_submatrix(np.array([3, 1]))


class TestCombination:
    def test_add_different_patterns(self, rng):
        a = random_csr(rng, 6, 6, density=0.3)
        b = random_csr(rng, 6, 6, density=0.3)
        assert np.allclose(a.add(b).to_dense(), a.to_dense() + b.to_dense())

    def test_hadamard_same_pattern(self, rng):
        a = random_csr(rng, 6, 6)
        b = a.with_data(rng.normal(size=a.nnz))
        out = a.hadamard_same_pattern(b)
        assert np.allclose(out.data, a.data * b.data)

    def test_hadamard_rejects_pattern_mismatch(self, rng):
        a = random_csr(rng, 6, 6, density=0.2)
        b = random_csr(rng, 6, 6, density=0.8)
        if a.nnz != b.nnz:
            with pytest.raises(ValueError):
                a.hadamard_same_pattern(b)


class TestInterop:
    def test_scipy_roundtrip(self, rng):
        csr = random_csr(rng, 8, 8)
        back = CSRMatrix.from_scipy(csr.to_scipy())
        assert np.allclose(back.to_dense(), csr.to_dense())

    def test_coo_roundtrip(self, rng):
        csr = random_csr(rng, 8, 8, ensure_empty_row=True)
        assert np.allclose(csr.to_coo().to_csr().to_dense(), csr.to_dense())

    def test_astype_and_copy(self, rng):
        csr = random_csr(rng, 5, 5)
        as32 = csr.astype(np.float32)
        assert as32.dtype == np.float32
        dup = csr.copy()
        dup.data[:] = 0
        assert csr.data.sum() != 0 or csr.nnz == 0


class TestCSRProperties:
    """Hypothesis coverage of the structural CSR operations."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_extract_block_random_ranges(self, n_rows, n_cols, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n_rows, n_cols)) < 0.4) * rng.normal(
            size=(n_rows, n_cols)
        )
        csr = CSRMatrix.from_dense(dense)
        r0 = int(rng.integers(0, n_rows + 1))
        r1 = int(rng.integers(r0, n_rows + 1))
        c0 = int(rng.integers(0, n_cols + 1))
        c1 = int(rng.integers(c0, n_cols + 1))
        block = csr.extract_block(r0, r1, c0, c1)
        assert np.allclose(block.to_dense(), dense[r0:r1, c0:c1])

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_transpose_involution(self, n, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < 0.5) * rng.normal(size=(n, n))
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(
            csr.transpose().transpose().to_dense(), dense
        )

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_add_commutative(self, n, seed):
        rng = np.random.default_rng(seed)
        a = CSRMatrix.from_dense(
            (rng.random((n, n)) < 0.3) * rng.normal(size=(n, n))
        )
        b = CSRMatrix.from_dense(
            (rng.random((n, n)) < 0.3) * rng.normal(size=(n, n))
        )
        assert np.allclose(a.add(b).to_dense(), b.add(a).to_dense())

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_row_col_scaling_compose(self, n, k, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < 0.4) * rng.normal(size=(n, n))
        csr = CSRMatrix.from_dense(dense)
        r = rng.normal(size=n)
        c = rng.normal(size=n)
        out = csr.scale_rows(r).scale_cols(c)
        assert np.allclose(
            out.to_dense(), r[:, None] * dense * c[None, :]
        )

    @given(
        st.integers(min_value=2, max_value=14),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_submatrix_of_full_range(self, n, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < 0.4) * rng.normal(size=(n, n))
        csr = CSRMatrix.from_dense(dense)
        full = csr.extract_submatrix(np.arange(n))
        assert np.allclose(full.to_dense(), dense)
