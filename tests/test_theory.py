"""Tests for the Section-7 communication-volume predictors, including
verification against *measured* traffic of both engines."""

import numpy as np
import pytest

from repro.baselines.dist_local import dist_local_inference
from repro.distributed.api import distributed_inference
from repro.graphs import erdos_renyi
from repro.graphs.prep import prepare_adjacency
from repro.theory import (
    crossover_density,
    erdos_renyi_local_words,
    exact_local_halo_words,
    global_layer_words,
    local_layer_words_bound,
    predict_training_words,
)


class TestClosedForms:
    def test_global_scales_inverse_sqrt_p(self):
        v4 = global_layer_words(10000, 16, 4)
        v16 = global_layer_words(10000, 16, 16)
        # nk/sqrt(p) halves from p=4 to p=16 (k^2 term is negligible).
        assert v16 == pytest.approx(v4 / 2, rel=0.1)

    def test_local_scales_inverse_p_before_cap(self):
        v4 = local_layer_words_bound(10000, 16, 4, d=2)
        v8 = local_layer_words_bound(10000, 16, 8, d=2)
        assert v8 < v4

    def test_local_capped_regime_grows_toward_nk(self):
        """Once the halo saturates (d huge), more ranks fetch more of
        the graph — the cap rises with (p-1)/p."""
        v4 = local_layer_words_bound(10000, 16, 4, d=10**6)
        v8 = local_layer_words_bound(10000, 16, 8, d=10**6)
        assert v8 > v4

    def test_local_caps_at_nk(self):
        n, k, p = 1000, 16, 4
        capped = local_layer_words_bound(n, k, p, d=10**6)
        assert capped <= n * k + k * k * np.log2(p) + 1

    def test_single_rank_is_free(self):
        assert global_layer_words(1000, 16, 1) == 0
        assert local_layer_words_bound(1000, 16, 1, d=5) == 0
        assert erdos_renyi_local_words(1000, 16, 1, 0.1) == 0

    def test_er_volume_increases_with_density(self):
        low = erdos_renyi_local_words(2000, 16, 4, 0.0001)
        high = erdos_renyi_local_words(2000, 16, 4, 0.01)
        assert high > low

    def test_crossover_density(self):
        assert crossover_density(1000, 16) == pytest.approx(4 / 1000)

    def test_global_beats_local_above_crossover(self):
        """d in omega(sqrt p): the paper's headline comparison."""
        n, k, p = 4096, 16, 64
        d = 64  # >> sqrt(64)
        assert global_layer_words(n, k, p) < local_layer_words_bound(
            n, k, p, d
        )

    def test_training_prediction_dispatch(self):
        g = predict_training_words(1000, 16, 4, 3, formulation="global")
        l = predict_training_words(1000, 16, 4, 3, formulation="local", d=30)
        assert g > 0 and l > 0
        with pytest.raises(ValueError):
            predict_training_words(1000, 16, 4, 3, formulation="local")
        with pytest.raises(ValueError):
            predict_training_words(1000, 16, 4, 3, formulation="hybrid")


class TestMeasuredVsPredicted:
    """Measured traffic must track the closed forms within small factors."""

    def test_exact_local_halo_matches_measurement(self):
        a = prepare_adjacency(erdos_renyi(128, 2000, seed=0))
        k, p, layers = 8, 4, 2
        predicted = exact_local_halo_words(a, p, k)
        h = np.zeros((128, k), dtype=np.float32)
        _, stats = dist_local_inference("GCN", a, h, k, k, num_layers=layers,
                                        p=p, seed=0)
        halo_words = stats.phase_bytes()["halo"] // 4
        # Per layer the engine sends exactly the predicted halo.
        assert halo_words == pytest.approx(layers * predicted, rel=0.01)

    def test_global_volume_tracks_nk_over_sqrt_p(self):
        k = 8
        words = {}
        for n in (128, 256):
            a = prepare_adjacency(erdos_renyi(n, 8 * n, seed=0))
            h = np.zeros((n, k), dtype=np.float32)
            result = distributed_inference("GCN", a, h, k, k, num_layers=2,
                                           p=4, seed=0)
            words[n] = result.stats.max_words_sent
        # Doubling n should roughly double the volume (linear in n).
        ratio = words[256] / words[128]
        assert 1.6 < ratio < 2.4

    def test_er_local_prediction_tracks_measurement(self):
        n, k, p = 256, 8, 4
        for q in (0.02, 0.1):
            m = int(q * n * n)
            a = prepare_adjacency(erdos_renyi(n, m, seed=1))
            h = np.zeros((n, k), dtype=np.float32)
            _, stats = dist_local_inference("GCN", a, h, k, k, num_layers=1,
                                            p=p, seed=0)
            measured = stats.phase_bytes()["halo"] // 4
            predicted = erdos_renyi_local_words(n, k, p, q)
            assert measured == pytest.approx(predicted, rel=0.35)

    def test_global_vs_local_gap_shrinks_with_sparsity(self):
        """The Fig. 7 (right) shape: lower density → smaller gap."""
        n, k, p = 256, 8, 4
        gaps = {}
        for q in (0.005, 0.08):
            m = int(q * n * n)
            a = prepare_adjacency(erdos_renyi(n, m, seed=1))
            h = np.zeros((n, k), dtype=np.float32)
            g = distributed_inference("GCN", a, h, k, k, num_layers=2, p=p,
                                      seed=0).stats.max_words_sent
            _, stats = dist_local_inference("GCN", a, h, k, k, num_layers=2,
                                            p=p, seed=0)
            l = stats.max_words_sent
            gaps[q] = l / g
        assert gaps[0.08] > gaps[0.005]
