"""Process-parallel backend: parity, robustness and resource hygiene.

The process backend must be a drop-in transport swap: identical values,
identical losses, and *bit-identical* CommStats traffic accounting
versus the thread backend, because the communicator's collective
algorithms — not the transport — decide what goes on the simulated
wire. On top of that it carries robustness obligations the thread
backend never had: a killed child must surface as a driver-side error
(not a hang), crashes must propagate the failing rank's traceback, and
no run may leak POSIX shared-memory segments.

All rank programs live in :mod:`tests._spmd_programs` — the spawn start
method pickles functions by reference, so closures cannot cross the
process boundary (which is itself asserted below).
"""

import glob
import os
import time

import numpy as np
import pytest

from repro.distributed.api import distributed_train
from repro.graphs import synthetic_classification
from repro.models import build_model
from repro.runtime.executor import BACKEND_ENV_VAR, run_spmd
from repro.runtime.fabric import (
    FabricTimeoutError,
    ThreadFabric,
    format_timeout,
)
from repro.runtime.process_fabric import SHM_PREFIX, ProcessBackendError
from repro.training import SGD, SoftmaxCrossEntropyLoss, Trainer
from tests import _spmd_programs as programs

PARITY_MODELS = ["VA", "AGNN", "GAT"]


def _shm_segments() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-POSIX
        return set()
    return set(glob.glob(f"/dev/shm/{SHM_PREFIX}*"))


@pytest.fixture(scope="module")
def problem():
    return synthetic_classification(n=60, feature_dim=6, seed=3)


@pytest.fixture(scope="module")
def parity_runs(problem):
    """One thread + one process training run per model, shared across
    the parity assertions (process spawns are the expensive part)."""
    h = problem.features.astype(np.float64)
    runs = {}
    for name in PARITY_MODELS:
        runs[name] = {
            backend: distributed_train(
                name, problem.adjacency, h, problem.labels, 8, 4,
                num_layers=2, p=4, epochs=2, lr=0.01,
                mask=problem.train_mask, seed=5, dtype=np.float64,
                backend=backend, timeout=120.0,
            )
            for backend in ("thread", "process")
        }
    return runs


class TestBackendParity:
    @pytest.mark.parametrize("name", PARITY_MODELS)
    def test_losses_bit_match_thread_backend(self, parity_runs, name):
        thread, process = (
            parity_runs[name]["thread"], parity_runs[name]["process"],
        )
        # Same code, same inputs, same reduction order: the backends
        # must agree to the last bit, not merely within tolerance.
        assert thread.losses == process.losses
        assert np.array_equal(thread.output, process.output)

    @pytest.mark.parametrize("name", PARITY_MODELS)
    def test_comm_stats_identical_across_backends(self, parity_runs, name):
        thread, process = (
            parity_runs[name]["thread"], parity_runs[name]["process"],
        )
        for t_rank, p_rank in zip(
            thread.stats.per_rank, process.stats.per_rank
        ):
            assert t_rank.bytes_sent == p_rank.bytes_sent
            assert t_rank.messages_sent == p_rank.messages_sent
            assert t_rank.by_phase == p_rank.by_phase

    @pytest.mark.parametrize("name", PARITY_MODELS)
    def test_matches_single_node_reference(self, problem, parity_runs, name):
        h = problem.features.astype(np.float64)
        model = build_model(name, 6, 8, 4, num_layers=2, seed=5,
                            dtype=np.float64)
        trainer = Trainer(
            model, SoftmaxCrossEntropyLoss(problem.train_mask), SGD(0.01)
        )
        reference = trainer.fit(problem.adjacency, h, problem.labels,
                                epochs=2)
        process = parity_runs[name]["process"]
        for ref, dist in zip(reference.losses, process.losses):
            assert abs(ref - dist) / max(1.0, abs(ref)) < 1e-8

    def test_wall_clock_recorded(self, parity_runs):
        for backend in ("thread", "process"):
            assert parity_runs["VA"][backend].stats.max_wall_s > 0.0

    def test_collective_checksums_match(self):
        results = {
            backend: run_spmd(
                4, programs.collective_roundtrip, backend=backend,
                timeout=60.0, n=30_000,
            )
            for backend in ("thread", "process")
        }
        assert results["thread"].values == results["process"].values
        assert results["process"].backend == "process"


@pytest.fixture(scope="module")
def multihead_parity_runs(problem):
    """Head-batched multi-head GAT on both fabrics (two heads keep the
    spawn cost down; the batched path is head-count independent)."""
    h = problem.features.astype(np.float64)
    return {
        backend: distributed_train(
            "GAT", problem.adjacency, h, problem.labels, 8, 4,
            num_layers=2, p=4, epochs=2, lr=0.01,
            mask=problem.train_mask, seed=5, dtype=np.float64,
            backend=backend, timeout=120.0, heads=2,
        )
        for backend in ("thread", "process")
    }


class TestMultiHeadBackendParity:
    """The coalesced multi-head transfers must survive the transport
    swap bit-for-bit, exactly like the single-head layers."""

    def test_losses_and_outputs_bit_match(self, multihead_parity_runs):
        thread = multihead_parity_runs["thread"]
        process = multihead_parity_runs["process"]
        assert thread.losses == process.losses
        assert np.array_equal(thread.output, process.output)

    def test_comm_stats_identical(self, multihead_parity_runs):
        thread = multihead_parity_runs["thread"]
        process = multihead_parity_runs["process"]
        for t_rank, p_rank in zip(
            thread.stats.per_rank, process.stats.per_rank
        ):
            assert t_rank.bytes_sent == p_rank.bytes_sent
            assert t_rank.messages_sent == p_rank.messages_sent
            assert t_rank.by_phase == p_rank.by_phase


class TestChildFailure:
    def test_crash_propagates_traceback(self):
        with pytest.raises(RuntimeError) as excinfo:
            run_spmd(4, programs.crash_on_rank_one, backend="process",
                     timeout=30.0)
        message = str(excinfo.value)
        assert "rank 1 failed" in message
        assert "rank 1 exploded in a child process" in message
        # The child's traceback crosses the process boundary.
        assert "ValueError" in message
        assert "crash_on_rank_one" in message

    def test_killed_child_is_an_error_not_a_hang(self):
        start = time.monotonic()
        with pytest.raises(RuntimeError) as excinfo:
            run_spmd(4, programs.die_on_rank_one, backend="process",
                     timeout=60.0)
        elapsed = time.monotonic() - start
        # Death is detected via pipe EOF, not by burning the fabric
        # timeout: the whole group tears down promptly.
        assert elapsed < 30.0
        message = str(excinfo.value)
        assert "died without reporting" in message
        assert "rank 1" in message
        assert "exit code" in message


class TestDeadlockReporting:
    def test_process_timeout_names_edge_and_pending(self):
        with pytest.raises(RuntimeError) as excinfo:
            run_spmd(1, programs.self_deadlock, backend="process",
                     timeout=2.0)
        message = str(excinfo.value)
        assert "timed out" in message
        assert "likely deadlock" in message
        assert "missing" in message  # the blocked tag
        assert "decoy" in message    # the undelivered mailbox

    def test_thread_timeout_names_edge_and_pending(self):
        with pytest.raises(RuntimeError) as excinfo:
            run_spmd(1, programs.self_deadlock, backend="thread",
                     timeout=1.0)
        message = str(excinfo.value)
        assert "timed out" in message
        assert "missing" in message
        assert "decoy" in message

    def test_two_rank_deadlock_reports(self):
        with pytest.raises(RuntimeError, match="timed out|deadlock"):
            run_spmd(2, programs.deadlock_rank_zero, backend="process",
                     timeout=2.0)

    def test_thread_fabric_timeout_message(self):
        fabric = ThreadFabric(2, timeout=0.1)
        fabric.put(1, 0, "decoy", np.ones(3))
        with pytest.raises(FabricTimeoutError) as excinfo:
            fabric.get(1, 0, "missing")
        message = str(excinfo.value)
        assert "src=1, dst=0, tag='missing'" in message
        assert "1 undelivered message(s)" in message
        assert "tag='decoy'" in message

    def test_format_timeout_no_pending(self):
        message = format_timeout(2, 0, "t", 5.0, {})
        assert "sender never sent" in message

    def test_format_timeout_truncates_mailbox_list(self):
        pending = {(i, 0, f"tag{i}"): i + 1 for i in range(12)}
        message = format_timeout(9, 0, "t", 5.0, pending)
        assert "12 mailbox(es)" in message
        assert "and 4 more mailboxes" in message


class TestResourceHygiene:
    def test_no_leaked_segments_on_success(self):
        before = _shm_segments()
        result = run_spmd(4, programs.large_array_pingpong,
                          backend="process", timeout=60.0)
        assert len(result.values) == 4
        assert _shm_segments() == before

    def test_no_leaked_segments_after_crash(self):
        before = _shm_segments()
        with pytest.raises(RuntimeError):
            run_spmd(4, programs.crash_on_rank_one, backend="process",
                     timeout=30.0)
        assert _shm_segments() == before

    def test_no_leaked_segments_after_kill(self):
        before = _shm_segments()
        with pytest.raises(RuntimeError):
            run_spmd(4, programs.die_on_rank_one, backend="process",
                     timeout=60.0)
        assert _shm_segments() == before


class TestBackendSelection:
    def test_explicit_process_with_closure_is_strict(self):
        captured = []
        with pytest.raises(ProcessBackendError, match="module-level"):
            run_spmd(2, lambda comm: captured.append(comm.rank),
                     backend="process")

    def test_env_override_selects_process(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        result = run_spmd(2, programs.echo_rank, timeout=60.0)
        assert result.backend == "process"
        assert result.values == [0, 1]

    def test_env_override_falls_back_for_closures(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        result = run_spmd(2, lambda comm: comm.rank, timeout=60.0)
        assert result.backend == "thread"
        assert result.values == [0, 1]

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        result = run_spmd(2, programs.echo_rank, backend="thread")
        assert result.backend == "thread"

    def test_unknown_env_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "gpu")
        with pytest.raises(ValueError, match="REPRO_FABRIC_BACKEND"):
            run_spmd(2, programs.echo_rank)

    def test_unknown_explicit_backend_rejected(self):
        with pytest.raises(ValueError, match="backend argument"):
            run_spmd(2, programs.echo_rank, backend="mpi")


class TestTracePlumbing:
    def test_traces_cross_the_process_boundary(self):
        result = run_spmd(2, programs.traced_sends, backend="process",
                          trace=True, timeout=60.0)
        trace = result.stats.per_rank[0].trace
        assert trace is not None
        assert len(trace.events) == result.stats.per_rank[0].messages_sent
        phases = {event.phase for event in trace.events}
        assert "alpha" in phases or "beta" in phases


class TestObservabilityPlumbing:
    def test_event_counter_merges_back_to_driver(self):
        """Child-process EventCounter bumps must reach the driver's
        process-global counter — otherwise cache-hit/workspace tallies
        silently vanish on the process backend (regression test)."""
        from repro.util.counters import event_counter

        label = "obs_merge_probe"
        before = event_counter().count(label)
        run_spmd(2, programs.bump_named_event, backend="process",
                 timeout=60.0, label=label)
        # Ranks 0 and 1 bump rank+1 occurrences: 1 + 2 = 3.
        assert event_counter().count(label) == before + 3

    def test_rank_tracers_cross_the_process_boundary(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        result = run_spmd(2, programs.traced_span_work,
                          backend="process", timeout=60.0)
        for rank, stats in enumerate(result.stats.per_rank):
            tracer = stats.tracer
            assert tracer is not None and tracer.rank == rank
            names = [s.name for s in tracer.spans]
            assert "child.step" in names
            assert names[-1] == "rank.program"

    def test_tracing_disabled_by_default_on_process_backend(self):
        result = run_spmd(2, programs.traced_span_work,
                          backend="process", timeout=60.0)
        assert all(s.tracer is None for s in result.stats.per_rank)
