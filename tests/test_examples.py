"""Every example script must run cleanly end to end.

The examples are the library's living documentation; each asserts its
own claims internally (accuracy thresholds, bit-faithfulness, predictor
matches), so executing them is a meaningful integration check, not a
smoke test.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )


def test_examples_present():
    """The deliverable requires a quickstart plus domain scenarios."""
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
