"""Tests for the Table-2 compute kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import (
    get_default_backend,
    masked_row_softmax,
    masked_row_softmax_backward,
    mm,
    mspmm,
    sddmm_add,
    sddmm_cosine,
    sddmm_dot,
    set_default_backend,
    spmm,
    spmmm,
)
from repro.tensor.semiring import (
    AVERAGE,
    TROPICAL_MAX,
    TROPICAL_MIN,
    adjacency_values,
    semiring_matmul_dense,
)
from repro.util.counters import FlopCounter
from tests.conftest import random_csr


class TestSpMMReal:
    @pytest.mark.parametrize("backend", ["scipy", "reference"])
    def test_matches_dense(self, rng, backend):
        a = random_csr(rng, 10, 8, ensure_empty_row=True)
        h = rng.normal(size=(8, 4))
        out = spmm(a, h, backend=backend)
        assert np.allclose(out, a.to_dense() @ h)

    def test_backends_agree(self, rng):
        a = random_csr(rng, 12, 12)
        h = rng.normal(size=(12, 5))
        assert np.allclose(
            spmm(a, h, backend="scipy"), spmm(a, h, backend="reference")
        )

    def test_vector_input_squeezed(self, rng):
        a = random_csr(rng, 6, 6)
        x = rng.normal(size=6)
        out = spmm(a, x, backend="reference")
        assert out.shape == (6,)
        assert np.allclose(out, a.to_dense() @ x)

    def test_dimension_mismatch(self, rng):
        a = random_csr(rng, 6, 6)
        with pytest.raises(ValueError):
            spmm(a, rng.normal(size=(5, 2)))

    def test_empty_matrix(self):
        a = CSRMatrix(np.zeros(5, np.int64), np.empty(0, np.int64),
                      np.empty(0), (4, 4))
        out = spmm(a, np.ones((4, 2)), backend="reference")
        assert np.allclose(out, 0)

    def test_flop_accounting(self, rng):
        a = random_csr(rng, 6, 6)
        counter = FlopCounter()
        spmm(a, rng.normal(size=(6, 3)), counter=counter)
        assert counter.total == 2 * a.nnz * 3
        assert counter.by_label["SpMM"] == counter.total

    def test_default_backend_switch(self, rng):
        original = get_default_backend()
        try:
            set_default_backend("reference")
            assert get_default_backend() == "reference"
            with pytest.raises(ValueError):
                set_default_backend("cuda")
        finally:
            set_default_backend(original)

    def test_backend_env_override(self, monkeypatch):
        from repro.tensor import kernels

        monkeypatch.setenv(kernels._BACKEND_ENV_VAR, "reference")
        assert kernels._initial_backend() == "reference"
        monkeypatch.setenv(kernels._BACKEND_ENV_VAR, "cuda")
        with pytest.raises(ValueError, match="REPRO_SPMM_BACKEND"):
            kernels._initial_backend()
        monkeypatch.delenv(kernels._BACKEND_ENV_VAR)
        assert kernels._initial_backend() == "scipy"


class TestSpMMSemirings:
    def _tropical_dense(self, a: CSRMatrix, sr):
        dense = np.full(a.shape, sr.zero)
        dense[a.expand_rows(), a.indices] = sr.one
        return dense

    @pytest.mark.parametrize("sr", [TROPICAL_MIN, TROPICAL_MAX])
    def test_tropical_matches_oracle(self, rng, sr):
        a = random_csr(rng, 8, 8, ensure_empty_row=True)
        lifted = a.with_data(adjacency_values(sr, a.data))
        h = rng.normal(size=(8, 3))
        out = spmm(lifted, h, semiring=sr, backend="reference")
        expected = semiring_matmul_dense(sr, self._tropical_dense(a, sr), h)
        assert np.allclose(out, expected)

    def test_min_aggregation_semantics(self, rng):
        """h'_ij = min over neighbours — the paper's Section 4.3 claim."""
        a = random_csr(rng, 8, 8)
        lifted = a.with_data(adjacency_values(TROPICAL_MIN, a.data))
        h = rng.normal(size=(8, 3))
        out = spmm(lifted, h, semiring=TROPICAL_MIN, backend="reference")
        dense = a.to_dense()
        for i in range(8):
            nz = np.nonzero(dense[i])[0]
            if nz.size:
                assert np.allclose(out[i], h[nz].min(axis=0))

    def test_average_matches_oracle(self, rng):
        a = random_csr(rng, 8, 8, ensure_empty_row=True)
        a = a.with_data(np.abs(a.data) + 0.1)
        h = rng.normal(size=(8, 3))
        out = spmm(a, h, semiring=AVERAGE)
        expected = semiring_matmul_dense(AVERAGE, a.to_dense(), h)
        assert np.allclose(out, expected)

    def test_average_empty_rows_are_zero(self, rng):
        a = random_csr(rng, 8, 8, ensure_empty_row=True)
        a = a.with_data(np.abs(a.data) + 0.1)
        out = spmm(a, rng.normal(size=(8, 2)), semiring=AVERAGE)
        empty = a.row_lengths() == 0
        assert np.allclose(out[empty], 0)


class TestSDDMM:
    def test_dot_matches_dense_gram(self, rng):
        a = random_csr(rng, 9, 9)
        x = rng.normal(size=(9, 4))
        y = rng.normal(size=(9, 4))
        vals = sddmm_dot(a, x, y)
        full = x @ y.T
        assert np.allclose(vals, full[a.expand_rows(), a.indices])

    def test_dot_chunking_invariant(self, rng):
        a = random_csr(rng, 20, 20)
        x = rng.normal(size=(20, 3))
        assert np.allclose(
            sddmm_dot(a, x, x, chunk=7), sddmm_dot(a, x, x, chunk=10**6)
        )

    def test_dot_rectangular(self, rng):
        a = random_csr(rng, 6, 9)
        x = rng.normal(size=(6, 3))
        y = rng.normal(size=(9, 3))
        vals = sddmm_dot(a, x, y)
        full = x @ y.T
        assert np.allclose(vals, full[a.expand_rows(), a.indices])

    def test_dot_validates_shapes(self, rng):
        a = random_csr(rng, 6, 6)
        with pytest.raises(ValueError):
            sddmm_dot(a, rng.normal(size=(6, 3)), rng.normal(size=(6, 4)))
        with pytest.raises(ValueError):
            sddmm_dot(a, rng.normal(size=(5, 3)), rng.normal(size=(6, 3)))

    def test_add_matches_outer_sum(self, rng):
        a = random_csr(rng, 7, 7)
        u = rng.normal(size=7)
        v = rng.normal(size=7)
        vals = sddmm_add(a, u, v)
        full = u[:, None] + v[None, :]
        assert np.allclose(vals, full[a.expand_rows(), a.indices])

    def test_cosine_in_unit_range(self, rng):
        a = random_csr(rng, 8, 8)
        h = rng.normal(size=(8, 5))
        vals, norms = sddmm_cosine(a, h)
        assert np.all(vals <= 1 + 1e-9)
        assert np.all(vals >= -1 - 1e-9)
        assert np.allclose(norms, np.linalg.norm(h, axis=1))

    def test_cosine_self_similarity_is_one(self, rng):
        h = rng.normal(size=(5, 4))
        eye = CSRMatrix.from_dense(np.eye(5))
        vals, _ = sddmm_cosine(eye, h)
        assert np.allclose(vals, 1.0)


class TestCompositeKernels:
    def test_spmmm_both_orders(self, rng):
        a = random_csr(rng, 8, 8)
        b = rng.normal(size=(8, 4))
        c = rng.normal(size=(4, 6))
        expected = a.to_dense() @ b @ c
        assert np.allclose(spmmm(a, b, c), expected)

    def test_mspmm(self, rng):
        a = random_csr(rng, 8, 8)
        d = rng.normal(size=(4, 8))
        e = rng.normal(size=(8, 3))
        assert np.allclose(mspmm(d, a, e), d @ a.to_dense() @ e)

    def test_mm_flops(self, rng):
        counter = FlopCounter()
        mm(rng.normal(size=(3, 4)), rng.normal(size=(4, 5)), counter=counter)
        assert counter.total == 2 * 3 * 4 * 5


class TestMaskedSoftmax:
    def test_forward_rows_normalised(self, rng):
        a = random_csr(rng, 8, 8, ensure_empty_row=True)
        s = masked_row_softmax(a.with_data(rng.normal(size=a.nnz)))
        sums = s.row_sum()
        nonempty = a.row_lengths() > 0
        assert np.allclose(sums[nonempty], 1.0)

    def test_backward_matches_numeric(self, rng):
        a = random_csr(rng, 6, 6)
        x = rng.normal(size=a.nnz)
        g = rng.normal(size=a.nnz)

        def loss(values):
            s = masked_row_softmax(a.with_data(values))
            return float(np.dot(s.data, g))

        analytic = masked_row_softmax_backward(
            masked_row_softmax(a.with_data(x)).data, g, a.indptr
        )
        eps = 1e-6
        for i in rng.choice(a.nnz, size=min(10, a.nnz), replace=False):
            xp = x.copy(); xp[i] += eps
            xm = x.copy(); xm[i] -= eps
            num = (loss(xp) - loss(xm)) / (2 * eps)
            assert np.isclose(num, analytic[i], atol=1e-5)


@st.composite
def spmm_case(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    m = draw(st.integers(min_value=1, max_value=10))
    k = draw(st.integers(min_value=1, max_value=4))
    mask = draw(
        st.lists(st.booleans(), min_size=n * m, max_size=n * m)
    )
    values = draw(
        st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False),
                 min_size=n * m, max_size=n * m)
    )
    h = draw(
        st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False),
                 min_size=m * k, max_size=m * k)
    )
    dense = (np.array(values).reshape(n, m)
             * np.array(mask).reshape(n, m))
    return dense, np.array(h).reshape(m, k)


class TestSpMMProperty:
    @given(spmm_case())
    @settings(max_examples=60, deadline=None)
    def test_reference_matches_dense_product(self, case):
        dense, h = case
        a = CSRMatrix.from_dense(dense)
        out = spmm(a, h, backend="reference")
        assert np.allclose(out, dense @ h, atol=1e-8)
