"""Tests for the semiring algebra of Section 4.3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.semiring import (
    AVERAGE,
    REAL,
    TROPICAL_MAX,
    TROPICAL_MIN,
    Semiring,
    adjacency_values,
    average_lift,
    average_merge,
    average_mul,
    semiring_matmul_dense,
)

finite = st.floats(min_value=-50, max_value=50, allow_nan=False)
positive = st.floats(min_value=0.1, max_value=50, allow_nan=False)


class TestScalarSemiringLaws:
    """Monoid laws for the ufunc-backed semirings."""

    @pytest.mark.parametrize("sr", [REAL, TROPICAL_MIN, TROPICAL_MAX])
    @given(a=finite, b=finite, c=finite)
    @settings(max_examples=40, deadline=None)
    def test_add_associative_commutative(self, sr: Semiring, a, b, c):
        assert np.isclose(sr.add(sr.add(a, b), c), sr.add(a, sr.add(b, c)))
        assert np.isclose(sr.add(a, b), sr.add(b, a))

    @pytest.mark.parametrize("sr", [REAL, TROPICAL_MIN, TROPICAL_MAX])
    @given(a=finite)
    @settings(max_examples=40, deadline=None)
    def test_identities(self, sr: Semiring, a):
        assert np.isclose(sr.add(a, sr.zero), a)
        assert np.isclose(sr.mul(a, sr.one), a)

    @pytest.mark.parametrize("sr", [REAL, TROPICAL_MIN, TROPICAL_MAX])
    @given(a=finite, b=finite, c=finite)
    @settings(max_examples=40, deadline=None)
    def test_mul_distributes_over_add(self, sr: Semiring, a, b, c):
        left = sr.mul(a, sr.add(b, c))
        right = sr.add(sr.mul(a, b), sr.mul(a, c))
        assert np.isclose(left, right)

    def test_reduce(self):
        assert REAL.reduce(np.array([1.0, 2.0, 3.0])) == 6.0
        assert TROPICAL_MIN.reduce(np.array([3.0, 1.0, 2.0])) == 1.0
        assert TROPICAL_MAX.reduce(np.array([3.0, 1.0, 2.0])) == 3.0

    def test_pair_valued_has_no_scalar_reduce(self):
        with pytest.raises(TypeError):
            AVERAGE.reduce(np.array([1.0]))


class TestAverageSemiring:
    @given(v1=finite, w1=positive, v2=finite, w2=positive, v3=finite,
           w3=positive)
    @settings(max_examples=40, deadline=None)
    def test_merge_associative(self, v1, w1, v2, w2, v3, w3):
        a = np.array([v1, w1])
        b = np.array([v2, w2])
        c = np.array([v3, w3])
        left = average_merge(average_merge(a, b), c)
        right = average_merge(a, average_merge(b, c))
        assert np.allclose(left, right, atol=1e-8)

    @given(v=finite, w=positive)
    @settings(max_examples=40, deadline=None)
    def test_merge_identity(self, v, w):
        ident = np.array([0.0, 0.0])
        assert np.allclose(average_merge(np.array([v, w]), ident), [v, w])
        assert np.allclose(average_merge(ident, np.array([v, w])), [v, w])

    def test_merge_computes_weighted_average(self):
        out = average_merge(np.array([1.0, 1.0]), np.array([3.0, 3.0]))
        assert np.isclose(out[0], (1 * 1 + 3 * 3) / 4)
        assert out[1] == 4.0

    def test_lift_and_mul(self):
        pair = average_lift(np.array([2.0]))
        assert np.allclose(pair, [[2.0, 2.0]])
        combined = average_mul(pair, np.array([5.0]))
        assert np.allclose(combined, [[10.0, 2.0]])


class TestAdjacencyLifting:
    def test_real_passthrough(self):
        w = np.array([1.0, 2.0])
        assert np.array_equal(adjacency_values(REAL, w), w)

    @pytest.mark.parametrize("sr", [TROPICAL_MIN, TROPICAL_MAX])
    def test_tropical_uses_mul_identity(self, sr):
        out = adjacency_values(sr, np.array([1.0, 5.0]))
        assert np.all(out == sr.one)


class TestDenseOracle:
    def test_real_matches_numpy(self, rng):
        a = (rng.random((5, 5)) < 0.5) * rng.normal(size=(5, 5))
        b = rng.normal(size=(5, 3))
        assert np.allclose(semiring_matmul_dense(REAL, a, b), a @ b)

    def test_tropical_min_is_neighbourhood_min(self, rng):
        # Adjacency in tropical form: stored entries = 0, absent = inf.
        mask = rng.random((6, 6)) < 0.5
        a = np.where(mask, 0.0, np.inf)
        b = rng.normal(size=(6, 2))
        out = semiring_matmul_dense(TROPICAL_MIN, a, b)
        for i in range(6):
            nz = np.nonzero(mask[i])[0]
            if nz.size:
                assert np.allclose(out[i], b[nz].min(axis=0))

    def test_average_is_weighted_average(self, rng):
        a = (rng.random((5, 5)) < 0.6) * rng.uniform(0.5, 2.0, (5, 5))
        b = rng.normal(size=(5, 3))
        out = semiring_matmul_dense(AVERAGE, a, b)
        for i in range(5):
            nz = np.nonzero(a[i])[0]
            if nz.size:
                w = a[i, nz]
                assert np.allclose(out[i], (w[:, None] * b[nz]).sum(0) / w.sum())


class TestConstruction:
    def test_scalar_semiring_requires_ufuncs(self):
        with pytest.raises(ValueError):
            Semiring("broken", None, None, 0.0, 1.0)
