"""Fused-vs-interpreter parity suite for the attention megakernel.

Three layers of assurance:

* **Kernel parity** — :func:`repro.tensor.megakernel.attention_forward`
  / ``attention_backward`` against a composition of the *unfused*
  Table-2 kernels (``sddmm_*`` → ``masked_row_softmax`` → ``spmm`` and
  their backward counterparts), across all three Psi kinds × {1, 8}
  heads × {empty-row, single-row, power-law} patterns at rtol 1e-10 —
  forward and every gradient output.
* **Program parity** — :class:`repro.fusion.layer.DagLayer` with
  ``fused=True`` against the untouched kernel-at-a-time interpreter
  (``fused=False``), plus a numeric gradcheck through the fused path.
* **Resource guarantees** — no ``(nnz,)``-sized score/softmax
  intermediate is materialised on the fused path (the engine's edge
  memo stays empty and every ``mega.*`` pooled buffer stays within the
  cache-sized block budget), plans are memoised per ``(pattern, heads,
  k)``, flop accounting equals the summed unfused counts, and the
  ``$REPRO_FUSION`` override engages/validates correctly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fusion.interp import ProgramRunner, fusion_enabled_default
from repro.fusion.layer import DagLayer
from repro.graphs import erdos_renyi
from repro.graphs.powerlaw import powerlaw_graph
from repro.graphs.prep import prepare_adjacency
from repro.models.base import GnnModel
from repro.training.loss import MSELoss
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import (
    masked_row_softmax,
    masked_row_softmax_backward,
    sddmm_add,
    sddmm_cosine,
    sddmm_dot,
    spmm,
)
from repro.tensor.megakernel import (
    _BLOCK_SCALAR_BUDGET,
    attention_backward,
    attention_forward,
    plan_sweep,
)
from repro.tensor.segment import bincount_sum, segment_sum
from repro.tensor.workspace import _POOL, clear_workspaces
from repro.util.counters import FlopCounter, event_counter

from tests.conftest import random_csr

RTOL = 1e-10
ATOL = 1e-13
PSIS = ("dot", "add", "cosine")


# ----------------------------------------------------------------------
# Pattern zoo: the reduceat/balance edge cases the issue names
# ----------------------------------------------------------------------
def _single_row_csr(rng: np.random.Generator, n: int) -> CSRMatrix:
    """Only one row holds entries — extreme skew plus empty segments."""
    dense = np.zeros((n, n))
    cols = rng.choice(n, size=max(2, n // 3), replace=False)
    dense[n // 2, cols] = rng.normal(size=cols.size)
    return CSRMatrix.from_dense(dense)


def _patterns(rng: np.random.Generator) -> list[tuple[str, CSRMatrix]]:
    return [
        (
            "empty-row",
            random_csr(rng, 48, 48, density=0.15, ensure_empty_row=True),
        ),
        ("single-row", _single_row_csr(rng, 32)),
        (
            "power-law",
            prepare_adjacency(
                powerlaw_graph(96, 700, seed=5), dtype=np.float64
            ),
        ),
    ]


def _operands(rng, n, heads, k, kp, psi):
    shape3 = (n, k) if heads == 1 else (n, heads, k)
    shape3p = (n, kp) if heads == 1 else (n, heads, kp)
    shape1 = (n,) if heads == 1 else (n, heads)
    ops = {"y": rng.normal(size=shape3p), "dz": rng.normal(size=shape3p)}
    if psi == "add":
        ops["u"] = rng.normal(size=shape1)
        ops["v"] = rng.normal(size=shape1)
    else:
        x = rng.normal(size=shape3)
        ops["x"] = x
        ops["norms"] = np.sqrt(np.einsum("...j,...j->...", x, x))
    return ops


# ----------------------------------------------------------------------
# The kernel-at-a-time oracle: unfused Table-2 kernels, head-batched
# ----------------------------------------------------------------------
def unfused_reference(a, psi, ops, slope, beta, counter=None):
    """SDDMM → softmax → SpMM plus backward, one kernel per step."""
    counter = counter if counter is not None else FlopCounter()
    heads = 1 if ops["y"].ndim == 2 else ops["y"].shape[1]
    adata = a.data if heads == 1 else a.data[:, None]
    softmax = psi != "dot"
    if psi == "dot":
        raw = sddmm_dot(a, ops["x"], ops["x"], counter=counter)
    elif psi == "add":
        raw = sddmm_add(a, ops["u"], ops["v"], counter=counter)
        raw = np.where(raw > 0, raw, slope * raw)
    else:
        raw, _ = sddmm_cosine(
            a, ops["x"], norms=ops["norms"], counter=counter
        )
        raw = beta * raw
    masked = adata * raw
    if softmax:
        psi_vals = masked_row_softmax(
            a.with_data(masked), counter=counter
        ).data
    else:
        psi_vals = masked
    out = {"Z": spmm(a.with_data(psi_vals), ops["y"], counter=counter)}

    dpsi = sddmm_dot(a, ops["dz"], ops["y"], counter=counter)
    out["dY"] = spmm(
        a.with_data(psi_vals).transpose(), ops["dz"], counter=counter
    )
    if softmax:
        dmasked = masked_row_softmax_backward(
            psi_vals, dpsi, a.indptr, rows=a.expand_rows(), counter=counter
        )
    else:
        dmasked = dpsi
    if psi == "add":
        c = sddmm_add(a, ops["u"], ops["v"])
        dc = dmasked * adata * np.where(c > 0, 1.0, slope)
        out["dU"] = segment_sum(dc, a.indptr)
        out["dV"] = bincount_sum(a.indices, dc, a.shape[1])
        return out, counter
    if psi == "dot":
        dgram = dmasked * adata
    else:
        cos, _, denom = sddmm_cosine(
            a, ops["x"], norms=ops["norms"], with_denom=True
        )
        dgram = dmasked * adata * beta / denom
        ddenom = -(dgram * cos)
        norms_col = (
            ops["norms"][:, None] if heads == 1 else ops["norms"][:, :, None]
        )
        nr = spmm(a.with_data(ddenom), norms_col, counter=counter)
        nc = spmm(
            a.with_data(ddenom).transpose(), norms_col, counter=counter
        )
        out["dNormRow"] = nr[..., 0]
        out["dNormCol"] = nc[..., 0]
    out["dRow"] = spmm(a.with_data(dgram), ops["x"], counter=counter)
    out["dCol"] = spmm(
        a.with_data(dgram).transpose(), ops["x"], counter=counter
    )
    return out, counter


def megakernel_results(a, psi, ops, slope, beta, counter=None):
    counter = counter if counter is not None else FlopCounter()
    kwargs = {"slope": slope, "beta": beta}
    if psi == "add":
        kwargs.update(u=ops["u"], v=ops["v"])
    else:
        kwargs.update(x_src=ops["x"], x_dst=ops["x"])
        if psi == "cosine":
            kwargs["norms"] = ops["norms"]
    z, stats = attention_forward(a, psi, ops["y"], counter=counter, **kwargs)
    grads = attention_backward(
        a, psi, ops["y"], ops["dz"], stats=stats, counter=counter, **kwargs
    )
    return {"Z": z, **grads}, counter


class TestKernelParity:
    """Megakernel vs the unfused kernel chain, every output, 1e-10."""

    @pytest.mark.parametrize("heads", [1, 8])
    @pytest.mark.parametrize("psi", PSIS)
    def test_forward_backward_parity(self, psi, heads):
        rng = np.random.default_rng(42)
        for name, a in _patterns(rng):
            ops = _operands(rng, a.shape[0], heads, 5, 7, psi)
            want, _ = unfused_reference(a, psi, ops, slope=0.3, beta=0.7)
            got, _ = megakernel_results(a, psi, ops, slope=0.3, beta=0.7)
            assert set(got) == set(want)
            for key in want:
                np.testing.assert_allclose(
                    got[key], want[key], rtol=RTOL, atol=ATOL,
                    err_msg=f"{psi}/{heads} heads/{name}/{key}",
                )

    @pytest.mark.parametrize("psi", PSIS)
    def test_flop_accounting_matches_unfused(self, psi):
        """Fused ops are counted once, equal to the summed unfused counts."""
        rng = np.random.default_rng(3)
        a = random_csr(rng, 40, 40, density=0.2, ensure_empty_row=True)
        for heads in (1, 8):
            ops = _operands(rng, 40, heads, 5, 7, psi)
            _, ref_counter = unfused_reference(
                a, psi, ops, slope=0.3, beta=0.7
            )
            _, mega_counter = megakernel_results(
                a, psi, ops, slope=0.3, beta=0.7
            )
            assert mega_counter.by_label == ref_counter.by_label
            assert mega_counter.total == ref_counter.total


class TestProgramParity:
    """DagLayer(fused=True) against the untouched interpreter."""

    @pytest.fixture(scope="class")
    def adjacency(self):
        return prepare_adjacency(
            erdos_renyi(90, 720, seed=11), dtype=np.float64
        )

    @pytest.mark.parametrize("model,kw", [
        ("va", {}),
        ("agnn", {"beta": 0.7}),
        ("gat", {"slope": 0.3}),
    ])
    def test_layer_parity(self, adjacency, model, kw):
        rng = np.random.default_rng(1)
        h = rng.normal(size=(90, 12))
        g = rng.normal(size=(90, 6))
        ref = DagLayer(model, 12, 6, seed=4, fused=False, **kw)
        fus = DagLayer(model, 12, 6, seed=4, fused=True, **kw)
        h_ref, cache_ref = ref.forward(adjacency, h)
        h_fus, cache_fus = fus.forward(adjacency, h)
        assert cache_fus.runner.fused and not cache_ref.runner.fused
        np.testing.assert_allclose(h_fus, h_ref, rtol=RTOL, atol=ATOL)
        dh_ref, grads_ref = ref.backward(cache_ref, g)
        dh_fus, grads_fus = fus.backward(cache_fus, g)
        np.testing.assert_allclose(dh_fus, dh_ref, rtol=RTOL, atol=ATOL)
        assert set(grads_fus) == set(grads_ref)
        for key in grads_ref:
            np.testing.assert_allclose(
                grads_fus[key], grads_ref[key], rtol=RTOL, atol=ATOL,
                err_msg=f"{model}/{key}",
            )

    @pytest.mark.parametrize("model,kw", [
        ("va", {}),
        ("agnn", {"beta": 0.9}),
        ("gat", {"slope": 0.2}),
    ])
    def test_gradcheck_through_fused_layer(self, model, kw):
        """Central-difference check of every parameter gradient with the
        megakernel engaged end to end (same idiom as
        ``tests/test_models_gradcheck.py``)."""
        rng = np.random.default_rng(9)
        a = random_csr(rng, 20, 20, density=0.3, ensure_empty_row=True)
        h = rng.normal(size=(20, 4))
        target = rng.normal(size=(20, 3))
        net = GnnModel([
            DagLayer(model, 4, 5, activation="tanh", seed=2,
                     fused=True, **kw),
            DagLayer(model, 5, 3, activation="identity", seed=3,
                     fused=True, **kw),
        ])
        loss = MSELoss()
        out = net.forward(a, h, training=True)
        grads = net.backward(loss.gradient(out, target))
        eps = 1e-6
        for layer_index, layer in enumerate(net.layers):
            for name, param in layer.parameters().items():
                flat = param.reshape(-1)
                for i in rng.choice(
                    flat.size, size=min(5, flat.size), replace=False
                ):
                    orig = flat[i]
                    flat[i] = orig + eps
                    up = loss.value(net.forward(a, h, training=False), target)
                    flat[i] = orig - eps
                    down = loss.value(
                        net.forward(a, h, training=False), target
                    )
                    flat[i] = orig
                    numeric = (up - down) / (2 * eps)
                    analytic = np.asarray(
                        grads[layer_index][name]
                    ).reshape(-1)[i]
                    denom = max(1e-8, abs(numeric) + abs(analytic))
                    assert abs(numeric - analytic) / denom < 1e-6, (
                        f"{model} layer {layer_index} {name}[{i}]"
                    )


class TestResourceGuarantees:
    """No edge-sized intermediates; plans memoised; env override."""

    def test_no_nnz_sized_intermediates(self):
        """Fused training step on nnz >> block budget: every per-edge
        quantity lives in a cache-sized pooled buffer, and the engine
        never materialises an edge array."""
        a = prepare_adjacency(
            erdos_renyi(2048, 163840, seed=1), dtype=np.float64
        )
        assert a.nnz > _BLOCK_SCALAR_BUDGET  # the claim is non-vacuous
        rng = np.random.default_rng(0)
        h = rng.normal(size=(2048, 32))
        g = rng.normal(size=(2048, 16))
        layer = DagLayer("gat", 32, 16, seed=3, fused=True)
        clear_workspaces()
        base = event_counter().snapshot()
        _, cache = layer.forward(a, h)
        layer.backward(cache, g)
        after = event_counter().snapshot()
        assert cache.runner.fused
        assert after.get("megakernel.forward", 0) > base.get(
            "megakernel.forward", 0
        )
        assert after.get("megakernel.backward", 0) > base.get(
            "megakernel.backward", 0
        )
        engine = cache.runner._engine
        assert engine._edge == {}  # no (nnz,) edge arrays memoised
        # Every pooled sweep buffer is block-sized: bounded by the plan's
        # largest row block (×2 for the pool's geometric growth), never
        # by nnz. Blocks are row-granular, so max_block_edges can exceed
        # the nominal scalar budget, but stays a small fraction of nnz.
        plans = list(a.structure._sweep_plans.values())
        assert plans  # the planner really ran for this pattern
        cap = 2 * max(
            p.max_block_edges * p.heads * p.k_chunk for p in plans
        )
        assert all(8 * p.max_block_edges < a.nnz for p in plans)
        mega_buffers = {
            tag: buf.shape[0]
            for (tag, _), buf in _POOL.buffers.items()
            if tag.startswith("mega.")
        }
        assert mega_buffers  # the sweep really ran through the pool
        for tag, capacity in mega_buffers.items():
            assert capacity <= cap, (
                f"{tag} grew to {capacity} elements "
                f"(block cap {cap}, nnz={a.nnz})"
            )
        # The per-edge score/softmax buffers — the arrays the unfused
        # path materialises at (nnz,) — stay strictly block-sized.
        for tag in ("mega.scores", "mega.dpsi"):
            key = next(k for k in mega_buffers if k == tag)
            assert 8 * mega_buffers[key] < a.nnz

    def test_plan_memoised_per_pattern_heads_k(self):
        a = prepare_adjacency(erdos_renyi(64, 512, seed=2), dtype=np.float64)
        base = event_counter().snapshot()
        p1 = plan_sweep(a.structure, 1, 32)
        p2 = plan_sweep(a.structure, 1, 32)
        p3 = plan_sweep(a.structure, 8, 32)
        after = event_counter().snapshot()
        assert p2 is p1
        assert p3 is not p1
        assert after.get("megaplan.computed", 0) - base.get(
            "megaplan.computed", 0
        ) == 2
        assert after.get("megaplan.hit", 0) - base.get(
            "megaplan.hit", 0
        ) == 1

    def test_strategy_selection_from_degree_cv(self):
        rng = np.random.default_rng(7)
        regular = prepare_adjacency(
            erdos_renyi(256, 4096, seed=3), dtype=np.float64
        )
        assert plan_sweep(regular.structure, 1, 32).strategy == "uniform"
        skewed = _single_row_csr(rng, 256)
        plan = plan_sweep(skewed.structure, 1, 32)
        assert plan.strategy == "balanced"
        # Balanced blocks cover the row range exactly once.
        starts = plan.block_starts
        assert starts[0] == 0 and starts[-1] == 256
        assert np.all(np.diff(starts) > 0)

    def test_repro_fusion_env_override(self, monkeypatch):
        a = random_csr(np.random.default_rng(4), 12, 12, density=0.4)
        rng = np.random.default_rng(5)
        h = rng.normal(size=(12, 4))
        layer_kwargs = dict(model="va", in_dim=4, out_dim=3, seed=1)

        monkeypatch.delenv("REPRO_FUSION", raising=False)
        assert fusion_enabled_default() is False
        _, cache = DagLayer(**layer_kwargs).forward(a, h)
        assert not cache.runner.fused  # default: interpreter untouched

        monkeypatch.setenv("REPRO_FUSION", "1")
        assert fusion_enabled_default() is True
        _, cache = DagLayer(**layer_kwargs).forward(a, h)
        assert cache.runner.fused
        # Explicit fused=False wins over the environment.
        _, cache = DagLayer(**layer_kwargs, fused=False).forward(a, h)
        assert not cache.runner.fused

        monkeypatch.setenv("REPRO_FUSION", "off")
        assert fusion_enabled_default() is False
        monkeypatch.setenv("REPRO_FUSION", "maybe")
        with pytest.raises(ValueError, match="REPRO_FUSION"):
            fusion_enabled_default()

    def test_unmatched_program_falls_back(self):
        """A program without the attention chain runs on the
        interpreter even with fused=True (plus an unmatched event)."""
        from repro.fusion.dag import OpDag

        dag = OpDag()
        h = dag.input("H", "nk")
        a = dag.input("A", "nn", sparse=True)
        psi = dag.hadamard(a, dag.matmul(h, dag.transpose(h)))
        dag.set_output(dag.row_sum(psi))  # not Z = Psi @ Y
        rng = np.random.default_rng(6)
        csr = random_csr(rng, 10, 10, density=0.4)
        base = event_counter().snapshot()
        runner = ProgramRunner(
            dag, {"H": rng.normal(size=(10, 3)), "A": csr}, fused=True
        )
        assert not runner.fused
        after = event_counter().snapshot()
        assert after.get("megakernel.unmatched", 0) > base.get(
            "megakernel.unmatched", 0
        )
        ref = ProgramRunner(
            dag, {"H": runner._inputs["H"], "A": csr}, fused=False
        )
        np.testing.assert_allclose(runner.run(), ref.run(), rtol=RTOL)
