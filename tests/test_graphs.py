"""Tests for graph generators, preprocessing and IO."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    density,
    ensure_min_degree,
    erdos_renyi,
    graph_stats,
    kronecker,
    load_npz,
    makg_like,
    powerlaw_graph,
    prepare_adjacency,
    save_npz,
    synthetic_classification,
)
from repro.tensor.coo import COOMatrix


class TestKronecker:
    def test_rounds_to_power_of_two(self):
        g = kronecker(1000, 5000, seed=0)
        assert g.shape[0] == 512

    def test_no_self_loops_and_symmetric(self):
        g = kronecker(256, 3000, seed=1)
        dense = g.to_dense()
        assert np.all(np.diag(dense) == 0)
        assert np.array_equal(dense != 0, (dense != 0).T)

    def test_no_isolated_vertices(self):
        g = kronecker(128, 300, seed=2)
        deg = g.row_degrees() + g.col_degrees()
        assert np.all(deg > 0)

    def test_heavy_tail_degrees(self):
        """Kronecker graphs must be skewed: max degree >> mean degree."""
        g = kronecker(1 << 10, 40000, seed=3)
        stats = graph_stats(g.to_csr())
        assert stats.max_degree > 4 * stats.mean_degree

    def test_deterministic_by_seed(self):
        a = kronecker(128, 1000, seed=7)
        b = kronecker(128, 1000, seed=7)
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.cols, b.cols)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            kronecker(1, 10)
        with pytest.raises(ValueError):
            kronecker(16, 0)
        with pytest.raises(ValueError):
            kronecker(16, 10, initiator=(0.5, 0.4, 0.3))


class TestErdosRenyi:
    def test_edge_count_close_to_target(self):
        g = erdos_renyi(500, 8000, seed=0, symmetrize=False,
                        ensure_connected=False)
        assert abs(g.nnz - 8000) <= 80

    def test_density_parameterisation(self):
        g = erdos_renyi(400, q=0.05, seed=1, symmetrize=False,
                        ensure_connected=False)
        assert abs(density(g) - 0.05) < 0.01

    def test_uniformish_degrees(self):
        """ER graphs are load balanced: max degree close to mean."""
        g = erdos_renyi(1 << 10, 50000, seed=2)
        stats = graph_stats(g.to_csr())
        assert stats.max_degree < 2.5 * stats.mean_degree

    def test_requires_exactly_one_of_m_q(self):
        with pytest.raises(ValueError):
            erdos_renyi(10)
        with pytest.raises(ValueError):
            erdos_renyi(10, m=5, q=0.1)

    def test_rejects_overfull(self):
        with pytest.raises(ValueError):
            erdos_renyi(4, m=100)


class TestPowerlaw:
    def test_heavy_tail(self):
        g = powerlaw_graph(1 << 10, 20000, seed=0)
        stats = graph_stats(g.to_csr())
        assert stats.max_degree > 5 * stats.mean_degree

    def test_makg_like_density(self):
        g = makg_like(n=1 << 10, seed=0)
        stats = graph_stats(g.to_csr())
        # ~29 sampled edges per vertex, doubled by symmetrisation, minus
        # dedup losses.
        assert 15 < stats.mean_degree < 70

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            powerlaw_graph(10, 20, exponent=0.5)


class TestPrep:
    def test_ensure_min_degree_repairs_isolates(self, rng):
        coo = COOMatrix([0, 1], [1, 0], shape=(6, 6))
        fixed = ensure_min_degree(coo, rng=0)
        deg = fixed.row_degrees() + fixed.col_degrees()
        assert np.all(deg > 0)

    def test_ensure_min_degree_no_self_loops_added(self):
        coo = COOMatrix([0], [1], shape=(4, 4))
        fixed = ensure_min_degree(coo, rng=0)
        assert np.all(fixed.rows != fixed.cols)

    def test_ensure_min_degree_noop_when_connected(self):
        coo = COOMatrix([0, 1, 2, 0], [1, 2, 0, 2], shape=(3, 3))
        fixed = ensure_min_degree(coo, rng=0)
        assert fixed is coo

    def test_prepare_adjacency_adds_diagonal(self, rng):
        coo = erdos_renyi(20, 60, seed=0)
        csr = prepare_adjacency(coo)
        dense = csr.to_dense()
        assert np.all(np.diag(dense) == 1)
        assert csr.dtype == np.float32

    def test_graph_stats_fields(self):
        csr = prepare_adjacency(erdos_renyi(50, 200, seed=0))
        stats = graph_stats(csr)
        assert stats.n == 50
        assert stats.m == csr.nnz
        assert stats.isolated == 0
        assert 0 < stats.density < 1

    @given(st.integers(min_value=2, max_value=64),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_property_er_always_valid(self, n, m):
        m = min(m, n * (n - 1) // 2)
        if m == 0:
            return
        g = erdos_renyi(n, m, seed=0)
        assert g.shape == (n, n)
        assert np.all(g.rows != g.cols)
        deg = g.row_degrees() + g.col_degrees()
        assert np.all(deg > 0)


class TestIO:
    def test_roundtrip(self, tmp_path, rng):
        g = erdos_renyi(30, 100, seed=5)
        path = tmp_path / "graph.npz"
        save_npz(path, g)
        back = load_npz(path)
        assert back.shape == g.shape
        assert np.allclose(back.to_dense(), g.to_dense())

    def test_missing_arrays_rejected(self, tmp_path):
        np.savez_compressed(tmp_path / "bad.npz", row=np.array([0]))
        with pytest.raises(ValueError):
            load_npz(tmp_path / "bad.npz")


class TestSyntheticDataset:
    def test_masks_partition_vertices(self):
        data = synthetic_classification(n=100, seed=0)
        total = (
            data.train_mask.astype(int)
            + data.val_mask.astype(int)
            + data.test_mask.astype(int)
        )
        assert np.all(total == 1)

    def test_shapes(self):
        data = synthetic_classification(n=80, num_classes=3, feature_dim=9,
                                        seed=1)
        assert data.features.shape == (80, 9)
        assert data.labels.shape == (80,)
        assert data.num_classes == 3
        assert set(np.unique(data.labels)) <= set(range(3))

    def test_homophily_increases_same_class_edges(self):
        high = synthetic_classification(n=400, homophily=0.95, seed=2)
        low = synthetic_classification(n=400, homophily=0.3, seed=2)

        def same_class_fraction(data):
            csr = data.adjacency
            rows = csr.expand_rows()
            cols = csr.indices
            off_diag = rows != cols
            return float(
                (data.labels[rows[off_diag]] == data.labels[cols[off_diag]]).mean()
            )

        assert same_class_fraction(high) > same_class_fraction(low) + 0.2

    def test_invalid_homophily(self):
        with pytest.raises(ValueError):
            synthetic_classification(n=10, homophily=1.5)
