"""Tests for losses, optimisers, trainer and metrics."""

import numpy as np
import pytest

from repro.models import build_model, normalize_adjacency
from repro.training import (
    Adam,
    MSELoss,
    SGD,
    SoftmaxCrossEntropyLoss,
    Trainer,
    accuracy,
    f1_macro,
)


class TestCrossEntropy:
    def test_value_matches_manual(self, rng):
        logits = rng.normal(size=(5, 3))
        labels = rng.integers(0, 3, 5)
        loss = SoftmaxCrossEntropyLoss()
        probs = np.exp(logits) / np.exp(logits).sum(1, keepdims=True)
        manual = -np.log(probs[np.arange(5), labels]).mean()
        assert np.isclose(loss.value(logits, labels), manual)

    def test_gradient_numeric(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, 6)
        loss = SoftmaxCrossEntropyLoss()
        grad = loss.gradient(logits, labels)
        eps = 1e-6
        for _ in range(10):
            i, j = rng.integers(0, 6), rng.integers(0, 4)
            up = logits.copy(); up[i, j] += eps
            down = logits.copy(); down[i, j] -= eps
            num = (loss.value(up, labels) - loss.value(down, labels)) / (2 * eps)
            assert np.isclose(grad[i, j], num, atol=1e-5)

    def test_mask_restricts_loss_and_gradient(self, rng):
        logits = rng.normal(size=(8, 3))
        labels = rng.integers(0, 3, 8)
        mask = np.zeros(8, dtype=bool)
        mask[:3] = True
        loss = SoftmaxCrossEntropyLoss(mask)
        grad = loss.gradient(logits, labels)
        assert np.allclose(grad[~mask], 0)
        unmasked = SoftmaxCrossEntropyLoss()
        assert np.isclose(
            loss.value(logits, labels),
            unmasked.value(logits[:3], labels[:3]),
        )

    def test_empty_mask_is_zero(self, rng):
        loss = SoftmaxCrossEntropyLoss(np.zeros(4, dtype=bool))
        logits = rng.normal(size=(4, 2))
        assert loss.value(logits, np.zeros(4, dtype=int)) == 0.0

    def test_stable_for_huge_logits(self):
        loss = SoftmaxCrossEntropyLoss()
        logits = np.array([[1e4, -1e4], [5e3, 5e3]])
        value = loss.value(logits, np.array([0, 1]))
        assert np.isfinite(value)


class TestMSE:
    def test_gradient_numeric(self, rng):
        h = rng.normal(size=(5, 3))
        t = rng.normal(size=(5, 3))
        loss = MSELoss()
        grad = loss.gradient(h, t)
        eps = 1e-6
        up = h.copy(); up[2, 1] += eps
        down = h.copy(); down[2, 1] -= eps
        num = (loss.value(up, t) - loss.value(down, t)) / (2 * eps)
        assert np.isclose(grad[2, 1], num, atol=1e-6)

    def test_masked(self, rng):
        h = rng.normal(size=(6, 2))
        t = rng.normal(size=(6, 2))
        mask = np.array([True, False, True, False, True, False])
        loss = MSELoss(mask)
        assert np.isclose(loss.value(h, t), MSELoss().value(h[mask], t[mask]))
        assert np.allclose(loss.gradient(h, t)[~mask], 0)


class TestOptimizers:
    def _quadratic_problem(self):
        """Minimise ||W - target||^2 through the optimiser interface."""

        class FakeModel:
            def __init__(self):
                self.w = np.array([5.0, -3.0])

            def parameters(self):
                return [{"w": self.w}]

        return FakeModel()

    def test_sgd_descends(self):
        model = self._quadratic_problem()
        opt = SGD(lr=0.1)
        for _ in range(200):
            opt.step(model, [{"w": 2 * model.w}])
        assert np.allclose(model.w, 0, atol=1e-6)

    def test_sgd_momentum_accelerates_early(self):
        plain, momentum = self._quadratic_problem(), self._quadratic_problem()
        opt_p, opt_m = SGD(lr=0.01), SGD(lr=0.01, momentum=0.9)
        for _ in range(20):
            opt_p.step(plain, [{"w": 2 * plain.w}])
            opt_m.step(momentum, [{"w": 2 * momentum.w}])
        assert np.abs(momentum.w).sum() < np.abs(plain.w).sum()

    def test_sgd_momentum_converges(self):
        model = self._quadratic_problem()
        opt = SGD(lr=0.01, momentum=0.9)
        for _ in range(800):
            opt.step(model, [{"w": 2 * model.w}])
        assert np.allclose(model.w, 0, atol=1e-4)

    def test_adam_descends(self):
        model = self._quadratic_problem()
        opt = Adam(lr=0.3)
        for _ in range(300):
            opt.step(model, [{"w": 2 * model.w}])
        assert np.allclose(model.w, 0, atol=1e-3)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(lr=-1)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.5)


class TestTrainer:
    @pytest.mark.parametrize("name", ["VA", "AGNN", "GAT", "GCN"])
    def test_models_learn_sbm(self, sbm_data, name):
        a = (
            normalize_adjacency(sbm_data.adjacency)
            if name == "GCN"
            else sbm_data.adjacency
        )
        model = build_model(name, 12, 16, sbm_data.num_classes,
                            num_layers=2, seed=0)
        trainer = Trainer(
            model, SoftmaxCrossEntropyLoss(sbm_data.train_mask), Adam(0.01)
        )
        result = trainer.fit(
            a, sbm_data.features, sbm_data.labels, epochs=40,
            train_mask=sbm_data.train_mask,
        )
        test_acc = trainer.evaluate(
            a, sbm_data.features, sbm_data.labels, sbm_data.test_mask
        )
        assert result.losses[-1] < result.losses[0]
        assert test_acc > 0.8  # planted partition is easily separable

    def test_early_stopping(self, sbm_data):
        model = build_model("GCN", 12, 8, sbm_data.num_classes, num_layers=2)
        a = normalize_adjacency(sbm_data.adjacency)
        trainer = Trainer(
            model, SoftmaxCrossEntropyLoss(sbm_data.train_mask), Adam(0.05)
        )
        result = trainer.fit(
            a, sbm_data.features, sbm_data.labels, epochs=500,
            val_mask=sbm_data.val_mask, patience=5,
        )
        assert len(result.losses) < 500


class TestMetrics:
    def test_accuracy_perfect_and_zero(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_accuracy_masked(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0], [2.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels, np.array([True, True, False])) == 1.0

    def test_f1_macro_bounds(self, rng):
        logits = rng.normal(size=(50, 4))
        labels = rng.integers(0, 4, 50)
        score = f1_macro(logits, labels)
        assert 0.0 <= score <= 1.0

    def test_f1_perfect(self):
        logits = np.eye(3) * 5
        assert f1_macro(logits, np.arange(3)) == 1.0

    def test_empty_selection(self):
        assert accuracy(np.empty((0, 2)), np.empty(0, dtype=int)) == 0.0


class TestOptimizerExtensions:
    def _model(self):
        class FakeModel:
            def __init__(self):
                self.w = np.array([4.0, -4.0])

            def parameters(self):
                return [{"w": self.w}]

        return FakeModel()

    def test_weight_decay_shrinks_parameters(self):
        model = self._model()
        opt = SGD(lr=0.1, weight_decay=0.5)
        for _ in range(50):
            opt.step(model, [{"w": np.zeros(2)}])  # zero task gradient
        assert np.abs(model.w).max() < 0.5  # pure decay pulls to zero

    def test_clip_norm_bounds_step(self):
        model = self._model()
        before = model.w.copy()
        opt = SGD(lr=1.0, clip_norm=1.0)
        opt.step(model, [{"w": np.array([1e6, -1e6])}])
        step = np.linalg.norm(model.w - before)
        assert step == pytest.approx(1.0, rel=1e-6)

    def test_clip_skips_non_finite_gradients(self):
        model = self._model()
        before = model.w.copy()
        opt = SGD(lr=1.0, clip_norm=1.0)
        opt.step(model, [{"w": np.array([np.inf, 1.0])}])
        assert np.array_equal(model.w, before)

    def test_va_training_stabilised_by_clipping(self, sbm_data):
        """The VA model's unnormalised scores explode under plain SGD;
        clipping keeps the run finite and learning."""
        model = build_model("VA", 12, 16, sbm_data.num_classes,
                            num_layers=2, seed=0)
        trainer = Trainer(
            model,
            SoftmaxCrossEntropyLoss(sbm_data.train_mask),
            Adam(0.01, clip_norm=5.0),
        )
        result = trainer.fit(
            sbm_data.adjacency, sbm_data.features, sbm_data.labels,
            epochs=30,
        )
        assert np.isfinite(result.losses[-1])
        assert result.losses[-1] < result.losses[0]

    def test_invalid_extension_arguments(self):
        with pytest.raises(ValueError):
            SGD(lr=0.1, weight_decay=-1)
        with pytest.raises(ValueError):
            Adam(lr=0.1, clip_norm=0)
