"""Unit + property tests for segment reductions (the reduceat wrappers)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.segment import (
    expand_segments,
    segment_max,
    segment_mean,
    segment_min,
    segment_softmax,
    segment_sum,
)


def brute_segments(values, indptr, fn, identity):
    out = []
    for i in range(len(indptr) - 1):
        seg = values[indptr[i]: indptr[i + 1]]
        out.append(fn(seg) if len(seg) else identity)
    return np.array(out)


@st.composite
def segmented_values(draw):
    """Random segment structure including empty segments anywhere."""
    lengths = draw(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                 max_size=12)
    )
    indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    values = draw(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=int(indptr[-1]),
            max_size=int(indptr[-1]),
        )
    )
    return np.asarray(values, dtype=np.float64), indptr


class TestAgainstBruteForce:
    @given(segmented_values())
    @settings(max_examples=60, deadline=None)
    def test_sum(self, case):
        values, indptr = case
        expected = brute_segments(values, indptr, np.sum, 0.0)
        assert np.allclose(segment_sum(values, indptr), expected)

    @given(segmented_values())
    @settings(max_examples=60, deadline=None)
    def test_max(self, case):
        values, indptr = case
        expected = brute_segments(values, indptr, np.max, -np.inf)
        assert np.array_equal(segment_max(values, indptr), expected)

    @given(segmented_values())
    @settings(max_examples=60, deadline=None)
    def test_min(self, case):
        values, indptr = case
        expected = brute_segments(values, indptr, np.min, np.inf)
        assert np.array_equal(segment_min(values, indptr), expected)

    @given(segmented_values())
    @settings(max_examples=60, deadline=None)
    def test_mean(self, case):
        values, indptr = case
        expected = brute_segments(values, indptr, np.mean, 0.0)
        assert np.allclose(segment_mean(values, indptr), expected)


class TestEdgeCases:
    def test_empty_middle_segment_regression(self):
        """The reduceat empty-middle-segment bug that broke SpMM."""
        indptr = np.array([0, 3, 6, 7, 7, 10, 12, 12])
        values = np.arange(12, dtype=np.float64)
        out = segment_sum(values, indptr)
        assert out[3] == 0.0
        assert out[5] == 10 + 11  # the segment after the empty one

    def test_trailing_empty_segments(self):
        indptr = np.array([0, 2, 2, 2])
        values = np.array([1.0, 2.0])
        assert np.allclose(segment_sum(values, indptr), [3.0, 0.0, 0.0])

    def test_all_empty(self):
        indptr = np.zeros(5, dtype=np.int64)
        out = segment_sum(np.empty(0), indptr)
        assert np.allclose(out, 0)

    def test_no_segments(self):
        out = segment_sum(np.empty(0), np.array([0]))
        assert out.shape == (0,)

    def test_2d_values(self, rng):
        values = rng.normal(size=(6, 3))
        indptr = np.array([0, 2, 2, 6])
        out = segment_sum(values, indptr)
        assert out.shape == (3, 3)
        assert np.allclose(out[0], values[:2].sum(0))
        assert np.allclose(out[1], 0)
        assert np.allclose(out[2], values[2:].sum(0))

    def test_expand_segments_inverse_lengths(self):
        indptr = np.array([0, 2, 2, 5])
        out = expand_segments(np.array([10.0, 20.0, 30.0]), indptr)
        assert np.allclose(out, [10, 10, 30, 30, 30])


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        indptr = np.array([0, 3, 3, 8])
        values = rng.normal(size=8)
        out = segment_softmax(values, indptr)
        assert np.isclose(out[:3].sum(), 1.0)
        assert np.isclose(out[3:].sum(), 1.0)

    def test_matches_naive_softmax(self, rng):
        values = rng.normal(size=5)
        indptr = np.array([0, 5])
        expected = np.exp(values) / np.exp(values).sum()
        assert np.allclose(segment_softmax(values, indptr), expected)

    def test_shift_invariance(self, rng):
        values = rng.normal(size=6)
        indptr = np.array([0, 6])
        shifted = segment_softmax(values + 1000.0, indptr)
        assert np.allclose(shifted, segment_softmax(values, indptr))

    def test_numerically_stable_for_large_values(self):
        values = np.array([1e4, 1e4 + 1.0])
        out = segment_softmax(values, np.array([0, 2]))
        assert np.all(np.isfinite(out))
        assert np.isclose(out.sum(), 1.0)

    def test_empty_input(self):
        out = segment_softmax(np.empty(0), np.array([0, 0]))
        assert out.shape == (0,)

    @given(segmented_values())
    @settings(max_examples=40, deadline=None)
    def test_property_rows_normalised(self, case):
        values, indptr = case
        out = segment_softmax(values, indptr)
        for i in range(len(indptr) - 1):
            seg = out[indptr[i]: indptr[i + 1]]
            if len(seg):
                assert np.isclose(seg.sum(), 1.0)
                assert np.all(seg >= 0)
