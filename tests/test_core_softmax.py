"""Tests for the graph softmax global formulation (Section 4.2)."""

import numpy as np

from repro.core.softmax import graph_softmax, graph_softmax_dense
from tests.conftest import random_csr


class TestDenseReference:
    def test_unmasked_matches_standard_softmax(self, rng):
        x = rng.normal(size=(4, 4))
        out = graph_softmax_dense(x)
        expected = np.exp(x) / np.exp(x).sum(axis=1, keepdims=True)
        assert np.allclose(out, expected)

    def test_masked_rows_normalised_over_mask_only(self, rng):
        x = rng.normal(size=(5, 5))
        mask = rng.random((5, 5)) < 0.6
        out = graph_softmax_dense(x, mask)
        assert np.allclose(out[~mask], 0.0)
        sums = out.sum(axis=1)
        nonempty = mask.any(axis=1)
        assert np.allclose(sums[nonempty], 1.0)

    def test_fully_masked_row_is_zero(self, rng):
        x = rng.normal(size=(3, 3))
        mask = np.ones((3, 3), dtype=bool)
        mask[1] = False
        out = graph_softmax_dense(x, mask)
        assert np.allclose(out[1], 0.0)


class TestSparseMatchesDense:
    def test_equivalence_on_random_patterns(self, rng):
        csr = random_csr(rng, 10, 10, ensure_empty_row=True)
        scores = csr.with_data(rng.normal(size=csr.nnz))
        sparse_out = graph_softmax(scores)
        mask = csr.to_dense() != 0
        dense_scores = np.zeros((10, 10))
        dense_scores[mask] = 0  # placeholder
        dense_scores[csr.expand_rows(), csr.indices] = scores.data
        dense_out = graph_softmax_dense(dense_scores, mask)
        assert np.allclose(sparse_out.to_dense(), dense_out)

    def test_sparse_handles_large_scores(self, rng):
        csr = random_csr(rng, 6, 6)
        scores = csr.with_data(rng.normal(size=csr.nnz) * 500)
        out = graph_softmax(scores)
        assert np.all(np.isfinite(out.data))

    def test_pattern_preserved(self, rng):
        csr = random_csr(rng, 6, 6)
        out = graph_softmax(csr.with_data(rng.normal(size=csr.nnz)))
        assert out.indptr is csr.indptr
        assert out.indices is csr.indices
