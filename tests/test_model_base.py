"""Coverage for GnnModel plumbing: hooks, counters, parameter flows."""

import numpy as np
import pytest

from repro.models import build_model
from repro.models.base import GnnModel, glorot
from repro.training import SGD, SoftmaxCrossEntropyLoss, Trainer
from repro.util.counters import FlopCounter
from repro.util.rng import make_rng


class TestRedistributeHook:
    def test_hook_called_between_layers_only(self, rng, small_adjacency):
        calls = []

        class Hooked(GnnModel):
            def redistribute(self, h, layer_index):
                calls.append(layer_index)
                return h

        base = build_model("VA", 5, 6, 3, num_layers=3, dtype=np.float64)
        model = Hooked(base.layers)
        model.forward(small_adjacency, rng.normal(size=(60, 5)))
        # Called after layers 0 and 1, not after the last layer.
        assert calls == [0, 1]

    def test_hook_can_transform(self, rng, small_adjacency):
        class Doubling(GnnModel):
            def redistribute(self, h, layer_index):
                return 2 * h

        base = build_model("GCN", 5, 6, 3, num_layers=2, dtype=np.float64)
        from repro.models import normalize_adjacency

        a = normalize_adjacency(small_adjacency)
        plain = GnnModel(base.layers)
        h = rng.normal(size=(60, 5))
        out_plain = plain.forward(a, h, training=False)
        doubled = Doubling(base.layers)
        out_doubled = doubled.forward(a, h, training=False)
        assert not np.allclose(out_plain, out_doubled)


class TestParameterPlumbing:
    def test_parameters_are_views_not_copies(self):
        model = build_model("GAT", 4, 6, 2, num_layers=2)
        params = model.parameters()
        params[0]["weight"][0, 0] = 123.0
        assert model.layers[0].weight[0, 0] == 123.0

    def test_apply_gradients_moves_all_layers(self, rng, small_adjacency):
        model = build_model("GAT", 5, 6, 3, num_layers=2, dtype=np.float64)
        before = [
            {k: v.copy() for k, v in layer.parameters().items()}
            for layer in model.layers
        ]
        out = model.forward(small_adjacency, rng.normal(size=(60, 5)))
        grads = model.backward(np.ones_like(out))
        model.apply_gradients(grads, lr=0.1)
        for layer, snapshot in zip(model.layers, before):
            for name, value in layer.parameters().items():
                assert not np.allclose(value, snapshot[name]), name

    def test_glorot_bounds(self):
        rng = make_rng(0)
        w = glorot(rng, (100, 50), np.float64)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit)
        assert w.std() > 0.1 * limit  # actually spread out


class TestTrainerPlumbing:
    def test_counter_threaded_through_fit(self, sbm_data):
        model = build_model("GAT", 12, 8, sbm_data.num_classes,
                            num_layers=2)
        counter = FlopCounter()
        trainer = Trainer(model, SoftmaxCrossEntropyLoss(), SGD(0.01))
        trainer.fit(sbm_data.adjacency, sbm_data.features, sbm_data.labels,
                    epochs=2, counter=counter)
        assert counter.total > 0
        assert "SpMM" in counter.by_label

    def test_fit_clears_caches(self, sbm_data):
        model = build_model("GCN", 12, 8, sbm_data.num_classes, num_layers=2)
        from repro.models import normalize_adjacency

        a = normalize_adjacency(sbm_data.adjacency)
        trainer = Trainer(model, SoftmaxCrossEntropyLoss(), SGD(0.01))
        trainer.fit(a, sbm_data.features, sbm_data.labels, epochs=1)
        with pytest.raises(RuntimeError):
            model.backward(np.zeros((300, sbm_data.num_classes)))

    def test_val_history_tracked(self, sbm_data):
        model = build_model("GCN", 12, 8, sbm_data.num_classes, num_layers=2)
        from repro.models import normalize_adjacency

        trainer = Trainer(model, SoftmaxCrossEntropyLoss(), SGD(0.05))
        result = trainer.fit(
            normalize_adjacency(sbm_data.adjacency), sbm_data.features,
            sbm_data.labels, epochs=5, val_mask=sbm_data.val_mask,
        )
        assert len(result.val_accuracies) == 5
        assert all(0 <= v <= 1 for v in result.val_accuracies)

    def test_final_loss_of_empty_history(self):
        from repro.training.trainer import TrainResult

        assert np.isnan(TrainResult().final_loss)
