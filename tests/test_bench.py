"""Tests for the benchmark harness, configs, CLI and report renderer."""

import numpy as np
import pytest

from repro.bench.configs import FIGURE_CONFIGS, scaled_figure
from repro.bench.harness import make_graph, run_config, write_csv
from repro.bench.report import load_results, render_figure
from repro.bench.unified_bench import build_parser
from repro.bench.unified_bench import main as bench_main


@pytest.fixture(scope="module")
def small_graph():
    return make_graph("uniform", 128, 1200, seed=0)


class TestMakeGraph:
    @pytest.mark.parametrize("kind", ["kronecker", "uniform", "powerlaw"])
    def test_kinds(self, kind):
        graph = make_graph(kind, 128, 600, seed=0)
        assert graph.shape[0] in (128,)  # kronecker rounds 128 -> 128
        assert graph.nnz > 0
        # Attention-ready: full diagonal present.
        dense = graph.to_dense()
        assert np.all(np.diag(dense) == 1)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_graph("smallworld", 64, 100)


class TestRunConfig:
    @pytest.mark.parametrize("formulation", ["global", "local", "minibatch"])
    def test_formulations_produce_rows(self, small_graph, formulation):
        row = run_config(
            "testfig", "GAT", formulation, "training", small_graph,
            k=8, layers=2, p=4, seed=0,
        )
        assert row.model == "GAT"
        assert row.p == 4
        assert row.modeled_s > 0
        assert row.comm_words > 0
        assert row.flops > 0
        assert row.modeled_s == pytest.approx(
            row.modeled_compute_s + row.modeled_comm_s
        )

    def test_inference_task(self, small_graph):
        row = run_config(
            "testfig", "VA", "global", "inference", small_graph,
            k=8, layers=2, p=4,
        )
        train = run_config(
            "testfig", "VA", "global", "training", small_graph,
            k=8, layers=2, p=4,
        )
        assert row.modeled_s < train.modeled_s

    def test_gcn_gets_normalised_adjacency(self, small_graph):
        row = run_config(
            "testfig", "GCN", "global", "inference", small_graph,
            k=8, layers=2, p=4,
        )
        assert row.modeled_s > 0

    def test_extra_info_merged(self, small_graph):
        row = run_config(
            "testfig", "VA", "global", "inference", small_graph,
            k=8, layers=1, p=1, extra_info={"rho": 0.5},
        )
        assert row.extra["rho"] == 0.5

    def test_unknown_formulation(self, small_graph):
        with pytest.raises(ValueError):
            run_config("f", "VA", "telepathy", "training", small_graph,
                       k=8, layers=2, p=4)


class TestCsvAndReport:
    def test_write_and_load_roundtrip(self, tmp_path, small_graph):
        rows = [
            run_config("figX", "VA", "global", "inference", small_graph,
                       k=8, layers=1, p=p)
            for p in (1, 4)
        ]
        path = tmp_path / "out.csv"
        write_csv(rows, path)
        write_csv(rows, path)  # append is idempotent header-wise
        loaded = load_results(tmp_path)
        assert {r["figure"] for r in loaded} == {"figX"}
        assert {r["p"] for r in loaded} == {"1", "4"}

    def test_render_figure(self, tmp_path, small_graph):
        rows = [
            run_config("figY", "VA", "global", "inference", small_graph,
                       k=8, layers=1, p=p)
            for p in (1, 4, 16)
        ]
        write_csv(rows, tmp_path / "r.csv")
        text = render_figure(load_results(tmp_path), "figY")
        assert "figY" in text
        assert "VA" in text and "global" in text

    def test_render_missing_figure(self):
        assert "no data" in render_figure([], "nothing")


class TestConfigs:
    def test_all_figures_enumerate_points(self):
        for name in FIGURE_CONFIGS:
            points = scaled_figure(name)
            assert points, name
            for model, formulation, n, m, k, p, rho in points:
                assert n > 0 and m >= n and k > 0 and p >= 1
                assert 0 < rho <= 1

    def test_weak_scaling_grows_n(self):
        points = scaled_figure("fig8_weak_kron")
        ns = {p: n for _m, _f, n, _mm, _k, p, _r in points}
        assert ns[16] > ns[4] > ns[1]

    def test_strong_scaling_fixes_n(self):
        points = scaled_figure("fig6_k16")
        ns = {n for _m, _f, n, _mm, _k, _p, _r in points}
        assert len(ns) == 1

    def test_scale_knob(self):
        base = scaled_figure("fig6_k16", scale=1.0)
        double = scaled_figure("fig6_k16", scale=2.0)
        assert double[0][2] == 2 * base[0][2]


class TestUnifiedCLI:
    def test_parser_matches_artifact_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["-m", "VA", "-v", "1000", "-e", "5000", "--features", "8",
             "-l", "2", "--inference", "--repeat", "3", "--warmup", "1",
             "-t", "float32", "-s", "42", "-d", "uniform"]
        )
        assert args.model == "VA"
        assert args.vertices == 1000
        assert args.inference
        assert args.seed == 42

    def test_end_to_end_run(self, tmp_path, capsys):
        out = tmp_path / "results.csv"
        code = bench_main(
            ["-m", "GCN", "-v", "128", "-e", "600", "-p", "4",
             "--features", "8", "-l", "2", "--repeat", "2", "--warmup", "1",
             "--inference", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "GCN" in captured and "measured median" in captured

    def test_file_loading_path(self, tmp_path):
        from repro.graphs import erdos_renyi, save_npz

        graph_path = tmp_path / "g.npz"
        save_npz(graph_path, erdos_renyi(64, 300, seed=0))
        code = bench_main(
            ["-m", "VA", "-f", str(graph_path), "-p", "1", "--features",
             "4", "-l", "1", "--repeat", "1", "--warmup", "0",
             "--inference", "--output", str(tmp_path / "r.csv")]
        )
        assert code == 0


class TestValidation:
    @pytest.mark.parametrize("name", ["VA", "AGNN", "GAT", "GCN"])
    def test_validate_model_passes(self, small_graph, name):
        from repro.bench.validate import validate_model

        report = validate_model(name, small_graph, k=6, layers=2, p=4)
        assert report.passed, str(report)
        assert report.inference_global < 1e-8
        assert report.inference_local < 1e-8
        assert report.training_global < 1e-8

    def test_cli_validate_flag(self, small_graph, capsys):
        code = bench_main(
            ["-m", "GCN", "-v", "128", "-e", "600", "-p", "4",
             "--features", "6", "-l", "2", "--validate"]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out
