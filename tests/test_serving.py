"""Online serving: coalescing, caching, invalidation, re-entrancy.

The load-bearing guarantees:

* **Batched == per-request** — with full fan-out, the union ego-batch
  of N seeds is *bit-identical* to serving each seed alone, with and
  without the activation cache (every layer is row-wise over its
  source frame and the compaction map is monotone).
* **Never stale** — a hypothesis interleaving of feature deltas, graph
  deltas, model reloads and queries always answers every query exactly
  as a fresh full-batch forward over the current state would
  (versioned cache keys make staleness structural, not best-effort).
* **Queue policy** — flushes trigger on max-batch or max-delay,
  drain on close, and propagate engine failures to every future.
* **Bounded pools** — 100 mixed-size union batches under a workspace
  budget leave the pool no larger than the budget allows.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs import erdos_renyi
from repro.graphs.prep import prepare_adjacency
from repro.models import build_model, state_dict
from repro.models.base import ForwardState
from repro.serving import (
    ActivationCache,
    AdmissionQueue,
    ServingEngine,
    ServingServer,
    coalesce,
    serve_max_batch_default,
    serve_max_delay_ms_default,
)
from repro.serving.queue import InferenceRequest
from repro.tensor.csr import CSRMatrix
from repro.tensor.workspace import (
    clear_workspaces,
    set_workspace_budget,
    workspace_high_water_bytes,
    workspace_pool_bytes,
)
from repro.util.counters import event_counter

N = 40
FEAT = 8


def _adjacency(seed: int = 7, n: int = N) -> CSRMatrix:
    """An ER adjacency (self loops added) where every vertex also has a
    non-self neighbour, so no ego frame degenerates to a single row."""
    a = prepare_adjacency(erdos_renyi(n, 8 * n, seed=seed), dtype=np.float64)
    dense = a.to_dense()
    for i in range(n):
        if np.count_nonzero(dense[i]) - (dense[i, i] != 0.0) == 0:
            dense[i, (i + 1) % n] = 1.0
    return CSRMatrix.from_dense(dense)


@pytest.fixture(scope="module")
def adjacency() -> CSRMatrix:
    return _adjacency()


@pytest.fixture(scope="module")
def features() -> np.ndarray:
    return np.random.default_rng(3).standard_normal((N, FEAT))


def _model(name: str = "va", seed: int = 0):
    return build_model(name, FEAT, 12, 6, num_layers=2, seed=seed)


# ----------------------------------------------------------------------
# Activation cache
# ----------------------------------------------------------------------
class TestActivationCache:
    def test_put_get_roundtrip(self):
        cache = ActivationCache(capacity=8)
        nodes = np.array([2, 5, 9])
        rows = np.arange(9.0).reshape(3, 3)
        cache.put_rows(1, nodes, rows, version=0)
        got, hits = cache.get_rows(1, np.array([5, 7, 9]), version=0)
        assert list(hits) == [True, False, True]
        assert np.array_equal(got[0], rows[1])
        assert got[1] is None
        assert np.array_equal(got[2], rows[2])
        assert cache.hits == 2 and cache.misses == 1

    def test_level_and_version_partition_the_keyspace(self):
        cache = ActivationCache(capacity=8)
        nodes = np.array([1])
        cache.put_rows(1, nodes, np.ones((1, 2)), version=0)
        for level, version in ((2, 0), (1, 1)):
            _, hits = cache.get_rows(level, nodes, version)
            assert not hits.any()

    def test_lru_eviction_order(self):
        cache = ActivationCache(capacity=2)
        one = np.ones((1, 2))
        cache.put_rows(1, np.array([10]), one, 0)
        cache.put_rows(1, np.array([11]), one, 0)
        cache.get_rows(1, np.array([10]), 0)  # refresh 10
        cache.put_rows(1, np.array([12]), one, 0)  # evicts 11
        _, h10 = cache.get_rows(1, np.array([10]), 0)
        _, h11 = cache.get_rows(1, np.array([11]), 0)
        _, h12 = cache.get_rows(1, np.array([12]), 0)
        assert h10.all() and h12.all() and not h11.any()
        assert cache.evictions == 1

    def test_advance_migrates_untouched_and_drops_dirty(self):
        cache = ActivationCache(capacity=8)
        rows = np.arange(4.0).reshape(2, 2)
        cache.put_rows(1, np.array([0, 1]), rows, version=0)
        cache.put_rows(2, np.array([0]), rows[:1], version=0)
        migrated = cache.advance(0, 1, {1: np.array([1]), 2: np.array([0])})
        assert migrated == 1  # only (level 1, node 0) survives
        _, hit = cache.get_rows(1, np.array([0]), 1)
        assert hit.all()
        for level, node in ((1, 1), (2, 0)):
            _, hit = cache.get_rows(level, np.array([node]), 1)
            assert not hit.any()
        # Nothing is readable under the dead version either.
        _, hit = cache.get_rows(1, np.array([0]), 0)
        assert not hit.any()

    def test_advance_none_drops_everything(self):
        cache = ActivationCache(capacity=8)
        cache.put_rows(1, np.array([0]), np.ones((1, 2)), 0)
        assert cache.advance(0, 1, None) == 0
        assert len(cache) == 0

    def test_writes_under_a_dead_version_are_unreachable(self):
        # An in-flight request may put rows computed against an old
        # snapshot *after* a mutation advanced the cache: those writes
        # must never satisfy reads at the live version.
        cache = ActivationCache(capacity=8)
        cache.advance(0, 1, {})
        cache.put_rows(1, np.array([4]), np.ones((1, 2)), version=0)
        _, hit = cache.get_rows(1, np.array([4]), version=1)
        assert not hit.any()

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            ActivationCache(capacity=0)


# ----------------------------------------------------------------------
# Admission queue
# ----------------------------------------------------------------------
class TestAdmissionQueue:
    def test_flush_on_max_batch(self):
        queue = AdmissionQueue(max_batch=3, max_delay_ms=10_000.0)
        futures = [queue.submit(i) for i in range(5)]
        batch = queue.next_batch()
        assert [r.node for r in batch] == [0, 1, 2]
        assert [r.future for r in batch] == futures[:3]
        assert len(queue) == 2

    def test_flush_on_delay(self):
        queue = AdmissionQueue(max_batch=64, max_delay_ms=5.0)
        queue.submit(42)
        t0 = time.perf_counter()
        batch = queue.next_batch()
        waited = time.perf_counter() - t0
        assert [r.node for r in batch] == [42]
        assert waited < 5.0  # well under the 5s-scale, ~5ms intent

    def test_zero_delay_flushes_immediately(self):
        queue = AdmissionQueue(max_batch=64, max_delay_ms=0.0)
        queue.submit(1)
        queue.submit(2)
        assert [r.node for r in queue.next_batch()] == [1, 2]

    def test_close_drains_then_signals_exit(self):
        queue = AdmissionQueue(max_batch=2, max_delay_ms=10_000.0)
        queue.submit(7)
        queue.close()
        assert [r.node for r in queue.next_batch()] == [7]
        assert queue.next_batch() is None

    def test_submit_after_close_raises(self):
        queue = AdmissionQueue(max_batch=2, max_delay_ms=1.0)
        queue.close()
        with pytest.raises(RuntimeError, match="closed"):
            queue.submit(0)

    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_MAX_BATCH", raising=False)
        monkeypatch.delenv("REPRO_SERVE_MAX_DELAY_MS", raising=False)
        assert serve_max_batch_default() == 64
        assert serve_max_delay_ms_default() == 2.0
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "16")
        monkeypatch.setenv("REPRO_SERVE_MAX_DELAY_MS", "0.5")
        queue = AdmissionQueue()
        assert queue.max_batch == 16
        assert queue.max_delay_s == pytest.approx(0.5e-3)

    @pytest.mark.parametrize("var,bad", [
        ("REPRO_SERVE_MAX_BATCH", "0"),
        ("REPRO_SERVE_MAX_BATCH", "lots"),
        ("REPRO_SERVE_MAX_DELAY_MS", "-1"),
        ("REPRO_SERVE_MAX_DELAY_MS", "soon"),
    ])
    def test_env_validation(self, monkeypatch, var, bad):
        monkeypatch.setenv(var, bad)
        with pytest.raises(ValueError, match=var):
            AdmissionQueue()

    def test_coalesce_dedupes_and_inverts(self):
        requests = [InferenceRequest(node=n) for n in (5, 2, 5, 9, 2)]
        seeds, inverse = coalesce(requests)
        assert list(seeds) == [2, 5, 9]
        assert np.array_equal(seeds[inverse], [5, 2, 5, 9, 2])


# ----------------------------------------------------------------------
# Batched == per-request identity
# ----------------------------------------------------------------------
class TestBatchedIdentity:
    @pytest.mark.parametrize("name", ["va", "agnn", "gat", "gcn", "gin"])
    @pytest.mark.parametrize("cached", [False, True])
    def test_union_batch_matches_per_request(
        self, adjacency, features, name, cached
    ):
        model = _model(name)
        seeds = np.unique(np.random.default_rng(1).integers(0, N, 12))
        batch_engine = ServingEngine(
            model, adjacency, features,
            cache=4096 if cached else None, seed=5,
        )
        batched = batch_engine.serve_unique(seeds)
        per_engine = ServingEngine(
            model, adjacency, features,
            cache=4096 if cached else None, seed=5,
        )
        per = np.vstack([per_engine.serve([int(s)]) for s in seeds])
        assert np.array_equal(batched, per)  # bit-identical

    def test_batch_matches_full_forward(self, adjacency, features):
        model = _model("gat")
        engine = ServingEngine(model, adjacency, features, cache=256, seed=5)
        reference = model.forward(adjacency, features, training=False)
        seeds = np.arange(0, N, 3, dtype=np.int64)
        assert np.array_equal(engine.serve_unique(seeds), reference[seeds])
        # Second serve answers from the cache — still identical.
        assert np.array_equal(engine.serve_unique(seeds), reference[seeds])
        assert engine.cache.hits > 0

    def test_duplicates_and_order_preserved(self, adjacency, features):
        engine = ServingEngine(_model(), adjacency, features, seed=5)
        nodes = np.array([9, 3, 9, 0, 3])
        rows = engine.serve(nodes)
        unique_rows = engine.serve_unique(np.array([0, 3, 9]))
        assert np.array_equal(rows[0], unique_rows[2])
        assert np.array_equal(rows[1], unique_rows[1])
        assert np.array_equal(rows[2], unique_rows[2])
        assert np.array_equal(rows[3], unique_rows[0])

    def test_fully_cached_serve_skips_sampling(self, adjacency, features):
        engine = ServingEngine(_model(), adjacency, features,
                               cache=4096, seed=5)
        seeds = np.array([1, 4, 6], dtype=np.int64)
        engine.serve_unique(seeds)
        hops_before = event_counter().count("sample.hop")
        engine.serve_unique(seeds)
        assert event_counter().count("sample.hop") == hops_before


# ----------------------------------------------------------------------
# Mutations: reloads and deltas
# ----------------------------------------------------------------------
class TestEngineMutations:
    def test_reload_bumps_version_and_refreshes_outputs(
        self, adjacency, features
    ):
        model = _model()
        engine = ServingEngine(model, adjacency, features, cache=256, seed=5)
        seeds = np.array([0, 5, 11], dtype=np.int64)
        before = engine.serve_unique(seeds)
        state = {k: v * 0.5 for k, v in state_dict(model).items()}
        assert engine.reload(state) == 1
        reference = model.forward(adjacency, features, training=False)
        after = engine.serve_unique(seeds)
        assert np.array_equal(after, reference[seeds])
        assert not np.array_equal(after, before)

    def test_feature_delta_serves_fresh_rows(self, adjacency, features):
        model = _model()
        engine = ServingEngine(model, adjacency, features, cache=256, seed=5)
        seeds = np.arange(N, dtype=np.int64)
        engine.serve_unique(seeds)  # warm every level
        touched = np.array([2, 17])
        new_rows = np.random.default_rng(9).standard_normal((2, FEAT))
        engine.apply_feature_delta(touched, new_rows)
        current = np.array(features, copy=True)
        current[touched] = new_rows
        reference = model.forward(adjacency, current, training=False)
        assert np.array_equal(engine.serve_unique(seeds), reference[seeds])

    def test_feature_delta_migrates_far_nodes(self, adjacency, features):
        model = _model()
        engine = ServingEngine(model, adjacency, features, cache=4096, seed=5)
        seeds = np.arange(N, dtype=np.int64)
        engine.serve_unique(seeds)
        entries_before = len(engine.cache)
        engine.apply_feature_delta(
            np.array([0]), np.zeros((1, FEAT))
        )
        # Targeted invalidation: the cache is not wiped wholesale.
        assert len(engine.cache) > 0
        assert len(engine.cache) < entries_before or N <= 2

    def test_graph_delta_with_touched_rows(self, adjacency, features):
        model = _model()
        engine = ServingEngine(model, adjacency, features, cache=4096, seed=5)
        seeds = np.arange(N, dtype=np.int64)
        engine.serve_unique(seeds)
        dense = adjacency.to_dense()
        row = 6
        dense[row, : N // 2] = 0.0
        dense[row, row] = 1.0
        new_a = CSRMatrix.from_dense(dense)
        engine.apply_graph_delta(new_a, touched_dst=np.array([row]))
        reference = model.forward(new_a, features, training=False)
        assert np.array_equal(engine.serve_unique(seeds), reference[seeds])

    def test_graph_delta_without_annotation_clears(self, adjacency, features):
        model = _model()
        engine = ServingEngine(model, adjacency, features, cache=256, seed=5)
        engine.serve_unique(np.array([0, 1], dtype=np.int64))
        assert len(engine.cache) > 0
        engine.apply_graph_delta(adjacency)
        assert len(engine.cache) == 0

    def test_explicit_weights_rejected_on_graph_swap(
        self, adjacency, features
    ):
        weights = np.ones(adjacency.nnz)
        engine = ServingEngine(
            _model(), adjacency, features, fanouts=(2, 2),
            weights=weights, seed=5,
        )
        with pytest.raises(ValueError, match="weights"):
            engine.apply_graph_delta(adjacency)

    def test_multi_hop_layers_rejected(self, adjacency, features):
        sgc = build_model("sgc", FEAT, 12, 6, num_layers=2, seed=0)
        with pytest.raises(ValueError, match="one-hop"):
            ServingEngine(sgc, adjacency, features)


# ----------------------------------------------------------------------
# Staleness property: no interleaving ever serves a stale activation
# ----------------------------------------------------------------------
def _graph_variants() -> list[CSRMatrix]:
    variants = [_adjacency(seed) for seed in (7, 8)]
    # A third variant: the base graph with one vertex's in-edges
    # rewired (exercises the touched_dst invalidation path).
    dense = variants[0].to_dense()
    dense[5] = 0.0
    dense[5, 5] = 1.0
    dense[5, 12] = 2.0
    variants.append(CSRMatrix.from_dense(dense))
    return variants


_VARIANTS = _graph_variants()


def _touched_rows(old: CSRMatrix, new: CSRMatrix) -> np.ndarray:
    """Destination vertices whose in-edge slice differs between graphs."""
    dense_old, dense_new = old.to_dense(), new.to_dense()
    return np.flatnonzero(np.any(dense_old != dense_new, axis=1))


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("query"), st.integers(0, 2**31 - 1)),
        st.tuples(st.just("feat"), st.integers(0, 2**31 - 1)),
        st.tuples(st.just("reload"), st.integers(1, 7)),
        st.tuples(st.just("graph"), st.integers(0, len(_VARIANTS) - 1)),
    ),
    min_size=1,
    max_size=12,
)


class TestNeverStale:
    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=_OPS, capacity=st.sampled_from([2, 64, 4096]))
    def test_interleavings_always_serve_current_state(self, ops, capacity):
        model = _model("gat")
        base_state = state_dict(model)
        a = _VARIANTS[0]
        features = np.random.default_rng(3).standard_normal((N, FEAT))
        engine = ServingEngine(
            model, a, features,
            cache=ActivationCache(capacity=capacity), seed=5,
        )
        current = np.array(features, copy=True)
        try:
            for kind, payload in ops:
                if kind == "query":
                    rng = np.random.default_rng(payload)
                    seeds = np.unique(rng.integers(0, N, rng.integers(1, 9)))
                    reference = model.forward(a, current, training=False)
                    got = engine.serve_unique(seeds)
                    assert np.array_equal(got, reference[seeds])
                elif kind == "feat":
                    rng = np.random.default_rng(payload)
                    nodes = np.unique(rng.integers(0, N, rng.integers(1, 5)))
                    rows = rng.standard_normal((nodes.size, FEAT))
                    engine.apply_feature_delta(nodes, rows)
                    current[nodes] = rows
                elif kind == "reload":
                    scale = 1.0 + payload / 10.0
                    engine.reload(
                        {k: v * scale for k, v in base_state.items()}
                    )
                else:  # graph swap
                    new_a = _VARIANTS[payload]
                    touched = _touched_rows(a, new_a)
                    engine.apply_graph_delta(new_a, touched_dst=touched)
                    a = new_a
        finally:
            # The model is module-shared state: restore its parameters.
            from repro.models import load_state_dict

            load_state_dict(model, base_state)


# ----------------------------------------------------------------------
# Server end-to-end
# ----------------------------------------------------------------------
class TestServingServer:
    def test_futures_resolve_to_correct_rows(self, adjacency, features):
        model = _model("gat")
        reference = model.forward(adjacency, features, training=False)
        engine = ServingEngine(model, adjacency, features, cache=256, seed=5)
        with ServingServer(
            engine, max_batch=8, max_delay_ms=1.0, workers=2
        ) as server:
            nodes = [int(n) for n in np.arange(60) % N]
            futures = server.submit_many(nodes)
            rows = np.vstack([f.result(timeout=30) for f in futures])
        assert np.array_equal(rows, reference[np.arange(60) % N])

    def test_engine_failure_propagates_to_futures(self, adjacency, features):
        engine = ServingEngine(_model(), adjacency, features, seed=5)
        with ServingServer(
            engine, max_batch=4, max_delay_ms=0.0
        ) as server:
            future = server.submit(N + 100)  # out of range
            with pytest.raises(ValueError):
                future.result(timeout=30)

    def test_concurrent_requesters_with_reloads(self, adjacency, features):
        # Heavier interleaving: requester threads race a reload; every
        # response must match the pre- or post-reload reference exactly.
        model = _model("gat")
        before = model.forward(adjacency, features, training=False)
        halved = {k: v * 0.5 for k, v in state_dict(model).items()}
        engine = ServingEngine(model, adjacency, features, cache=512, seed=5)
        failures: list[str] = []
        base_state = state_dict(model)

        def requester(worker: int) -> None:
            rng = np.random.default_rng(worker)
            for _ in range(20):
                node = int(rng.integers(0, N))
                row = server.submit(node).result(timeout=30)
                if not (
                    np.array_equal(row, before[node])
                    or np.array_equal(row, after[node])
                ):
                    failures.append(f"stale row for node {node}")

        try:
            with ServingServer(
                engine, max_batch=16, max_delay_ms=0.5, workers=2
            ) as server:
                threads = [
                    threading.Thread(target=requester, args=(i,))
                    for i in range(4)
                ]
                # Compute the post-reload reference on a throwaway copy
                # first so `after` is ready before the race starts.
                probe = _model("gat")
                from repro.models import load_state_dict

                load_state_dict(probe, halved)
                after = probe.forward(adjacency, features, training=False)
                for thread in threads:
                    thread.start()
                engine.reload(halved)
                for thread in threads:
                    thread.join()
        finally:
            from repro.models import load_state_dict

            load_state_dict(model, base_state)
        assert not failures


# ----------------------------------------------------------------------
# Workspace pool bounding under mixed-size batches (satellite)
# ----------------------------------------------------------------------
class TestWorkspaceBoundedServing:
    def test_peak_pool_bytes_bounded_across_mixed_batches(
        self, adjacency, features
    ):
        budget = 1 << 20  # 1 MiB — far below 100 unbounded mixed batches
        engine = ServingEngine(_model("gat"), adjacency, features,
                               cache=None, seed=5)
        rng = np.random.default_rng(0)
        clear_workspaces()
        set_workspace_budget(budget)
        try:
            peak = 0
            for _ in range(100):
                size = int(rng.integers(1, N))
                seeds = np.unique(rng.integers(0, N, size))
                engine.serve_unique(seeds)
                peak = max(peak, workspace_pool_bytes())
            # The eviction exemption allows at most one over-budget
            # buffer; every pooled byte beyond that must have been
            # evicted rather than accumulated.
            assert peak <= 2 * budget
            assert workspace_high_water_bytes() >= workspace_pool_bytes()
        finally:
            set_workspace_budget(None)
            clear_workspaces()


# ----------------------------------------------------------------------
# Re-entrant model state (ForwardState)
# ----------------------------------------------------------------------
class TestReentrantForward:
    def test_concurrent_forwards_with_explicit_state(
        self, adjacency, features
    ):
        model = _model("gat")
        reference = model.forward(adjacency, features, training=False)
        results: dict[int, np.ndarray] = {}

        def worker(index: int) -> None:
            state = ForwardState()
            results[index] = model.forward(
                adjacency, features, training=False, state=state
            )
            assert state.caches == []

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(4):
            assert np.array_equal(results[index], reference)

    def test_state_keeps_caches_off_the_instance(self, adjacency, features):
        model = _model("va")
        state = ForwardState()
        out = model.forward(
            adjacency, features, training=True, state=state
        )
        assert model._caches is None
        assert len(state.caches) == model.num_layers
        grads = model.backward(
            np.ones_like(out), state=state
        )
        assert len(grads) == model.num_layers
