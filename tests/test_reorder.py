"""Tests for vertex reordering and load-balance diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import kronecker
from repro.graphs.reorder import (
    degree_sort_order,
    load_balance_report,
    permute,
    random_order,
)
from repro.tensor.coo import COOMatrix
from tests.conftest import random_csr


class TestPermute:
    def test_permutation_is_isomorphism(self, rng):
        csr = random_csr(rng, 10, 10)
        order = random_order(10, seed=1)
        out = permute(csr, order)
        dense = csr.to_dense()
        expected = np.zeros_like(dense)
        for i in range(10):
            for j in range(10):
                expected[order[i], order[j]] = dense[i, j]
        assert np.allclose(out.to_dense(), expected)

    def test_identity_order(self, rng):
        csr = random_csr(rng, 8, 8)
        out = permute(csr, np.arange(8))
        assert np.allclose(out.to_dense(), csr.to_dense())

    def test_preserves_format(self, rng):
        csr = random_csr(rng, 6, 6)
        assert permute(csr, random_order(6)).__class__.__name__ == "CSRMatrix"
        coo = csr.to_coo()
        assert permute(coo, random_order(6)).__class__.__name__ == "COOMatrix"

    def test_rejects_non_permutation(self, rng):
        csr = random_csr(rng, 5, 5)
        with pytest.raises(ValueError):
            permute(csr, np.zeros(5, dtype=np.int64))

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ValueError):
            permute(random_csr(rng, 4, 6), np.arange(4))

    @given(st.integers(min_value=2, max_value=20),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_degree_multiset_invariant(self, n, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < 0.4).astype(np.float64)
        coo = COOMatrix.from_dense(dense)
        out = permute(coo, random_order(n, seed=seed))
        assert sorted(coo.row_degrees()) == sorted(out.row_degrees())


class TestOrders:
    def test_degree_sort_puts_hubs_first(self, rng):
        csr = random_csr(rng, 12, 12, density=0.3)
        order = degree_sort_order(csr)
        out = permute(csr, order)
        degrees = out.row_lengths()
        assert degrees[0] == degrees.max()

    def test_random_order_is_permutation(self):
        order = random_order(50, seed=3)
        assert np.array_equal(np.sort(order), np.arange(50))


class TestLoadBalance:
    def test_report_totals(self, rng):
        csr = random_csr(rng, 16, 16)
        report = load_balance_report(csr, 4)
        assert report.total_nnz == csr.nnz
        assert report.imbalance >= 1.0

    def test_scrambling_improves_kronecker_balance(self):
        raw = kronecker(512, 8000, seed=0, scramble=False).to_csr()
        scrambled = kronecker(512, 8000, seed=0, scramble=True).to_csr()
        assert (
            load_balance_report(scrambled, 16).imbalance
            < load_balance_report(raw, 16).imbalance
        )

    def test_rejects_non_square_p(self, rng):
        with pytest.raises(ValueError):
            load_balance_report(random_csr(rng, 8, 8), 6)


class TestSweepRunner:
    def test_tiny_sweep_runs(self, tmp_path):
        from repro.bench.sweep import main, run_sweep

        rows = run_sweep("fig7_weak_er", scale=0.05, verbose=False)
        assert rows
        assert {r.formulation for r in rows} == {"global", "local"}
        code = main(["--list"])
        assert code == 0
        code = main(["no_such_figure"])
        assert code == 1
