"""Tests for the reverse-mode autodiff pass over the op-DAG IR.

The acceptance bar: for all three A-GNN models the DAG-derived
gradients must match the hand-written Section-5 VJPs
(:mod:`repro.core.psi`) to tight relative error, the joint
forward+backward program must pass the fusion pass with *no* virtual
node escaping (no dense n x n in ``mode="fused"``), and the derived
:class:`~repro.fusion.layer.DagLayer` must be interchangeable with the
hand-fused layers inside a :class:`~repro.models.base.GnnModel`.
"""

import numpy as np
import pytest

from repro.core.psi import (
    psi_agnn,
    psi_agnn_vjp,
    psi_gat,
    psi_gat_vjp,
    psi_va,
    psi_va_vjp,
)
from repro.fusion import (
    DagLayer,
    OpDag,
    ProgramRunner,
    agnn_psi_dag,
    build_vjp,
    gat_psi_dag,
    va_psi_dag,
)
from repro.models.agnn import AGNNLayer
from repro.models.gat import GATLayer
from repro.models.va import VALayer

TIGHT = 1e-8  # acceptance: DAG-derived grads match hand VJPs to <= 1e-8


def rel_err(x, y):
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    scale = max(float(np.max(np.abs(y))), 1e-30)
    return float(np.max(np.abs(x - y))) / scale


@pytest.fixture(scope="module")
def graph_inputs():
    rng = np.random.default_rng(42)
    from repro.graphs import erdos_renyi
    from repro.graphs.prep import prepare_adjacency

    a = prepare_adjacency(erdos_renyi(60, 400, seed=1), dtype=np.float64)
    n = a.shape[0]
    h = rng.normal(size=(n, 5))
    w = rng.normal(size=(5, 5))
    a_src = rng.normal(size=5)
    a_dst = rng.normal(size=5)
    ds = a.with_data(rng.normal(size=a.nnz))
    g = rng.normal(size=(n, 5))
    return a, h, w, a_src, a_dst, ds, g


# ----------------------------------------------------------------------
# Psi-level: derived backward vs. the hand-written Section-5 VJPs
# ----------------------------------------------------------------------
class TestPsiVjpEquivalence:
    @pytest.mark.parametrize("mode", ["fused", "tiled", "dense"])
    def test_va(self, graph_inputs, mode):
        a, h, *_rest, ds, _g = graph_inputs
        program = build_vjp(va_psi_dag(), wrt=("H",), seed_name="dS")
        runner = ProgramRunner(program.dag, {"H": h, "A": a}, mode=mode)
        s = runner.run()
        runner.bind("dS", ds)
        dh = runner.run("grad:H")
        s_ref, cache = psi_va(a, h)
        dh_ref = psi_va_vjp(ds.data, cache)
        assert rel_err(s.data, s_ref.data) < TIGHT
        assert rel_err(dh, dh_ref) < TIGHT

    @pytest.mark.parametrize("mode", ["fused", "tiled", "dense"])
    def test_agnn(self, graph_inputs, mode):
        a, h, *_rest, ds, _g = graph_inputs
        program = build_vjp(
            agnn_psi_dag(beta=1.3), wrt=("H",), seed_name="dS"
        )
        runner = ProgramRunner(program.dag, {"H": h, "A": a}, mode=mode)
        s = runner.run()
        runner.bind("dS", ds)
        dh = runner.run("grad:H")
        s_ref, cache = psi_agnn(a, h, beta=1.3)
        dh_ref, _dbeta = psi_agnn_vjp(ds.data, cache)
        assert rel_err(s.data, s_ref.data) < TIGHT
        assert rel_err(dh, dh_ref) < TIGHT

    @pytest.mark.parametrize("mode", ["fused", "tiled", "dense"])
    def test_gat(self, graph_inputs, mode):
        a, h, w, a_src, a_dst, ds, _g = graph_inputs
        program = build_vjp(
            gat_psi_dag(slope=0.2),
            wrt=("H", "W", "a_src", "a_dst"),
            seed_name="dS",
        )
        runner = ProgramRunner(
            program.dag,
            {"H": h, "A": a, "W": w, "a_src": a_src, "a_dst": a_dst},
            mode=mode,
        )
        s = runner.run()
        runner.bind("dS", ds)
        hp = h @ w
        s_ref, cache = psi_gat(a, hp, a_src, a_dst, slope=0.2)
        dhp, da_src, da_dst = psi_gat_vjp(ds.data, cache)
        assert rel_err(s.data, s_ref.data) < TIGHT
        assert rel_err(runner.run("grad:a_src"), da_src) < TIGHT
        assert rel_err(runner.run("grad:a_dst"), da_dst) < TIGHT
        assert rel_err(runner.run("grad:W"), h.T @ dhp) < TIGHT
        assert rel_err(runner.run("grad:H"), dhp @ w.T) < TIGHT


# ----------------------------------------------------------------------
# Structural properties of the emitted joint programs
# ----------------------------------------------------------------------
class TestBackwardFusion:
    @pytest.mark.parametrize(
        "builder,wrt,backward_sddmm",
        [
            # VA's backward is pure SpMM — no new sampled kernels.
            (va_psi_dag, ("H",), False),
            (agnn_psi_dag, ("H",), True),
            (gat_psi_dag, ("H", "W", "a_src", "a_dst"), True),
        ],
    )
    def test_backward_virtuals_all_fused(self, builder, wrt, backward_sddmm):
        """Every backward n x n intermediate folds into an SDDMM-like
        kernel — nothing dense-quadratic survives fusion."""
        program = build_vjp(builder(), wrt=wrt, seed_name="dS")
        fused = program.fuse()
        in_kernels = set()
        for kernel in fused.kernels:
            in_kernels |= set(kernel.fused_nodes)
        live_virtuals = {
            nid
            for nid in fused.virtual_nodes
            if fused.dag.consumers()[nid]
        }
        assert live_virtuals <= in_kernels
        # Softmax backwards emit *more* sampled kernels than the
        # forward alone — the adjoint SDDMMs.
        forward_only = len(builder().nodes)
        backward_kernels = [
            k for k in fused.kernels if k.output >= forward_only
        ]
        assert bool(backward_kernels) == backward_sddmm

    def test_seed_is_sparse_for_sparse_output(self):
        program = build_vjp(va_psi_dag(), wrt=("H",), seed_name="dS")
        dag = program.dag
        seed_nodes = [
            node
            for node in dag.nodes
            if node.op == "input" and node.name == "dS"
        ]
        assert len(seed_nodes) == 1
        assert seed_nodes[0].id in dag.sparse_inputs

    def test_grad_outputs_registered(self):
        program = build_vjp(
            gat_psi_dag(), wrt=("H", "W"), seed_name="dS"
        )
        assert set(program.grads) == {"H", "W"}
        assert "grad:H" in program.dag.outputs
        assert "grad:W" in program.dag.outputs

    def test_pruning_skips_unrequested_inputs(self):
        """Differentiating w.r.t. H only must not emit W's adjoint."""
        full = build_vjp(
            gat_psi_dag(), wrt=("H", "W", "a_src", "a_dst"),
            seed_name="dS",
        )
        pruned = build_vjp(gat_psi_dag(), wrt=("a_src",), seed_name="dS")
        assert len(pruned.dag.nodes) < len(full.dag.nodes)
        assert set(pruned.grads) == {"a_src"}

    def test_unknown_wrt_rejected(self):
        with pytest.raises(ValueError, match="no input named"):
            build_vjp(va_psi_dag(), wrt=("nope",))

    def test_missing_output_rejected(self):
        dag = OpDag()
        dag.input("H", "nk")
        with pytest.raises(ValueError, match="no output"):
            build_vjp(dag, wrt=("H",))

    def test_disconnected_wrt_rejected(self):
        dag = OpDag()
        h = dag.input("H", "nk")
        x = dag.input("X", "nk")
        dag.set_output(dag.row_norm(h))
        del x
        with pytest.raises(ValueError, match="does not depend"):
            build_vjp(dag, wrt=("X",))

    def test_describe_covers_forward_and_backward(self):
        program = build_vjp(agnn_psi_dag(), wrt=("H",), seed_name="dS")
        text = program.describe()
        assert "grad:H" in text
        assert "fused kernel" in text
        assert "sparse" in text and "virtual" in text

    def test_cached_activations_reused(self, graph_inputs):
        """Backward evaluation must reuse forward memo tables (the
        DagLayer contract): forward-node values are already present in
        the engine after the forward run."""
        a, h, *_rest, ds, _g = graph_inputs
        program = build_vjp(agnn_psi_dag(), wrt=("H",), seed_name="dS")
        runner = ProgramRunner(program.dag, {"H": h, "A": a})
        runner.run()
        cached_edges = set(runner._engine._edge)
        assert cached_edges  # softmax values etc.
        runner.bind("dS", ds)
        runner.run("grad:H")
        # The forward caches were not invalidated by the backward run.
        assert cached_edges <= set(runner._engine._edge)

    def test_seed_rebind_after_consumption_rejected(self, graph_inputs):
        a, h, *_rest, ds, _g = graph_inputs
        program = build_vjp(va_psi_dag(), wrt=("H",), seed_name="dS")
        runner = ProgramRunner(program.dag, {"H": h, "A": a})
        runner.bind("dS", ds)
        runner.run("grad:H")
        with pytest.raises(RuntimeError, match="consumed"):
            runner.bind("dS", ds)


# ----------------------------------------------------------------------
# DagLayer: layer-level equivalence with the hand-fused fast path
# ----------------------------------------------------------------------
class TestDagLayer:
    @pytest.mark.parametrize(
        "model,hand_cls,kwargs",
        [
            ("va", VALayer, {}),
            ("agnn", AGNNLayer, {"beta": 0.8}),
            ("gat", GATLayer, {"slope": 0.2}),
        ],
    )
    def test_matches_hand_fused_layer(
        self, graph_inputs, model, hand_cls, kwargs
    ):
        a, h, *_rest, _ds, g = graph_inputs
        layer = DagLayer(
            model, 5, 5, activation="identity", seed=3,
            dtype=np.float64, **kwargs,
        )
        hand_kwargs = dict(kwargs)
        if model == "agnn":
            hand_kwargs = {"beta": kwargs["beta"], "order": "project_first"}
        elif model == "va":
            hand_kwargs = {"order": "project_first"}
        hand = hand_cls(
            5, 5, activation="identity", seed=99, dtype=np.float64,
            **hand_kwargs,
        )
        hand.weight[:] = layer.weight
        if model == "gat":
            hand.a_src[:] = layer.a_src
            hand.a_dst[:] = layer.a_dst
        z, cache = layer.forward(a, h)
        z_ref, cache_ref = hand.forward(a, h)
        assert rel_err(z, z_ref) < TIGHT
        dh, grads = layer.backward(cache, g)
        dh_ref, grads_ref = hand.backward(cache_ref, g)
        assert rel_err(dh, dh_ref) < TIGHT
        for name, value in grads_ref.items():
            assert rel_err(grads[name], value) < TIGHT, name

    def test_cache_exposes_z(self, graph_inputs):
        a, h, *_ = graph_inputs
        layer = DagLayer("va", 5, 4, dtype=np.float64)
        _out, cache = layer.forward(a, h)
        assert cache.z.shape == (a.shape[0], 4)

    def test_inference_mode_has_no_cache(self, graph_inputs):
        a, h, *_ = graph_inputs
        layer = DagLayer("va", 5, 4, dtype=np.float64)
        _out, cache = layer.forward(a, h, training=False)
        assert cache is None

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            DagLayer("gcn", 4, 4)

    def test_parameters_and_sgd_step(self, graph_inputs):
        a, h, *_rest, g = graph_inputs
        layer = DagLayer("gat", 5, 5, dtype=np.float64)
        params = layer.parameters()
        assert set(params) == {"weight", "a_src", "a_dst"}
        _z, cache = layer.forward(a, h)
        _dh, grads = layer.backward(cache, g)
        before = {k: v.copy() for k, v in params.items()}
        layer.apply_gradients(grads, lr=0.1)
        for name in params:
            assert not np.allclose(params[name], before[name])

    def test_describe_mentions_derived_gradients(self):
        layer = DagLayer("gat", 4, 4)
        text = layer.describe()
        assert "grad:W" in text and "grad:a_src" in text
