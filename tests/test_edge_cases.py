"""Cross-cutting edge cases not covered by the per-module suites."""

import numpy as np
import pytest

from repro.core.formulation import AttentionSpec, GenericLayer
from repro.core.psi import psi_va
from repro.fusion import execute, fuse, va_psi_dag
from repro.runtime import run_spmd
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import spmm
from repro.tensor.semiring import AVERAGE
from tests.conftest import random_csr


class TestWeightedAdjacency:
    def test_fused_va_respects_edge_weights(self, rng):
        """Weighted A: both the hand kernel and the fused DAG must
        scale scores by the stored weights."""
        a = random_csr(rng, 20, 20, density=0.4)
        a = a.with_data(np.abs(a.data) + 0.5)
        h = rng.normal(size=(20, 4))
        hand, _ = psi_va(a, h)
        fused = execute(fuse(va_psi_dag()), {"H": h, "A": a}, mode="fused")
        assert np.allclose(hand.data, fused.data)
        dots = (h @ h.T)[a.expand_rows(), a.indices]
        assert np.allclose(hand.data, a.data * dots)

    def test_weighted_gcn_spmm(self, rng):
        a = random_csr(rng, 10, 10)
        h = rng.normal(size=(10, 3))
        assert np.allclose(spmm(a, h), a.to_dense() @ h)


class TestAverageSemiringLayer:
    def test_generic_layer_average_aggregation(self, rng, small_adjacency):
        """An A-GNN whose ⊕ is the AVERAGE semiring: mean of the
        neighbours' projected features weighted by attention scores."""

        def psi(a, h):
            s, cache = psi_va(a, h)
            return s.with_data(np.abs(s.data) + 0.1), cache

        spec = AttentionSpec(psi=psi, aggregate=AVERAGE,
                             order="project_first", name="avg-va")
        layer = GenericLayer(5, 4, spec, activation="identity", seed=0,
                             dtype=np.float64)
        h = rng.normal(size=(60, 5))
        out, _ = layer.forward(small_adjacency, h, training=False)
        # Row 0's output is the weight-normalised average of its
        # neighbours' projected features.
        s, _ = psi(small_adjacency, h)
        dense = s.to_dense()
        hp = h @ layer.weight
        w = dense[0]
        expected = (w[:, None] * hp).sum(0) / w.sum()
        assert np.allclose(out[0], expected)


class TestCommunicatorEdgeCases:
    def test_split_of_split(self):
        def program(comm):
            halves = comm.split(color=comm.rank // 2)
            singles = halves.split(color=halves.rank)
            assert singles.size == 1
            assert singles.allreduce(np.array([5.0]))[0] == 5.0
            return True

        assert all(run_spmd(4, program, timeout=20).values)

    def test_send_to_out_of_range_rank(self):
        def program(comm):
            with pytest.raises(ValueError):
                comm.send(np.ones(1), comm.size + 3)
            comm.barrier()
            return True

        assert all(run_spmd(2, program, timeout=20).values)

    def test_scatter_requires_full_payload_list(self):
        def program(comm):
            if comm.rank == 0:
                with pytest.raises(ValueError):
                    comm.scatter([1], root=0)  # too short
            return True

        assert all(run_spmd(3, program, timeout=20).values)

    def test_reduce_non_root_returns_none(self):
        def program(comm):
            out = comm.reduce(np.array([1.0]), root=1)
            if comm.rank == 1:
                assert out[0] == comm.size
            else:
                assert out is None
            return True

        assert all(run_spmd(3, program, timeout=20).values)

    def test_alltoall_length_checked(self):
        def program(comm):
            with pytest.raises(ValueError):
                comm.alltoall([1])  # needs size entries
            comm.barrier()
            return True

        assert all(run_spmd(3, program, timeout=20).values)


class TestDegenerateGraphs:
    def test_single_vertex_graph(self, rng):
        a = CSRMatrix.from_dense(np.array([[1.0]]))
        from repro.models import build_model

        model = build_model("GAT", 3, 4, 2, num_layers=2, dtype=np.float64)
        out = model.forward(a, rng.normal(size=(1, 3)))
        assert out.shape == (1, 2)
        assert np.all(np.isfinite(out))

    def test_self_loops_only_graph(self, rng):
        n = 6
        a = CSRMatrix.from_dense(np.eye(n))
        from repro.models import build_model

        model = build_model("AGNN", 3, 4, 2, num_layers=2, dtype=np.float64)
        out = model.forward(a, rng.normal(size=(n, 3)))
        assert np.all(np.isfinite(out))

    def test_distributed_tiny_graph_p4(self, rng):
        """Blocks smaller than the grid (n=5 on 2x2) must still work."""
        from repro.distributed.api import distributed_inference
        from repro.models import build_model

        dense = (rng.random((5, 5)) < 0.6).astype(np.float64)
        np.fill_diagonal(dense, 1.0)
        a = CSRMatrix.from_dense(dense)
        h = rng.normal(size=(5, 3))
        reference = build_model(
            "GAT", 3, 4, 2, num_layers=2, seed=1, dtype=np.float64
        ).forward(a, h, training=False)
        result = distributed_inference("GAT", a, h, 4, 2, num_layers=2,
                                       p=4, seed=1, dtype=np.float64)
        assert np.allclose(result.output, reference, atol=1e-10)


class TestReportCLI:
    def test_main_renders_results_dir(self, tmp_path, capsys):
        from repro.bench.harness import make_graph, run_config, write_csv
        from repro.bench.report import main

        graph = make_graph("uniform", 64, 300, seed=0)
        rows = [
            run_config("figZ", "GCN", "global", "inference", graph,
                       k=4, layers=1, p=p)
            for p in (1, 4)
        ]
        write_csv(rows, tmp_path / "r.csv")
        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "figZ" in out

    def test_main_missing_dir(self, tmp_path):
        from repro.bench.report import main

        assert main([str(tmp_path / "nope")]) == 1
