"""Sampled mini-batch training: parity, learning, and validation.

The load-bearing contract is *bit-identity*: with full fan-outs and one
batch covering every vertex, :class:`MinibatchTrainer` must reproduce
the full-batch :class:`Trainer` loss curve and final weights bit for
bit, for every A-GNN and for the fused ``DagLayer`` path — sampling may
only ever *remove* edges, never reorder or recompute what remains.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fusion.layer import DagLayer
from repro.graphs import synthetic_classification
from repro.models import build_model
from repro.models.base import GnnModel
from repro.models.gat import MultiHeadGATLayer
from repro.training import (
    SGD,
    MinibatchTrainer,
    SoftmaxCrossEntropyLoss,
    Trainer,
)
from repro.util.rng import SEED_ENV_VAR, repro_seed_default

PARITY_MODELS = ["VA", "AGNN", "GAT"]


@pytest.fixture(scope="module")
def problem():
    return synthetic_classification(n=80, feature_dim=6, seed=3)


@pytest.fixture(scope="module")
def features(problem):
    # Scaled features + clip_norm keep VA's unnormalised scores finite.
    return (0.1 * problem.features).astype(np.float64)


def _ingredients(name, problem, num_layers=2):
    model = build_model(
        name, 6, 8, problem.num_classes, num_layers=num_layers, seed=5,
        dtype=np.float64,
    )
    return model, SoftmaxCrossEntropyLoss(), SGD(0.01, clip_norm=1.0)


class TestFullFanoutBitParity:
    @pytest.mark.parametrize("name", PARITY_MODELS)
    def test_losses_and_weights_bit_match_full_batch(
        self, problem, features, name
    ):
        a = problem.adjacency.astype(np.float64)
        n = a.shape[0]
        full_model, loss, opt = _ingredients(name, problem)
        reference = Trainer(full_model, loss, opt).fit(
            a, features, problem.labels, epochs=3
        )
        samp_model, loss, opt = _ingredients(name, problem)
        trainer = MinibatchTrainer(
            samp_model, loss, opt, fanouts=(None, None), batch_size=n,
            shuffle=False, seed=0,
        )
        result = trainer.fit(
            a, features, problem.labels, epochs=3, full_eval=False
        )
        # Same arithmetic, same order: equality to the last bit.
        assert result.losses == reference.losses
        assert result.batch_losses == reference.losses  # one batch/epoch
        out_full = full_model.forward(a, features, training=False)
        out_samp = samp_model.forward(a, features, training=False)
        assert np.array_equal(out_full, out_samp)  # weights identical
        assert all(np.isfinite(result.losses))

    def test_dag_fused_parity(self, problem, features):
        a = problem.adjacency.astype(np.float64)
        c = problem.num_classes

        def dag_model():
            return GnnModel([
                DagLayer("gat", 6, 8, seed=0, fused=True, dtype=np.float64),
                DagLayer("gat", 8, c, seed=1, fused=True,
                         activation="identity", dtype=np.float64),
            ])

        full = dag_model()
        reference = Trainer(
            full, SoftmaxCrossEntropyLoss(), SGD(0.01)
        ).fit(a, features, problem.labels, epochs=3)
        sampled = dag_model()
        trainer = MinibatchTrainer(
            sampled, SoftmaxCrossEntropyLoss(), SGD(0.01),
            fanouts=(None, None), batch_size=a.shape[0], shuffle=False,
            seed=0,
        )
        result = trainer.fit(
            a, features, problem.labels, epochs=3, full_eval=False
        )
        assert result.losses == reference.losses
        assert np.array_equal(
            full.forward(a, features, training=False),
            sampled.forward(a, features, training=False),
        )

    def test_predict_subset_matches_full_forward_rows(
        self, problem, features
    ):
        a = problem.adjacency.astype(np.float64)
        model, loss, opt = _ingredients("GAT", problem)
        trainer = MinibatchTrainer(
            model, loss, opt, fanouts=(None, None), batch_size=16
        )
        targets = np.arange(0, a.shape[0], 3)
        out = trainer.predict(a, features, targets)
        full = model.forward(a, features, training=False)
        # The ego-graph serving path: rows for a target subset equal the
        # full forward's rows exactly at full fan-out.
        assert np.array_equal(out, full[targets])


class TestSampledTraining:
    def test_gat_learns_on_sampled_batches(self, problem):
        h = problem.features.astype(np.float64)
        model = build_model(
            "GAT", 6, 8, problem.num_classes, num_layers=2, seed=1,
            dtype=np.float64,
        )
        trainer = MinibatchTrainer(
            model, SoftmaxCrossEntropyLoss(), SGD(0.1), fanouts=(5, 5),
            batch_size=32, seed=4,
        )
        result = trainer.fit(
            problem.adjacency.astype(np.float64), h, problem.labels,
            epochs=8, targets=problem.train_mask,
            val_mask=problem.val_mask,
        )
        assert all(np.isfinite(result.losses))
        assert result.losses[-1] < result.losses[0]
        assert len(result.train_accuracies) == 8
        assert len(result.val_accuracies) == 8
        assert result.train_accuracies[-1] > 0.3  # above 1/4 chance

    def test_multi_head_layers_train_on_blocks(self, problem, features):
        a = problem.adjacency.astype(np.float64)
        c = problem.num_classes
        model = GnnModel([
            MultiHeadGATLayer(6, 8, heads=4, seed=0, dtype=np.float64),
            MultiHeadGATLayer(32, c, heads=1, seed=1, dtype=np.float64),
        ])
        trainer = MinibatchTrainer(
            model, SoftmaxCrossEntropyLoss(), SGD(0.05), fanouts=(3, 3),
            batch_size=48, seed=2,
        )
        result = trainer.fit(
            a, features, problem.labels, epochs=2, full_eval=False
        )
        assert all(np.isfinite(result.losses))
        assert result.sampled_edges > 0

    def test_result_bookkeeping(self, problem, features):
        a = problem.adjacency.astype(np.float64)
        model, loss, opt = _ingredients("AGNN", problem)
        trainer = MinibatchTrainer(
            model, loss, opt, fanouts=(4, 4), batch_size=32, seed=0
        )
        result = trainer.fit(
            a, features, problem.labels, epochs=3, full_eval=False
        )
        batches_per_epoch = -(-a.shape[0] // 32)
        assert len(result.batch_losses) == 3 * batches_per_epoch
        assert len(result.losses) == 3
        for epoch in range(3):
            chunk = result.batch_losses[
                epoch * batches_per_epoch : (epoch + 1) * batches_per_epoch
            ]
            assert result.losses[epoch] == pytest.approx(
                sum(chunk) / len(chunk)
            )

    def test_boolean_target_mask(self, problem, features):
        a = problem.adjacency.astype(np.float64)
        model, loss, opt = _ingredients("VA", problem)
        trainer = MinibatchTrainer(
            model, loss, opt, fanouts=(3, 3), batch_size=8, seed=0
        )
        result = trainer.fit(
            a, features, problem.labels, epochs=1,
            targets=problem.train_mask, full_eval=False,
        )
        labelled = int(problem.train_mask.sum())
        assert len(result.batch_losses) == -(-labelled // 8)

    def test_evaluate_runs_inference_mode(self, problem, features):
        a = problem.adjacency.astype(np.float64)
        model, loss, opt = _ingredients("GAT", problem)
        trainer = MinibatchTrainer(
            model, loss, opt, fanouts=(3, 3), batch_size=16
        )
        score = trainer.evaluate(
            a, features, problem.labels, problem.test_mask
        )
        assert 0.0 <= score <= 1.0


class TestValidation:
    def test_fanouts_must_match_depth(self, problem):
        model, loss, opt = _ingredients("GAT", problem)
        with pytest.raises(ValueError, match="fan-outs"):
            MinibatchTrainer(model, loss, opt, fanouts=(4,))

    def test_negative_fanout_rejected(self, problem):
        model, loss, opt = _ingredients("GAT", problem)
        with pytest.raises(ValueError, match="fan-outs"):
            MinibatchTrainer(model, loss, opt, fanouts=(4, -1))

    def test_batch_size_must_be_positive(self, problem):
        model, loss, opt = _ingredients("GAT", problem)
        with pytest.raises(ValueError, match="batch_size"):
            MinibatchTrainer(model, loss, opt, fanouts=(4, 4), batch_size=0)

    def test_masked_loss_rejected(self, problem):
        model, _, opt = _ingredients("GAT", problem)
        masked = SoftmaxCrossEntropyLoss(problem.train_mask)
        with pytest.raises(ValueError, match="unmasked"):
            MinibatchTrainer(model, masked, opt, fanouts=(4, 4))

    def test_wrong_length_boolean_mask_rejected(self, problem, features):
        a = problem.adjacency.astype(np.float64)
        model, loss, opt = _ingredients("GAT", problem)
        trainer = MinibatchTrainer(model, loss, opt, fanouts=(4, 4))
        with pytest.raises(ValueError, match="length"):
            trainer.fit(
                a, features, problem.labels,
                targets=np.ones(3, dtype=bool), full_eval=False,
            )

    def test_feature_row_mismatch_rejected(self, problem, features):
        a = problem.adjacency.astype(np.float64)
        model, loss, opt = _ingredients("GAT", problem)
        trainer = MinibatchTrainer(
            model, loss, opt, fanouts=(None, None), batch_size=80
        )
        from repro.tensor.sampling_graph import sample_blocks
        from repro.training.minibatch import forward_blocks

        blocks = sample_blocks(
            a, np.arange(a.shape[0]), (None, None),
            np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="source set"):
            forward_blocks(model, blocks, features[:-1])
        with pytest.raises(ValueError, match="blocks"):
            forward_blocks(model, blocks[:1], features)
        del trainer


class TestSeedEnv:
    def test_default_seed_comes_from_env(self, problem, monkeypatch):
        model, loss, opt = _ingredients("GAT", problem)
        monkeypatch.setenv(SEED_ENV_VAR, "7")
        trainer = MinibatchTrainer(model, loss, opt, fanouts=(4, 4))
        assert trainer.seed == 7

    def test_explicit_seed_beats_env(self, problem, monkeypatch):
        model, loss, opt = _ingredients("GAT", problem)
        monkeypatch.setenv(SEED_ENV_VAR, "7")
        trainer = MinibatchTrainer(
            model, loss, opt, fanouts=(4, 4), seed=11
        )
        assert trainer.seed == 11

    def test_unset_and_empty_fall_back(self, monkeypatch):
        monkeypatch.delenv(SEED_ENV_VAR, raising=False)
        assert repro_seed_default() == 0
        assert repro_seed_default(fallback=9) == 9
        monkeypatch.setenv(SEED_ENV_VAR, "  ")
        assert repro_seed_default(fallback=9) == 9

    def test_whitespace_tolerant_integer(self, monkeypatch):
        monkeypatch.setenv(SEED_ENV_VAR, " 42 ")
        assert repro_seed_default() == 42

    def test_invalid_value_raises(self, problem, monkeypatch):
        monkeypatch.setenv(SEED_ENV_VAR, "not-a-seed")
        with pytest.raises(ValueError, match="REPRO_SEED"):
            repro_seed_default()
        model, loss, opt = _ingredients("GAT", problem)
        with pytest.raises(ValueError, match="REPRO_SEED"):
            MinibatchTrainer(model, loss, opt, fanouts=(4, 4))

    def test_same_seed_same_curve(self, problem, features):
        a = problem.adjacency.astype(np.float64)
        curves = []
        for _ in range(2):
            model, loss, opt = _ingredients("GAT", problem)
            trainer = MinibatchTrainer(
                model, loss, opt, fanouts=(3, 3), batch_size=16, seed=13
            )
            result = trainer.fit(
                a, features, problem.labels, epochs=2, full_eval=False
            )
            curves.append(result.batch_losses)
        assert curves[0] == curves[1]
