"""Tests for the extension models (SGC, GIN) and checkpointing."""

import numpy as np
import pytest

from repro.models import (
    build_model,
    gin_model,
    load_model,
    normalize_adjacency,
    save_model,
    sgc_model,
)
from repro.models.sgc import propagate
from repro.training import Adam, SoftmaxCrossEntropyLoss, Trainer
from tests.test_models_gradcheck import max_rel_gradient_error


class TestSGC:
    def test_propagation_matches_repeated_spmm(self, rng, small_adjacency):
        a = normalize_adjacency(small_adjacency)
        h = rng.normal(size=(60, 5))
        out = propagate(a, h, 3)
        dense = a.to_dense()
        expected = dense @ (dense @ (dense @ h))
        assert np.allclose(out, expected, atol=1e-5)

    def test_zero_hops_is_identity(self, rng, small_adjacency):
        a = normalize_adjacency(small_adjacency)
        h = rng.normal(size=(60, 5))
        assert np.array_equal(propagate(a, h, 0), h)

    def test_learns_sbm(self, sbm_data):
        a = normalize_adjacency(sbm_data.adjacency)
        model = sgc_model(12, sbm_data.num_classes, hops=2, seed=0)
        trainer = Trainer(
            model, SoftmaxCrossEntropyLoss(sbm_data.train_mask), Adam(0.05)
        )
        result = trainer.fit(a, sbm_data.features, sbm_data.labels,
                             epochs=60)
        acc = trainer.evaluate(a, sbm_data.features, sbm_data.labels,
                               sbm_data.test_mask)
        assert result.losses[-1] < result.losses[0]
        assert acc > 0.75

    def test_propagation_cached_across_epochs(self, rng, small_adjacency):
        a = normalize_adjacency(small_adjacency)
        h = rng.normal(size=(60, 5)).astype(np.float32)
        model = sgc_model(5, 3, hops=2, seed=0)
        from repro.util.counters import FlopCounter

        first, second = FlopCounter(), FlopCounter()
        model.forward(a, h, counter=first)
        model.forward(a, h, counter=second)
        # The second epoch skips the K SpMMs.
        assert second.by_label.get("SpMM", 0) < first.by_label.get("SpMM", 1)

    def test_gradcheck(self, rng, small_adjacency):
        a = normalize_adjacency(small_adjacency)
        h = rng.normal(size=(60, 5))
        target = rng.normal(size=(60, 3))
        model = sgc_model(5, 3, hops=2, seed=1, dtype=np.float64)
        assert max_rel_gradient_error(model, a, h, target, rng) < 1e-7

    def test_invalid_hops(self):
        with pytest.raises(ValueError):
            sgc_model(4, 2, hops=-1)

    def test_build_model_dispatch(self, sbm_data):
        model = build_model("SGC", 12, 999, sbm_data.num_classes,
                            num_layers=2)
        assert model.num_layers == 1  # single projection layer


class TestGIN:
    def test_forward_matches_manual(self, rng, small_adjacency):
        model = gin_model(5, 8, 3, num_layers=1, epsilon=0.3, seed=2,
                          dtype=np.float64)
        layer = model.layers[0]
        h = rng.normal(size=(60, 5))
        out = model.forward(small_adjacency, h, training=False)
        combined = 1.3 * h + small_adjacency.to_dense() @ h
        hidden = np.maximum(combined @ layer.w1, 0)
        assert np.allclose(out, hidden @ layer.w2, atol=1e-8)

    def test_gradcheck_including_epsilon(self, rng, small_adjacency):
        h = rng.normal(size=(60, 5))
        target = rng.normal(size=(60, 3))
        model = gin_model(5, 6, 3, num_layers=2, epsilon=0.1, seed=3,
                          dtype=np.float64, activation="tanh")
        # Inner ReLU kinks make finite differences slightly noisy.
        assert max_rel_gradient_error(model, small_adjacency, h, target,
                                      rng) < 1e-4

    def test_learns_sbm(self, sbm_data):
        model = gin_model(12, 16, sbm_data.num_classes, num_layers=2, seed=0)
        trainer = Trainer(
            model, SoftmaxCrossEntropyLoss(sbm_data.train_mask), Adam(0.01)
        )
        trainer.fit(sbm_data.adjacency, sbm_data.features, sbm_data.labels,
                    epochs=40)
        acc = trainer.evaluate(sbm_data.adjacency, sbm_data.features,
                               sbm_data.labels, sbm_data.test_mask)
        assert acc > 0.8

    def test_build_model_dispatch(self):
        model = build_model("GIN", 8, 16, 3, num_layers=2)
        assert model.num_layers == 2


class TestSerialization:
    @pytest.mark.parametrize("name", ["VA", "AGNN", "GAT", "GIN"])
    def test_roundtrip_preserves_outputs(self, tmp_path, rng,
                                         small_adjacency, name):
        h = rng.normal(size=(60, 5)).astype(np.float64)
        model = build_model(name, 5, 8, 3, num_layers=2, seed=4,
                            dtype=np.float64)
        reference = model.forward(small_adjacency, h, training=False)
        path = tmp_path / "model.npz"
        save_model(model, path)

        fresh = build_model(name, 5, 8, 3, num_layers=2, seed=99,
                            dtype=np.float64)
        assert not np.allclose(
            fresh.forward(small_adjacency, h, training=False), reference
        )
        load_model(fresh, path)
        assert np.allclose(
            fresh.forward(small_adjacency, h, training=False), reference
        )

    def test_architecture_mismatch_rejected(self, tmp_path):
        a = build_model("VA", 5, 8, 3, num_layers=2)
        b = build_model("VA", 5, 8, 3, num_layers=3)
        path = tmp_path / "model.npz"
        save_model(a, path)
        with pytest.raises(ValueError, match="mismatch"):
            load_model(b, path)

    def test_shape_mismatch_rejected(self, tmp_path):
        a = build_model("VA", 5, 8, 3, num_layers=2)
        b = build_model("VA", 5, 16, 3, num_layers=2)
        path = tmp_path / "model.npz"
        save_model(a, path)
        with pytest.raises(ValueError):
            load_model(b, path)
