"""Head-batched kernel stack: batched sweeps vs the per-head oracle.

The multi-head GAT layer runs every Table-2 kernel once over stacked
``(nnz, heads)`` edge values instead of looping the heads in Python.
These tests pin the contract down at every level:

* each batched kernel (SpMM on both backends, the SDDMM family,
  SpMMM/MSpMM, graph softmax forward/backward) matches the per-head
  loop bit-for-bit or to float64 roundoff;
* :class:`FlopCounter` tallies of the batched sweep equal the summed
  per-head loop *exactly*, per label;
* the batched :class:`MultiHeadGATLayer` is allclose (rtol 1e-10) to
  the ``batched=False`` oracle in forward and backward, and both
  survive a finite-difference gradcheck for ``concat`` and ``mean``;
* the distributed batched layer sends ``heads``-times fewer messages
  at unchanged payload bytes (CommStats);
* the ``REPRO_SDDMM_CHUNK`` override validates like the other
  ``REPRO_*`` knobs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import distribute_adjacency, distribute_features
from repro.distributed.layers import DistMultiHeadGATLayer
from repro.distributed.ops import OpSequencer
from repro.models.gat import MultiHeadGATLayer
from repro.runtime import run_spmd, square_grid
from repro.tensor.kernels import (
    AVERAGE,
    get_sddmm_chunk,
    masked_row_softmax,
    masked_row_softmax_backward,
    mspmm,
    sddmm_add,
    sddmm_cosine,
    sddmm_dot,
    spmm,
    spmmm,
)
from repro.util.counters import FlopCounter, event_counter

HEADS = 4


@pytest.fixture
def stacked(rng, small_adjacency):
    """Shared pattern plus stacked ``(n, heads, k)`` operands."""
    a = small_adjacency
    n = a.shape[0]
    k = 5
    x = rng.normal(size=(n, HEADS, k))
    y = rng.normal(size=(n, HEADS, k))
    vals = rng.normal(size=(a.nnz, HEADS))
    return a, x, y, vals


def _heads_of(x):
    return [np.ascontiguousarray(x[:, i]) for i in range(x.shape[1])]


def _numeric_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar function of an array.

    Perturbs through ``x.reshape(-1)``, which stays a view because the
    stacked multi-head parameters are contiguous — itself part of the
    contract under test.
    """
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        out[i] = (fp - fm) / (2 * eps)
    return grad


# ----------------------------------------------------------------------
# Kernel-level parity
# ----------------------------------------------------------------------
class TestKernelParity:
    @pytest.mark.parametrize("backend", ["scipy", "reference"])
    def test_spmm_batched_matches_per_head(self, stacked, backend):
        a, x, _, vals = stacked
        sa = a.with_data(vals)
        out = spmm(sa, x, backend=backend)
        assert out.shape == x.shape
        for i, xi in enumerate(_heads_of(x)):
            ref = spmm(a.with_data(vals[:, i].copy()), xi, backend=backend)
            np.testing.assert_allclose(out[:, i], ref, rtol=1e-12, atol=1e-12)

    def test_spmm_batched_flat_layout(self, stacked):
        """A flat ``(n, heads*k)`` operand is the same computation."""
        a, x, _, vals = stacked
        sa = a.with_data(vals)
        n, _, k = x.shape
        flat = spmm(sa, np.ascontiguousarray(x.reshape(n, HEADS * k)))
        np.testing.assert_array_equal(flat, spmm(sa, x).reshape(n, HEADS * k))

    def test_spmm_batched_average_semiring(self, stacked):
        a, x, _, vals = stacked
        sa = a.with_data(vals)
        out = spmm(sa, x, semiring=AVERAGE)
        for i, xi in enumerate(_heads_of(x)):
            ref = spmm(a.with_data(vals[:, i].copy()), xi, semiring=AVERAGE)
            np.testing.assert_allclose(out[:, i], ref, rtol=1e-12, atol=1e-12)

    def test_sddmm_dot_batched_matches_per_head(self, stacked):
        a, x, y, _ = stacked
        out = sddmm_dot(a, x, y)
        assert out.shape == (a.nnz, HEADS)
        for i in range(HEADS):
            ref = sddmm_dot(a, *(_heads_of(z)[i] for z in (x, y)))
            np.testing.assert_allclose(out[:, i], ref, rtol=1e-12, atol=1e-12)

    def test_sddmm_dot_batched_chunked(self, stacked):
        """A tiny chunk exercises the multi-chunk gather loop."""
        a, x, y, _ = stacked
        np.testing.assert_array_equal(
            sddmm_dot(a, x, y, chunk=7 * HEADS), sddmm_dot(a, x, y)
        )

    def test_sddmm_add_batched_matches_per_head(self, stacked):
        a, x, y, _ = stacked
        u, v = x[:, :, 0].copy(), y[:, :, 0].copy()
        out = sddmm_add(a, u, v)
        assert out.shape == (a.nnz, HEADS)
        for i in range(HEADS):
            ref = sddmm_add(a, u[:, i].copy(), v[:, i].copy())
            np.testing.assert_array_equal(out[:, i], ref)

    def test_sddmm_cosine_batched_matches_per_head(self, stacked):
        a, x, _, _ = stacked
        out, norms = sddmm_cosine(a, x)
        assert out.shape == (a.nnz, HEADS) and norms.shape == x.shape[:2]
        for i, xi in enumerate(_heads_of(x)):
            ref, ref_norms = sddmm_cosine(a, xi)
            np.testing.assert_allclose(out[:, i], ref, rtol=1e-12, atol=1e-12)
            np.testing.assert_allclose(norms[:, i], ref_norms, rtol=1e-12)

    def test_spmmm_batched_matches_per_head(self, stacked):
        a, x, _, vals = stacked
        sa = a.with_data(vals)
        w = np.linspace(-1, 1, x.shape[2] * 3).reshape(x.shape[2], 3)
        out = spmmm(sa, x, w)
        for i, xi in enumerate(_heads_of(x)):
            ref = spmmm(a.with_data(vals[:, i].copy()), xi, w)
            np.testing.assert_allclose(out[:, i], ref, rtol=1e-12, atol=1e-12)

    def test_mspmm_batched_matches_per_head(self, stacked):
        a, x, y, vals = stacked
        sa = a.with_data(vals)
        d = np.ascontiguousarray(x[:, 0].T)  # shared (kd, n) left operand
        out = mspmm(d, sa, y)
        assert out.shape == (HEADS, d.shape[0], y.shape[2])
        for i, yi in enumerate(_heads_of(y)):
            ref = mspmm(d, a.with_data(vals[:, i].copy()), yi)
            np.testing.assert_allclose(out[i], ref, rtol=1e-12, atol=1e-12)

    def test_masked_row_softmax_batched_matches_per_head(self, stacked):
        a, _, _, vals = stacked
        s = masked_row_softmax(a.with_data(vals))
        for i in range(HEADS):
            ref = masked_row_softmax(a.with_data(vals[:, i].copy()))
            np.testing.assert_allclose(
                s.data[:, i], ref.data, rtol=1e-12, atol=1e-12
            )

    def test_masked_row_softmax_backward_batched(self, rng, stacked):
        a, _, _, vals = stacked
        s = masked_row_softmax(a.with_data(vals))
        grad = rng.normal(size=(a.nnz, HEADS))
        out = masked_row_softmax_backward(
            s.data, grad, a.indptr, rows=a.expand_rows()
        )
        for i in range(HEADS):
            ref = masked_row_softmax_backward(
                np.ascontiguousarray(s.data[:, i]),
                np.ascontiguousarray(grad[:, i]),
                a.indptr,
            )
            np.testing.assert_allclose(out[:, i], ref, rtol=1e-12, atol=1e-12)

    def test_head_interleave_is_cached_per_pattern(self, stacked):
        a, x, _, vals = stacked
        sa = a.with_data(vals)
        spmm(sa, x, backend="scipy")  # warm
        before = event_counter().snapshot()
        spmm(sa, x, backend="scipy")
        after = event_counter().snapshot()
        assert after.get("head_interleave.computed", 0) == before.get(
            "head_interleave.computed", 0
        )
        assert after.get("head_scipy_view.hit", 0) > before.get(
            "head_scipy_view.hit", 0
        )


# ----------------------------------------------------------------------
# Flop accounting parity
# ----------------------------------------------------------------------
class TestFlopParity:
    def _sum_per_head(self, fns):
        total = FlopCounter()
        for fn in fns:
            c = FlopCounter()
            fn(c)
            total.merge(c)
        return total

    def assert_equal_counts(self, batched: FlopCounter, summed: FlopCounter):
        assert batched.total == summed.total
        assert batched.by_label == summed.by_label

    def test_kernel_flops_scale_by_heads(self, stacked):
        a, x, y, vals = stacked
        sa = a.with_data(vals)
        w = np.eye(x.shape[2])
        cases = [
            (lambda c: spmm(sa, x, counter=c),
             lambda c, i: spmm(
                 a.with_data(vals[:, i].copy()), _heads_of(x)[i], counter=c
             )),
            (lambda c: sddmm_dot(a, x, y, counter=c),
             lambda c, i: sddmm_dot(
                 a, _heads_of(x)[i], _heads_of(y)[i], counter=c
             )),
            (lambda c: sddmm_cosine(a, x, counter=c),
             lambda c, i: sddmm_cosine(a, _heads_of(x)[i], counter=c)),
            (lambda c: masked_row_softmax(sa, counter=c),
             lambda c, i: masked_row_softmax(
                 a.with_data(vals[:, i].copy()), counter=c
             )),
            (lambda c: spmmm(sa, x, w, counter=c),
             lambda c, i: spmmm(
                 a.with_data(vals[:, i].copy()), _heads_of(x)[i], w, counter=c
             )),
        ]
        for batched_fn, head_fn in cases:
            batched = FlopCounter()
            batched_fn(batched)
            summed = self._sum_per_head(
                [lambda c, i=i: head_fn(c, i) for i in range(HEADS)]
            )
            self.assert_equal_counts(batched, summed)

    @pytest.mark.parametrize("combine", ["concat", "mean"])
    def test_layer_flops_match_per_head_loop(self, rng, small_adjacency,
                                             combine):
        a = small_adjacency
        h = rng.normal(size=(a.shape[0], 6))
        g = rng.normal(size=(a.shape[0], 3 * HEADS if combine == "concat"
                             else 3))
        kwargs = dict(heads=HEADS, combine=combine, seed=11,
                      dtype=np.float64)
        batched = MultiHeadGATLayer(6, 3, batched=True, **kwargs)
        oracle = MultiHeadGATLayer(6, 3, batched=False, **kwargs)
        cb, co = FlopCounter(), FlopCounter()
        _, cache_b = batched.forward(a, h, counter=cb)
        _, cache_o = oracle.forward(a, h, counter=co)
        batched.backward(cache_b, g, counter=cb)
        oracle.backward(cache_o, g, counter=co)
        self.assert_equal_counts(cb, co)


# ----------------------------------------------------------------------
# Layer-level parity and gradients
# ----------------------------------------------------------------------
class TestLayerParity:
    @pytest.mark.parametrize("combine", ["concat", "mean"])
    def test_batched_matches_oracle_forward_backward(self, rng,
                                                     small_adjacency,
                                                     combine):
        a = small_adjacency
        n = a.shape[0]
        h = rng.normal(size=(n, 6))
        kwargs = dict(heads=HEADS, combine=combine, seed=3, dtype=np.float64)
        batched = MultiHeadGATLayer(6, 3, batched=True, **kwargs)
        oracle = MultiHeadGATLayer(6, 3, batched=False, **kwargs)
        out_b, cache_b = batched.forward(a, h)
        out_o, cache_o = oracle.forward(a, h)
        np.testing.assert_allclose(out_b, out_o, rtol=1e-10, atol=1e-12)
        g = rng.normal(size=out_b.shape)
        dh_b, grads_b = batched.backward(cache_b, g)
        dh_o, grads_o = oracle.backward(cache_o, g)
        np.testing.assert_allclose(dh_b, dh_o, rtol=1e-10, atol=1e-12)
        assert grads_b.keys() == grads_o.keys()
        for name in grads_o:
            np.testing.assert_allclose(
                grads_b[name], grads_o[name], rtol=1e-10, atol=1e-12
            )

    @pytest.mark.parametrize("combine", ["concat", "mean"])
    def test_gradcheck_batched(self, rng, small_adjacency, combine):
        a = small_adjacency
        n = a.shape[0]
        h = rng.normal(size=(n, 4))
        # Identity activation: layer.backward takes dL/dZ, so with
        # sigma = id the projection is directly the output gradient.
        layer = MultiHeadGATLayer(
            4, 2, heads=2, combine=combine, activation="identity",
            seed=7, dtype=np.float64, batched=True,
        )
        proj = rng.normal(size=(n, layer.out_dim))

        def loss():
            out, _ = layer.forward(a, h, training=False)
            return float(np.sum(out * proj))

        _, cache = layer.forward(a, h)
        _, grads = layer.backward(cache, proj)
        for name, param in layer.parameters().items():
            numeric = _numeric_gradient(loss, param, eps=1e-6)
            np.testing.assert_allclose(
                grads[name], numeric, rtol=2e-5, atol=1e-7,
                err_msg=f"gradient mismatch for {name} ({combine})",
            )


# ----------------------------------------------------------------------
# Distributed: message coalescing
# ----------------------------------------------------------------------
class TestDistributedCoalescing:
    HEADS = 4

    def _run(self, a, h, batched):
        heads = self.HEADS

        def program(comm):
            grid = square_grid(comm)
            a_block = distribute_adjacency(a, grid)
            h_block = distribute_features(h, grid)
            layer = DistMultiHeadGATLayer(
                h.shape[1], 3, heads=heads, seed=5, dtype=np.float64,
                batched=batched,
            )
            seq = OpSequencer()
            # Snapshot after block distribution: only the layer step's
            # traffic is under test.
            msgs0 = comm.stats.messages_sent
            bytes0 = comm.stats.bytes_sent
            out, cache = layer.forward(grid, a_block, h_block, seq)
            g_block = np.ones_like(out)
            layer.backward(grid, cache, g_block, seq)
            return (
                out,
                comm.stats.messages_sent - msgs0,
                comm.stats.bytes_sent - bytes0,
            )

        return run_spmd(4, program, timeout=60).values

    def test_batched_sends_heads_times_fewer_messages(self, rng):
        from repro.graphs import erdos_renyi
        from repro.graphs.prep import prepare_adjacency

        a = prepare_adjacency(erdos_renyi(24, 120, seed=2),
                              dtype=np.float64)
        h = rng.normal(size=(24, 6))
        results_b = self._run(a, h, batched=True)
        results_p = self._run(a, h, batched=False)
        for (out_b, msgs_b, bytes_b), (out_p, msgs_p, bytes_p) in zip(
            results_b, results_p
        ):
            np.testing.assert_allclose(out_b, out_p, rtol=1e-10, atol=1e-12)
            # Exactly heads-times fewer messages per rank.
            assert msgs_p == self.HEADS * msgs_b
            # Payload bytes are unchanged; the only slack is the 8-byte
            # algorithm flag each coalesced bcast sends once instead of
            # ``heads`` times (two bcasts per layer step: forward hp
            # row-broadcast and backward gradient row-broadcast).
            slack = 2 * 8 * (self.HEADS - 1)
            assert 0 <= bytes_p - bytes_b <= slack


# ----------------------------------------------------------------------
# REPRO_SDDMM_CHUNK validation
# ----------------------------------------------------------------------
class TestSddmmChunkEnv:
    @pytest.mark.parametrize("unset", ["delete", "empty"])
    def test_default(self, monkeypatch, unset):
        from repro.tensor import kernels

        if unset == "delete":
            monkeypatch.delenv("REPRO_SDDMM_CHUNK", raising=False)
        else:
            monkeypatch.setenv("REPRO_SDDMM_CHUNK", "")
        assert kernels._initial_sddmm_chunk() == 1 << 15

    def test_valid_override(self, monkeypatch):
        from repro.tensor import kernels

        monkeypatch.setenv("REPRO_SDDMM_CHUNK", "4096")
        assert kernels._initial_sddmm_chunk() == 4096

    @pytest.mark.parametrize("bad", ["0", "-17", "4096.5", "lots"])
    def test_invalid_override_raises(self, monkeypatch, bad):
        from repro.tensor import kernels

        monkeypatch.setenv("REPRO_SDDMM_CHUNK", bad)
        with pytest.raises(ValueError, match="REPRO_SDDMM_CHUNK"):
            kernels._initial_sddmm_chunk()

    def test_get_sddmm_chunk_reports_active_value(self):
        assert get_sddmm_chunk() >= 1
