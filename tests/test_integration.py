"""End-to-end integration tests across subsystems.

Each test exercises a realistic multi-subsystem pipeline: generator →
preprocessing → (distributed) training → checkpointing → inference,
plus failure injection on the simulated cluster.
"""

import numpy as np
import pytest

from repro.baselines.dist_local import dist_local_train
from repro.distributed.api import distributed_inference, distributed_train
from repro.graphs import kronecker, synthetic_classification
from repro.graphs.prep import graph_stats, prepare_adjacency
from repro.models import build_model, save_model
from repro.runtime import run_spmd
from repro.training import Adam, SoftmaxCrossEntropyLoss, Trainer


class TestFullPipeline:
    def test_kronecker_to_distributed_training(self):
        """Generate → distribute → train on 4 ranks → losses decrease."""
        rng = np.random.default_rng(0)
        adjacency = prepare_adjacency(kronecker(256, 2048, seed=0))
        stats = graph_stats(adjacency)
        assert stats.isolated == 0
        n = adjacency.shape[0]
        features = rng.normal(0, 1, (n, 8)).astype(np.float64)
        labels = rng.integers(0, 3, n)
        result = distributed_train(
            "AGNN", adjacency, features, labels, 16, 3, num_layers=2,
            p=4, epochs=5, lr=0.05, seed=1, dtype=np.float64,
        )
        assert result.losses[-1] < result.losses[0]
        assert result.output.shape == (n, 3)

    def test_train_checkpoint_reload_distributed_inference(self, tmp_path):
        """Single-node training → checkpoint → the distributed engine
        loaded with the same weights reproduces its predictions."""
        data = synthetic_classification(n=150, feature_dim=6, seed=1)
        h = data.features.astype(np.float64)
        model = build_model("GAT", 6, 8, data.num_classes, num_layers=2,
                            seed=3, dtype=np.float64)
        trainer = Trainer(
            model, SoftmaxCrossEntropyLoss(data.train_mask), Adam(0.02)
        )
        trainer.fit(data.adjacency, h, data.labels, epochs=10)
        reference = model.forward(data.adjacency, h, training=False)
        path = tmp_path / "gat.npz"
        save_model(model, path)

        # Distributed inference builds replicated models from the same
        # constructor seed; to use *trained* weights we load per rank.
        from repro.distributed.model import build_dist_model
        from repro.distributed.partition import (
            collect_feature_blocks,
            distribute_adjacency,
            distribute_features,
        )
        from repro.runtime import square_grid

        def program(comm):
            grid = square_grid(comm)
            dist = build_dist_model(grid, "GAT", 6, 8, data.num_classes,
                                    num_layers=2, seed=3, dtype=np.float64)
            with np.load(path) as blob:
                for index, layer in enumerate(dist.layers):
                    for name, value in layer.parameters().items():
                        np.copyto(value, blob[f"layer{index}.{name}"])
            out = dist.forward(
                distribute_adjacency(data.adjacency, grid),
                distribute_features(h, grid),
                training=False,
            )
            return collect_feature_blocks(grid, out)

        result = run_spmd(4, program, timeout=60)
        assert np.allclose(result.values[0], reference, atol=1e-10)

    def test_global_and_local_agree_after_training(self):
        """Both engines, same seeds, multi-epoch: identical losses."""
        data = synthetic_classification(n=90, feature_dim=5, seed=4)
        h = data.features.astype(np.float64)
        global_result = distributed_train(
            "AGNN", data.adjacency, h, data.labels, 8, data.num_classes,
            num_layers=2, p=4, epochs=3, lr=0.02, mask=data.train_mask,
            seed=6, dtype=np.float64,
        )
        local_losses, _ = dist_local_train(
            "AGNN", data.adjacency, h, data.labels, 8, data.num_classes,
            num_layers=2, p=3, epochs=3, lr=0.02, mask=data.train_mask,
            seed=6, dtype=np.float64,
        )
        assert np.allclose(global_result.losses, local_losses, rtol=1e-8)


class TestFailureInjection:
    def test_rank_crash_surfaces_cleanly(self):
        data = synthetic_classification(n=50, feature_dim=4, seed=0)

        def program(comm):
            if comm.rank == 2:
                raise MemoryError("simulated OOM")
            # Other ranks block on a collective; the abort must free them.
            comm.allreduce(np.ones(4))

        with pytest.raises(RuntimeError, match="simulated OOM"):
            run_spmd(4, program, timeout=10)

    def test_mismatched_collective_times_out(self):
        """A rank skipping a collective deadlocks; the fabric guard
        converts it into an error instead of a hang."""

        def program(comm):
            if comm.rank == 0:
                comm.allreduce(np.ones(2))
                comm.allreduce(np.ones(2))  # extra call: no partner
            else:
                comm.allreduce(np.ones(2))

        with pytest.raises(RuntimeError):
            run_spmd(2, program, timeout=1.0)

    def test_inference_deterministic_across_repeats(self):
        data = synthetic_classification(n=80, feature_dim=5, seed=2)
        h = data.features.astype(np.float64)
        outs = [
            distributed_inference("VA", data.adjacency, h, 8, 3,
                                  num_layers=2, p=4, seed=9,
                                  dtype=np.float64).output
            for _ in range(2)
        ]
        assert np.array_equal(outs[0], outs[1])
