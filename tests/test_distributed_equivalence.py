"""Distributed-vs-single-node equivalence — the library's core guarantee.

The 1.5D global-formulation execution must produce the same numbers as
the single-node models, for every model, for inference and full-batch
training, across grid sizes, including vertex counts that do not divide
evenly. The tolerance is floating-point-reduction-order noise only.
"""

import numpy as np
import pytest

from repro.distributed.api import distributed_inference, distributed_train
from repro.graphs import synthetic_classification
from repro.models import build_model, normalize_adjacency
from repro.training import SGD, SoftmaxCrossEntropyLoss, Trainer

MODELS = ["VA", "AGNN", "GAT", "GCN"]


@pytest.fixture(scope="module")
def problem():
    data = synthetic_classification(n=123, feature_dim=7, seed=2)
    return data


def adjacency_for(name, data):
    return (
        normalize_adjacency(data.adjacency)
        if name == "GCN"
        else data.adjacency
    )


class TestInferenceEquivalence:
    @pytest.mark.parametrize("p", [1, 4, 9])
    @pytest.mark.parametrize("name", MODELS)
    def test_matches_single_node(self, problem, name, p):
        a = adjacency_for(name, problem)
        h = problem.features.astype(np.float64)
        reference = build_model(
            name, 7, 8, 4, num_layers=3, seed=5, dtype=np.float64
        ).forward(a, h, training=False)
        result = distributed_inference(
            name, a, h, 8, 4, num_layers=3, p=p, seed=5, dtype=np.float64,
        )
        scale = max(1.0, np.abs(reference).max())
        assert np.abs(result.output - reference).max() / scale < 1e-10

    def test_single_rank_has_zero_volume(self, problem):
        result = distributed_inference(
            "GAT", problem.adjacency, problem.features, 8, 4, p=1, seed=0
        )
        assert result.stats.max_bytes_sent == 0

    def test_communication_recorded_for_multi_rank(self, problem):
        result = distributed_inference(
            "GAT", problem.adjacency, problem.features, 8, 4, p=4, seed=0
        )
        assert result.stats.max_words_sent > 0
        phases = result.stats.phase_bytes()
        assert phases.get("redistribute", 0) > 0
        assert phases.get("psi", 0) > 0


class TestTrainingEquivalence:
    @pytest.mark.parametrize("name", MODELS)
    def test_loss_trajectories_match(self, problem, name):
        np.seterr(over="ignore", invalid="ignore")
        a = adjacency_for(name, problem)
        h = problem.features.astype(np.float64)
        model = build_model(name, 7, 8, 4, num_layers=2, seed=5,
                            dtype=np.float64)
        trainer = Trainer(
            model, SoftmaxCrossEntropyLoss(problem.train_mask), SGD(0.005)
        )
        reference = trainer.fit(a, h, problem.labels, epochs=4)
        result = distributed_train(
            name, a, h, problem.labels, 8, 4, num_layers=2, p=4, epochs=4,
            lr=0.005, mask=problem.train_mask, seed=5, dtype=np.float64,
        )
        for ref, dist in zip(reference.losses, result.losses):
            assert abs(ref - dist) / max(1.0, abs(ref)) < 1e-8

    def test_p9_training(self, problem):
        a = problem.adjacency
        h = problem.features.astype(np.float64)
        model = build_model("GAT", 7, 8, 4, num_layers=2, seed=5,
                            dtype=np.float64)
        trainer = Trainer(
            model, SoftmaxCrossEntropyLoss(problem.train_mask), SGD(0.01)
        )
        reference = trainer.fit(a, h, problem.labels, epochs=3)
        result = distributed_train(
            "GAT", a, h, problem.labels, 8, 4, num_layers=2, p=9, epochs=3,
            lr=0.01, mask=problem.train_mask, seed=5, dtype=np.float64,
        )
        assert np.allclose(reference.losses, result.losses, rtol=1e-9)

    def test_mse_loss_variant(self, problem):
        a = problem.adjacency
        h = problem.features.astype(np.float64)
        n = h.shape[0]
        rng = np.random.default_rng(0)
        targets = rng.normal(size=(n,)).astype(np.float64)
        # MSE over 4 output dims against broadcast targets.
        targets4 = np.tile(targets[:, None], (1, 4))
        from repro.training import MSELoss

        model = build_model("VA", 7, 8, 4, num_layers=2, seed=5,
                            dtype=np.float64)
        trainer = Trainer(model, MSELoss(), SGD(1e-6))
        reference = trainer.fit(a, h, targets4, epochs=3)
        result = distributed_train(
            "VA", a, h, targets4, 8, 4, num_layers=2, p=4, epochs=3,
            lr=1e-6, loss="mse", seed=5, dtype=np.float64,
        )
        assert np.allclose(reference.losses, result.losses, rtol=1e-8)

    def test_training_output_matches_forward(self, problem):
        """Final collected output equals a fresh model trained identically."""
        a = problem.adjacency
        h = problem.features.astype(np.float64)
        result = distributed_train(
            "AGNN", a, h, problem.labels, 8, 4, num_layers=2, p=4,
            epochs=2, lr=0.01, mask=problem.train_mask, seed=5,
            dtype=np.float64,
        )
        model = build_model("AGNN", 7, 8, 4, num_layers=2, seed=5,
                            dtype=np.float64)
        trainer = Trainer(
            model, SoftmaxCrossEntropyLoss(problem.train_mask), SGD(0.01)
        )
        trainer.fit(a, h, problem.labels, epochs=2)
        # result.output is the forward output of the *last* epoch, i.e.
        # before the final weight update; recompute accordingly.
        assert result.output.shape == (123, 4)


class TestDistributedValidation:
    def test_non_square_p_rejected(self, problem):
        with pytest.raises(RuntimeError):
            distributed_inference(
                "VA", problem.adjacency, problem.features, 8, 4, p=6, seed=0
            )

    def test_bad_loss_name(self, problem):
        with pytest.raises(RuntimeError):
            distributed_train(
                "VA", problem.adjacency,
                problem.features.astype(np.float64), problem.labels,
                8, 4, p=4, loss="hinge", seed=0,
            )


class TestMultiHeadEquivalence:
    @pytest.mark.parametrize("p", [1, 4])
    def test_multihead_gat_inference(self, problem, p):
        h = problem.features.astype(np.float64)
        reference = build_model(
            "GAT", 7, 8, 4, num_layers=2, heads=3, seed=5, dtype=np.float64
        ).forward(problem.adjacency, h, training=False)
        result = distributed_inference(
            "GAT", problem.adjacency, h, 8, 4, num_layers=2, p=p, seed=5,
            dtype=np.float64, heads=3,
        )
        scale = max(1.0, np.abs(reference).max())
        assert np.abs(result.output - reference).max() / scale < 1e-10

    def test_multihead_gat_training(self, problem):
        h = problem.features.astype(np.float64)
        model = build_model("GAT", 7, 8, 4, num_layers=2, heads=2, seed=5,
                            dtype=np.float64)
        trainer = Trainer(
            model, SoftmaxCrossEntropyLoss(problem.train_mask), SGD(0.01)
        )
        reference = trainer.fit(problem.adjacency, h, problem.labels,
                                epochs=3)
        result = distributed_train(
            "GAT", problem.adjacency, h, problem.labels, 8, 4,
            num_layers=2, p=4, epochs=3, lr=0.01, mask=problem.train_mask,
            seed=5, dtype=np.float64, heads=2,
        )
        assert np.allclose(reference.losses, result.losses, rtol=1e-9)

    def test_multihead_requires_gat(self, problem):
        with pytest.raises(RuntimeError, match="GAT feature"):
            distributed_inference(
                "VA", problem.adjacency, problem.features, 8, 4, p=4,
                seed=0, heads=2,
            )
