"""Tests for the op-DAG toolchain: IR, sparsity, fusion, execution."""

import numpy as np
import pytest

from repro.core.psi import psi_agnn, psi_gat, psi_va
from repro.fusion import (
    OpDag,
    Sparsity,
    agnn_psi_dag,
    execute,
    fuse,
    gat_psi_dag,
    infer_sparsity,
    va_psi_dag,
)
from repro.graphs import erdos_renyi
from repro.graphs.prep import prepare_adjacency


@pytest.fixture(scope="module")
def graph_inputs():
    rng = np.random.default_rng(0)
    a = prepare_adjacency(erdos_renyi(60, 400, seed=1), dtype=np.float64)
    h = rng.normal(size=(60, 5))
    w = rng.normal(size=(5, 5))
    a_src = rng.normal(size=5)
    a_dst = rng.normal(size=5)
    return a, h, w, a_src, a_dst


class TestDagBuilder:
    def test_shape_inference_chain(self):
        dag = OpDag()
        h = dag.input("H", "nk")
        assert dag.nodes[dag.transpose(h)].shape_kind == "kn"
        gram = dag.matmul(h, dag.transpose(h))
        assert dag.nodes[gram].shape_kind == "nn"

    def test_invalid_matmul_rejected(self):
        dag = OpDag()
        h = dag.input("H", "nk")
        with pytest.raises(ValueError):
            dag.matmul(h, h)

    def test_elementwise_kind_mismatch(self):
        dag = OpDag()
        h = dag.input("H", "nk")
        n = dag.input("x", "n")
        with pytest.raises(ValueError):
            dag.add(h, n)

    def test_sparse_must_be_nn(self):
        dag = OpDag()
        with pytest.raises(ValueError):
            dag.input("H", "nk", sparse=True)

    def test_undefined_operand(self):
        dag = OpDag()
        with pytest.raises(ValueError):
            dag.exp(42)

    def test_pretty_listing(self):
        dag = va_psi_dag()
        listing = dag.pretty()
        assert "matmul" in listing and "hadamard" in listing


class TestSparsityInference:
    def test_va_classification(self):
        dag = va_psi_dag()
        cls = infer_sparsity(dag)
        kinds = [cls[node.id] for node in dag.nodes]
        assert Sparsity.VIRTUAL in kinds  # the Gram matrix
        assert cls[dag.output] is Sparsity.SPARSE

    def test_softmax_denominator_is_virtual(self):
        dag = agnn_psi_dag()
        cls = infer_sparsity(dag)
        replicates = [
            node.id for node in dag.nodes
            if node.op in ("replicate", "outer")
        ]
        assert all(cls[nid] is Sparsity.VIRTUAL for nid in replicates)

    def test_parameter_sized_ops_are_dense(self):
        dag = gat_psi_dag()
        cls = infer_sparsity(dag)
        for node in dag.nodes:
            if node.shape_kind in ("nk", "kk", "k", "n"):
                assert cls[node.id] is Sparsity.DENSE


class TestFusionPass:
    @pytest.mark.parametrize(
        "builder,expected_kernels",
        [(va_psi_dag, 1), (agnn_psi_dag, 2), (gat_psi_dag, 2)],
    )
    def test_kernel_counts(self, builder, expected_kernels):
        program = fuse(builder())
        assert len(program.kernels) == expected_kernels

    def test_all_virtuals_fused(self):
        for builder in (va_psi_dag, agnn_psi_dag, gat_psi_dag):
            program = fuse(builder())
            fused = set()
            for kernel in program.kernels:
                fused |= set(kernel.fused_nodes)
            assert set(program.virtual_nodes) <= fused

    def test_escaping_virtual_rejected(self):
        dag = OpDag()
        h = dag.input("H", "nk")
        gram = dag.matmul(h, dag.transpose(h))
        dag.set_output(gram)  # virtual output: must materialise
        with pytest.raises(ValueError, match="virtual"):
            fuse(dag)

    def test_virtual_consumed_by_matmul_rejected(self):
        dag = OpDag()
        h = dag.input("H", "nk")
        gram = dag.matmul(h, dag.transpose(h))   # virtual n x n
        out = dag.matmul(gram, h)                # would need the dense
        dag.set_output(out)
        with pytest.raises(ValueError, match="escapes"):
            fuse(dag)

    def test_kernel_description(self):
        program = fuse(va_psi_dag())
        text = program.kernels[0].describe(program.dag)
        assert "SDDMM" in text


class TestExecution:
    @pytest.mark.parametrize("mode", ["fused", "tiled", "dense"])
    def test_va_matches_hand_kernel(self, graph_inputs, mode):
        a, h, *_ = graph_inputs
        reference, _ = psi_va(a, h)
        out = execute(va_psi_dag(), {"H": h, "A": a}, mode=mode, tile_rows=16)
        assert np.allclose(out.data, reference.data, atol=1e-10)

    @pytest.mark.parametrize("mode", ["fused", "tiled", "dense"])
    def test_agnn_matches_hand_kernel(self, graph_inputs, mode):
        a, h, *_ = graph_inputs
        reference, _ = psi_agnn(a, h, beta=1.3)
        out = execute(agnn_psi_dag(beta=1.3), {"H": h, "A": a}, mode=mode,
                      tile_rows=16)
        assert np.allclose(out.data, reference.data, atol=1e-9)

    @pytest.mark.parametrize("mode", ["fused", "tiled", "dense"])
    def test_gat_matches_hand_kernel(self, graph_inputs, mode):
        a, h, w, a_src, a_dst = graph_inputs
        reference, _ = psi_gat(a, h @ w, a_src, a_dst)
        out = execute(
            gat_psi_dag(),
            {"H": h, "A": a, "W": w, "a_src": a_src, "a_dst": a_dst},
            mode=mode, tile_rows=16,
        )
        assert np.allclose(out.data, reference.data, atol=1e-9)

    @pytest.mark.parametrize(
        "builder", [va_psi_dag, agnn_psi_dag, gat_psi_dag]
    )
    def test_tile_size_invariance(self, graph_inputs, builder):
        a, h, w, a_src, a_dst = graph_inputs
        inputs = {"H": h, "A": a}
        if builder is gat_psi_dag:
            inputs.update({"W": w, "a_src": a_src, "a_dst": a_dst})
        outs = [
            execute(builder(), inputs, mode="tiled", tile_rows=t).data
            for t in (1, 7, 64, 1000)
        ]
        for other in outs[1:]:
            assert np.allclose(outs[0], other)

    def test_dense_result_returned_directly(self, graph_inputs):
        a, h, *_ = graph_inputs
        dag = OpDag()
        hh = dag.input("H", "nk")
        dag.set_output(dag.row_norm(hh))
        out = execute(dag, {"H": h})
        assert np.allclose(out, np.linalg.norm(h, axis=1))

    def test_missing_output_rejected(self, graph_inputs):
        a, h, *_ = graph_inputs
        dag = OpDag()
        dag.input("H", "nk")
        with pytest.raises(ValueError):
            execute(dag, {"H": h})

    def test_invalid_mode(self, graph_inputs):
        a, h, *_ = graph_inputs
        with pytest.raises(ValueError):
            execute(va_psi_dag(), {"H": h, "A": a}, mode="quantum")

    def test_sparse_input_type_checked(self, graph_inputs):
        _, h, *_ = graph_inputs
        with pytest.raises(TypeError):
            execute(va_psi_dag(), {"H": h, "A": np.eye(60)})
