"""Tests for the Psi operators and their VJPs (Sections 4.1 / 5)."""

import numpy as np
import pytest

from repro.core.psi import (
    psi_agnn,
    psi_agnn_vjp,
    psi_gat,
    psi_gat_vjp,
    psi_va,
    psi_va_vjp,
)


@pytest.fixture
def setup(rng, small_adjacency):
    h = rng.normal(size=(small_adjacency.shape[0], 6))
    return small_adjacency, h


class TestPsiForward:
    def test_va_matches_masked_gram(self, setup):
        a, h = setup
        s, _ = psi_va(a, h)
        full = h @ h.T
        expected = a.to_dense() * full
        assert np.allclose(s.to_dense(), expected)

    def test_agnn_is_softmaxed_cosine(self, setup):
        a, h = setup
        s, cache = psi_agnn(a, h)
        # Rows are probability distributions over neighbourhoods.
        assert np.allclose(s.row_sum(), 1.0)
        # Cached cosine values live in [-1, 1].
        assert np.all(np.abs(cache.cos_values) <= 1 + 1e-9)

    def test_agnn_beta_sharpness(self, setup):
        """Larger beta concentrates attention (higher max prob per row)."""
        a, h = setup
        s1, _ = psi_agnn(a, h, beta=1.0)
        s5, _ = psi_agnn(a, h, beta=5.0)
        from repro.tensor.segment import segment_max

        m1 = segment_max(s1.data, a.indptr, identity=0)
        m5 = segment_max(s5.data, a.indptr, identity=0)
        assert m5.mean() > m1.mean()

    def test_gat_rows_normalised(self, setup, rng):
        a, h = setup
        w = rng.normal(size=(6, 4))
        a_src = rng.normal(size=4)
        a_dst = rng.normal(size=4)
        s, cache = psi_gat(a, h @ w, a_src, a_dst)
        assert np.allclose(s.row_sum(), 1.0)
        assert cache.raw_values.shape == (a.nnz,)

    def test_gat_matches_manual_construction(self, setup, rng):
        a, h = setup
        w = rng.normal(size=(6, 4))
        a_src = rng.normal(size=4)
        a_dst = rng.normal(size=4)
        hp = h @ w
        s, _ = psi_gat(a, hp, a_src, a_dst, slope=0.2)
        u = hp @ a_src
        v = hp @ a_dst
        raw = u[:, None] + v[None, :]
        logits = np.where(raw > 0, raw, 0.2 * raw)
        mask = a.to_dense() != 0
        exp = np.where(mask, np.exp(logits - logits.max()), 0)
        expected = exp / np.maximum(exp.sum(1, keepdims=True), 1e-300)
        assert np.allclose(s.to_dense(), np.where(mask, expected, 0), atol=1e-6)


def _numeric_vjp(psi_fn, h, ds, eps=1e-6):
    """Finite-difference d(sum(S.data * ds))/dH."""
    grad = np.zeros_like(h)
    for i in range(h.shape[0]):
        for j in range(h.shape[1]):
            h[i, j] += eps
            up = float(np.dot(psi_fn(h), ds))
            h[i, j] -= 2 * eps
            down = float(np.dot(psi_fn(h), ds))
            h[i, j] += eps
            grad[i, j] = (up - down) / (2 * eps)
    return grad


class TestPsiVJPs:
    def test_va_vjp_numeric(self, rng, small_adjacency):
        a = small_adjacency
        h = rng.normal(size=(a.shape[0], 3))
        ds = rng.normal(size=a.nnz)
        _, cache = psi_va(a, h)
        analytic = psi_va_vjp(ds, cache)
        numeric = _numeric_vjp(lambda hh: psi_va(a, hh)[0].data, h, ds)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_agnn_vjp_numeric(self, rng, small_adjacency):
        a = small_adjacency
        h = rng.normal(size=(a.shape[0], 3))
        ds = rng.normal(size=a.nnz)
        _, cache = psi_agnn(a, h, beta=1.4)
        analytic, dbeta = psi_agnn_vjp(ds, cache)
        numeric = _numeric_vjp(
            lambda hh: psi_agnn(a, hh, beta=1.4)[0].data, h, ds
        )
        assert np.allclose(analytic, numeric, atol=1e-4)
        # beta gradient numerically
        eps = 1e-6
        up = float(np.dot(psi_agnn(a, h, beta=1.4 + eps)[0].data, ds))
        down = float(np.dot(psi_agnn(a, h, beta=1.4 - eps)[0].data, ds))
        assert np.isclose(dbeta, (up - down) / (2 * eps), atol=1e-4)

    def test_gat_vjp_numeric(self, rng, small_adjacency):
        a = small_adjacency
        k = 3
        hp = rng.normal(size=(a.shape[0], k))
        a_src = rng.normal(size=k)
        a_dst = rng.normal(size=k)
        ds = rng.normal(size=a.nnz)
        _, cache = psi_gat(a, hp, a_src, a_dst)
        dhp, da_src, da_dst = psi_gat_vjp(ds, cache)
        numeric_hp = _numeric_vjp(
            lambda x: psi_gat(a, x, a_src, a_dst)[0].data, hp, ds
        )
        assert np.allclose(dhp, numeric_hp, atol=1e-4)
        eps = 1e-6
        for vec, grad in ((a_src, da_src), (a_dst, da_dst)):
            for i in range(k):
                vec[i] += eps
                up = float(np.dot(psi_gat(a, hp, a_src, a_dst)[0].data, ds))
                vec[i] -= 2 * eps
                down = float(np.dot(psi_gat(a, hp, a_src, a_dst)[0].data, ds))
                vec[i] += eps
                assert np.isclose(grad[i], (up - down) / (2 * eps), atol=1e-4)
