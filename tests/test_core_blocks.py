"""Tests for the Table-2 building blocks and activations."""

import numpy as np
import pytest

from repro.core.activations import (
    get_activation,
    leaky_relu,
    leaky_relu_grad,
)
from repro.core.blocks import (
    gram,
    matrix_plus_transpose,
    rep,
    rep_t,
    rs,
    sum_cols,
    sum_rows,
)
from tests.conftest import random_csr


class TestReplication:
    def test_rep_columns_are_x(self, rng):
        x = rng.normal(size=5)
        out = rep(x, 3)
        assert out.shape == (5, 3)
        for j in range(3):
            assert np.allclose(out[:, j], x)

    def test_rep_is_x_times_ones_row(self, rng):
        x = rng.normal(size=4)
        assert np.allclose(rep(x, 6), np.outer(x, np.ones(6)))

    def test_rep_t_rows_are_x(self, rng):
        x = rng.normal(size=5)
        out = rep_t(x, 3)
        assert out.shape == (3, 5)
        assert np.allclose(out, np.outer(np.ones(3), x))

    def test_rep_rejects_matrix(self, rng):
        with pytest.raises(ValueError):
            rep(rng.normal(size=(2, 2)), 3)


class TestSummation:
    def test_sum_rows_dense_and_sparse_agree(self, rng):
        csr = random_csr(rng, 7, 5, ensure_empty_row=True)
        assert np.allclose(sum_rows(csr), sum_rows(csr.to_dense()))

    def test_sum_cols_dense_and_sparse_agree(self, rng):
        csr = random_csr(rng, 7, 5)
        assert np.allclose(sum_cols(csr), sum_cols(csr.to_dense()))

    def test_rs_is_rep_of_sum(self, rng):
        x = rng.normal(size=(4, 6))
        out = rs(x, 6)
        assert np.allclose(out, np.outer(x.sum(axis=1), np.ones(6)))

    def test_rs_equals_ones_matrix_product(self, rng):
        """Table 2: rs_i(X) == X @ ones(n, i)."""
        x = rng.normal(size=(4, 6))
        assert np.allclose(rs(x, 3), x @ np.ones((6, 3)))


class TestGramAndSymmetrise:
    def test_gram(self, rng):
        x = rng.normal(size=(5, 3))
        assert np.allclose(gram(x), x @ x.T)

    def test_matrix_plus_transpose_dense(self, rng):
        x = rng.normal(size=(4, 4))
        out = matrix_plus_transpose(x)
        assert np.allclose(out, out.T)

    def test_matrix_plus_transpose_sparse(self, rng):
        csr = random_csr(rng, 6, 6)
        out = matrix_plus_transpose(csr)
        assert np.allclose(out.to_dense(), csr.to_dense() + csr.to_dense().T)

    def test_requires_square(self, rng):
        with pytest.raises(ValueError):
            matrix_plus_transpose(rng.normal(size=(3, 4)))


class TestActivations:
    @pytest.mark.parametrize(
        "name", ["relu", "identity", "tanh", "elu", "sigmoid", "leaky_relu"]
    )
    def test_gradient_matches_numeric(self, rng, name):
        act = get_activation(name)
        z = rng.normal(size=(4, 3)) + 0.05  # avoid the ReLU kink
        eps = 1e-6
        numeric = (act.fn(z + eps) - act.fn(z - eps)) / (2 * eps)
        assert np.allclose(act.grad(z), numeric, atol=1e-5)

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            get_activation("swish9000")

    def test_passthrough_of_activation_object(self):
        act = get_activation("relu")
        assert get_activation(act) is act

    def test_elu_no_overflow_for_large_negatives(self):
        act = get_activation("elu")
        out = act.fn(np.array([-1e4, -1e2, 0.0, 3.0]))
        assert np.all(np.isfinite(out))
        assert np.isclose(out[0], -1.0)

    def test_sigmoid_stable_both_tails(self):
        act = get_activation("sigmoid")
        out = act.fn(np.array([-1e3, 1e3]))
        assert np.allclose(out, [0.0, 1.0])

    def test_leaky_relu_slope(self):
        z = np.array([-2.0, 2.0])
        assert np.allclose(leaky_relu(z, 0.1), [-0.2, 2.0])
        assert np.allclose(leaky_relu_grad(z, 0.1), [0.1, 1.0])
