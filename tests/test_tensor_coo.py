"""Unit tests for the COO sparse format."""

import numpy as np
import pytest

from repro.tensor.coo import COOMatrix


class TestConstruction:
    def test_basic_shape_and_nnz(self):
        coo = COOMatrix([0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0], shape=(3, 3))
        assert coo.shape == (3, 3)
        assert coo.nnz == 3

    def test_default_ones_pattern(self):
        coo = COOMatrix([0, 1], [1, 0], shape=(2, 2))
        assert np.all(coo.data == 1)

    def test_shape_inferred_from_indices(self):
        coo = COOMatrix([0, 4], [2, 1], shape=None)
        assert coo.shape == (5, 3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            COOMatrix([0, 1], [1], shape=(2, 2))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            COOMatrix([0, 5], [0, 0], shape=(2, 2))

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            COOMatrix([0, -1], [0, 0], shape=(2, 2))


class TestCanonicalize:
    def test_duplicates_are_summed(self):
        coo = COOMatrix([0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0], shape=(2, 2))
        assert coo.nnz == 2
        dense = coo.to_dense()
        assert dense[0, 1] == 3.0
        assert dense[1, 0] == 5.0

    def test_sorted_row_major(self):
        coo = COOMatrix([2, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0], shape=(3, 3))
        assert list(coo.rows) == [0, 1, 2]

    def test_idempotent(self):
        coo = COOMatrix([1, 0], [0, 1], [1.0, 1.0], shape=(2, 2))
        before = (coo.rows.copy(), coo.cols.copy(), coo.data.copy())
        coo.canonicalize()
        assert np.all(before[0] == coo.rows)
        assert np.all(before[2] == coo.data)

    def test_empty_matrix(self):
        coo = COOMatrix(np.empty(0, np.int64), np.empty(0, np.int64),
                        shape=(4, 4))
        assert coo.nnz == 0
        assert coo.to_dense().sum() == 0


class TestTransforms:
    def test_transpose_roundtrip(self, rng):
        dense = (rng.random((6, 4)) < 0.4) * rng.normal(size=(6, 4))
        coo = COOMatrix.from_dense(dense)
        assert np.allclose(coo.transpose().to_dense(), dense.T)

    def test_symmetrize_makes_pattern_symmetric(self, rng):
        dense = (rng.random((8, 8)) < 0.3).astype(np.float32)
        np.fill_diagonal(dense, 0)
        sym = COOMatrix.from_dense(dense).symmetrize().to_dense()
        assert np.array_equal(sym != 0, (sym != 0).T)
        assert set(np.unique(sym)) <= {0.0, 1.0}

    def test_symmetrize_requires_square(self):
        with pytest.raises(ValueError):
            COOMatrix([0], [1], shape=(2, 3)).symmetrize()

    def test_remove_self_loops(self):
        coo = COOMatrix([0, 1, 1], [0, 1, 0], [1.0, 1.0, 1.0], shape=(2, 2))
        out = coo.remove_self_loops()
        assert out.nnz == 1
        assert out.to_dense()[1, 0] == 1.0

    def test_add_self_loops_full_diagonal(self):
        coo = COOMatrix([0, 1], [1, 0], shape=(3, 3))
        out = coo.add_self_loops(value=2.0).to_dense()
        assert np.all(np.diag(out) == 2.0)

    def test_add_self_loops_overwrites_existing(self):
        coo = COOMatrix([0, 0], [0, 1], [5.0, 1.0], shape=(2, 2))
        out = coo.add_self_loops(value=1.0).to_dense()
        assert out[0, 0] == 1.0  # not 6.0


class TestConversions:
    def test_dense_roundtrip(self, rng):
        dense = (rng.random((7, 5)) < 0.5) * rng.normal(size=(7, 5))
        assert np.allclose(COOMatrix.from_dense(dense).to_dense(), dense)

    def test_to_csr_matches_scipy(self, rng):
        import scipy.sparse as sp

        dense = (rng.random((9, 9)) < 0.3) * rng.normal(size=(9, 9))
        csr = COOMatrix.from_dense(dense).to_csr()
        ref = sp.csr_matrix(dense)
        ref.sort_indices()
        assert np.array_equal(csr.indptr, ref.indptr)
        assert np.array_equal(csr.indices, ref.indices)
        assert np.allclose(csr.data, ref.data)

    def test_degrees(self):
        coo = COOMatrix([0, 0, 2], [1, 2, 1], shape=(3, 3))
        assert list(coo.row_degrees()) == [2, 0, 1]
        assert list(coo.col_degrees()) == [0, 2, 1]
