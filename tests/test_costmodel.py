"""Tests for the two-rate cost model and flop accounting."""

import pytest

from repro.runtime.costmodel import (
    PIZ_DAINT,
    SPARSE_LABELS,
    CostModel,
    MachineParams,
)
from repro.runtime.stats import CommStats, RunStats
from repro.util.counters import FlopCounter, null_counter


def _stats_with(label: str, flops: int) -> RunStats:
    stats = CommStats(0)
    stats.flops.add(flops, label)
    return RunStats(per_rank=[stats])


class TestTwoRateModel:
    def test_sparse_flops_cost_more(self):
        model = CostModel()
        sparse = model.compute_time(_stats_with("SpMM", 10**9))
        dense = model.compute_time(_stats_with("MM", 10**9))
        expected_ratio = PIZ_DAINT.flop_rate / PIZ_DAINT.sparse_flop_rate
        assert sparse / dense == pytest.approx(expected_ratio)

    def test_mixed_labels_sum(self):
        stats = CommStats(0)
        stats.flops.add(10**9, "SpMM")
        stats.flops.add(10**9, "MM")
        model = CostModel()
        total = model.compute_time(RunStats(per_rank=[stats]))
        assert total == pytest.approx(
            10**9 / PIZ_DAINT.sparse_flop_rate
            + 10**9 / PIZ_DAINT.flop_rate
        )

    def test_max_over_ranks(self):
        light, heavy = CommStats(0), CommStats(1)
        light.flops.add(10, "MM")
        heavy.flops.add(10**10, "MM")
        model = CostModel()
        run = RunStats(per_rank=[light, heavy])
        assert model.compute_time(run) == pytest.approx(
            10**10 / PIZ_DAINT.flop_rate
        )

    def test_all_kernel_labels_classified(self):
        """The attention kernels' labels must hit the sparse rate —
        adding a new kernel label silently billed at dense speed would
        skew every benchmark."""
        for label in ("SpMM", "SDDMM", "softmax", "softmax_bwd",
                      "agnn_vjp", "gat_vjp"):
            assert label in SPARSE_LABELS

    def test_sparse_rate_validated(self):
        with pytest.raises(ValueError):
            MachineParams(sparse_flop_rate=0)


class TestFlopCounter:
    def test_accumulation_and_labels(self):
        counter = FlopCounter()
        counter.add(10, "a")
        counter.add(5, "a")
        counter.add(3, "b")
        assert counter.total == 18
        assert counter.by_label == {"a": 15, "b": 3}

    def test_merge(self):
        a, b = FlopCounter(), FlopCounter()
        a.add(10, "x")
        b.add(5, "x")
        b.add(2, "y")
        a.merge(b)
        assert a.total == 17
        assert a.by_label == {"x": 15, "y": 2}

    def test_reset(self):
        counter = FlopCounter()
        counter.add(10)
        counter.reset()
        assert counter.total == 0
        assert counter.by_label == {}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FlopCounter().add(-1)

    def test_null_counter_discards(self):
        counter = null_counter()
        counter.add(10**12, "anything")
        assert counter.total == 0


class TestCommStatsPhases:
    def test_phase_switching(self):
        stats = CommStats(3)
        stats.set_phase("one")
        stats.record_send(100)
        stats.set_phase("two")
        stats.record_send(50)
        stats.record_send(50)
        assert stats.by_phase == {"one": 100, "two": 100}
        assert stats.messages_sent == 3
        assert stats.words_sent == 50

    def test_runstats_phase_max(self):
        a, b = CommStats(0), CommStats(1)
        a.set_phase("halo"); a.record_send(100)
        b.set_phase("halo"); b.record_send(300)
        run = RunStats(per_rank=[a, b])
        assert run.phase_bytes() == {"halo": 300}
