"""Property-based tests of the distributed machinery.

Hypothesis drives random problem shapes (vertex counts that don't
divide the grid, odd feature widths, random densities) through the
1.5D engine and asserts exact agreement with single-node execution —
the strongest random-input statement of the library's core invariant.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distributed.api import distributed_inference
from repro.distributed.ops import OpSequencer, reduce_and_redistribute
from repro.distributed.partition import block_range, distribute_adjacency, \
    distribute_features
from repro.graphs import erdos_renyi
from repro.graphs.prep import prepare_adjacency
from repro.models import build_model
from repro.runtime import run_spmd, square_grid
from repro.tensor.kernels import spmm

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def problem_shape(draw):
    n = draw(st.integers(min_value=20, max_value=120))
    k = draw(st.integers(min_value=1, max_value=9))
    p = draw(st.sampled_from([1, 4, 9]))
    mean_degree = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return n, k, p, mean_degree, seed


class TestRandomisedEquivalence:
    @given(problem_shape(), st.sampled_from(["VA", "AGNN", "GAT"]))
    @SLOW
    def test_inference_equivalence(self, shape, model_name):
        n, k, p, mean_degree, seed = shape
        a = prepare_adjacency(
            erdos_renyi(n, max(1, mean_degree * n // 2), seed=seed),
            dtype=np.float64,
        )
        rng = np.random.default_rng(seed)
        h = rng.normal(size=(n, k))
        reference = build_model(
            model_name, k, max(2, k), 3, num_layers=2, seed=seed % 97,
            dtype=np.float64,
        ).forward(a, h, training=False)
        result = distributed_inference(
            model_name, a, h, max(2, k), 3, num_layers=2, p=p,
            seed=seed % 97, dtype=np.float64,
        )
        scale = max(1.0, np.abs(reference).max())
        assert np.abs(result.output - reference).max() / scale < 1e-9

    @given(
        st.integers(min_value=4, max_value=100),
        st.integers(min_value=1, max_value=7),
        st.sampled_from([4, 9]),
        st.integers(min_value=0, max_value=1000),
    )
    @SLOW
    def test_reduce_redistribute_random_shapes(self, n, k, p, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < 0.3) * rng.normal(size=(n, n))
        from repro.tensor.csr import CSRMatrix

        a = CSRMatrix.from_dense(dense)
        h = rng.normal(size=(n, k))
        reference = dense @ h

        def program(comm):
            grid = square_grid(comm)
            out = reduce_and_redistribute(
                grid,
                spmm(distribute_adjacency(a, grid),
                     distribute_features(h, grid), backend="reference"),
                OpSequencer(),
            )
            c0, c1 = block_range(n, grid.py, grid.col)
            assert np.allclose(out, reference[c0:c1], atol=1e-9)
            return True

        assert all(run_spmd(p, program, timeout=30).values)


class TestRandomisedCollectives:
    @given(
        st.sampled_from([2, 3, 5, 8]),
        st.lists(st.integers(min_value=1, max_value=40), min_size=1,
                 max_size=3),
        st.integers(min_value=0, max_value=1000),
    )
    @SLOW
    def test_allreduce_random_shapes(self, p, shape, seed):
        rng = np.random.default_rng(seed)
        data = [rng.normal(size=tuple(shape)) for _ in range(p)]
        expected = sum(data)

        def program(comm):
            out = comm.allreduce(data[comm.rank])
            assert np.allclose(out, expected, atol=1e-9)
            return True

        assert all(run_spmd(p, program, timeout=20).values)

    @given(
        st.sampled_from([2, 4, 7]),
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=0, max_value=100),
    )
    @SLOW
    def test_bcast_algorithms_agree(self, p, size, seed):
        rng = np.random.default_rng(seed)
        payload = rng.normal(size=size).astype(np.float32)

        def program(comm):
            tree = comm.bcast(
                payload if comm.rank == 0 else None, root=0,
                algorithm="binomial",
            )
            sag = comm.bcast(
                payload if comm.rank == 0 else None, root=0,
                algorithm="scatter_allgather",
            )
            auto = comm.bcast(payload if comm.rank == 0 else None, root=0)
            assert np.array_equal(tree, payload)
            assert np.array_equal(sag, payload)
            assert np.array_equal(auto, payload)
            return True

        assert all(run_spmd(p, program, timeout=20).values)
