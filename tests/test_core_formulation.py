"""Tests for the programmable generic layer (Eq. 1)."""

import numpy as np
import pytest

from repro.core.formulation import AttentionSpec, GenericLayer
from repro.core.psi import psi_va, psi_va_vjp
from repro.models.va import VALayer
from repro.tensor.semiring import TROPICAL_MAX, adjacency_values


@pytest.fixture
def va_spec():
    return AttentionSpec(
        psi=lambda a, h: psi_va(a, h),
        psi_vjp=lambda ds, cache: psi_va_vjp(ds, cache),
        name="va",
    )


class TestForward:
    def test_matches_hand_written_va_layer(self, rng, small_adjacency,
                                           va_spec):
        h = rng.normal(size=(60, 5))
        layer = GenericLayer(5, 4, va_spec, activation="relu", seed=3,
                             dtype=np.float64)
        reference = VALayer(5, 4, activation="relu", seed=3, dtype=np.float64)
        reference.weight = layer.weight.copy()
        out, _ = layer.forward(small_adjacency, h)
        ref, _ = reference.forward(small_adjacency, h)
        assert np.allclose(out, ref)

    def test_composition_orders_agree_for_real_semiring(
        self, rng, small_adjacency, va_spec
    ):
        """Phi and ⊕ commute mathematically for linear Phi (Section 4.4)."""
        h = rng.normal(size=(60, 5))
        proj = GenericLayer(5, 4, va_spec, seed=1, dtype=np.float64)
        agg_spec = AttentionSpec(psi=va_spec.psi, psi_vjp=va_spec.psi_vjp,
                                 order="aggregate_first")
        agg = GenericLayer(5, 4, agg_spec, seed=1, dtype=np.float64)
        agg.weight = proj.weight.copy()
        out_p, _ = proj.forward(small_adjacency, h)
        out_a, _ = agg.forward(small_adjacency, h)
        assert np.allclose(out_p, out_a, atol=1e-10)

    def test_max_semiring_aggregation(self, rng, small_adjacency):
        """A custom A-GNN: max-aggregation over attention scores."""
        def psi(a, h):
            s, cache = psi_va(a, h)
            return s.with_data(adjacency_values(TROPICAL_MAX, s.data)), cache

        spec = AttentionSpec(psi=psi, aggregate=TROPICAL_MAX,
                             order="aggregate_first", name="max-va")
        layer = GenericLayer(5, 4, spec, activation="identity", seed=0,
                             dtype=np.float64)
        h = rng.normal(size=(60, 5))
        out, _ = layer.forward(small_adjacency, h)
        # Aggregated features are neighbourhood maxima of h.
        dense = small_adjacency.to_dense()
        expected = np.full((60, 5), -np.inf)
        for i in range(60):
            nz = np.nonzero(dense[i])[0]
            if nz.size:
                expected[i] = h[nz].max(axis=0)
        assert np.allclose(out, expected @ layer.weight)

    def test_inference_mode_skips_cache(self, rng, small_adjacency, va_spec):
        layer = GenericLayer(5, 4, va_spec)
        h = rng.normal(size=(60, 5)).astype(np.float32)
        _, cache = layer.forward(small_adjacency, h, training=False)
        assert cache is None


class TestBackward:
    def test_gradcheck_with_psi_vjp(self, rng, small_adjacency, va_spec):
        h = rng.normal(size=(60, 4))
        layer = GenericLayer(4, 3, va_spec, activation="tanh", seed=2,
                             dtype=np.float64)
        target = rng.normal(size=(60, 3))

        def loss_value():
            out, _ = layer.forward(small_adjacency, h, training=False)
            return float(((out - target) ** 2).sum())

        out, cache = layer.forward(small_adjacency, h)
        g = 2 * (out - target) * layer.activation.grad(cache.z)
        _, grads = layer.backward(cache, g)
        eps = 1e-6
        flat = layer.weight.reshape(-1)
        for i in rng.choice(flat.size, size=6, replace=False):
            orig = flat[i]
            flat[i] = orig + eps
            up = loss_value()
            flat[i] = orig - eps
            down = loss_value()
            flat[i] = orig
            num = (up - down) / (2 * eps)
            assert np.isclose(grads["weight"].reshape(-1)[i], num, atol=1e-4)

    def test_backward_without_vjp_detaches_attention(
        self, rng, small_adjacency
    ):
        spec = AttentionSpec(psi=lambda a, h: psi_va(a, h))  # no vjp
        layer = GenericLayer(4, 3, spec, seed=2, dtype=np.float64)
        h = rng.normal(size=(60, 4))
        out, cache = layer.forward(small_adjacency, h)
        dh, grads = layer.backward(cache, np.ones_like(out))
        assert dh.shape == h.shape
        assert grads["weight"].shape == (4, 3)

    def test_exotic_semiring_training_rejected(self, rng, small_adjacency):
        spec = AttentionSpec(psi=lambda a, h: psi_va(a, h),
                             aggregate=TROPICAL_MAX)
        layer = GenericLayer(4, 3, spec, dtype=np.float64)
        h = rng.normal(size=(60, 4))
        # Forward with raw scores is fine; backward must refuse.
        s_out, cache = layer.forward(small_adjacency, h)
        with pytest.raises(NotImplementedError):
            layer.backward(cache, np.ones_like(s_out))

    def test_apply_gradients_sgd(self, rng, small_adjacency, va_spec):
        layer = GenericLayer(4, 3, va_spec, dtype=np.float64)
        before = layer.weight.copy()
        layer.apply_gradients({"weight": np.ones_like(layer.weight)}, lr=0.1)
        assert np.allclose(layer.weight, before - 0.1)


class TestSpecValidation:
    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            AttentionSpec(psi=lambda a, h: None, order="sideways")
