"""Tests for the single-node models (forward semantics, structure)."""

import numpy as np
import pytest

from repro.models import (
    GnnModel,
    MultiHeadGATLayer,
    build_model,
    normalize_adjacency,
)
from repro.models.agnn import AGNNLayer
from repro.models.gat import GATLayer
from repro.models.gcn import GCNLayer
from repro.models.va import VALayer
from repro.util.counters import FlopCounter

MODELS = ["VA", "AGNN", "GAT", "GCN"]


def adjacency_for(name, a):
    return normalize_adjacency(a) if name == "GCN" else a


class TestBuildModel:
    @pytest.mark.parametrize("name", MODELS)
    def test_dimensions_chain(self, name):
        model = build_model(name, 8, 16, 3, num_layers=4)
        assert model.num_layers == 4
        assert model.layers[0].in_dim == 8
        assert model.layers[-1].out_dim == 3

    def test_final_layer_is_linear(self):
        model = build_model("GAT", 8, 16, 3, num_layers=3)
        assert model.layers[-1].activation.name == "identity"
        assert model.layers[0].activation.name == "elu"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            build_model("Transformer", 8, 16, 3)

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            GnnModel([])


class TestForward:
    @pytest.mark.parametrize("name", MODELS)
    def test_output_shape(self, rng, small_adjacency, name):
        model = build_model(name, 5, 8, 3, num_layers=2, dtype=np.float64)
        h = rng.normal(size=(60, 5))
        out = model.forward(adjacency_for(name, small_adjacency), h)
        assert out.shape == (60, 3)
        assert np.all(np.isfinite(out))

    @pytest.mark.parametrize("name", MODELS)
    def test_inference_equals_training_forward(self, rng, small_adjacency,
                                               name):
        model = build_model(name, 5, 8, 3, num_layers=2, dtype=np.float64)
        h = rng.normal(size=(60, 5))
        a = adjacency_for(name, small_adjacency)
        out_train = model.forward(a, h, training=True)
        out_infer = model.forward(a, h, training=False)
        assert np.allclose(out_train, out_infer)

    @pytest.mark.parametrize("name", ["VA", "AGNN", "GCN"])
    def test_composition_orders_equivalent(self, rng, small_adjacency, name):
        h = rng.normal(size=(60, 5))
        a = adjacency_for(name, small_adjacency)
        m_proj = build_model(name, 5, 8, 3, num_layers=2, seed=4,
                             order="project_first", dtype=np.float64)
        m_agg = build_model(name, 5, 8, 3, num_layers=2, seed=4,
                            order="aggregate_first", dtype=np.float64)
        assert np.allclose(
            m_proj.forward(a, h), m_agg.forward(a, h), atol=1e-9
        )

    def test_deterministic_given_seed(self, rng, small_adjacency):
        h = rng.normal(size=(60, 5))
        out1 = build_model("GAT", 5, 8, 3, seed=9, dtype=np.float64).forward(
            small_adjacency, h
        )
        out2 = build_model("GAT", 5, 8, 3, seed=9, dtype=np.float64).forward(
            small_adjacency, h
        )
        assert np.array_equal(out1, out2)

    def test_flops_counted(self, rng, small_adjacency):
        model = build_model("GAT", 5, 8, 3, num_layers=2)
        counter = FlopCounter()
        model.forward(small_adjacency, rng.normal(size=(60, 5)).astype(np.float32),
                      counter=counter)
        assert counter.total > 0
        assert "SpMM" in counter.by_label

    def test_backward_requires_training_forward(self, rng, small_adjacency):
        model = build_model("VA", 5, 8, 3, num_layers=2, dtype=np.float64)
        h = rng.normal(size=(60, 5))
        model.forward(small_adjacency, h, training=False)
        with pytest.raises(RuntimeError):
            model.backward(np.zeros((60, 3)))

    def test_zero_caches_frees_state(self, rng, small_adjacency):
        model = build_model("VA", 5, 8, 3, num_layers=2, dtype=np.float64)
        model.forward(small_adjacency, rng.normal(size=(60, 5)))
        model.zero_caches()
        with pytest.raises(RuntimeError):
            model.backward(np.zeros((60, 3)))


class TestLayerValidation:
    @pytest.mark.parametrize("cls", [VALayer, AGNNLayer, GCNLayer])
    def test_invalid_order_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(4, 4, order="diagonal_first")

    def test_multihead_invalid_combine(self):
        with pytest.raises(ValueError):
            MultiHeadGATLayer(4, 4, heads=2, combine="xor")


class TestMultiHeadGAT:
    def test_concat_width(self, rng, small_adjacency):
        layer = MultiHeadGATLayer(5, 4, heads=3, combine="concat",
                                  dtype=np.float64)
        out, _ = layer.forward(small_adjacency, rng.normal(size=(60, 5)))
        assert out.shape == (60, 12)

    def test_mean_width(self, rng, small_adjacency):
        layer = MultiHeadGATLayer(5, 4, heads=3, combine="mean",
                                  dtype=np.float64)
        out, _ = layer.forward(small_adjacency, rng.normal(size=(60, 5)))
        assert out.shape == (60, 4)

    def test_single_head_mean_matches_gat_layer(self, rng, small_adjacency):
        multi = MultiHeadGATLayer(5, 4, heads=1, combine="mean",
                                  activation="elu", seed=7, dtype=np.float64)
        single = GATLayer(5, 4, activation="elu", seed=7, dtype=np.float64)
        h = rng.normal(size=(60, 5))
        out_m, _ = multi.forward(small_adjacency, h)
        out_s, _ = single.forward(small_adjacency, h)
        assert np.allclose(out_m, out_s)

    def test_model_factory_with_heads(self, rng, small_adjacency):
        model = build_model("GAT", 5, 4, 3, num_layers=2, heads=2,
                            dtype=np.float64)
        out = model.forward(small_adjacency, rng.normal(size=(60, 5)))
        assert out.shape == (60, 3)


class TestNormalizeAdjacency:
    def test_sym_rows_scale(self, small_adjacency):
        norm = normalize_adjacency(small_adjacency, mode="sym")
        # Symmetric normalisation of a symmetric pattern stays symmetric.
        dense = norm.to_dense()
        assert np.allclose(dense, dense.T, atol=1e-6)

    def test_row_normalisation_sums_to_one(self, small_adjacency):
        norm = normalize_adjacency(small_adjacency, mode="row")
        assert np.allclose(norm.row_sum(), 1.0, atol=1e-6)

    def test_none_mode_keeps_binary(self, small_adjacency):
        norm = normalize_adjacency(small_adjacency, mode="none")
        assert set(np.unique(norm.data)) == {1.0}

    def test_invalid_mode(self, small_adjacency):
        with pytest.raises(ValueError):
            normalize_adjacency(small_adjacency, mode="cube")
