"""Tests for the communication-trace facility."""

import numpy as np

from repro.runtime import run_spmd
from repro.runtime.trace import CommTrace, diff_traces


class TestTraceRecording:
    def test_disabled_by_default(self):
        result = run_spmd(2, lambda comm: comm.allreduce(np.ones(2)),
                          timeout=10)
        assert result.stats.per_rank[0].trace is None

    def test_records_sends_with_phases(self):
        def program(comm):
            comm.stats.set_phase("alpha")
            comm.allreduce(np.ones(4))
            comm.stats.set_phase("beta")
            comm.bcast(np.ones(4) if comm.rank == 0 else None, root=0)
            return True

        result = run_spmd(2, program, timeout=10, trace=True)
        trace = result.stats.per_rank[0].trace
        assert trace is not None
        assert len(trace.events) == result.stats.per_rank[0].messages_sent
        phases = trace.by_phase()
        assert set(phases) <= {"alpha", "beta"}
        assert sum(phases.values()) == len(trace.events)

    def test_capacity_bound(self):
        trace = CommTrace(capacity=3)
        for i in range(5):
            trace.record(i, "p", 10)
        assert len(trace.events) == 3
        assert trace.dropped == 2

    def test_ring_drops_oldest_keeps_newest(self):
        trace = CommTrace(capacity=3)
        for i in range(5):
            trace.record(i, "p", 10)
        # A true ring: the tail survives, the head is evicted — a long
        # run's trace ends at the interesting part.
        assert [e.sequence for e in trace.events] == [2, 3, 4]
        assert trace.dropped_events == 2
        assert trace.dropped_waits == 0

    def test_wait_ring_counts_separately(self):
        trace = CommTrace(capacity=2)
        for i in range(4):
            trace.record_wait(f"phase{i}", 0.1)
        assert [w.phase for w in trace.waits] == ["phase2", "phase3"]
        assert trace.dropped_waits == 2
        assert trace.dropped_events == 0
        assert trace.dropped == 2


class TestDiffTraces:
    def test_agreement(self):
        a, b = CommTrace(), CommTrace()
        for trace in (a, b):
            trace.record(1, "x", 10)
            trace.record(2, "y", 99)  # sizes may differ; phases matter
        b.events[1] = type(b.events[1])(2, "y", 50)
        assert diff_traces(a, b) == "traces agree"

    def test_phase_divergence_detected(self):
        a, b = CommTrace(), CommTrace()
        a.record(1, "psi", 10)
        b.record(1, "redistribute", 10)
        report = diff_traces(a, b)
        assert "divergence at event 0" in report
        assert "psi" in report and "redistribute" in report

    def test_length_divergence_detected(self):
        a, b = CommTrace(), CommTrace()
        a.record(1, "x", 10)
        a.record(2, "x", 10)
        b.record(1, "x", 10)
        assert "extra events" in diff_traces(a, b)

    def test_truncation_noted_in_report(self):
        a, b = CommTrace(capacity=2), CommTrace(capacity=2)
        for i in range(4):
            a.record(i, "x", 10)
        b.record(2, "x", 10)
        b.record(3, "x", 10)
        report = diff_traces(a, b)
        assert report.startswith("traces agree")
        assert "ring truncation" in report
        assert "rank A dropped 2" in report

    def test_truncation_noted_on_divergence(self):
        a, b = CommTrace(capacity=2), CommTrace(capacity=2)
        for i in range(4):
            a.record(i, "x", 10)
        b.record(0, "y", 10)
        report = diff_traces(a, b)
        assert "divergence at event 0" in report
        assert "ring truncation" in report

    def test_symmetric_collectives_give_identical_traces(self):
        """Ring collectives send the same message sequence on every
        rank, so their traces agree exactly — the baseline diff_traces
        compares against. (Tree collectives are rank-asymmetric by
        design: roots and leaves send different counts.)"""

        def program(comm):
            comm.stats.set_phase("setup")
            comm.allgather(np.full(2, float(comm.rank)))
            comm.stats.set_phase("work")
            for _ in range(3):
                comm.alltoall(
                    [np.full(2, float(d)) for d in range(comm.size)]
                )
            return True

        result = run_spmd(4, program, timeout=10, trace=True)
        traces = [s.trace for s in result.stats.per_rank]
        for other in traces[1:]:
            assert diff_traces(traces[0], other) == "traces agree"
