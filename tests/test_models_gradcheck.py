"""Finite-difference validation of every model's backward pass.

This is the strongest correctness statement in the suite: the paper's
hand-derived global backward formulations (Eq. 6–13 and the per-model
Gamma expressions) are checked against central differences on every
parameter of every layer, for both composition orders.
"""

import numpy as np
import pytest

from repro.fusion import DagLayer
from repro.models import build_model, normalize_adjacency
from repro.models.base import GnnModel
from repro.training.loss import MSELoss


def max_rel_gradient_error(model, a, h, target, rng, samples=6):
    loss = MSELoss()
    out = model.forward(a, h, training=True)
    grads = model.backward(loss.gradient(out, target))
    eps = 1e-6
    worst = 0.0
    for layer_index, layer in enumerate(model.layers):
        for name, param in layer.parameters().items():
            flat = param.reshape(-1)
            count = min(samples, flat.size)
            for i in rng.choice(flat.size, size=count, replace=False):
                orig = flat[i]
                flat[i] = orig + eps
                up = loss.value(model.forward(a, h, training=False), target)
                flat[i] = orig - eps
                down = loss.value(model.forward(a, h, training=False), target)
                flat[i] = orig
                numeric = (up - down) / (2 * eps)
                analytic = np.atleast_1d(
                    np.asarray(grads[layer_index][name])
                ).reshape(-1)[i]
                denom = max(1e-8, abs(numeric) + abs(analytic))
                worst = max(worst, abs(numeric - analytic) / denom)
    return worst


@pytest.fixture
def problem(rng, small_adjacency):
    n = small_adjacency.shape[0]
    h = rng.normal(size=(n, 5))
    target = rng.normal(size=(n, 3))
    return small_adjacency, h, target


class TestGradcheck:
    @pytest.mark.parametrize("order", ["project_first", "aggregate_first"])
    @pytest.mark.parametrize("name", ["VA", "AGNN", "GCN"])
    def test_orderable_models(self, rng, problem, name, order):
        a, h, target = problem
        a = normalize_adjacency(a) if name == "GCN" else a
        model = build_model(name, 5, 6, 3, num_layers=2, seed=11,
                            activation="tanh", order=order, dtype=np.float64)
        assert max_rel_gradient_error(model, a, h, target, rng) < 1e-6

    def test_gat(self, rng, problem):
        a, h, target = problem
        model = build_model("GAT", 5, 6, 3, num_layers=2, seed=11,
                            activation="tanh", dtype=np.float64)
        assert max_rel_gradient_error(model, a, h, target, rng) < 1e-5

    def test_gat_multihead(self, rng, problem):
        a, h, target = problem
        model = build_model("GAT", 5, 6, 3, num_layers=2, seed=11,
                            activation="tanh", heads=2, dtype=np.float64)
        assert max_rel_gradient_error(model, a, h, target, rng) < 1e-5

    def test_agnn_learnable_beta(self, rng, problem):
        a, h, target = problem
        model = build_model("AGNN", 5, 6, 3, num_layers=2, seed=11,
                            activation="tanh", learnable_beta=True,
                            dtype=np.float64)
        assert max_rel_gradient_error(model, a, h, target, rng) < 1e-6

    def test_three_layer_deep_chain(self, rng, problem):
        """Error propagation through multiple hops (Eq. 6 chaining)."""
        a, h, target = problem
        model = build_model("VA", 5, 4, 3, num_layers=3, seed=2,
                            activation="tanh", dtype=np.float64)
        assert max_rel_gradient_error(model, a, h, target, rng) < 1e-6

    @pytest.mark.parametrize("activation", ["relu", "elu", "sigmoid"])
    def test_activation_variants(self, rng, problem, activation):
        a, h, target = problem
        model = build_model("AGNN", 5, 6, 3, num_layers=2, seed=3,
                            activation=activation, dtype=np.float64)
        # ReLU kinks can inflate finite-difference error slightly.
        assert max_rel_gradient_error(model, a, h, target, rng) < 1e-3


class TestDagLayerGradcheck:
    """The *derived* backward (autodiff over the op-DAG IR) must pass
    the same central-difference check as the hand-written VJPs."""

    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("va", {}),
            ("agnn", {"beta": 0.9}),
            ("gat", {"slope": 0.2}),
        ],
    )
    def test_dag_models(self, rng, problem, name, kwargs):
        a, h, target = problem
        model = GnnModel([
            DagLayer(name, 5, 6, activation="tanh", seed=11,
                     dtype=np.float64, **kwargs),
            DagLayer(name, 6, 3, activation="identity", seed=12,
                     dtype=np.float64, **kwargs),
        ])
        assert max_rel_gradient_error(model, a, h, target, rng) < 1e-6

    def test_mixed_hand_and_dag_stack(self, rng, problem):
        """DagLayer honours the GnnLayer contract: it stacks with the
        hand-fused layers inside one model."""
        from repro.models.va import VALayer

        a, h, target = problem
        model = GnnModel([
            VALayer(5, 6, activation="tanh", seed=11, dtype=np.float64),
            DagLayer("va", 6, 3, activation="identity", seed=12,
                     dtype=np.float64),
        ])
        assert max_rel_gradient_error(model, a, h, target, rng) < 1e-6
