"""Non-blocking fabric handles and comm/compute-overlapped schedules.

Three guarantees are pinned here:

* **Handle semantics** — ``isend``/``irecv`` completion handles behave
  like MPI requests on both fabrics: out-of-order completion, legal
  double-wait returning the cached payload, and abort-aware waits.
  Deadlock reports must name the blocked ``(src, dst, tag)`` edge and
  list pending *isends* exactly like blocking sends.
* **Traffic parity** — the ``i``-prefixed collectives and the
  overlapped layer schedules (``overlap=True`` / ``REPRO_OVERLAP=1``)
  move byte-for-byte the same traffic as their blocking counterparts
  and produce bit-identical numerics, on the thread and the process
  backend alike.
* **Wait accounting** — blocked-on-recv seconds land in
  ``CommStats.wait_s`` (per phase), in the trace, and in
  ``RunStats.breakdown()``; the cost model's overlap projection
  (``overlapped_time``/``serial_fraction``) is consistent with the
  synchronous total.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.strong_scaling import can_show_speedup
from repro.distributed.api import distributed_inference, distributed_train
from repro.distributed.schedule import OVERLAP_ENV_VAR, overlap_default
from repro.graphs import synthetic_classification
from repro.models import normalize_adjacency
from repro.runtime.costmodel import CostModel
from repro.runtime.executor import run_spmd
from repro.runtime.fabric import (
    ABORT_MESSAGE,
    FabricTimeoutError,
    ThreadFabric,
)
from repro.runtime.stats import CommStats, RunStats
from tests import _spmd_programs as programs

MODELS = ["VA", "AGNN", "GAT", "GCN"]


@pytest.fixture(scope="module")
def problem():
    return synthetic_classification(n=123, feature_dim=7, seed=2)


def adjacency_for(name, data):
    return (
        normalize_adjacency(data.adjacency)
        if name == "GCN"
        else data.adjacency
    )


def _train(problem, name, overlap, backend=None, epochs=3, **layer_kwargs):
    np.seterr(over="ignore", invalid="ignore")
    a = adjacency_for(name, problem)
    h = problem.features.astype(np.float64)
    return distributed_train(
        name, a, h, problem.labels, 8, 4, num_layers=2, p=4,
        epochs=epochs, lr=0.005, mask=problem.train_mask, seed=5,
        dtype=np.float64, overlap=overlap, backend=backend,
        **layer_kwargs,
    )


def _assert_same_traffic(stats_a, stats_b):
    """Per-rank byte/message/phase accounting must be identical."""
    assert len(stats_a.per_rank) == len(stats_b.per_rank)
    for rank_a, rank_b in zip(stats_a.per_rank, stats_b.per_rank):
        assert rank_a.bytes_sent == rank_b.bytes_sent
        assert rank_a.messages_sent == rank_b.messages_sent
        assert rank_a.by_phase == rank_b.by_phase


# ---------------------------------------------------------------------------
# Fabric-level handle semantics
# ---------------------------------------------------------------------------
class TestHandleSemantics:
    def test_send_handle_is_born_complete(self):
        fabric = ThreadFabric(2)
        handle = fabric.isend(0, 1, "t", np.ones(3))
        assert handle.done
        assert handle.test()
        assert handle.wait() is None
        assert np.all(fabric.get(0, 1, "t") == 1.0)

    def test_out_of_order_completion(self):
        fabric = ThreadFabric(1)
        first = fabric.irecv(0, 0, "a")
        second = fabric.irecv(0, 0, "b")
        assert not first.test() and not second.test()
        fabric.put(0, 0, "b", np.full(3, 2.0))
        # The later-posted receive completes first.
        assert second.test()
        assert np.all(second.wait() == 2.0)
        fabric.put(0, 0, "a", np.full(3, 1.0))
        assert np.all(first.wait() == 1.0)

    def test_double_wait_returns_cached_payload(self):
        fabric = ThreadFabric(1)
        fabric.put(0, 0, "t", np.arange(4.0))
        handle = fabric.irecv(0, 0, "t")
        value = handle.wait()
        assert handle.done
        assert handle.wait() is value
        assert handle.test()

    def test_wait_after_abort_raises(self):
        fabric = ThreadFabric(1, timeout=0.2)
        handle = fabric.irecv(0, 0, "never")
        fabric.abort()
        with pytest.raises(FabricTimeoutError, match=ABORT_MESSAGE):
            handle.wait()
        with pytest.raises(FabricTimeoutError, match=ABORT_MESSAGE):
            handle.test()

    def test_completed_handle_survives_abort(self):
        fabric = ThreadFabric(1, timeout=0.2)
        fabric.put(0, 0, "t", np.ones(2))
        handle = fabric.irecv(0, 0, "t")
        value = handle.wait()
        fabric.abort()
        assert handle.wait() is value

    def test_deadlock_report_names_edge_and_pending_isend(self):
        fabric = ThreadFabric(2, timeout=0.2)
        fabric.isend(1, 0, "decoy", np.ones(3))
        with pytest.raises(FabricTimeoutError) as err:
            fabric.get(1, 0, "missing", timeout=0.2)
        message = str(err.value)
        assert "src=1, dst=0, tag='missing'" in message
        assert "likely deadlock" in message
        assert "tag='decoy'" in message  # the undelivered isend

    def test_isend_deadlock_reported_on_process_backend(self):
        with pytest.raises(RuntimeError, match="timed out|deadlock") as err:
            run_spmd(2, programs.isend_then_deadlock, backend="process",
                     timeout=2.0)
        message = str(err.value)
        assert "missing" in message   # the blocked tag
        assert "decoy" in message     # rank 1's pending isend

    def test_communicator_isend_irecv_roundtrip(self):
        def program(comm):
            if comm.rank == 0:
                future = comm.irecv(1, tag="x")
                value = future.wait()
                assert future.done
                assert future.wait() is value
                return float(value.sum())
            handle = comm.isend(np.full(4, 2.0), 0, tag="x")
            assert handle.done and handle.test()
            return 0.0

        result = run_spmd(2, program, backend="thread")
        assert result.values[0] == 8.0

    def test_communicator_irecv_rejects_bad_source(self):
        def program(comm):
            with pytest.raises(ValueError, match="outside communicator"):
                comm.irecv(comm.size)
            return True

        assert all(run_spmd(2, program, backend="thread").values)


# ---------------------------------------------------------------------------
# Non-blocking collectives
# ---------------------------------------------------------------------------
def _collective_suite(comm, nonblocking: bool):
    """Run the same collectives blocking or via handles; same checksums."""
    comm.stats.set_phase("mix")
    payload = np.arange(64, dtype=np.float64) + comm.rank
    ones = np.full(16, float(comm.rank + 1))
    own = np.array([float(comm.rank)])
    blocks = [np.full(8, float(comm.rank * 10 + i)) for i in range(comm.size)]
    if nonblocking:
        h_bcast = comm.ibcast(payload, root=0)
        h_sum = comm.iallreduce(ones)
        h_gather = comm.iallgather(own)
        h_reduce = comm.ireduce(np.ones(4), root=0)
        h_scatter = comm.ireduce_scatter(blocks)
        # Waits deliberately run in reverse initiation order — the
        # engine drains earlier handles first, so this cannot deadlock.
        scattered = h_scatter.wait()
        reduced = h_reduce.wait()
        gathered = h_gather.wait()
        total = h_sum.wait()
        bcast = h_bcast.wait()
        assert all(h.done for h in
                   (h_bcast, h_sum, h_gather, h_reduce, h_scatter))
    else:
        bcast = comm.bcast(payload, root=0)
        total = comm.allreduce(ones)
        gathered = comm.allgather(own)
        reduced = comm.reduce(np.ones(4), root=0)
        scattered = comm.reduce_scatter(blocks)
    return (
        float(bcast.sum()),
        float(total[0]),
        sum(float(b[0]) for b in gathered),
        -1.0 if reduced is None else float(reduced.sum()),
        float(scattered.sum()),
    )


class TestNonblockingCollectives:
    @pytest.mark.parametrize("p", [1, 4])
    def test_results_and_traffic_match_blocking(self, p):
        blocking = run_spmd(
            p, lambda comm: _collective_suite(comm, False), backend="thread"
        )
        handles = run_spmd(
            p, lambda comm: _collective_suite(comm, True), backend="thread"
        )
        assert blocking.values == handles.values
        _assert_same_traffic(blocking.stats, handles.stats)

    def test_double_wait_returns_cached_result(self):
        def program(comm):
            handle = comm.iallreduce(np.full(8, float(comm.rank + 1)))
            first = handle.wait()
            return first is handle.wait()

        assert all(run_spmd(4, program, backend="thread").values)

    def test_process_backend_agrees_with_thread(self):
        thread = run_spmd(4, programs.nonblocking_collective_mix,
                          backend="thread")
        proc = run_spmd(4, programs.nonblocking_collective_mix,
                        backend="process")
        assert thread.values == proc.values
        _assert_same_traffic(thread.stats, proc.stats)


# ---------------------------------------------------------------------------
# Overlapped layer schedules: bit parity with the synchronous oracle
# ---------------------------------------------------------------------------
class TestOverlapBitParity:
    @pytest.mark.parametrize("name", MODELS)
    def test_training_bit_identical(self, problem, name):
        sync = _train(problem, name, overlap=False)
        ovl = _train(problem, name, overlap=True)
        assert sync.losses == ovl.losses
        assert np.array_equal(sync.output, ovl.output)
        _assert_same_traffic(sync.stats, ovl.stats)

    def test_multi_head_gat_bit_identical(self, problem):
        sync = _train(problem, "GAT", overlap=False, heads=3)
        ovl = _train(problem, "GAT", overlap=True, heads=3)
        assert sync.losses == ovl.losses
        assert np.array_equal(sync.output, ovl.output)
        _assert_same_traffic(sync.stats, ovl.stats)

    def test_learnable_beta_agnn_bit_identical(self, problem):
        sync = _train(problem, "AGNN", overlap=False, learnable_beta=True)
        ovl = _train(problem, "AGNN", overlap=True, learnable_beta=True)
        assert sync.losses == ovl.losses
        assert np.array_equal(sync.output, ovl.output)
        _assert_same_traffic(sync.stats, ovl.stats)

    @pytest.mark.parametrize("name", MODELS)
    def test_inference_bit_identical(self, problem, name):
        a = adjacency_for(name, problem)
        h = problem.features.astype(np.float64)
        sync = distributed_inference(
            name, a, h, 8, 4, num_layers=3, p=4, seed=5,
            dtype=np.float64, overlap=False,
        )
        ovl = distributed_inference(
            name, a, h, 8, 4, num_layers=3, p=4, seed=5,
            dtype=np.float64, overlap=True,
        )
        assert np.array_equal(sync.output, ovl.output)
        _assert_same_traffic(sync.stats, ovl.stats)

    @pytest.mark.parametrize("name", MODELS)
    def test_thread_process_parity_under_overlap(self, problem, name,
                                                 monkeypatch):
        """REPRO_OVERLAP=1: both backends, bit-identical numerics."""
        monkeypatch.setenv(OVERLAP_ENV_VAR, "1")
        thread = _train(problem, name, overlap=None, backend="thread",
                        epochs=2)
        proc = _train(problem, name, overlap=None, backend="process",
                      epochs=2)
        assert thread.losses == proc.losses
        assert np.array_equal(thread.output, proc.output)
        _assert_same_traffic(thread.stats, proc.stats)


class TestOverlapEnvDefault:
    def test_truthy_and_falsy_values(self, monkeypatch):
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv(OVERLAP_ENV_VAR, value)
            assert overlap_default() is True
        for value in ("", "0", "false", "Off", "no"):
            monkeypatch.setenv(OVERLAP_ENV_VAR, value)
            assert overlap_default() is False
        monkeypatch.delenv(OVERLAP_ENV_VAR, raising=False)
        assert overlap_default() is False

    def test_invalid_value_raises(self, monkeypatch):
        monkeypatch.setenv(OVERLAP_ENV_VAR, "bogus")
        with pytest.raises(ValueError, match=OVERLAP_ENV_VAR):
            overlap_default()

    def test_env_var_drives_layer_execution(self, problem, monkeypatch):
        a = problem.adjacency
        h = problem.features.astype(np.float64)
        baseline = distributed_inference(
            "VA", a, h, 8, 4, num_layers=2, p=4, seed=3,
            dtype=np.float64, overlap=False,
        )
        monkeypatch.setenv(OVERLAP_ENV_VAR, "1")
        via_env = distributed_inference(
            "VA", a, h, 8, 4, num_layers=2, p=4, seed=3, dtype=np.float64,
        )
        assert np.array_equal(baseline.output, via_env.output)
        _assert_same_traffic(baseline.stats, via_env.stats)


# ---------------------------------------------------------------------------
# Wait-time accounting
# ---------------------------------------------------------------------------
class TestWaitBreakdown:
    def test_blocked_recv_charges_wait_s(self):
        result = run_spmd(2, programs.waity_pingpong, backend="thread",
                          trace=True)
        blocked = result.stats.per_rank[0]
        sender = result.stats.per_rank[1]
        assert blocked.wait_s >= 0.1
        assert blocked.wait_by_phase.get("stall", 0.0) >= 0.1
        assert sender.wait_s == 0.0
        # The trace mirrors the counters.
        assert blocked.trace is not None and blocked.trace.waits
        assert blocked.trace.wait_s() == pytest.approx(blocked.wait_s)
        assert blocked.trace.wait_by_phase()["stall"] >= 0.1

    def test_run_stats_breakdown_and_summary(self):
        result = run_spmd(2, programs.waity_pingpong, backend="thread")
        stats = result.stats
        assert stats.max_wait_s >= 0.1
        assert stats.total_wait_s >= stats.max_wait_s
        assert stats.summary()["max_wait_s"] == stats.max_wait_s
        rows = stats.breakdown()
        assert [row["rank"] for row in rows] == [0, 1]
        for row in rows:
            assert row["wall_s"] == pytest.approx(
                row["compute_s"] + row["wait_s"]
            )
            assert 0.0 <= row["wait_fraction"] <= 1.0
        # The blocked rank spent nearly all its wall time waiting; the
        # sleeping sender spent none of it waiting.
        assert rows[0]["wait_fraction"] > 0.5
        assert rows[1]["wait_fraction"] == 0.0
        assert rows[0]["wait_by_phase"].get("stall", 0.0) >= 0.1

    def test_process_backend_reports_wait_s(self):
        result = run_spmd(2, programs.waity_pingpong, backend="process")
        assert result.stats.per_rank[0].wait_s >= 0.1
        assert result.stats.max_wall_s > 0.0

    def test_overlap_does_not_change_comm_words(self, problem):
        """The headline invariant: overlap moves wait time, not bytes."""
        sync = _train(problem, "AGNN", overlap=False, epochs=2)
        ovl = _train(problem, "AGNN", overlap=True, epochs=2)
        assert sync.stats.max_words_sent == ovl.stats.max_words_sent
        assert sync.stats.phase_bytes() == ovl.stats.phase_bytes()


# ---------------------------------------------------------------------------
# Cost model: overlap projection
# ---------------------------------------------------------------------------
class TestCostModelOverlap:
    def _stats(self):
        stats = CommStats(0)
        stats.flops.add(2_000_000_000, "mm")    # dense rate
        stats.flops.add(500_000_000, "SpMM")    # sparse rate
        stats.record_send(40_000_000)
        stats.record_send(1_000)
        return RunStats(per_rank=[stats])

    def test_overlapped_time_bounds(self):
        model = CostModel()
        stats = self._stats()
        total = model.time(stats)
        overlapped = model.overlapped_time(stats)
        compute = model.compute_time(stats)
        latency = model.params.alpha * stats.max_messages_sent
        bandwidth = model.params.beta * stats.max_bytes_sent
        assert overlapped == pytest.approx(
            max(compute, bandwidth) + latency
        )
        assert compute <= overlapped <= total

    def test_serial_fraction(self):
        model = CostModel()
        stats = self._stats()
        fraction = model.serial_fraction(stats)
        assert 0.0 < fraction <= 1.0
        assert fraction == pytest.approx(
            model.overlapped_time(stats) / model.time(stats)
        )
        assert model.serial_fraction(RunStats(per_rank=[])) == 1.0

    def test_breakdown_keeps_synchronous_total(self):
        model = CostModel()
        stats = self._stats()
        breakdown = model.breakdown(stats)
        assert breakdown["total_s"] == pytest.approx(
            breakdown["compute_s"] + breakdown["communication_s"]
        )
        assert breakdown["overlapped_s"] == pytest.approx(
            model.overlapped_time(stats)
        )
        assert breakdown["serial_fraction"] == pytest.approx(
            model.serial_fraction(stats)
        )


def test_can_show_speedup_tracks_core_count():
    assert can_show_speedup(1)
    assert not can_show_speedup(10**6)
