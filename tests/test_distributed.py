"""Tests for the 1.5D distributed machinery: partitioning, ops, layers."""

import numpy as np
import pytest

from repro.distributed.ops import (
    OpSequencer,
    distributed_row_softmax,
    distributed_row_softmax_backward,
    reduce_and_redistribute,
    row_bcast_from_diagonal,
    transpose_exchange,
)
from repro.distributed.partition import (
    block_range,
    block_ranges,
    collect_feature_blocks,
    distribute_adjacency,
    distribute_features,
)
from repro.runtime import run_spmd, square_grid
from repro.tensor.kernels import spmm
from repro.tensor.segment import segment_softmax
from tests.conftest import random_csr


class TestBlockRanges:
    def test_cover_without_gaps(self):
        ranges = block_ranges(13, 4)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 13
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0

    def test_balanced_within_one(self):
        sizes = [b - a for a, b in block_ranges(17, 5)]
        assert max(sizes) - min(sizes) <= 1

    def test_block_range_matches_block_ranges(self):
        for n, parts in [(13, 4), (16, 4), (7, 7), (5, 2)]:
            full = block_ranges(n, parts)
            for index in range(parts):
                assert block_range(n, parts, index) == full[index]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            block_ranges(5, 0)
        with pytest.raises(ValueError):
            block_range(5, 2, 3)


class TestPartition:
    @pytest.mark.parametrize("n", [16, 13])
    def test_adjacency_blocks_tile_the_matrix(self, rng, n):
        a = random_csr(rng, n, n)
        dense = a.to_dense()

        def program(comm):
            grid = square_grid(comm)
            block = distribute_adjacency(a, grid)
            r0, r1 = block_range(n, grid.px, grid.row)
            c0, c1 = block_range(n, grid.py, grid.col)
            assert np.allclose(block.to_dense(), dense[r0:r1, c0:c1])
            return True

        assert all(run_spmd(4, program, timeout=20).values)

    def test_feature_blocks_column_replicated(self, rng):
        h = rng.normal(size=(12, 3))

        def program(comm):
            grid = square_grid(comm)
            block = distribute_features(h, grid)
            c0, c1 = block_range(12, grid.py, grid.col)
            assert np.allclose(block, h[c0:c1])
            return block

        values = run_spmd(4, program, timeout=20).values
        # Ranks 0 and 2 share grid column 0 -> identical replicas.
        assert np.allclose(values[0], values[2])

    def test_collect_reassembles(self, rng):
        h = rng.normal(size=(10, 2))

        def program(comm):
            grid = square_grid(comm)
            block = distribute_features(h, grid)
            return collect_feature_blocks(grid, block)

        values = run_spmd(4, program, timeout=20).values
        assert np.allclose(values[0], h)
        assert values[1] is None

    def test_rectangular_grid_rejected(self, rng):
        a = random_csr(rng, 12, 12)

        def program(comm):
            grid = square_grid(comm, px=2, py=3)
            with pytest.raises(ValueError):
                distribute_adjacency(a, grid)
            return True

        assert all(run_spmd(6, program, timeout=20).values)


class TestOps:
    @pytest.mark.parametrize("p", [1, 4, 9])
    @pytest.mark.parametrize("n", [18, 13])
    def test_reduce_and_redistribute_equals_spmm(self, rng, p, n):
        a = random_csr(rng, n, n)
        h = rng.normal(size=(n, 3))
        reference = a.to_dense() @ h

        def program(comm):
            grid = square_grid(comm)
            a_block = distribute_adjacency(a, grid)
            h_block = distribute_features(h, grid)
            partial = spmm(a_block, h_block, backend="reference")
            out = reduce_and_redistribute(grid, partial, OpSequencer())
            c0, c1 = block_range(n, grid.py, grid.col)
            assert np.allclose(out, reference[c0:c1])
            return True

        assert all(run_spmd(p, program, timeout=30).values)

    def test_row_bcast_from_diagonal(self, rng):
        h = rng.normal(size=(12, 4))

        def program(comm):
            grid = square_grid(comm)
            block = distribute_features(h, grid)
            row_block = row_bcast_from_diagonal(grid, block)
            r0, r1 = block_range(12, grid.px, grid.row)
            assert np.allclose(row_block, h[r0:r1])
            return True

        assert all(run_spmd(4, program, timeout=20).values)

    def test_transpose_exchange_swaps_blocks(self):
        def program(comm):
            grid = square_grid(comm)
            payload = np.full(2, float(grid.row))
            out = transpose_exchange(grid, payload, OpSequencer())
            assert np.allclose(out, float(grid.col))
            return True

        assert all(run_spmd(9, program, timeout=20).values)

    @pytest.mark.parametrize("p", [1, 4, 9])
    def test_distributed_softmax_matches_single_node(self, rng, p):
        n = 15
        a = random_csr(rng, n, n, density=0.4)
        scores = rng.normal(size=a.nnz)
        expected = segment_softmax(scores, a.indptr)

        def program(comm):
            grid = square_grid(comm)
            a_block = distribute_adjacency(a, grid)
            # Scores restricted to the block's entries, in block order.
            r0, r1 = block_range(n, grid.px, grid.row)
            c0, c1 = block_range(n, grid.py, grid.col)
            full = a.with_data(scores).extract_block(r0, r1, c0, c1)
            out = distributed_row_softmax(grid, a_block, full.data)
            ref_block = (
                a.with_data(expected).extract_block(r0, r1, c0, c1).data
            )
            assert np.allclose(out, ref_block)
            return True

        assert all(run_spmd(p, program, timeout=30).values)

    def test_distributed_softmax_backward_matches(self, rng):
        n = 12
        a = random_csr(rng, n, n, density=0.5)
        scores = rng.normal(size=a.nnz)
        grads = rng.normal(size=a.nnz)
        soft = segment_softmax(scores, a.indptr)
        from repro.tensor.kernels import masked_row_softmax_backward

        expected = masked_row_softmax_backward(soft, grads, a.indptr)

        def program(comm):
            grid = square_grid(comm)
            r0, r1 = block_range(n, grid.px, grid.row)
            c0, c1 = block_range(n, grid.py, grid.col)
            a_block = distribute_adjacency(a, grid)
            soft_b = a.with_data(soft).extract_block(r0, r1, c0, c1).data
            grad_b = a.with_data(grads).extract_block(r0, r1, c0, c1).data
            out = distributed_row_softmax_backward(grid, a_block, soft_b,
                                                   grad_b)
            ref = a.with_data(expected).extract_block(r0, r1, c0, c1).data
            assert np.allclose(out, ref)
            return True

        assert all(run_spmd(4, program, timeout=20).values)
