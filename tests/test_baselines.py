"""Tests for the local-formulation baselines (DGL/DistDGL stand-ins)."""

import numpy as np
import pytest

from repro.baselines.dist_local import (
    build_partition,
    dist_local_inference,
    dist_local_train,
)
from repro.baselines.message_passing import (
    LocalGraph,
    local_agnn_layer,
    local_gat_layer,
    local_va_layer,
)
from repro.baselines.minibatch import (
    MiniBatchConfig,
    minibatch_train,
    sample_block,
)
from repro.core.psi import psi_agnn, psi_gat, psi_va
from repro.graphs import synthetic_classification
from repro.models import build_model, normalize_adjacency
from repro.runtime import run_spmd
from repro.tensor.kernels import spmm
from repro.training import SGD, SoftmaxCrossEntropyLoss, Trainer
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def problem():
    return synthetic_classification(n=123, feature_dim=7, seed=2)


class TestLocalVsGlobalFormulation:
    """Section 2.2 vs Section 4: the two views must agree numerically."""

    def test_va(self, rng, small_adjacency):
        h = rng.normal(size=(60, 5))
        w = rng.normal(size=(5, 4))
        graph = LocalGraph.single_node(small_adjacency, h)
        local = local_va_layer(graph, w)
        s, _ = psi_va(small_adjacency, h)
        global_out = spmm(s, h @ w)
        assert np.allclose(local, global_out, atol=1e-9)

    def test_agnn(self, rng, small_adjacency):
        h = rng.normal(size=(60, 5))
        w = rng.normal(size=(5, 4))
        graph = LocalGraph.single_node(small_adjacency, h)
        local = local_agnn_layer(graph, w, beta=1.7)
        s, _ = psi_agnn(small_adjacency, h, beta=1.7)
        assert np.allclose(local, spmm(s, h @ w), atol=1e-9)

    def test_gat(self, rng, small_adjacency):
        h = rng.normal(size=(60, 5))
        w = rng.normal(size=(5, 4))
        a_src = rng.normal(size=4)
        a_dst = rng.normal(size=4)
        graph = LocalGraph.single_node(small_adjacency, h)
        local = local_gat_layer(graph, w, a_src, a_dst)
        s, _ = psi_gat(small_adjacency, h @ w, a_src, a_dst)
        assert np.allclose(local, spmm(s, h @ w), atol=1e-9)

    def test_update_all_rejects_unknown_reducer(self, rng, small_adjacency):
        graph = LocalGraph.single_node(small_adjacency,
                                       rng.normal(size=(60, 2)))
        with pytest.raises(NotImplementedError):
            graph.update_all(np.zeros((small_adjacency.nnz, 2)),
                             reducer="max")


class TestDistLocalEngine:
    @pytest.mark.parametrize("p", [1, 3, 4])
    @pytest.mark.parametrize("name", ["VA", "AGNN", "GAT", "GCN"])
    def test_inference_matches_single_node(self, problem, name, p):
        a = (
            normalize_adjacency(problem.adjacency)
            if name == "GCN"
            else problem.adjacency
        )
        h = problem.features.astype(np.float64)
        reference = build_model(
            name, 7, 8, 4, num_layers=3, seed=5, dtype=np.float64
        ).forward(a, h, training=False)
        out, stats = dist_local_inference(
            name, a, h, 8, 4, num_layers=3, p=p, seed=5, dtype=np.float64
        )
        scale = max(1.0, np.abs(reference).max())
        assert np.abs(out - reference).max() / scale < 1e-10
        if p > 1:
            assert stats.phase_bytes().get("halo", 0) > 0

    @pytest.mark.parametrize("name", ["VA", "AGNN", "GAT", "GCN"])
    def test_training_matches_single_node(self, problem, name):
        np.seterr(over="ignore", invalid="ignore")
        a = (
            normalize_adjacency(problem.adjacency)
            if name == "GCN"
            else problem.adjacency
        )
        h = problem.features.astype(np.float64)
        model = build_model(name, 7, 8, 4, num_layers=2, seed=5,
                            dtype=np.float64)
        trainer = Trainer(
            model, SoftmaxCrossEntropyLoss(problem.train_mask), SGD(0.005)
        )
        reference = trainer.fit(a, h, problem.labels, epochs=3)
        losses, _ = dist_local_train(
            name, a, h, problem.labels, 8, 4, num_layers=2, p=4, epochs=3,
            lr=0.005, mask=problem.train_mask, seed=5, dtype=np.float64,
        )
        for ref, got in zip(reference.losses, losses):
            assert abs(ref - got) / max(1.0, abs(ref)) < 1e-8

    def test_halo_plan_counts(self, problem):
        """The halo plan must request exactly the distinct remote
        neighbours of the owned rows."""
        a = problem.adjacency
        n = a.shape[0]

        def program(comm):
            part = build_partition(comm, a, n)
            dense = a.to_dense()
            remote = set()
            for i in range(part.r0, part.r1):
                for j in np.nonzero(dense[i])[0]:
                    if not part.r0 <= j < part.r1:
                        remote.add(int(j))
            assert set(part.halo_ids.tolist()) == remote
            assert int(part.recv_counts.sum()) == len(remote)
            return True

        assert all(run_spmd(3, program, timeout=20).values)

    def test_halo_volume_grows_with_density(self):
        """Denser graphs → bigger halos: the Omega(nkd/p) behaviour."""
        from repro.graphs import erdos_renyi
        from repro.graphs.prep import prepare_adjacency

        h = np.zeros((128, 8), dtype=np.float32)
        sparse_a = prepare_adjacency(erdos_renyi(128, 300, seed=0))
        dense_a = prepare_adjacency(erdos_renyi(128, 3000, seed=0))
        _, sparse_stats = dist_local_inference(
            "GCN", normalize_adjacency(sparse_a), h, 8, 4, p=4, seed=0
        )
        _, dense_stats = dist_local_inference(
            "GCN", normalize_adjacency(dense_a), h, 8, 4, p=4, seed=0
        )
        assert (
            dense_stats.phase_bytes()["halo"]
            > sparse_stats.phase_bytes()["halo"]
        )


class TestMiniBatch:
    def test_sample_block_contains_targets(self, problem):
        rng = make_rng(0)
        targets = np.array([3, 10, 50])
        vertices, block, edges = sample_block(
            problem.adjacency, targets, (5, 5), rng
        )
        assert set(targets.tolist()) <= set(vertices.tolist())
        assert edges > 0
        assert block.shape == (len(vertices), len(vertices))
        # Block edges are the sampled ones plus self loops only.
        assert block.nnz <= edges + len(vertices)

    def test_sample_block_respects_fanout(self, problem):
        rng = make_rng(0)
        small, _block, edges_small = sample_block(
            problem.adjacency, np.array([0]), (2,), rng
        )
        assert edges_small <= 2
        assert len(small) <= 3

    def test_training_reduces_loss(self, problem):
        losses, stats = minibatch_train(
            "GCN", normalize_adjacency(problem.adjacency), problem.features,
            problem.labels, 16, 4, num_layers=2, p=4, iterations=8, lr=0.05,
            config=MiniBatchConfig(batch_size=64, fanouts=(5, 5)),
        )
        assert losses[-1] < losses[0]

    def test_sampling_flops_charged(self, problem):
        _, stats = minibatch_train(
            "GAT", problem.adjacency, problem.features, problem.labels,
            8, 4, num_layers=2, p=4, iterations=1,
            config=MiniBatchConfig(batch_size=32, fanouts=(4, 4)),
        )
        labels = set()
        for rank_stats in stats.per_rank:
            labels |= set(rank_stats.flops.by_label)
        assert "sampling" in labels
        phases = stats.phase_bytes()
        assert phases.get("fetch", 0) > 0
        assert phases.get("gradsync", 0) > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MiniBatchConfig(batch_size=0)
        with pytest.raises(ValueError):
            MiniBatchConfig(fanouts=())
