"""Opt-in wall-clock regression gate (``-m benchcompare``).

Deselected by default (see ``addopts`` in ``pyproject.toml``): timing
baselines are machine-specific, so the gate only means something on
the machine that recorded ``benchmarks/BENCH_kernels.json``. Run with

.. code-block:: console

   $ PYTHONPATH=src python -m pytest -m benchcompare tests/test_bench_regression.py

and regenerate the baseline with
``python benchmarks/compare_bench.py --update``.
"""

from __future__ import annotations

import pytest

from repro.bench.regress import (
    BASELINE_PATH,
    compare,
    load_baseline,
    run_suite,
)

pytestmark = pytest.mark.benchcompare


def test_kernels_within_threshold_of_baseline():
    assert BASELINE_PATH.exists(), (
        f"no committed baseline at {BASELINE_PATH}; run "
        "`python benchmarks/compare_bench.py --update`"
    )
    baseline = load_baseline()
    current = run_suite()
    regressions = compare(current, baseline)
    assert not regressions, "kernel regressions vs baseline: " + ", ".join(
        f"{name} {base * 1e3:.3f}ms -> {cur * 1e3:.3f}ms"
        for name, base, cur in regressions
    )
