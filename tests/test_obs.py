"""Tests for the observability subsystem (span tracing + metrics).

Covers the tracer's null fast path and env gating, span nesting and
counter deltas, picklability (the process-fabric contract), the
metrics registry's exact quantiles, the Chrome trace-event emission
guarantees Perfetto relies on (sorted timestamps, matched and
well-nested B/E pairs, one pid per rank), the flat profile's
flop-reconciliation against standalone counters, run-level tracing
through the SPMD executor, and the report CLI — including the
traced-vs-untraced bit-identity contract.
"""

import json
import pickle

import numpy as np
import pytest

from repro.graphs import synthetic_classification
from repro.models import build_model
from repro.obs.export import (
    format_top_spans,
    profile_spans,
    to_chrome_trace,
    write_chrome_trace,
    write_profile_csv,
    write_profile_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    TRACE_ENV_VAR,
    Span,
    Tracer,
    install_global_tracer,
    install_tracer,
    null_tracer,
    trace_enabled_default,
    traced,
    tracer,
)
from repro.runtime.executor import run_spmd
from repro.runtime.stats import CommStats, RunStats
from repro.tensor.kernels import spmm
from repro.training import SGD, SoftmaxCrossEntropyLoss, Trainer
from repro.util.counters import FlopCounter, event_counter
from tests import _spmd_programs as programs


@pytest.fixture
def live_tracer():
    """A thread-locally installed tracer, uninstalled afterwards."""
    t = Tracer(rank=0)
    install_tracer(t)
    yield t
    install_tracer(None)


class TestEnvGate:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        assert trace_enabled_default() is False

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("ON", True), ("yes", True),
        ("0", False), ("false", False), ("off", False), ("NO", False),
    ])
    def test_boolean_spellings(self, monkeypatch, raw, expected):
        monkeypatch.setenv(TRACE_ENV_VAR, raw)
        assert trace_enabled_default() is expected

    def test_garbage_fails_fast(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, "verbose")
        with pytest.raises(ValueError, match=TRACE_ENV_VAR):
            trace_enabled_default()


class TestNullFastPath:
    def test_default_tracer_is_null(self):
        assert tracer() is null_tracer()
        assert tracer().enabled is False

    def test_null_span_is_shared_noop(self):
        t = null_tracer()
        handle = t.span("anything", counter=FlopCounter(), attr=1)
        assert handle is t.span("other")
        with handle as h:
            h.annotate(extra=2)
        t.add_slice("wait", 0.0, 1.0)
        t.annotate(foo=3)
        assert t.spans == []

    def test_traced_decorator_disabled_is_passthrough(self):
        calls = []

        @traced("probe")
        def fn(x, counter=None):
            calls.append(x)
            return x * 2

        assert fn(21) == 42
        assert calls == [21]
        assert null_tracer().spans == []


class TestTracer:
    def test_nesting_depths_and_order(self, live_tracer):
        with live_tracer.span("outer", kind="a"):
            with live_tracer.span("inner"):
                pass
            with live_tracer.span("inner"):
                pass
        names = [(s.name, s.depth) for s in live_tracer.spans]
        # Spans close innermost-first.
        assert names == [("inner", 1), ("inner", 1), ("outer", 0)]
        outer = live_tracer.spans[-1]
        assert outer.attrs == {"kind": "a"}
        assert outer.t1 >= max(s.t1 for s in live_tracer.spans[:-1])

    def test_flop_delta_captured(self, live_tracer):
        counter = FlopCounter()
        with live_tracer.span("work", counter=counter):
            counter.add(123, "k")
        counter.add(999, "outside")
        assert live_tracer.spans[0].flops == 123

    def test_event_delta_captured(self, live_tracer):
        before = event_counter().count("obs_test_probe")
        with live_tracer.span("work"):
            event_counter().bump("obs_test_probe", 7)
        assert live_tracer.spans[0].events >= 7
        assert event_counter().count("obs_test_probe") == before + 7

    def test_annotate_hits_innermost_open_span(self, live_tracer):
        with live_tracer.span("outer"):
            with live_tracer.span("inner"):
                live_tracer.annotate(strategy="merge", blocks=4)
        inner = next(s for s in live_tracer.spans if s.name == "inner")
        outer = next(s for s in live_tracer.spans if s.name == "outer")
        assert inner.attrs == {"strategy": "merge", "blocks": 4}
        assert outer.attrs == {}

    def test_annotate_without_open_span_is_noop(self, live_tracer):
        live_tracer.annotate(ignored=True)
        assert live_tracer.spans == []

    def test_add_slice_renders_inside_open_span(self, live_tracer):
        with live_tracer.span("step"):
            live_tracer.add_slice("wait", 1.0, 2.0, phase="fetch")
        wait = next(s for s in live_tracer.spans if s.name == "wait")
        step = next(s for s in live_tracer.spans if s.name == "step")
        assert wait.depth == step.depth + 1
        assert wait.attrs == {"phase": "fetch"}
        assert wait.duration_s == 1.0

    def test_pickle_roundtrip(self, live_tracer):
        with live_tracer.span("a", key="v"):
            pass
        clone = pickle.loads(pickle.dumps(live_tracer))
        assert clone.rank == live_tracer.rank
        assert [(s.name, s.attrs) for s in clone.spans] == [("a", {"key": "v"})]
        # _open is rebuilt: the clone can record fresh spans.
        with clone.span("b"):
            pass
        assert clone.spans[-1].name == "b"

    def test_thread_local_beats_global(self):
        local, global_ = Tracer(rank=1), Tracer(rank=2)
        install_global_tracer(global_)
        try:
            assert tracer() is global_
            install_tracer(local)
            assert tracer() is local
        finally:
            install_tracer(None)
            install_global_tracer(None)
        assert tracer() is null_tracer()

    def test_traced_decorator_records_counter_kwarg(self, live_tracer):
        @traced("probe")
        def fn(counter=None):
            counter.add(50, "x")

        fn(counter=FlopCounter())
        assert live_tracer.spans[0].name == "probe"
        assert live_tracer.spans[0].flops == 50


class TestMetrics:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("depth")
        g.set(3.5)
        g.inc()
        g.dec(0.5)
        assert g.value == 4.0

    def test_histogram_exact_quantiles(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100
        assert h.sum == pytest.approx(5050.0)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0
        # Exact quantiles: np.quantile over the retained observations.
        assert h.quantile(0.5) == np.quantile(np.arange(1.0, 101.0), 0.5)
        pct = h.percentiles(50, 99)
        assert set(pct) == {"p50", "p99"}

    def test_histogram_validates_quantile(self):
        h = Histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_histogram_quantile_is_nan_and_counted(self):
        # An empty series must answer NaN (a fabricated 0.0 would read
        # as a real latency) and bump the process-wide warning counter.
        # The registry's counters are monotone, so assert the delta.
        from repro.obs.metrics import metrics

        warn = metrics().counter("histogram.empty_quantile")
        before = warn.value
        h = Histogram("lat")
        for q in (0.0, 0.5, 0.99):
            assert np.isnan(h.quantile(q))
        assert warn.value == before + 3
        assert np.isnan(h.percentiles(50)["p50"])
        # A non-empty histogram does not touch the warning counter.
        h.observe(1.0)
        assert h.quantile(0.5) == 1.0
        assert warn.value == before + 4

    def test_registry_type_strict(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(TypeError):
            reg.gauge("x")
        assert "x" in reg
        assert "y" not in reg

    def test_registry_snapshot_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("sends").inc(3)
        reg.gauge("depth").set(2.0)
        reg.histogram("lat").observe(1.0)
        snap = reg.snapshot()
        assert snap["sends"] == 3
        assert snap["depth"] == 2.0
        assert snap["lat"]["count"] == 1
        reg.reset()
        assert reg.snapshot() == {}


def _make_spanned_tracer(rank: int) -> Tracer:
    t = Tracer(rank=rank)
    t.spans.extend([
        Span("root", 0.0, 10.0, depth=0),
        Span("child", 1.0, 4.0, depth=1, attrs={"k": 1}, flops=5),
        Span("child", 5.0, 9.0, depth=1),
        # An out-of-band slice overhanging its parent by "jitter":
        Span("wait", 8.5, 10.5, depth=2),
    ])
    return t


def _check_be_discipline(events: list[dict]) -> None:
    """Every B has a matching, properly nested E on its (pid, tid)."""
    stacks: dict[tuple, list[str]] = {}
    for e in events:
        if e["ph"] == "M":
            continue
        stack = stacks.setdefault((e["pid"], e["tid"]), [])
        if e["ph"] == "B":
            stack.append(e["name"])
        else:
            assert e["ph"] == "E"
            assert stack, f"E without open B: {e}"
            assert stack.pop() == e["name"]
    for stack in stacks.values():
        assert stack == []


class TestChromeTrace:
    def test_document_shape_and_ordering(self):
        doc = to_chrome_trace([_make_spanned_tracer(0),
                               _make_spanned_tracer(1)])
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        _check_be_discipline(events)
        assert {e["pid"] for e in events} == {0, 1}

    def test_one_process_track_per_rank(self):
        doc = to_chrome_trace(
            [_make_spanned_tracer(0), _make_spanned_tracer(3)],
            labels={3: "driver"},
        )
        meta = [e for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"]
        assert {(e["pid"], e["args"]["name"]) for e in meta} == {
            (0, "rank 0"), (3, "driver"),
        }

    def test_overhanging_slice_is_clamped_not_crossed(self):
        doc = to_chrome_trace([_make_spanned_tracer(0)])
        events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        _check_be_discipline(events)
        # The wait slice starts inside the second child span [5, 9], so
        # it is clamped to that parent's end (9.0) rather than emitted
        # as a crossed pair running to its raw 10.5 end.
        wait_end = [e for e in events
                    if e["name"] == "wait" and e["ph"] == "E"]
        assert wait_end[0]["ts"] == pytest.approx(9.0 * 1e6)

    def test_args_carry_attrs_and_flops(self):
        doc = to_chrome_trace([_make_spanned_tracer(0)])
        begin = [e for e in doc["traceEvents"]
                 if e["ph"] == "B" and e["name"] == "child"]
        assert begin[0]["args"] == {"k": 1, "flops": 5}
        assert begin[0]["cat"] == "child"

    def test_none_tracers_skipped(self):
        doc = to_chrome_trace([None, _make_spanned_tracer(2)])
        assert {e["pid"] for e in doc["traceEvents"]} == {2}

    def test_written_file_is_valid_json(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "trace.json", [_make_spanned_tracer(0)]
        )
        with open(path) as fh:
            doc = json.load(fh)
        assert "traceEvents" in doc


class TestProfile:
    def test_self_vs_total_seconds(self):
        rows = profile_spans([_make_spanned_tracer(0)])
        by_name = {r["name"]: r for r in rows}
        root = by_name["root"]
        assert root["count"] == 1
        assert root["total_s"] == pytest.approx(10.0)
        # Children cover [1,4] + [5,9] = 7s of the root's 10s.
        assert root["self_s"] == pytest.approx(3.0)
        assert by_name["child"]["count"] == 2
        assert by_name["child"]["flops"] == 5
        # The overhanging wait slice is clamped into its parent child
        # span, so it contributes [8.5, 9.0] rather than its raw 2.0s.
        assert by_name["wait"]["total_s"] == pytest.approx(0.5)
        # Sorted by inclusive time, descending.
        assert rows[0]["name"] == "root"

    def test_format_top_spans_truncates(self):
        rows = profile_spans([_make_spanned_tracer(0)])
        table = format_top_spans(rows, limit=1)
        assert "root" in table
        assert "more span names" in table

    def test_writers(self, tmp_path):
        rows = profile_spans([_make_spanned_tracer(0)])
        jpath = write_profile_json(tmp_path / "p.json", rows,
                                   extra={"case": "t"})
        cpath = write_profile_csv(tmp_path / "p.csv", rows)
        doc = json.loads(jpath.read_text())
        assert doc["case"] == "t"
        assert doc["spans"][0]["name"] == "root"
        header = cpath.read_text().splitlines()[0]
        assert header == "name,count,total_s,self_s,flops,events"

    def test_kernel_flop_deltas_match_standalone_counter(self):
        """Span-boundary FlopCounter deltas = a standalone counter run."""
        from repro.graphs import erdos_renyi
        from repro.graphs.prep import prepare_adjacency

        rng = np.random.default_rng(0)
        n, k = 64, 8
        a = prepare_adjacency(erdos_renyi(n, 4 * n, seed=0))
        h = rng.normal(size=(n, k))

        standalone = FlopCounter()
        spmm(a, h, counter=standalone)

        t = Tracer(rank=0)
        install_tracer(t)
        try:
            traced_counter = FlopCounter()
            spmm(a, h, counter=traced_counter)
        finally:
            install_tracer(None)
        assert traced_counter.total == standalone.total
        spans = [s for s in t.spans if s.name == "kernel.spmm"]
        assert len(spans) == 1
        assert spans[0].flops == standalone.total


class TestRunLevelTracing:
    def test_thread_executor_installs_per_rank_tracers(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, "1")
        result = run_spmd(2, programs.traced_span_work, timeout=30)
        # At least child.step; the collective may add wait slices.
        assert all(v >= 1 for v in result.values)
        for rank, stats in enumerate(result.stats.per_rank):
            t = stats.tracer
            assert t is not None and t.rank == rank
            names = [s.name for s in t.spans]
            assert "child.step" in names
            assert names[-1] == "rank.program"

    def test_disabled_run_carries_no_tracer(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        result = run_spmd(2, programs.traced_span_work, timeout=30)
        assert result.values == [0, 0]
        assert all(s.tracer is None for s in result.stats.per_rank)

    def test_wait_slices_land_on_rank_timeline(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, "1")
        result = run_spmd(2, programs.waity_pingpong, timeout=30,
                          sleep_s=0.05)
        t = result.stats.per_rank[0].tracer
        waits = [s for s in t.spans if s.name == "wait"]
        assert waits, "blocked recv should record a wait slice"
        assert waits[0].attrs["phase"] == "stall"
        assert waits[0].duration_s >= 0.02
        assert result.stats.per_rank[0].wait_s == pytest.approx(
            sum(w.duration_s for w in waits), rel=1e-6
        )

    def test_record_wait_slice_matches_charged_seconds(self):
        stats = CommStats(rank=0)
        stats.tracer = Tracer(rank=0)
        stats.set_phase("fetch")
        stats.record_wait(0.25)
        slice_ = stats.tracer.spans[0]
        assert slice_.name == "wait"
        assert slice_.attrs == {"phase": "fetch"}
        assert slice_.duration_s == pytest.approx(0.25, rel=1e-6)


class TestRunStatsWaitSummary:
    def _stats(self, rank, wall, waits):
        s = CommStats(rank=rank)
        s.wall_s = wall
        for phase, seconds in waits:
            s.set_phase(phase)
            s.record_wait(seconds)
        return s

    def test_summary_wait_columns(self):
        run = RunStats(per_rank=[
            self._stats(0, 2.0, [("alpha", 0.5), ("beta", 0.25)]),
            self._stats(1, 4.0, [("alpha", 1.0)]),
        ])
        summary = run.summary()
        assert summary["total_wait_s"] == pytest.approx(1.75)
        assert summary["wait_fraction"] == pytest.approx(1.0 / 4.0)
        assert summary["max_wait_alpha_s"] == pytest.approx(1.0)
        assert summary["max_wait_beta_s"] == pytest.approx(0.25)

    def test_wait_fraction_zero_without_wall(self):
        run = RunStats(per_rank=[self._stats(0, 0.0, [("a", 1.0)])])
        assert run.wait_fraction == 0.0


class TestBitIdentity:
    def test_traced_run_is_bit_identical_to_untraced(self):
        problem = synthetic_classification(n=40, feature_dim=6, seed=2)
        h = problem.features.astype(np.float64)

        def run() -> list[float]:
            model = build_model("AGNN", 6, 8, 4, num_layers=2, seed=5,
                                dtype=np.float64)
            trainer = Trainer(
                model, SoftmaxCrossEntropyLoss(problem.train_mask),
                SGD(0.01),
            )
            result = trainer.fit(problem.adjacency, h, problem.labels,
                                 epochs=3)
            return result.losses

        untraced = run()
        t = Tracer(rank=0)
        install_tracer(t)
        try:
            traced_losses = run()
        finally:
            install_tracer(None)
        assert traced_losses == untraced
        assert any(s.name == "train.epoch" for s in t.spans)


class TestReportCli:
    def test_refuses_without_env(self, monkeypatch, capsys):
        from repro.obs import report

        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        with pytest.raises(SystemExit, match=TRACE_ENV_VAR):
            report.main(["--case", "fullbatch"])

    def test_fullbatch_case_end_to_end(self, monkeypatch, tmp_path, capsys):
        from repro.obs import report

        monkeypatch.setenv(TRACE_ENV_VAR, "1")
        report.main([
            "--case", "fullbatch", "--out-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert "[OK]" in out
        trace = json.loads((tmp_path / "trace_fullbatch.json").read_text())
        ts = [e["ts"] for e in trace["traceEvents"]]
        assert ts == sorted(ts)
        _check_be_discipline(trace["traceEvents"])
        profile = json.loads(
            (tmp_path / "profile_fullbatch.json").read_text()
        )
        summary = profile["summary"]
        assert summary["counter_flops"] == summary["span_flops"] > 0
        assert (tmp_path / "profile_fullbatch.csv").exists()
