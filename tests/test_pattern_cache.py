"""Property tests for the pattern-interned structure cache.

Two families of guarantees:

* **Bit identity** — a matrix carrying warm structural caches produces
  bit-identical results to a cold one (fresh index arrays, empty
  caches) for every same-pattern operation and structural transform.
* **Immutability** — structure arrays and cached structural quantities
  are read-only, and mutating the (writable) ``data`` vector can never
  invalidate them.

Plus the amortization guarantee of the perf PR: in a multi-layer GAT
training run, ``expand_rows`` and the transpose permutation are
computed at most once per pattern per process.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import erdos_renyi, synthetic_classification
from repro.graphs.prep import prepare_adjacency
from repro.models.gat import gat_model
from repro.tensor.csr import CSRMatrix
from repro.tensor.structure import lookup_structure
from repro.util.counters import event_counter

from tests.conftest import random_csr


def cold_copy(m: CSRMatrix) -> CSRMatrix:
    """Rebuild ``m`` from fresh arrays: new structure, empty caches."""
    return CSRMatrix(
        m.indptr.copy(), m.indices.copy(), m.data.copy(), m.shape
    )


def assert_same_matrix(a: CSRMatrix, b: CSRMatrix) -> None:
    assert a.shape == b.shape
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert a.data.dtype == b.data.dtype
    assert np.array_equal(a.data, b.data)


class TestWarmColdBitIdentity:
    """Warm structural caches never change any result, bit for bit."""

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        m=st.integers(min_value=1, max_value=12),
        density=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_operations_match_cold(self, n, m, density, seed):
        rng = np.random.default_rng(seed)
        warm = random_csr(rng, n, m, density=density, ensure_empty_row=True)
        # Warm up every structural cache before comparing.
        warm.expand_rows()
        warm.row_lengths()
        warm.transpose_permutation()
        cold = cold_copy(warm)
        assert cold.structure is not warm.structure

        assert np.array_equal(warm.expand_rows(), cold.expand_rows())
        assert np.array_equal(warm.row_lengths(), cold.row_lengths())
        assert np.array_equal(
            warm.transpose_permutation(), cold.transpose_permutation()
        )
        assert_same_matrix(warm.transpose(), cold.transpose())
        assert_same_matrix(
            warm.transpose().transpose(), cold.transpose().transpose()
        )

        values = rng.normal(size=warm.nnz)
        assert_same_matrix(warm.with_data(values), cold.with_data(values))

        rf = rng.normal(size=n)
        cf = rng.normal(size=m)
        assert_same_matrix(warm.scale_rows(rf), cold.scale_rows(rf))
        assert_same_matrix(warm.scale_cols(cf), cold.scale_cols(cf))
        assert np.array_equal(warm.row_sum(), cold.row_sum())
        assert np.array_equal(warm.col_sum(), cold.col_sum())

        r0, r1 = 0, max(1, n // 2)
        c0, c1 = 0, max(1, m // 2)
        assert_same_matrix(
            warm.extract_block(r0, r1, c0, c1),
            cold.extract_block(r0, r1, c0, c1),
        )
        k = min(n, m)
        verts = np.arange(k, dtype=np.int64)
        assert_same_matrix(
            warm.extract_submatrix(verts), cold.extract_submatrix(verts)
        )

    def test_to_scipy_matches_cold(self, rng):
        warm = random_csr(rng, 9, 7, density=0.3)
        warm.to_scipy()  # build the prototype
        cold = cold_copy(warm)
        sw, sc = warm.to_scipy(), cold.to_scipy()
        assert np.array_equal(sw.toarray(), sc.toarray())
        # Clones of the same pattern share index buffers, never data.
        again = warm.to_scipy()
        assert again.indices is sw.indices
        assert again.data is warm.data


class TestStructureImmutability:
    """Structural arrays are frozen; ``data`` stays writable."""

    def test_structure_arrays_read_only(self, rng):
        csr = random_csr(rng, 8, 8, density=0.3)
        for arr in (
            csr.indptr,
            csr.indices,
            csr.expand_rows(),
            csr.row_lengths(),
            csr.transpose_permutation(),
        ):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 0
        assert csr.data.flags.writeable

    def test_data_mutation_cannot_invalidate_structure(self, rng):
        csr = random_csr(rng, 10, 10, density=0.25)
        rows = csr.expand_rows()
        perm = csr.transpose_permutation()
        lengths = csr.row_lengths()
        csr.data[:] = -1.0
        assert csr.expand_rows() is rows
        assert csr.transpose_permutation() is perm
        assert csr.row_lengths() is lengths
        # The mutated values flow through same-pattern ops correctly.
        assert np.array_equal(
            csr.transpose().data, np.full(csr.nnz, -1.0)[perm]
        )

    def test_interning_shares_structure(self, rng):
        csr = random_csr(rng, 8, 6, density=0.3)
        derived = csr.with_data(np.ones(csr.nnz))
        assert derived.structure is csr.structure
        assert derived.indptr is csr.indptr
        assert derived.indices is csr.indices
        assert csr.scale_rows(np.ones(8)).structure is csr.structure
        assert csr.astype(np.float32).structure is csr.structure
        # Registry lookup by array identity finds the same object.
        assert (
            lookup_structure(csr.indptr, csr.indices, csr.shape)
            is csr.structure
        )

    def test_transpose_back_link(self, rng):
        csr = random_csr(rng, 7, 9, density=0.3)
        t = csr.transpose()
        back = t.transpose()
        # Double transpose returns to the *same* structure and arrays.
        assert back.structure is csr.structure
        assert back.indptr is csr.indptr
        assert back.indices is csr.indices
        assert np.array_equal(back.data, csr.data)
        # Inverse permutations compose to the identity.
        p, q = csr.transpose_permutation(), t.transpose_permutation()
        assert np.array_equal(p[q], np.arange(csr.nnz))


class TestDegreeStats:
    """Property tests for the cached row-length summary statistics."""

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=24),
        m=st.integers(min_value=1, max_value=24),
        density=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_consistent_with_row_lengths(self, n, m, density, seed):
        rng = np.random.default_rng(seed)
        csr = random_csr(rng, max(n, 1), m, density=density,
                         ensure_empty_row=True)
        stats = csr.degree_stats()
        lengths = csr.row_lengths().astype(np.float64)
        assert stats.n_rows == csr.shape[0]
        assert stats.nnz == csr.nnz
        assert stats.max == int(lengths.max())
        assert stats.mean == pytest.approx(float(lengths.mean()))
        assert stats.std == pytest.approx(float(lengths.std()))
        expected_cv = float(lengths.std() / lengths.mean()) if \
            lengths.mean() > 0 else 0.0
        assert stats.cv == pytest.approx(expected_cv)
        assert stats.empty_rows == int(np.count_nonzero(lengths == 0))

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=24),
        density=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_histogram_buckets(self, n, density, seed):
        rng = np.random.default_rng(seed)
        csr = random_csr(rng, n, n, density=density, ensure_empty_row=True)
        stats = csr.degree_stats()
        hist = stats.histogram
        # Every row lands in exactly one power-of-two bucket …
        assert sum(hist) == stats.n_rows
        # … bucket 0 holds exactly the empty rows …
        assert hist[0] == stats.empty_rows
        # … and bucket b >= 1 counts rows with length in [2^(b-1), 2^b).
        lengths = csr.row_lengths()
        for b in range(1, len(hist)):
            lo, hi = 1 << (b - 1), 1 << b
            assert hist[b] == int(
                np.count_nonzero((lengths >= lo) & (lengths < hi))
            )

    def test_warm_equals_cold_and_caches(self, rng):
        warm = random_csr(rng, 16, 16, density=0.3, ensure_empty_row=True)
        events = event_counter()
        base = events.snapshot()
        first = warm.degree_stats()
        again = warm.degree_stats()
        assert again is first  # memoised on the structure
        cold = cold_copy(warm)
        assert cold.degree_stats() == first  # value-equal, fresh cache
        after = events.snapshot()
        computed = after.get("degree_stats.computed", 0) - base.get(
            "degree_stats.computed", 0
        )
        hits = after.get("degree_stats.hit", 0) - base.get(
            "degree_stats.hit", 0
        )
        assert computed == 2  # once per structure (warm + cold)
        assert hits == 1
        # Same-pattern derivatives share the cached stats object.
        assert warm.with_data(np.ones(warm.nnz)).degree_stats() is first

    def test_scramble_if_skewed_uses_stats(self):
        from repro.graphs.reorder import scramble_if_skewed

        # Near-regular ER graph: no scramble recommended.
        regular = prepare_adjacency(
            erdos_renyi(60, 600, seed=4), dtype=np.float64
        )
        assert scramble_if_skewed(regular, cv_threshold=1.0) is None
        # One hub row connected to everything: heavy skew.
        dense = np.zeros((64, 64))
        dense[0, :] = 1.0
        dense[np.arange(64), np.arange(64)] = 1.0
        skewed = CSRMatrix.from_dense(dense)
        order = scramble_if_skewed(skewed, cv_threshold=1.0)
        assert order is not None
        assert np.array_equal(np.sort(order), np.arange(64))


class TestAmortization:
    """Structural quantities are computed at most once per pattern."""

    def test_gat_training_computes_structure_once(self):
        data = synthetic_classification(n=80, feature_dim=8, seed=1)
        a = prepare_adjacency(
            erdos_renyi(80, 600, seed=2), dtype=np.float64
        )
        h = data.features.astype(np.float64)
        model = gat_model(8, 16, data.num_classes, num_layers=3, seed=0)

        def epoch():
            out = model.forward(a, h, training=True)
            model.backward(np.ones_like(out) / out.size)

        epoch()  # warm every structural cache
        events = event_counter()
        base = events.snapshot()
        for _ in range(3):
            epoch()
        after = events.snapshot()

        def delta(label):
            return after.get(label, 0) - base.get(label, 0)

        # Nothing structural is ever recomputed after the first epoch …
        assert delta("expand_rows.computed") == 0
        assert delta("row_lengths.computed") == 0
        assert delta("transpose_perm.computed") == 0
        assert delta("pattern.registered") == 0
        # … while the hot path keeps hitting the caches. (There is no
        # ``pattern.hit`` assertion: same-pattern constructors go through
        # ``_from_structure`` and skip the registry lookup entirely.)
        assert delta("expand_rows.hit") > 0
        assert delta("transpose_perm.hit") > 0

    def test_first_epoch_computes_at_most_once_per_pattern(self):
        a = prepare_adjacency(erdos_renyi(50, 300, seed=5), dtype=np.float64)
        h = np.random.default_rng(0).normal(size=(50, 6))
        model = gat_model(6, 8, 3, num_layers=3, seed=0)
        events = event_counter()
        base = events.snapshot()
        out = model.forward(a, h, training=True)
        model.backward(np.ones_like(out) / out.size)
        after = events.snapshot()
        # Patterns in play: the adjacency and (lazily) its transpose.
        registered = after.get("pattern.registered", 0) - base.get(
            "pattern.registered", 0
        )
        assert registered <= 2
        for label in (
            "expand_rows.computed",
            "row_lengths.computed",
            "transpose_perm.computed",
        ):
            assert after.get(label, 0) - base.get(label, 0) <= 2
