"""Distributed semiring aggregation (Section 4.3 on the 1.5D grid)."""

import numpy as np
import pytest

from repro.distributed.ops import (
    OpSequencer,
    distributed_semiring_aggregate,
)
from repro.distributed.partition import (
    block_range,
    distribute_adjacency,
    distribute_features,
)
from repro.runtime import run_spmd, square_grid
from repro.tensor.kernels import spmm
from repro.tensor.semiring import (
    AVERAGE,
    REAL,
    TROPICAL_MAX,
    TROPICAL_MIN,
    adjacency_values,
)
from tests.conftest import random_csr


@pytest.mark.parametrize("semiring", [REAL, TROPICAL_MIN, TROPICAL_MAX],
                         ids=lambda s: s.name)
@pytest.mark.parametrize("p", [1, 4, 9])
def test_matches_single_node(rng, semiring, p):
    n, k = 19, 3
    a = random_csr(rng, n, n, density=0.4)
    lifted = a.with_data(adjacency_values(semiring, a.data))
    h = rng.normal(size=(n, k))
    reference = spmm(lifted, h, semiring=semiring, backend="reference")

    def program(comm):
        grid = square_grid(comm)
        a_block = distribute_adjacency(lifted, grid)
        h_block = distribute_features(h, grid)
        out = distributed_semiring_aggregate(
            grid, a_block, h_block, semiring, OpSequencer()
        )
        c0, c1 = block_range(n, grid.py, grid.col)
        assert np.allclose(out, reference[c0:c1]), (
            grid.row, grid.col, np.abs(out - reference[c0:c1]).max()
        )
        return True

    assert all(run_spmd(p, program, timeout=30).values)


def test_average_semiring_rejected():
    def program(comm):
        grid = square_grid(comm)
        a = random_csr(np.random.default_rng(0), 8, 8)
        h = np.ones((8, 2))
        with pytest.raises(NotImplementedError):
            distributed_semiring_aggregate(
                grid, distribute_adjacency(a, grid),
                distribute_features(h, grid), AVERAGE, OpSequencer(),
            )
        return True

    assert all(run_spmd(4, program, timeout=20).values)


def test_empty_rows_carry_identity(rng):
    """Rows with no stored entries anywhere must end at the semiring
    identity after the distributed reduction."""
    n, k = 12, 2
    a = random_csr(rng, n, n, density=0.3, ensure_empty_row=True)
    # Force a globally empty row.
    import numpy as np
    dense = a.to_dense()
    dense[5, :] = 0
    from repro.tensor.csr import CSRMatrix

    a = CSRMatrix.from_dense(dense)
    lifted = a.with_data(adjacency_values(TROPICAL_MIN, a.data))
    h = rng.normal(size=(n, k))
    reference = spmm(lifted, h, semiring=TROPICAL_MIN, backend="reference")
    assert np.all(np.isinf(reference[5]))

    def program(comm):
        grid = square_grid(comm)
        out = distributed_semiring_aggregate(
            grid,
            distribute_adjacency(lifted, grid),
            distribute_features(h, grid),
            TROPICAL_MIN,
            OpSequencer(),
        )
        c0, c1 = block_range(n, grid.py, grid.col)
        assert np.allclose(out, reference[c0:c1])
        return True

    assert all(run_spmd(4, program, timeout=20).values)
