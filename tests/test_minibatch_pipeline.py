"""Pipelined sampler/trainer split: parity with the serial loop.

The split moves *where* sampling runs (rank 0) without changing what is
computed (rank 1 runs the same :func:`train_step`), so the pipelined
loss trace must equal the serial :class:`MinibatchTrainer` trace bit for
bit — in rendezvous *and* overlapped mode, on the thread *and* process
fabrics — and the overlapped mode must send the same bytes under the
same phases (only ``wait_s`` may move), the invariant the 1.5D overlap
schedules established.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import synthetic_classification
from repro.models import build_model
from repro.training import (
    SGD,
    MinibatchTrainer,
    SoftmaxCrossEntropyLoss,
    minibatch_train_pipelined,
)
from repro.training.minibatch import (
    PIPELINE_ENV_VAR,
    pipeline_overlap_default,
)

N, FEAT, HIDDEN, CLASSES = 64, 6, 8, 4
BATCH, EPOCHS, LR, SEED = 24, 2, 0.05, 5
FANOUTS = (4, 4)


@pytest.fixture(scope="module")
def problem():
    return synthetic_classification(
        n=N, num_classes=CLASSES, feature_dim=FEAT, seed=3
    )


@pytest.fixture(scope="module")
def serial_reference(problem):
    model = build_model(
        "gat", FEAT, HIDDEN, CLASSES, num_layers=2, seed=0,
        dtype=np.float32,
    )
    trainer = MinibatchTrainer(
        model, SoftmaxCrossEntropyLoss(), SGD(LR), fanouts=FANOUTS,
        batch_size=BATCH, shuffle=True, seed=SEED,
    )
    return trainer.fit(
        problem.adjacency, problem.features.astype(np.float32),
        problem.labels, epochs=EPOCHS, full_eval=False,
    )


def _pipelined(problem, **kwargs):
    return minibatch_train_pipelined(
        "gat", problem.adjacency, problem.features.astype(np.float32),
        problem.labels, HIDDEN, CLASSES, fanouts=FANOUTS, num_layers=2,
        batch_size=BATCH, epochs=EPOCHS, lr=LR, seed=SEED, model_seed=0,
        **kwargs,
    )


@pytest.fixture(scope="module")
def thread_runs(problem):
    return {
        overlap: _pipelined(problem, overlap=overlap, backend="thread")
        for overlap in (False, True)
    }


class TestSerialParity:
    @pytest.mark.parametrize("overlap", [False, True])
    def test_losses_bit_match_serial_loop(
        self, serial_reference, thread_runs, overlap
    ):
        losses, _ = thread_runs[overlap]
        assert losses == serial_reference.batch_losses

    def test_overlap_modes_send_identical_traffic(self, thread_runs):
        stats_off = thread_runs[False][1]
        stats_on = thread_runs[True][1]
        for off, on in zip(stats_off.per_rank, stats_on.per_rank):
            assert off.bytes_sent == on.bytes_sent
            assert off.messages_sent == on.messages_sent
            assert off.by_phase == on.by_phase

    def test_traffic_attributed_to_sample_phase(self, thread_runs):
        sampler, trainer = thread_runs[True][1].per_rank
        batches = EPOCHS * (-(-N // BATCH))
        assert sampler.messages_sent == batches
        assert set(sampler.by_phase) == {"sample"}
        assert sampler.by_phase["sample"] == sampler.bytes_sent > 0
        # The trainer rank only receives: blocks flow one way.
        assert trainer.bytes_sent == 0


class TestProcessFabric:
    def test_process_backend_bit_matches(
        self, problem, serial_reference, thread_runs
    ):
        losses, stats = _pipelined(
            problem, overlap=True, backend="process"
        )
        assert losses == serial_reference.batch_losses
        for t_rank, p_rank in zip(
            thread_runs[True][1].per_rank, stats.per_rank
        ):
            assert t_rank.bytes_sent == p_rank.bytes_sent
            assert t_rank.messages_sent == p_rank.messages_sent
            assert t_rank.by_phase == p_rank.by_phase


class TestDefaultBackend:
    def test_env_resolved_backend_bit_matches(
        self, problem, serial_reference
    ):
        # backend=None resolves through $REPRO_FABRIC_BACKEND (thread
        # by default); the CI sampling job re-runs this leg with the
        # process fabric as the process-wide default.
        losses, _ = _pipelined(problem, overlap=True)
        assert losses == serial_reference.batch_losses


class TestValidation:
    def test_fanouts_must_match_depth(self, problem):
        with pytest.raises(ValueError, match="fan-out"):
            minibatch_train_pipelined(
                "gat", problem.adjacency, problem.features,
                problem.labels, HIDDEN, CLASSES, fanouts=(4,),
                num_layers=2,
            )


class TestOverlapEnvDefault:
    def test_unset_means_overlapped(self, monkeypatch):
        monkeypatch.delenv(PIPELINE_ENV_VAR, raising=False)
        assert pipeline_overlap_default() is True

    @pytest.mark.parametrize("value", ["1", "true", "ON", "yes"])
    def test_truthy_spellings(self, monkeypatch, value):
        monkeypatch.setenv(PIPELINE_ENV_VAR, value)
        assert pipeline_overlap_default() is True

    @pytest.mark.parametrize("value", ["0", "false", "OFF", "no", ""])
    def test_falsy_spellings(self, monkeypatch, value):
        monkeypatch.setenv(PIPELINE_ENV_VAR, value)
        assert pipeline_overlap_default() is False

    def test_invalid_value_raises(self, monkeypatch):
        monkeypatch.setenv(PIPELINE_ENV_VAR, "sideways")
        with pytest.raises(ValueError, match="REPRO_PIPELINE"):
            pipeline_overlap_default()

    def test_env_drives_the_entry_point(self, problem, monkeypatch):
        # overlap=None consults the env; an invalid value must surface
        # before any fabric is spun up.
        monkeypatch.setenv(PIPELINE_ENV_VAR, "sideways")
        with pytest.raises(ValueError, match="REPRO_PIPELINE"):
            _pipelined(problem, overlap=None, backend="thread")
