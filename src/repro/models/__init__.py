"""GNN models with global-formulation forward and backward passes.

The artifact's code structure is mirrored here: :class:`GnnLayer`,
:class:`GnnModel` and :class:`Loss` base classes with the forward and
backward methods overloaded per model (VA, AGNN, GAT), caching of
intermediate results for training, and redistribution hooks that the
distributed subclasses override (see ``repro.distributed``).
"""

from repro.models.base import ForwardState, GnnLayer, GnnModel, Loss
from repro.models.va import VALayer, va_model
from repro.models.agnn import AGNNLayer, agnn_model
from repro.models.gat import GATLayer, MultiHeadGATLayer, gat_model
from repro.models.gcn import GCNLayer, gcn_model, normalize_adjacency
from repro.models.gin import GINLayer, gin_model
from repro.models.sgc import SGCLayer, sgc_model
from repro.models.serialize import (
    load_model,
    load_state_dict,
    save_model,
    state_dict,
)

__all__ = [
    "ForwardState",
    "GnnLayer",
    "GnnModel",
    "Loss",
    "VALayer",
    "AGNNLayer",
    "GATLayer",
    "MultiHeadGATLayer",
    "GCNLayer",
    "GINLayer",
    "SGCLayer",
    "va_model",
    "agnn_model",
    "gat_model",
    "gcn_model",
    "gin_model",
    "sgc_model",
    "normalize_adjacency",
    "build_model",
    "save_model",
    "load_model",
    "state_dict",
    "load_state_dict",
]


def build_model(
    name: str,
    in_dim: int,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    seed: int = 0,
    **kwargs,
) -> GnnModel:
    """Construct a model by name — the benchmark drivers' entry point.

    ``name`` is one of ``"VA"``, ``"AGNN"``, ``"GAT"`` (the paper's
    A-GNNs), ``"GCN"``, ``"GIN"``, ``"SGC"`` (C-GNN comparators),
    case-insensitive — matching and extending the artifact's
    ``--model`` flag.
    """
    name_lower = name.lower()
    if name_lower == "sgc":
        # SGC has no hidden layers: one projection over propagated
        # features; `num_layers` becomes the propagation depth.
        return sgc_model(in_dim, out_dim, hops=num_layers, seed=seed,
                         **kwargs)
    factory = {
        "va": va_model,
        "agnn": agnn_model,
        "gat": gat_model,
        "gcn": gcn_model,
        "gin": gin_model,
    }.get(name_lower)
    if factory is None:
        raise ValueError(
            f"unknown model {name!r}; use VA, AGNN, GAT, GCN, GIN or SGC"
        )
    return factory(
        in_dim, hidden_dim, out_dim, num_layers=num_layers, seed=seed, **kwargs
    )
