"""GCN — the C-GNN special case used in Section 8.4's verification.

A C-GNN layer is :math:`\\sigma(\\mathcal{A} H W)` with a *fixed*,
pre-normalised adjacency matrix taking the place of :math:`\\Psi`
(Section 4.4: "once :math:`\\Psi` is computed, the same execution
strategies can be applied to C-GNN and A-GNN models"). One inference
layer is a single SpMM plus one MM, which is why the paper uses it to
isolate the communication behaviour of the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import GnnLayer, GnnModel, glorot
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import mm, spmm
from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng

__all__ = ["GCNLayer", "gcn_model", "normalize_adjacency"]


def normalize_adjacency(
    a: CSRMatrix, mode: str = "sym", add_self_loops: bool = True
) -> CSRMatrix:
    """GCN-style degree normalisation of the adjacency matrix.

    ``"sym"`` produces :math:`D^{-1/2}(A + I)D^{-1/2}` (Kipf–Welling);
    ``"row"`` produces the random-walk normalisation
    :math:`D^{-1}(A + I)`; ``"none"`` only (optionally) adds self loops.
    """
    if mode not in ("sym", "row", "none"):
        raise ValueError("mode must be 'sym', 'row' or 'none'")
    if add_self_loops:
        a = a.to_coo().add_self_loops().to_csr()
    if mode == "none":
        return a
    deg = a.row_sum().astype(np.float64)
    if mode == "row":
        inv = np.where(deg > 0, 1.0 / np.maximum(deg, 1e-12), 0.0)
        return a.scale_rows(inv.astype(a.dtype))
    inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(np.maximum(deg, 1e-12)), 0.0)
    inv_sqrt = inv_sqrt.astype(a.dtype)
    return a.scale_rows(inv_sqrt).scale_cols(inv_sqrt)


@dataclass
class _GCNCache:
    a: CSRMatrix
    h: np.ndarray
    hp: np.ndarray | None
    ah: np.ndarray | None
    z: np.ndarray


class GCNLayer(GnnLayer):
    """One GCN layer :math:`\\sigma(\\mathcal{A} H W)`.

    ``a`` passed to :meth:`forward` must already be normalised (use
    :func:`normalize_adjacency`); the layer treats it as a constant, so
    the backward pass has no :math:`\\Psi` term.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        order: str = "project_first",
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        if order not in ("project_first", "aggregate_first"):
            raise ValueError("invalid composition order")
        self.weight = glorot(make_rng(seed), (in_dim, out_dim), dtype)
        self.order = order
        self.in_dim = in_dim
        self.out_dim = out_dim

    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, _GCNCache | None]:
        hp = ah = None
        if self.order == "project_first":
            hp = mm(h, self.weight, counter=counter)
            z = spmm(a, hp, counter=counter)
        else:
            ah = spmm(a, h, counter=counter)
            z = mm(ah, self.weight, counter=counter)
        h_next = self.activation.fn(z)
        if not training:
            return h_next, None
        return h_next, _GCNCache(a=a, h=h, hp=hp, ah=ah, z=z)

    def backward(
        self,
        cache: _GCNCache,
        g: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        a_t = cache.a.transpose()
        if self.order == "project_first":
            at_g = spmm(a_t, g, counter=counter)
            d_weight = mm(cache.h.T, at_g, counter=counter)
            dh = mm(at_g, self.weight.T, counter=counter)
        else:
            d_weight = mm(cache.ah.T, g, counter=counter)
            m = mm(g, self.weight.T, counter=counter)
            dh = spmm(a_t, m, counter=counter)
        return dh, {"weight": d_weight}

    def parameters(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight}


def gcn_model(
    in_dim: int,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    activation: str = "relu",
    order: str = "project_first",
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
) -> GnnModel:
    """Build an ``num_layers``-deep GCN (linear final layer)."""
    rng = make_rng(seed)
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    layers = [
        GCNLayer(
            dims[i],
            dims[i + 1],
            activation=activation if i + 1 < num_layers else "identity",
            order=order,
            seed=rng,
            dtype=dtype,
        )
        for i in range(num_layers)
    ]
    return GnnModel(layers)
