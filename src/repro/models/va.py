"""Vanilla-attention (VA) model — Figure 1, with backward per Eqs. 7–13.

Forward (global formulation):

.. math:: \\Psi = \\mathcal{A} \\odot (H H^T), \\qquad
          Z = \\Psi H W, \\qquad H' = \\sigma(Z)

Backward (Eq. 11–13), in this module's notation with
:math:`M = G W^T`, :math:`N = \\mathcal{A} \\odot (M H^T)`:

.. math:: \\Gamma = N_+ H + \\Psi^T M, \\qquad
          Y = H^T \\Psi^T G

The :math:`N_+ H` term is :func:`repro.core.psi.psi_va_vjp`; the rest
of the chaining (composition order, Eq. 13, Eq. 9's SDDMM) is the
shared :class:`repro.models.attention.PairwiseAttentionLayer` glue.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.psi import psi_va, psi_va_vjp
from repro.models.attention import PairwiseAttentionLayer
from repro.models.base import GnnModel
from repro.tensor.csr import CSRMatrix
from repro.util.counters import FlopCounter
from repro.util.rng import make_rng

__all__ = ["VALayer", "va_model"]


class VALayer(PairwiseAttentionLayer):
    """One VA layer :math:`\\sigma((\\mathcal{A} \\odot H H^T)\\, H W)`.

    Parameters
    ----------
    in_dim, out_dim:
        Feature dimensions.
    activation:
        Non-linearity :math:`\\sigma`.
    order:
        :math:`\\Phi \\circ \\oplus` composition (Section 4.4):
        ``"project_first"`` evaluates :math:`\\Psi (H W)`,
        ``"aggregate_first"`` evaluates :math:`(\\Psi H) W`.
    seed:
        Weight-initialisation seed.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        order: str = "project_first",
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(in_dim, out_dim, activation, order, seed, dtype)

    def _psi_forward(
        self, a: CSRMatrix, h: np.ndarray, counter: FlopCounter
    ) -> tuple[CSRMatrix, Any]:
        return psi_va(a, h, counter=counter)

    def _psi_vjp(
        self, ds: np.ndarray, psi_cache: Any, counter: FlopCounter
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        return psi_va_vjp(ds, psi_cache, counter=counter), {}


def va_model(
    in_dim: int,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    activation: str = "relu",
    order: str = "project_first",
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
) -> GnnModel:
    """Build an ``num_layers``-deep VA model.

    Hidden layers use ``activation``; the final layer is linear
    (identity activation) so its output feeds a downstream loss
    directly, following the usual GNN benchmark setup.
    """
    rng = make_rng(seed)
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    layers = [
        VALayer(
            dims[i],
            dims[i + 1],
            activation=activation if i + 1 < num_layers else "identity",
            order=order,
            seed=rng,
            dtype=dtype,
        )
        for i in range(num_layers)
    ]
    return GnnModel(layers)
