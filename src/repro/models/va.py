"""Vanilla-attention (VA) model — Figure 1, with backward per Eqs. 7–13.

Forward (global formulation):

.. math:: \\Psi = \\mathcal{A} \\odot (H H^T), \\qquad
          Z = \\Psi H W, \\qquad H' = \\sigma(Z)

Backward (Eq. 11–13), in this module's notation with
:math:`M = G W^T`, :math:`N = \\mathcal{A} \\odot (M H^T)`:

.. math:: \\Gamma = N_+ H + \\Psi^T M, \\qquad
          Y = H^T \\Psi^T G

The :math:`N_+ H` term is :func:`repro.core.psi.psi_va_vjp`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.psi import psi_va, psi_va_vjp
from repro.models.base import GnnLayer, GnnModel, glorot
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import mm, sddmm_dot, spmm
from repro.tensor.workspace import workspace
from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng

__all__ = ["VALayer", "va_model"]


@dataclass
class _VACache:
    a: CSRMatrix
    h: np.ndarray
    s: CSRMatrix
    psi_cache: Any
    hp: np.ndarray | None  # H W  (project_first)
    ah: np.ndarray | None  # S H  (aggregate_first)
    z: np.ndarray


class VALayer(GnnLayer):
    """One VA layer :math:`\\sigma((\\mathcal{A} \\odot H H^T)\\, H W)`.

    Parameters
    ----------
    in_dim, out_dim:
        Feature dimensions.
    activation:
        Non-linearity :math:`\\sigma`.
    order:
        :math:`\\Phi \\circ \\oplus` composition (Section 4.4):
        ``"project_first"`` evaluates :math:`\\Psi (H W)`,
        ``"aggregate_first"`` evaluates :math:`(\\Psi H) W`.
    seed:
        Weight-initialisation seed.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        order: str = "project_first",
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        if order not in ("project_first", "aggregate_first"):
            raise ValueError("invalid composition order")
        self.weight = glorot(make_rng(seed), (in_dim, out_dim), dtype)
        self.order = order
        self.in_dim = in_dim
        self.out_dim = out_dim

    # ------------------------------------------------------------------
    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, _VACache | None]:
        s, psi_cache = psi_va(a, h, counter=counter)
        hp = ah = None
        if self.order == "project_first":
            hp = mm(h, self.weight, counter=counter)
            z = spmm(s, hp, counter=counter)
        else:
            ah = spmm(s, h, counter=counter)
            z = mm(ah, self.weight, counter=counter)
        h_next = self.activation.fn(z)
        if not training:
            return h_next, None
        return h_next, _VACache(
            a=a, h=h, s=s, psi_cache=psi_cache, hp=hp, ah=ah, z=z
        )

    # ------------------------------------------------------------------
    def backward(
        self,
        cache: _VACache,
        g: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        s = cache.s
        s_t = s.transpose()
        if self.order == "project_first":
            st_g = spmm(s_t, g, counter=counter)
            d_weight = mm(cache.h.T, st_g, counter=counter)
            dh = mm(st_g, self.weight.T, counter=counter)
            # ds is consumed synchronously by the psi VJP below, so a
            # pooled scratch vector is safe to hand out as ``out=``.
            ds = sddmm_dot(
                cache.a, g, cache.hp, counter=counter,
                out=workspace(
                    "model.ds", (cache.a.nnz,), np.result_type(g, cache.hp)
                ),
            )
        else:
            d_weight = mm(cache.ah.T, g, counter=counter)
            m = mm(g, self.weight.T, counter=counter)
            dh = spmm(s_t, m, counter=counter)
            ds = sddmm_dot(
                cache.a, m, cache.h, counter=counter,
                out=workspace(
                    "model.ds", (cache.a.nnz,), np.result_type(m, cache.h)
                ),
            )
        dh = dh + psi_va_vjp(ds, cache.psi_cache, counter=counter)
        return dh, {"weight": d_weight}

    # ------------------------------------------------------------------
    def parameters(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight}


def va_model(
    in_dim: int,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    activation: str = "relu",
    order: str = "project_first",
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
) -> GnnModel:
    """Build an ``num_layers``-deep VA model.

    Hidden layers use ``activation``; the final layer is linear
    (identity activation) so its output feeds a downstream loss
    directly, following the usual GNN benchmark setup.
    """
    rng = make_rng(seed)
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    layers = [
        VALayer(
            dims[i],
            dims[i + 1],
            activation=activation if i + 1 < num_layers else "identity",
            order=order,
            seed=rng,
            dtype=dtype,
        )
        for i in range(num_layers)
    ]
    return GnnModel(layers)
