"""GIN — Graph Isomorphism Network (Xu et al.), the Phi-as-MLP case.

The paper (Section 4.4): "In some models, for example GIN, :math:`\\Phi`
is an MLP. This corresponds to a series of multiplications with
different parameter matrices, interleaved with non-linearities." One
GIN layer is

.. math:: H^{out} = \\mathrm{MLP}\\big((1 + \\epsilon)\\,H +
          \\mathcal{A} H\\big)

— a C-GNN (the aggregation coefficients are constants) whose update is
a two-layer MLP. Including it exercises the library's claim that the
generic pipeline covers :math:`\\Phi` beyond single projections, with a
full manual backward pass like every other model here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import GnnLayer, GnnModel, glorot
from repro.core.activations import get_activation
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import mm, spmm
from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng

__all__ = ["GINLayer", "gin_model"]


@dataclass
class _GINCache:
    a: CSRMatrix
    h: np.ndarray
    combined: np.ndarray   # (1+eps) H + A H
    hidden_pre: np.ndarray  # combined @ W1
    hidden: np.ndarray      # inner_act(hidden_pre)
    z: np.ndarray           # hidden @ W2


class GINLayer(GnnLayer):
    """One GIN layer with a 2-layer MLP update.

    Parameters
    ----------
    in_dim, hidden_dim, out_dim:
        MLP dimensions (``W1: in x hidden``, ``W2: hidden x out``).
    epsilon:
        The self-weighting scalar; trainable when ``learnable_epsilon``.
    activation:
        Output non-linearity; the MLP's inner activation is ReLU as in
        the GIN paper.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        epsilon: float = 0.0,
        learnable_epsilon: bool = True,
        activation: str = "relu",
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        rng = make_rng(seed)
        self.w1 = glorot(rng, (in_dim, hidden_dim), dtype)
        self.w2 = glorot(rng, (hidden_dim, out_dim), dtype)
        self.epsilon = np.array(epsilon, dtype=dtype)
        self.learnable_epsilon = learnable_epsilon
        self.inner = get_activation("relu")
        self.in_dim = in_dim
        self.out_dim = out_dim

    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, _GINCache | None]:
        aggregated = spmm(a, h, counter=counter)
        combined = (1.0 + float(self.epsilon)) * h + aggregated
        counter.add(2 * h.size, "gin_combine")
        hidden_pre = mm(combined, self.w1, counter=counter)
        hidden = self.inner.fn(hidden_pre)
        z = mm(hidden, self.w2, counter=counter)
        h_next = self.activation.fn(z)
        if not training:
            return h_next, None
        return h_next, _GINCache(
            a=a, h=h, combined=combined, hidden_pre=hidden_pre,
            hidden=hidden, z=z,
        )

    def backward(
        self,
        cache: _GINCache,
        g: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        d_w2 = mm(cache.hidden.T, g, counter=counter)
        d_hidden = mm(g, self.w2.T, counter=counter)
        d_hidden_pre = d_hidden * self.inner.grad(cache.hidden_pre)
        d_w1 = mm(cache.combined.T, d_hidden_pre, counter=counter)
        d_combined = mm(d_hidden_pre, self.w1.T, counter=counter)
        # combined = (1+eps) H + A H.
        dh = (1.0 + float(self.epsilon)) * d_combined
        dh = dh + spmm(cache.a.transpose(), d_combined, counter=counter)
        grads = {"w1": d_w1, "w2": d_w2}
        if self.learnable_epsilon:
            grads["epsilon"] = np.array(
                float(np.sum(d_combined * cache.h)), dtype=self.epsilon.dtype
            )
        return dh, grads

    def parameters(self) -> dict[str, np.ndarray]:
        params = {"w1": self.w1, "w2": self.w2}
        if self.learnable_epsilon:
            params["epsilon"] = self.epsilon
        return params


def gin_model(
    in_dim: int,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    epsilon: float = 0.0,
    learnable_epsilon: bool = True,
    activation: str = "relu",
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
) -> GnnModel:
    """Build an ``num_layers``-deep GIN (linear final layer)."""
    rng = make_rng(seed)
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    layers = [
        GINLayer(
            dims[i],
            hidden_dim,
            dims[i + 1],
            epsilon=epsilon,
            learnable_epsilon=learnable_epsilon,
            activation=activation if i + 1 < num_layers else "identity",
            seed=rng,
            dtype=dtype,
        )
        for i in range(num_layers)
    ]
    return GnnModel(layers)
