"""Shared Ψ/aggregation plumbing for the attentional layers.

VA and AGNN differ *only* in their attention operator: the
:math:`\\Phi \\circ \\oplus` composition (Section 4.4's
``project_first`` / ``aggregate_first`` orders), the weight gradient
:math:`Y = H^T \\Psi^T G` (Eq. 13) and the score-gradient SDDMM
:math:`dS = \\mathcal{A} \\odot (\\cdot\\,\\cdot^T)` (Eq. 9) are
identical. :class:`PairwiseAttentionLayer` owns that glue once;
subclasses plug in the Ψ forward/VJP pair from :mod:`repro.core.psi`
(the hand-fused fast path). The same structure is what
:class:`repro.fusion.layer.DagLayer` derives automatically from the IR
— the two implementations are tested against each other.

:func:`score_gradient` is the one Eq.-9 kernel every attentional
backward (including GAT's) starts from; it hands out a pooled scratch
vector because the result is always consumed synchronously by the Ψ
VJP that follows.
"""

from __future__ import annotations

from abc import abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.models.base import GnnLayer, glorot
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import mm, sddmm_dot, spmm
from repro.tensor.workspace import workspace
from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng

__all__ = ["PairwiseAttentionLayer", "PairAttentionCache", "score_gradient"]


def score_gradient(
    a: CSRMatrix,
    left: np.ndarray,
    right: np.ndarray,
    counter: FlopCounter = null_counter(),
) -> np.ndarray:
    """Eq. 9: :math:`dS = \\mathcal{A} \\odot (L R^T)` edge values.

    One SDDMM into a pooled scratch vector — safe because every caller
    consumes ``dS`` synchronously in the Ψ VJP that follows.
    Head-batched operands ``(n, heads, k)`` yield stacked
    ``(nnz, heads)`` score gradients.
    """
    left = np.asarray(left)
    right = np.asarray(right)
    shape = (a.nnz,) if left.ndim == 2 else (a.nnz, left.shape[1])
    return sddmm_dot(
        a, left, right, counter=counter,
        out=workspace("model.ds", shape, np.result_type(left, right)),
    )


@dataclass
class PairAttentionCache:
    """Forward intermediates shared by VA and AGNN layers."""

    a: CSRMatrix
    h: np.ndarray
    s: CSRMatrix
    psi_cache: Any
    hp: np.ndarray | None  # H W  (project_first)
    ah: np.ndarray | None  # S H  (aggregate_first)
    z: np.ndarray


class PairwiseAttentionLayer(GnnLayer):
    """Base for attention layers whose Ψ depends on ``H`` alone.

    Owns the weight matrix, the :math:`\\Phi \\circ \\oplus` composition
    order and the full backward chaining (Eqs. 9–13); subclasses
    implement the Ψ operator pair:

    * :meth:`_psi_forward` — scores + VJP cache,
    * :meth:`_psi_vjp` — feature-gradient contribution plus any extra
      parameter gradients (e.g. AGNN's ``beta``).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str,
        order: str,
        seed: int | np.random.Generator | None,
        dtype: np.dtype | type,
    ) -> None:
        super().__init__(activation)
        if order not in ("project_first", "aggregate_first"):
            raise ValueError("invalid composition order")
        self.weight = glorot(make_rng(seed), (in_dim, out_dim), dtype)
        self.order = order
        self.in_dim = in_dim
        self.out_dim = out_dim

    # -- the Ψ plug-in points ------------------------------------------
    @abstractmethod
    def _psi_forward(
        self, a: CSRMatrix, h: np.ndarray, counter: FlopCounter
    ) -> tuple[CSRMatrix, Any]:
        """Attention scores ``S`` plus the Ψ-VJP cache."""

    @abstractmethod
    def _psi_vjp(
        self, ds: np.ndarray, psi_cache: Any, counter: FlopCounter
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Feature gradient through Ψ and extra parameter grads."""

    # ------------------------------------------------------------------
    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, PairAttentionCache | None]:
        s, psi_cache = self._psi_forward(a, h, counter)
        hp = ah = None
        if self.order == "project_first":
            hp = mm(h, self.weight, counter=counter)
            z = spmm(s, hp, counter=counter)
        else:
            ah = spmm(s, h, counter=counter)
            z = mm(ah, self.weight, counter=counter)
        h_next = self.activation.fn(z)
        if not training:
            return h_next, None
        return h_next, PairAttentionCache(
            a=a, h=h, s=s, psi_cache=psi_cache, hp=hp, ah=ah, z=z
        )

    # ------------------------------------------------------------------
    def backward(
        self,
        cache: PairAttentionCache,
        g: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        s_t = cache.s.transpose()
        if self.order == "project_first":
            st_g = spmm(s_t, g, counter=counter)
            d_weight = mm(cache.h.T, st_g, counter=counter)
            dh = mm(st_g, self.weight.T, counter=counter)
            ds = score_gradient(cache.a, g, cache.hp, counter=counter)
        else:
            d_weight = mm(cache.ah.T, g, counter=counter)
            m = mm(g, self.weight.T, counter=counter)
            dh = spmm(s_t, m, counter=counter)
            ds = score_gradient(cache.a, m, cache.h, counter=counter)
        dh_psi, extra = self._psi_vjp(ds, cache.psi_cache, counter)
        return dh + dh_psi, {"weight": d_weight, **extra}

    # ------------------------------------------------------------------
    def parameters(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight}
