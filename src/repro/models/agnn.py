"""AGNN model — Figure 1's cosine-similarity attention with graph softmax.

Forward (global formulation):

.. math:: \\Psi = \\mathrm{sm}\\left(\\mathcal{A} \\odot
          \\beta\\,(H H^T \\oslash n\\,n^T)\\right), \\qquad
          Z = \\Psi H W, \\qquad H' = \\sigma(Z)

where ``n`` holds the per-row L2 norms of ``H`` and ``sm`` is the graph
softmax of Section 4.2. The paper's AGNN keeps :math:`\\beta` fixed
(:math:`\\partial\\Psi/\\partial W = 0`); set ``learnable_beta=True`` to
also train the propagation temperature (the original AGNN of
Thekumparampil et al.). All aggregation/weight-gradient glue is the
shared :class:`repro.models.attention.PairwiseAttentionLayer`; only the
Ψ operator pair lives here.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.psi import psi_agnn, psi_agnn_vjp
from repro.models.attention import PairwiseAttentionLayer
from repro.models.base import GnnModel
from repro.tensor.csr import CSRMatrix
from repro.util.counters import FlopCounter
from repro.util.rng import make_rng

__all__ = ["AGNNLayer", "agnn_model"]


class AGNNLayer(PairwiseAttentionLayer):
    """One AGNN layer (cosine attention, softmax-normalised).

    Parameters mirror :class:`~repro.models.va.VALayer`, plus:

    beta:
        Initial propagation temperature.
    learnable_beta:
        Whether :math:`\\beta` receives gradients.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        order: str = "project_first",
        beta: float = 1.0,
        learnable_beta: bool = False,
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(in_dim, out_dim, activation, order, seed, dtype)
        self.beta = np.array(beta, dtype=dtype)
        self.learnable_beta = learnable_beta

    def _psi_forward(
        self, a: CSRMatrix, h: np.ndarray, counter: FlopCounter
    ) -> tuple[CSRMatrix, Any]:
        return psi_agnn(a, h, beta=float(self.beta), counter=counter)

    def _psi_vjp(
        self, ds: np.ndarray, psi_cache: Any, counter: FlopCounter
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        dh_psi, dbeta = psi_agnn_vjp(ds, psi_cache, counter=counter)
        extra = (
            {"beta": np.array(dbeta, dtype=self.beta.dtype)}
            if self.learnable_beta
            else {}
        )
        return dh_psi, extra

    def parameters(self) -> dict[str, np.ndarray]:
        params = super().parameters()
        if self.learnable_beta:
            params["beta"] = self.beta
        return params


def agnn_model(
    in_dim: int,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    activation: str = "relu",
    order: str = "project_first",
    beta: float = 1.0,
    learnable_beta: bool = False,
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
) -> GnnModel:
    """Build an ``num_layers``-deep AGNN model (linear final layer)."""
    rng = make_rng(seed)
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    layers = [
        AGNNLayer(
            dims[i],
            dims[i + 1],
            activation=activation if i + 1 < num_layers else "identity",
            order=order,
            beta=beta,
            learnable_beta=learnable_beta,
            seed=rng,
            dtype=dtype,
        )
        for i in range(num_layers)
    ]
    return GnnModel(layers)
