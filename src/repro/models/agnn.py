"""AGNN model — Figure 1's cosine-similarity attention with graph softmax.

Forward (global formulation):

.. math:: \\Psi = \\mathrm{sm}\\left(\\mathcal{A} \\odot
          \\beta\\,(H H^T \\oslash n\\,n^T)\\right), \\qquad
          Z = \\Psi H W, \\qquad H' = \\sigma(Z)

where ``n`` holds the per-row L2 norms of ``H`` and ``sm`` is the graph
softmax of Section 4.2. The paper's AGNN keeps :math:`\\beta` fixed
(:math:`\\partial\\Psi/\\partial W = 0`); set ``learnable_beta=True`` to
also train the propagation temperature (the original AGNN of
Thekumparampil et al.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.psi import psi_agnn, psi_agnn_vjp
from repro.models.base import GnnLayer, GnnModel, glorot
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import mm, sddmm_dot, spmm
from repro.tensor.workspace import workspace
from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng

__all__ = ["AGNNLayer", "agnn_model"]


@dataclass
class _AGNNCache:
    a: CSRMatrix
    h: np.ndarray
    s: CSRMatrix
    psi_cache: Any
    hp: np.ndarray | None
    ah: np.ndarray | None
    z: np.ndarray


class AGNNLayer(GnnLayer):
    """One AGNN layer (cosine attention, softmax-normalised).

    Parameters mirror :class:`~repro.models.va.VALayer`, plus:

    beta:
        Initial propagation temperature.
    learnable_beta:
        Whether :math:`\\beta` receives gradients.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        order: str = "project_first",
        beta: float = 1.0,
        learnable_beta: bool = False,
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        if order not in ("project_first", "aggregate_first"):
            raise ValueError("invalid composition order")
        self.weight = glorot(make_rng(seed), (in_dim, out_dim), dtype)
        self.beta = np.array(beta, dtype=dtype)
        self.learnable_beta = learnable_beta
        self.order = order
        self.in_dim = in_dim
        self.out_dim = out_dim

    # ------------------------------------------------------------------
    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, _AGNNCache | None]:
        s, psi_cache = psi_agnn(
            a, h, beta=float(self.beta), counter=counter
        )
        hp = ah = None
        if self.order == "project_first":
            hp = mm(h, self.weight, counter=counter)
            z = spmm(s, hp, counter=counter)
        else:
            ah = spmm(s, h, counter=counter)
            z = mm(ah, self.weight, counter=counter)
        h_next = self.activation.fn(z)
        if not training:
            return h_next, None
        return h_next, _AGNNCache(
            a=a, h=h, s=s, psi_cache=psi_cache, hp=hp, ah=ah, z=z
        )

    # ------------------------------------------------------------------
    def backward(
        self,
        cache: _AGNNCache,
        g: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        s_t = cache.s.transpose()
        if self.order == "project_first":
            st_g = spmm(s_t, g, counter=counter)
            d_weight = mm(cache.h.T, st_g, counter=counter)
            dh = mm(st_g, self.weight.T, counter=counter)
            # ds is consumed synchronously by the psi VJP below, so a
            # pooled scratch vector is safe to hand out as ``out=``.
            ds = sddmm_dot(
                cache.a, g, cache.hp, counter=counter,
                out=workspace(
                    "model.ds", (cache.a.nnz,), np.result_type(g, cache.hp)
                ),
            )
        else:
            d_weight = mm(cache.ah.T, g, counter=counter)
            m = mm(g, self.weight.T, counter=counter)
            dh = spmm(s_t, m, counter=counter)
            ds = sddmm_dot(
                cache.a, m, cache.h, counter=counter,
                out=workspace(
                    "model.ds", (cache.a.nnz,), np.result_type(m, cache.h)
                ),
            )
        dh_psi, dbeta = psi_agnn_vjp(ds, cache.psi_cache, counter=counter)
        dh = dh + dh_psi
        grads = {"weight": d_weight}
        if self.learnable_beta:
            grads["beta"] = np.array(dbeta, dtype=self.beta.dtype)
        return dh, grads

    # ------------------------------------------------------------------
    def parameters(self) -> dict[str, np.ndarray]:
        params = {"weight": self.weight}
        if self.learnable_beta:
            params["beta"] = self.beta
        return params


def agnn_model(
    in_dim: int,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    activation: str = "relu",
    order: str = "project_first",
    beta: float = 1.0,
    learnable_beta: bool = False,
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
) -> GnnModel:
    """Build an ``num_layers``-deep AGNN model (linear final layer)."""
    rng = make_rng(seed)
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    layers = [
        AGNNLayer(
            dims[i],
            dims[i + 1],
            activation=activation if i + 1 < num_layers else "identity",
            order=order,
            beta=beta,
            learnable_beta=learnable_beta,
            seed=rng,
            dtype=dtype,
        )
        for i in range(num_layers)
    ]
    return GnnModel(layers)
