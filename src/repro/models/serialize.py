"""Model checkpointing: parameter snapshots and compressed-npz files.

Parameters are the model's only durable state (activations and
gradients are per-request workspaces — see
:class:`repro.models.base.ForwardState`), so a checkpoint is a flat
``layer{i}.{name}`` → array mapping and nothing else: no pickled code,
no architecture metadata beyond a shape check.

Two layers of API:

* :func:`state_dict` / :func:`load_state_dict` — in-memory snapshot
  and *in-place* restore. Loading copies into the existing parameter
  arrays (``np.copyto``), so every live view of the parameters — layer
  attributes, serving-engine models mid-flight, optimizer slots —
  observes the new values without rebinding. This is the hot-swap
  primitive the serving engine's model reload uses (paired with a
  params-version bump that invalidates its activation cache).
* :func:`save_model` / :func:`load_model` — the same mapping as a
  compressed npz on disk.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.models.base import GnnModel

__all__ = ["state_dict", "load_state_dict", "save_model", "load_model"]


def state_dict(model: GnnModel) -> dict[str, np.ndarray]:
    """Flat ``layer{i}.{name}`` → array *copy* of all parameters.

    Copies, not views: the snapshot stays stable while the live model
    keeps training, which is what makes it a checkpoint.
    """
    blobs: dict[str, np.ndarray] = {}
    for index, params in enumerate(model.parameters()):
        for name, value in params.items():
            blobs[f"layer{index}.{name}"] = np.array(value, copy=True)
    return blobs


def load_state_dict(
    model: GnnModel, state: dict[str, np.ndarray]
) -> GnnModel:
    """Restore a :func:`state_dict` snapshot *in place* into ``model``.

    The model must have the same architecture (layer count, parameter
    names, shapes); mismatches raise ``ValueError`` rather than
    silently truncating. Values are copied into the existing parameter
    arrays, so shared references (including models currently serving
    requests) all see the swap.
    """
    available = set(state)
    expected = {
        f"layer{index}.{name}"
        for index, params in enumerate(model.parameters())
        for name in params
    }
    if available != expected:
        missing = sorted(expected - available)
        extra = sorted(available - expected)
        raise ValueError(
            f"checkpoint mismatch: missing={missing}, extra={extra}"
        )
    for index, params in enumerate(model.parameters()):
        for name, value in params.items():
            stored = np.asarray(state[f"layer{index}.{name}"])
            if stored.shape != np.asarray(value).shape:
                raise ValueError(
                    f"shape mismatch for layer{index}.{name}: "
                    f"{stored.shape} vs {np.asarray(value).shape}"
                )
            np.copyto(value, stored.astype(value.dtype))
    return model


def save_model(model: GnnModel, path: str | Path) -> None:
    """Write every layer's parameters to ``path`` (npz)."""
    np.savez_compressed(Path(path), **state_dict(model))


def load_model(model: GnnModel, path: str | Path) -> GnnModel:
    """Load parameters saved by :func:`save_model` into ``model``.

    Equivalent to :func:`load_state_dict` on the file's contents: same
    architecture checks, same in-place copy semantics.
    """
    with np.load(Path(path)) as blob:
        return load_state_dict(model, {k: blob[k] for k in blob.files})
