"""Model checkpointing: save/load all parameters as a compressed npz.

Parameters are stored flat under ``layer{i}.{name}`` keys; loading
writes *in place* into an already-constructed model of the same
architecture, so the checkpoint stays a pure value file (no pickled
code, no architecture metadata beyond a shape check).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.models.base import GnnModel

__all__ = ["save_model", "load_model"]


def save_model(model: GnnModel, path: str | Path) -> None:
    """Write every layer's parameters to ``path`` (npz)."""
    blobs: dict[str, np.ndarray] = {}
    for index, params in enumerate(model.parameters()):
        for name, value in params.items():
            blobs[f"layer{index}.{name}"] = np.asarray(value)
    np.savez_compressed(Path(path), **blobs)


def load_model(model: GnnModel, path: str | Path) -> GnnModel:
    """Load parameters saved by :func:`save_model` into ``model``.

    The model must have the same architecture (layer count, parameter
    names, shapes); mismatches raise ``ValueError`` rather than
    silently truncating.
    """
    with np.load(Path(path)) as blob:
        available = set(blob.files)
        expected = {
            f"layer{index}.{name}"
            for index, params in enumerate(model.parameters())
            for name in params
        }
        if available != expected:
            missing = sorted(expected - available)
            extra = sorted(available - expected)
            raise ValueError(
                f"checkpoint mismatch: missing={missing}, extra={extra}"
            )
        for index, params in enumerate(model.parameters()):
            for name, value in params.items():
                stored = blob[f"layer{index}.{name}"]
                if stored.shape != np.asarray(value).shape:
                    raise ValueError(
                        f"shape mismatch for layer{index}.{name}: "
                        f"{stored.shape} vs {np.asarray(value).shape}"
                    )
                np.copyto(value, stored.astype(value.dtype))
    return model
