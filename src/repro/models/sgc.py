"""SGC — Simple Graph Convolution (Wu et al.), a C-GNN the paper cites.

SGC collapses a K-layer GCN into a single projection over
pre-propagated features:

.. math:: Z = \\mathcal{A}^K H W, \\qquad H^{out} = \\mathrm{softmax}(Z)

The propagation :math:`\\mathcal{A}^K H` contains no parameters, so it
is computed once (K SpMMs) and cached; training then reduces to a
linear model — the cheapest possible "GNN" and a useful lower bound in
the benchmark suite. In the paper's taxonomy this is the extreme C-GNN
case: :math:`\\Psi` is a constant and :math:`\\Phi` a single projection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import GnnLayer, GnnModel, glorot
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import mm, spmm
from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng

__all__ = ["SGCLayer", "sgc_model", "propagate"]


def propagate(
    a: CSRMatrix,
    h: np.ndarray,
    hops: int,
    counter: FlopCounter = null_counter(),
) -> np.ndarray:
    """K-hop feature propagation :math:`\\mathcal{A}^K H` (no parameters).

    ``a`` must be pre-normalised (use
    :func:`repro.models.gcn.normalize_adjacency`).
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    for _hop in range(hops):
        h = spmm(a, h, counter=counter)
    return h


@dataclass
class _SGCCache:
    propagated: np.ndarray
    z: np.ndarray


class SGCLayer(GnnLayer):
    """The single SGC projection layer over K-hop-propagated features.

    The layer performs the propagation inside ``forward`` but caches it
    keyed on the input's identity, so repeated training epochs over the
    same features pay for it exactly once — SGC's defining trick.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        hops: int = 2,
        activation: str = "identity",
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        if hops < 0:
            raise ValueError("hops must be non-negative")
        self.weight = glorot(make_rng(seed), (in_dim, out_dim), dtype)
        self.hops = hops
        self.in_dim = in_dim
        self.out_dim = out_dim
        self._prop_key: int | None = None
        self._propagated: np.ndarray | None = None

    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, _SGCCache | None]:
        key = (id(a), id(h))
        if self._prop_key != key:
            self._propagated = propagate(a, h, self.hops, counter=counter)
            self._prop_key = key
        propagated = self._propagated
        z = mm(propagated, self.weight, counter=counter)
        h_next = self.activation.fn(z)
        if not training:
            return h_next, None
        return h_next, _SGCCache(propagated=propagated, z=z)

    def backward(
        self,
        cache: _SGCCache,
        g: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        d_weight = mm(cache.propagated.T, g, counter=counter)
        # Input gradient through A^K: K transposed SpMMs would be needed;
        # SGC is always the first (and only) layer, so it is never used.
        dh = mm(g, self.weight.T, counter=counter)
        return dh, {"weight": d_weight}

    def parameters(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight}


def sgc_model(
    in_dim: int,
    out_dim: int,
    hops: int = 2,
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
    **_ignored,
) -> GnnModel:
    """A one-layer SGC model (K-hop propagation + linear projection)."""
    return GnnModel(
        [SGCLayer(in_dim, out_dim, hops=hops, seed=seed, dtype=dtype)]
    )
