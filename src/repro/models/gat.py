"""GAT model — Figure 1/2's global formulation with full backward pass.

Forward:

.. math:: H' = H W,\\quad u = H' a,\\quad v = H' \\bar{a}

.. math:: \\Psi = \\mathrm{sm}\\left(\\mathcal{A} \\odot
          \\mathrm{LeakyReLU}(\\mathrm{rep}(u) + \\mathrm{rep}^T(v))\\right),
          \\qquad Z = \\Psi H', \\qquad H^{out} = \\sigma(Z)

The virtual matrix :math:`C = \\mathrm{rep}(u) + \\mathrm{rep}^T(v)` is
never materialised — it is sampled on A's pattern by the additive SDDMM
(Section 6.1/6.2 fusion). Because :math:`\\Psi` depends on :math:`W`
(through :math:`H'`), the weight update carries the second term of
Eq. (7): the VJP routes the attention gradient through
:math:`u, v` back into :math:`H'` as rank-1 updates, and
:math:`dW = H^T\\,dH'` folds both paths together.

:class:`MultiHeadGATLayer` implements the multi-head extension of the
original GAT paper (concatenated or averaged heads) on the same
kernels — one of the "straightforward extensions" the paper's
conclusion mentions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.psi import psi_gat, psi_gat_vjp
from repro.models.attention import score_gradient
from repro.models.base import GnnLayer, GnnModel, glorot
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import mm, spmm
from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng

__all__ = ["GATLayer", "MultiHeadGATLayer", "gat_model"]


@dataclass
class _GATCache:
    a: CSRMatrix
    h: np.ndarray
    s: CSRMatrix
    psi_cache: Any
    hp: np.ndarray
    z: np.ndarray


class GATLayer(GnnLayer):
    """One single-head GAT layer.

    Parameters
    ----------
    in_dim, out_dim:
        Feature dimensions of :math:`W \\in \\mathbb{R}^{in \\times out}`.
    activation:
        Output non-linearity :math:`\\sigma` (GAT uses ELU on hidden
        layers).
    slope:
        LeakyReLU negative slope inside the attention logits (0.2 in
        the GAT paper).
    seed:
        Initialisation seed for :math:`W` and the split attention
        vector :math:`\\mathbf{a} = (a\\;\\bar{a})`.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "elu",
        slope: float = 0.2,
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        rng = make_rng(seed)
        self.weight = glorot(rng, (in_dim, out_dim), dtype)
        self.a_src = glorot(rng, (out_dim,), dtype)
        self.a_dst = glorot(rng, (out_dim,), dtype)
        self.slope = slope
        self.in_dim = in_dim
        self.out_dim = out_dim

    # ------------------------------------------------------------------
    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, _GATCache | None]:
        hp = mm(h, self.weight, counter=counter)
        s, psi_cache = psi_gat(
            a, hp, self.a_src, self.a_dst, slope=self.slope, counter=counter
        )
        z = spmm(s, hp, counter=counter)
        h_next = self.activation.fn(z)
        if not training:
            return h_next, None
        return h_next, _GATCache(a=a, h=h, s=s, psi_cache=psi_cache, hp=hp, z=z)

    # ------------------------------------------------------------------
    def backward(
        self,
        cache: _GATCache,
        g: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        # dS: gradient of Z = S H' w.r.t. S's stored values (Eq. 9).
        ds = score_gradient(cache.a, g, cache.hp, counter=counter)
        dhp_psi, da_src, da_dst = psi_gat_vjp(ds, cache.psi_cache, counter=counter)
        # Two paths into H': aggregation (S^T G) and attention (rank-1s).
        dhp = spmm(cache.s.transpose(), g, counter=counter) + dhp_psi
        d_weight = mm(cache.h.T, dhp, counter=counter)
        dh = mm(dhp, self.weight.T, counter=counter)
        return dh, {
            "weight": d_weight,
            "a_src": da_src,
            "a_dst": da_dst,
        }

    # ------------------------------------------------------------------
    def parameters(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "a_src": self.a_src, "a_dst": self.a_dst}


class MultiHeadGATLayer(GnnLayer):
    """Multi-head GAT: ``heads`` independent attention heads.

    ``combine="concat"`` concatenates head outputs (hidden layers of
    the GAT paper; output width ``heads * out_dim``);
    ``combine="mean"`` averages them (output layers; width ``out_dim``).
    Each head is a full :class:`GATLayer` sharing this wrapper's
    activation, so forward/backward reuse the single-head kernels.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        heads: int = 4,
        combine: str = "concat",
        activation: str = "elu",
        slope: float = 0.2,
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        if combine not in ("concat", "mean"):
            raise ValueError("combine must be 'concat' or 'mean'")
        rng = make_rng(seed)
        # Heads apply identity internally; sigma is applied once after
        # combination, matching the reference GAT formulation.
        self.heads = [
            GATLayer(
                in_dim, out_dim, activation="identity", slope=slope,
                seed=rng, dtype=dtype,
            )
            for _ in range(heads)
        ]
        self.combine = combine
        self.in_dim = in_dim
        self.out_dim = out_dim * heads if combine == "concat" else out_dim

    # ------------------------------------------------------------------
    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, Any]:
        outputs, caches = [], []
        for head in self.heads:
            out, cache = head.forward(a, h, counter=counter, training=training)
            outputs.append(out)
            caches.append(cache)
        if self.combine == "concat":
            z = np.concatenate(outputs, axis=1)
        else:
            z = np.mean(outputs, axis=0)
        h_next = self.activation.fn(z)
        if not training:
            return h_next, None
        cache = _MultiHeadCache(caches=caches, z=z)
        return h_next, cache

    # ------------------------------------------------------------------
    def backward(
        self,
        cache: "_MultiHeadCache",
        g: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        n_heads = len(self.heads)
        if self.combine == "concat":
            width = g.shape[1] // n_heads
            head_grads = [
                g[:, i * width : (i + 1) * width] for i in range(n_heads)
            ]
        else:
            head_grads = [g / n_heads] * n_heads
        dh = None
        grads: dict[str, np.ndarray] = {}
        for index, (head, head_cache, head_g) in enumerate(
            zip(self.heads, cache.caches, head_grads)
        ):
            # Heads are linear internally (identity), so sigma' == 1 and
            # head_g is directly the head's dL/dZ.
            dh_head, head_param_grads = head.backward(
                head_cache, np.ascontiguousarray(head_g), counter=counter
            )
            dh = dh_head if dh is None else dh + dh_head
            for name, value in head_param_grads.items():
                grads[f"head{index}.{name}"] = value
        return dh, grads

    # ------------------------------------------------------------------
    def parameters(self) -> dict[str, np.ndarray]:
        params: dict[str, np.ndarray] = {}
        for index, head in enumerate(self.heads):
            for name, value in head.parameters().items():
                params[f"head{index}.{name}"] = value
        return params


@dataclass
class _MultiHeadCache:
    caches: list
    z: np.ndarray


def gat_model(
    in_dim: int,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    activation: str = "elu",
    slope: float = 0.2,
    heads: int = 1,
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
) -> GnnModel:
    """Build an ``num_layers``-deep GAT model.

    With ``heads == 1`` (the paper's benchmarked configuration) plain
    :class:`GATLayer` stacks are used; with ``heads > 1`` hidden layers
    concatenate heads and the final layer averages them.
    """
    rng = make_rng(seed)
    layers: list[GnnLayer] = []
    if heads == 1:
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
        for i in range(num_layers):
            layers.append(
                GATLayer(
                    dims[i],
                    dims[i + 1],
                    activation=activation if i + 1 < num_layers else "identity",
                    slope=slope,
                    seed=rng,
                    dtype=dtype,
                )
            )
    else:
        current = in_dim
        for i in range(num_layers):
            last = i + 1 == num_layers
            layers.append(
                MultiHeadGATLayer(
                    current,
                    out_dim if last else hidden_dim,
                    heads=heads,
                    combine="mean" if last else "concat",
                    activation="identity" if last else activation,
                    slope=slope,
                    seed=rng,
                    dtype=dtype,
                )
            )
            current = hidden_dim * heads if not last else out_dim
    return GnnModel(layers)
