"""GAT model — Figure 1/2's global formulation with full backward pass.

Forward:

.. math:: H' = H W,\\quad u = H' a,\\quad v = H' \\bar{a}

.. math:: \\Psi = \\mathrm{sm}\\left(\\mathcal{A} \\odot
          \\mathrm{LeakyReLU}(\\mathrm{rep}(u) + \\mathrm{rep}^T(v))\\right),
          \\qquad Z = \\Psi H', \\qquad H^{out} = \\sigma(Z)

The virtual matrix :math:`C = \\mathrm{rep}(u) + \\mathrm{rep}^T(v)` is
never materialised — it is sampled on A's pattern by the additive SDDMM
(Section 6.1/6.2 fusion). Because :math:`\\Psi` depends on :math:`W`
(through :math:`H'`), the weight update carries the second term of
Eq. (7): the VJP routes the attention gradient through
:math:`u, v` back into :math:`H'` as rank-1 updates, and
:math:`dW = H^T\\,dH'` folds both paths together.

:class:`MultiHeadGATLayer` implements the multi-head extension of the
original GAT paper (concatenated or averaged heads) on the same
kernels — one of the "straightforward extensions" the paper's
conclusion mentions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.psi import psi_gat, psi_gat_vjp
from repro.models.attention import score_gradient
from repro.models.base import GnnLayer, GnnModel, glorot
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import mm, spmm
from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng

__all__ = ["GATLayer", "MultiHeadGATLayer", "gat_model"]


@dataclass
class _GATCache:
    a: CSRMatrix
    h: np.ndarray
    s: CSRMatrix
    psi_cache: Any
    hp: np.ndarray
    z: np.ndarray


class GATLayer(GnnLayer):
    """One single-head GAT layer.

    Parameters
    ----------
    in_dim, out_dim:
        Feature dimensions of :math:`W \\in \\mathbb{R}^{in \\times out}`.
    activation:
        Output non-linearity :math:`\\sigma` (GAT uses ELU on hidden
        layers).
    slope:
        LeakyReLU negative slope inside the attention logits (0.2 in
        the GAT paper).
    seed:
        Initialisation seed for :math:`W` and the split attention
        vector :math:`\\mathbf{a} = (a\\;\\bar{a})`.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "elu",
        slope: float = 0.2,
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        rng = make_rng(seed)
        self.weight = glorot(rng, (in_dim, out_dim), dtype)
        self.a_src = glorot(rng, (out_dim,), dtype)
        self.a_dst = glorot(rng, (out_dim,), dtype)
        self.slope = slope
        self.in_dim = in_dim
        self.out_dim = out_dim

    # ------------------------------------------------------------------
    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, _GATCache | None]:
        hp = mm(h, self.weight, counter=counter)
        s, psi_cache = psi_gat(
            a, hp, self.a_src, self.a_dst, slope=self.slope, counter=counter
        )
        z = spmm(s, hp, counter=counter)
        h_next = self.activation.fn(z)
        if not training:
            return h_next, None
        return h_next, _GATCache(a=a, h=h, s=s, psi_cache=psi_cache, hp=hp, z=z)

    # ------------------------------------------------------------------
    def backward(
        self,
        cache: _GATCache,
        g: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        # dS: gradient of Z = S H' w.r.t. S's stored values (Eq. 9).
        ds = score_gradient(cache.a, g, cache.hp, counter=counter)
        dhp_psi, da_src, da_dst = psi_gat_vjp(ds, cache.psi_cache, counter=counter)
        # Two paths into H': aggregation (S^T G) and attention (rank-1s).
        dhp = spmm(cache.s.transpose(), g, counter=counter) + dhp_psi
        d_weight = mm(cache.h.T, dhp, counter=counter)
        dh = mm(dhp, self.weight.T, counter=counter)
        return dh, {
            "weight": d_weight,
            "a_src": da_src,
            "a_dst": da_dst,
        }

    # ------------------------------------------------------------------
    def parameters(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "a_src": self.a_src, "a_dst": self.a_dst}


class MultiHeadGATLayer(GnnLayer):
    """Multi-head GAT: ``heads`` independent attention heads.

    ``combine="concat"`` concatenates head outputs (hidden layers of
    the GAT paper; output width ``heads * out_dim``);
    ``combine="mean"`` averages them (output layers; width ``out_dim``).

    With ``batched=True`` (the default) all heads execute in a single
    kernel sweep per op: the per-head weights live as column blocks of
    one stacked ``(in, heads*out)`` matrix, attention scores are
    stacked ``(nnz, heads)`` edge values over the shared pattern, and
    every SpMM/SDDMM/softmax call runs once for all heads.
    ``batched=False`` keeps the original per-head loop of full
    :class:`GATLayer` objects as a correctness oracle. Both modes share
    the same parameter storage (each head's ``weight``/``a_src``/
    ``a_dst`` is a view into the stacked arrays), so the flag can be
    flipped on a live model and checkpoints are interchangeable.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        heads: int = 4,
        combine: str = "concat",
        activation: str = "elu",
        slope: float = 0.2,
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
        batched: bool = True,
    ) -> None:
        super().__init__(activation)
        if combine not in ("concat", "mean"):
            raise ValueError("combine must be 'concat' or 'mean'")
        rng = make_rng(seed)
        # Heads apply identity internally; sigma is applied once after
        # combination, matching the reference GAT formulation.
        self.heads = [
            GATLayer(
                in_dim, out_dim, activation="identity", slope=slope,
                seed=rng, dtype=dtype,
            )
            for _ in range(heads)
        ]
        self.combine = combine
        self.batched = batched
        self.slope = slope
        self.in_dim = in_dim
        self.head_dim = out_dim
        self.num_heads = heads
        self.out_dim = out_dim * heads if combine == "concat" else out_dim
        # Stacked parameter storage; per-head attributes become
        # *contiguous* views (head-major stacking) so both execution
        # paths, in-place SGD updates, np.copyto-based checkpoint loads
        # and flat-index perturbation (gradcheck) all see one memory.
        self._w_stack = np.stack([head.weight for head in self.heads])
        self._a_src_mat = np.stack([head.a_src for head in self.heads])
        self._a_dst_mat = np.stack([head.a_dst for head in self.heads])
        for index, head in enumerate(self.heads):
            head.weight = self._w_stack[index]
            head.a_src = self._a_src_mat[index]
            head.a_dst = self._a_dst_mat[index]

    def _stacked_weight(self) -> np.ndarray:
        """The ``(in, heads*d)`` column-block weight for batched matmuls.

        Materialised per call (cheap next to the matmuls it feeds) so
        in-place parameter updates are always reflected.
        """
        return self._w_stack.transpose(1, 0, 2).reshape(
            self.in_dim, self.num_heads * self.head_dim
        )

    # ------------------------------------------------------------------
    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, Any]:
        if self.batched:
            return self._forward_batched(a, h, counter, training)
        outputs, caches = [], []
        for head in self.heads:
            out, cache = head.forward(a, h, counter=counter, training=training)
            outputs.append(out)
            caches.append(cache)
        if self.combine == "concat":
            z = np.concatenate(outputs, axis=1)
        else:
            z = np.mean(outputs, axis=0)
        h_next = self.activation.fn(z)
        if not training:
            return h_next, None
        cache = _MultiHeadCache(caches=caches, z=z)
        return h_next, cache

    def _forward_batched(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter,
        training: bool,
    ) -> tuple[np.ndarray, Any]:
        n = h.shape[0]
        heads, d = self.num_heads, self.head_dim
        hp = mm(h, self._stacked_weight(), counter=counter).reshape(
            n, heads, d
        )
        s, psi_cache = psi_gat(
            a, hp, self._a_src_mat, self._a_dst_mat,
            slope=self.slope, counter=counter,
        )
        zh = spmm(s, hp, counter=counter)
        if self.combine == "concat":
            z = zh.reshape(n, heads * d)
        else:
            z = zh.mean(axis=1)
        h_next = self.activation.fn(z)
        if not training:
            return h_next, None
        cache = _BatchedMultiHeadCache(
            a=a, h=h, s=s, psi_cache=psi_cache, hp=hp, z=z
        )
        return h_next, cache

    # ------------------------------------------------------------------
    def backward(
        self,
        cache: Any,
        g: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        if isinstance(cache, _BatchedMultiHeadCache):
            return self._backward_batched(cache, g, counter)
        n_heads = len(self.heads)
        if self.combine == "concat":
            width = g.shape[1] // n_heads
            head_grads = [
                g[:, i * width : (i + 1) * width] for i in range(n_heads)
            ]
        else:
            head_grads = [g / n_heads] * n_heads
        dh = None
        grads: dict[str, np.ndarray] = {}
        for index, (head, head_cache, head_g) in enumerate(
            zip(self.heads, cache.caches, head_grads)
        ):
            # Heads are linear internally (identity), so sigma' == 1 and
            # head_g is directly the head's dL/dZ.
            dh_head, head_param_grads = head.backward(
                head_cache, np.ascontiguousarray(head_g), counter=counter
            )
            dh = dh_head if dh is None else dh + dh_head
            for name, value in head_param_grads.items():
                grads[f"head{index}.{name}"] = value
        return dh, grads

    def _backward_batched(
        self,
        cache: "_BatchedMultiHeadCache",
        g: np.ndarray,
        counter: FlopCounter,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        n = g.shape[0]
        heads, d = self.num_heads, self.head_dim
        if self.combine == "concat":
            g_b = np.ascontiguousarray(g).reshape(n, heads, d)
        else:
            # Mean combine: each head sees dL/dZ_h = g / heads.
            g_b = np.broadcast_to((g / heads)[:, None, :], (n, heads, d))
        ds = score_gradient(cache.a, g_b, cache.hp, counter=counter)
        dhp_psi, da_src, da_dst = psi_gat_vjp(
            ds, cache.psi_cache, counter=counter
        )
        # Two paths into H': aggregation (S^T G) and attention (rank-1s),
        # exactly as in GATLayer.backward, with all heads stacked.
        dhp = spmm(cache.s.transpose(), g_b, counter=counter) + dhp_psi
        dhp_flat = dhp.reshape(n, heads * d)
        d_weight = mm(cache.h.T, dhp_flat, counter=counter)
        dh = mm(dhp_flat, self._stacked_weight().T, counter=counter)
        grads: dict[str, np.ndarray] = {}
        for i in range(heads):
            grads[f"head{i}.weight"] = d_weight[:, i * d : (i + 1) * d]
            grads[f"head{i}.a_src"] = da_src[i]
            grads[f"head{i}.a_dst"] = da_dst[i]
        return dh, grads

    # ------------------------------------------------------------------
    def parameters(self) -> dict[str, np.ndarray]:
        params: dict[str, np.ndarray] = {}
        for index, head in enumerate(self.heads):
            for name, value in head.parameters().items():
                params[f"head{index}.{name}"] = value
        return params


@dataclass
class _MultiHeadCache:
    caches: list
    z: np.ndarray


@dataclass
class _BatchedMultiHeadCache:
    a: CSRMatrix
    h: np.ndarray
    s: CSRMatrix
    psi_cache: Any
    hp: np.ndarray
    z: np.ndarray


def gat_model(
    in_dim: int,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    activation: str = "elu",
    slope: float = 0.2,
    heads: int = 1,
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
    batched: bool = True,
) -> GnnModel:
    """Build an ``num_layers``-deep GAT model.

    With ``heads == 1`` (the paper's benchmarked configuration) plain
    :class:`GATLayer` stacks are used; with ``heads > 1`` hidden layers
    concatenate heads and the final layer averages them. ``batched``
    selects the all-heads-in-one-sweep execution path of
    :class:`MultiHeadGATLayer` (default) or the per-head oracle loop.
    """
    rng = make_rng(seed)
    layers: list[GnnLayer] = []
    if heads == 1:
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
        for i in range(num_layers):
            layers.append(
                GATLayer(
                    dims[i],
                    dims[i + 1],
                    activation=activation if i + 1 < num_layers else "identity",
                    slope=slope,
                    seed=rng,
                    dtype=dtype,
                )
            )
    else:
        current = in_dim
        for i in range(num_layers):
            last = i + 1 == num_layers
            layers.append(
                MultiHeadGATLayer(
                    current,
                    out_dim if last else hidden_dim,
                    heads=heads,
                    combine="mean" if last else "concat",
                    activation="identity" if last else activation,
                    slope=slope,
                    seed=rng,
                    dtype=dtype,
                    batched=batched,
                )
            )
            current = hidden_dim * heads if not last else out_dim
    return GnnModel(layers)
