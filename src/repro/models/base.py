"""Base classes of the model stack: ``GnnLayer``, ``GnnModel``, ``Loss``.

These mirror the three base classes the paper's artifact describes in
``gnn_models.py``. A model is a list of layers; each layer computes

.. math:: Z^l = (\\Phi \\circ \\oplus)(\\Psi(\\mathcal{A}, H^l), H^l),
          \\qquad H^{l+1} = \\sigma(Z^l)

and, for training, caches whatever its backward pass needs. The model
owns the *error chaining* of Section 5: the loss provides
:math:`\\nabla_{H^L}\\mathcal{L}`, the model bootstraps
:math:`G^L = \\nabla_{H^L}\\mathcal{L} \\odot \\sigma'(Z^L)` (Eq. 4) and
walks the layers backwards, converting each layer's input-feature
gradient into the previous layer's :math:`G^{l-1} = \\sigma'(Z^{l-1})
\\odot \\Gamma^l` (Eq. 6).

The ``redistribute`` hook is the identity on a single node and is
overridden by the distributed model to reshuffle the output of one
layer into the input distribution of the next (Section 6.3), exactly as
the artifact's distributed subclasses overload it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.activations import Activation, get_activation
from repro.tensor.csr import CSRMatrix
from repro.util.counters import FlopCounter, null_counter

__all__ = ["ForwardState", "GnnLayer", "GnnModel", "Loss", "glorot"]


def glorot(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    dtype: np.dtype | type = np.float32,
) -> np.ndarray:
    """Glorot/Xavier-uniform initialisation (fan-in + fan-out scaled)."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, shape).astype(dtype)


class GnnLayer(ABC):
    """One GNN layer: parameters + forward/backward transforms.

    Subclasses hold their parameters as attributes and implement
    :meth:`forward` / :meth:`backward`. Every cache object returned by
    ``forward`` must expose a ``z`` attribute (the pre-activation),
    which the model uses for inter-layer error propagation.
    """

    activation: Activation

    def __init__(self, activation: str | Activation) -> None:
        self.activation = get_activation(activation)

    @abstractmethod
    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, Any]:
        """Compute ``H_next`` (post-activation) and a training cache.

        With ``training=False`` the cache is ``None`` and no
        intermediate matrices are retained (the artifact's
        ``--inference`` mode).
        """

    @abstractmethod
    def backward(
        self,
        cache: Any,
        g: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Given ``g = dL/dZ`` of this layer, return ``(dH_in, grads)``.

        ``dH_in`` is the loss gradient w.r.t. this layer's input
        features (the :math:`\\Gamma` of Eq. 6, before the previous
        layer's :math:`\\sigma'` mask). ``grads`` maps parameter names
        to gradients.
        """

    @abstractmethod
    def parameters(self) -> dict[str, np.ndarray]:
        """Trainable parameters by name (views, not copies)."""

    def apply_gradients(self, grads: dict[str, np.ndarray], lr: float) -> None:
        """Default SGD rule ``p := p - lr * dp`` (Section 5, Step 6)."""
        params = self.parameters()
        for name, grad in grads.items():
            param = params[name]
            param -= lr * np.asarray(grad, dtype=param.dtype)


@dataclass
class ForwardState:
    """Per-request workspace of one forward/backward round trip.

    The model's *parameters* are shared, long-lived state; the
    activation caches a forward pass accumulates are *per-request*
    state. Passing an explicit ``ForwardState`` to
    :meth:`GnnModel.forward` / :meth:`GnnModel.backward` keeps that
    request-scoped state out of the model instance entirely, so one
    loaded model can run many in-flight passes concurrently (the
    serving engine's re-entrancy contract). Omitting it preserves the
    historical convenience behaviour: caches ride on the instance.
    """

    caches: list[Any] = field(default_factory=list)


class GnnModel:
    """A stack of :class:`GnnLayer` with full-batch training support.

    Parameters
    ----------
    layers:
        The GNN layers, applied in order.

    Notes
    -----
    By default ``forward`` retains per-layer caches on the instance
    (full-batch training stores all layer activations, which is
    exactly the memory behaviour the paper's scaling study measures);
    call with ``training=False`` for cache-free inference, or pass an
    explicit :class:`ForwardState` to keep request-scoped caches off
    the shared instance (required when one model serves concurrent
    in-flight batches).
    """

    def __init__(self, layers: Sequence[GnnLayer]) -> None:
        if not layers:
            raise ValueError("a model needs at least one layer")
        self.layers = list(layers)
        self._caches: list[Any] | None = None

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------
    def redistribute(self, h: np.ndarray, layer_index: int) -> np.ndarray:
        """Inter-layer data movement hook; identity on a single node."""
        return h

    # ------------------------------------------------------------------
    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
        state: ForwardState | None = None,
    ) -> np.ndarray:
        """Full forward pass over all layers.

        With an explicit ``state`` the per-layer caches land in
        ``state.caches`` and the model instance is never written —
        concurrent forwards over shared parameters stay independent.
        Without one, caches ride on the instance as before.
        """
        caches: list[Any] = []
        for index, layer in enumerate(self.layers):
            h, cache = layer.forward(a, h, counter=counter, training=training)
            if index + 1 < len(self.layers):
                h = self.redistribute(h, index)
            caches.append(cache)
        if state is not None:
            state.caches = caches if training else []
        else:
            self._caches = caches if training else None
        return h

    # ------------------------------------------------------------------
    def backward(
        self,
        d_h_out: np.ndarray,
        counter: FlopCounter = null_counter(),
        state: ForwardState | None = None,
    ) -> list[dict[str, np.ndarray]]:
        """Full backward pass from :math:`\\nabla_{H^L}\\mathcal{L}`.

        Returns one gradient dict per layer (aligned with
        ``self.layers``). Requires a preceding ``forward`` in training
        mode; pass the same :class:`ForwardState` the forward filled
        to chain errors through request-scoped caches.
        """
        caches = state.caches if state is not None else self._caches
        if not caches:
            raise RuntimeError(
                "backward requires a prior forward(training=True)"
            )
        grads: list[dict[str, np.ndarray]] = [None] * len(self.layers)  # type: ignore[list-item]
        gamma = d_h_out
        for index in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[index]
            cache = caches[index]
            # Eq. (4)/(6): mask the incoming feature gradient with sigma'.
            g = gamma * layer.activation.grad(cache.z)
            gamma, layer_grads = layer.backward(cache, g, counter=counter)
            grads[index] = layer_grads
        return grads

    # ------------------------------------------------------------------
    def parameters(self) -> list[dict[str, np.ndarray]]:
        """Per-layer parameter dictionaries."""
        return [layer.parameters() for layer in self.layers]

    def apply_gradients(
        self, grads: list[dict[str, np.ndarray]], lr: float
    ) -> None:
        """Apply one SGD step to every layer."""
        for layer, layer_grads in zip(self.layers, grads):
            layer.apply_gradients(layer_grads, lr)

    def zero_caches(self) -> None:
        """Drop cached activations (frees full-batch training memory)."""
        self._caches = None


class Loss(ABC):
    """A differentiable training objective on the output features."""

    @abstractmethod
    def value(self, h_out: np.ndarray, target: np.ndarray) -> float:
        """Scalar loss."""

    @abstractmethod
    def gradient(self, h_out: np.ndarray, target: np.ndarray) -> np.ndarray:
        """:math:`\\nabla_{H^L}\\mathcal{L}` — the backward bootstrap."""
