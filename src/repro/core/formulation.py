"""The programmable generic GNN layer of Eq. (1).

.. math:: H^{l+1} = \\sigma\\left(Z^l\\right), \\qquad
          Z^l = (\\Phi \\circ \\oplus)\\left(\\Psi(\\mathcal{A}, H^l), H^l\\right)

A user designs an arbitrary A-GNN by supplying three ingredients
(Section 4): the attention operator :math:`\\Psi`, the aggregation
semiring :math:`\\oplus`, and the update :math:`\\Phi` (a linear
projection here; MLPs compose multiple layers). The composition order
of :math:`\\Phi` and :math:`\\oplus` is explicit — they commute
mathematically for linear :math:`\\Phi` over the real semiring, but not
computationally (Section 4.4): *project-first* aggregates ``k_out``-wide
features, *aggregate-first* aggregates ``k_in``-wide features, and the
cheaper choice depends on the dimensions. The composition-order
ablation benchmark sweeps exactly this switch.

Training through a custom :math:`\\Psi` requires its vector-Jacobian
product; if none is supplied, the layer treats attention scores as
constants during the backward pass (gradient stops at :math:`\\Psi`),
which is a standard approximation and is documented in the returned
gradients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.activations import Activation, get_activation
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import mm, sddmm_dot, spmm
from repro.tensor.semiring import REAL, Semiring
from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng

__all__ = ["AttentionSpec", "GenericLayer"]

#: Type of a Psi operator: (A, H) -> (S, cache).
PsiFn = Callable[[CSRMatrix, np.ndarray], tuple[CSRMatrix, Any]]
#: Type of a Psi VJP: (ds_values, cache) -> dH (n x k_in).
PsiVjpFn = Callable[[np.ndarray, Any], np.ndarray]


@dataclass
class AttentionSpec:
    """Declarative description of an A-GNN layer's semantics.

    Attributes
    ----------
    psi:
        Attention operator producing the sparse score matrix ``S``
        (sharing A's pattern) and an opaque cache for the VJP.
    psi_vjp:
        Optional gradient of ``psi`` w.r.t. ``H`` given the gradient of
        S's stored values. ``None`` detaches attention from the
        gradient flow.
    aggregate:
        The :math:`\\oplus` semiring (Section 4.3). Training is
        supported for the real semiring; exotic semirings are
        inference-only (their reductions are not smooth).
    order:
        ``"project_first"`` computes :math:`S (H W)`;
        ``"aggregate_first"`` computes :math:`(S H) W`.
    name:
        Label used in reports.
    """

    psi: PsiFn
    psi_vjp: PsiVjpFn | None = None
    aggregate: Semiring = REAL
    order: str = "project_first"
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.order not in ("project_first", "aggregate_first"):
            raise ValueError(
                "order must be 'project_first' or 'aggregate_first'"
            )


@dataclass
class _GenericCache:
    a: CSRMatrix
    h: np.ndarray
    s: CSRMatrix
    psi_cache: Any
    projected: np.ndarray | None  # H W   (project_first)
    aggregated: np.ndarray | None  # S H  (aggregate_first)
    z: np.ndarray


class GenericLayer:
    """One programmable GNN layer executing Eq. (1).

    Parameters
    ----------
    in_dim, out_dim:
        Feature dimensionality before/after the layer.
    spec:
        The :class:`AttentionSpec` defining :math:`\\Psi, \\oplus` and
        the composition order.
    activation:
        Name of the non-linearity :math:`\\sigma` (see
        :mod:`repro.core.activations`).
    seed:
        Seed for Glorot-style weight initialisation.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        spec: AttentionSpec,
        activation: str | Activation = "relu",
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        rng = make_rng(seed)
        limit = float(np.sqrt(6.0 / (in_dim + out_dim)))
        self.weight = rng.uniform(-limit, limit, (in_dim, out_dim)).astype(dtype)
        self.spec = spec
        self.activation = get_activation(activation)
        self.in_dim = in_dim
        self.out_dim = out_dim

    # ------------------------------------------------------------------
    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, _GenericCache | None]:
        """Run the layer; returns ``(H_next, cache)``.

        ``training=False`` skips cache construction (inference mode —
        the artifact's ``--inference`` flag behaviour).
        """
        s, psi_cache = self.spec.psi(a, h)
        projected = aggregated = None
        if self.spec.order == "project_first":
            projected = mm(h, self.weight, counter=counter)
            z = spmm(s, projected, semiring=self.spec.aggregate, counter=counter)
        else:
            aggregated = spmm(s, h, semiring=self.spec.aggregate, counter=counter)
            z = mm(aggregated, self.weight, counter=counter)
        h_next = self.activation.fn(z)
        if not training:
            return h_next, None
        cache = _GenericCache(
            a=a, h=h, s=s, psi_cache=psi_cache,
            projected=projected, aggregated=aggregated, z=z,
        )
        return h_next, cache

    # ------------------------------------------------------------------
    def backward(
        self,
        cache: _GenericCache,
        g: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Backward pass given ``g = dL/dZ`` of this layer.

        Returns ``(dH_in, grads)`` with ``grads["weight"]`` the weight
        gradient. Requires the real aggregation semiring.
        """
        if self.spec.aggregate is not REAL:
            raise NotImplementedError(
                "training requires the real aggregation semiring"
            )
        s = cache.s
        if self.spec.order == "project_first":
            # Z = S (H W):  dW = H^T (S^T G);  dH = (S^T G) W^T + psi path.
            st_g = spmm(s.transpose(), g, counter=counter)
            d_weight = mm(cache.h.T, st_g, counter=counter)
            dh = mm(st_g, self.weight.T, counter=counter)
            hp = cache.projected
        else:
            # Z = (S H) W:  dW = (S H)^T G;  dH = S^T (G W^T) + psi path.
            d_weight = mm(cache.aggregated.T, g, counter=counter)
            m = mm(g, self.weight.T, counter=counter)
            dh = spmm(s.transpose(), m, counter=counter)
            hp = None
        if self.spec.psi_vjp is not None:
            if hp is None:
                hp = mm(cache.h, self.weight, counter=counter)
            ds = sddmm_dot(cache.a, g, hp, counter=counter)
            dh = dh + self.spec.psi_vjp(ds, cache.psi_cache)
        return dh, {"weight": d_weight}

    # ------------------------------------------------------------------
    def parameters(self) -> dict[str, np.ndarray]:
        """Trainable parameters by name."""
        return {"weight": self.weight}

    def apply_gradients(self, grads: dict[str, np.ndarray], lr: float) -> None:
        """Plain SGD step ``W := W - lr * dW`` (Section 5, Step 6)."""
        self.weight -= lr * grads["weight"].astype(self.weight.dtype)
