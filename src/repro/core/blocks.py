"""Tensor-algebra building blocks of Table 2.

These are the expressions the paper identifies as the vocabulary of
global GNN formulations: replication ``rep``, row summation ``sum``,
their composition ``rs``, the symmetrisation :math:`X + X^T` and the
Gram product :math:`X X^T`. Expressing everything through these blocks
is what lets a formulation be handed to any tensor DSL (GraphBLAS,
CTF, ...) unchanged; here they double as the reference semantics that
the fused sparse kernels are tested against.

Dense variants materialise their results and are therefore only used on
small inputs (tests, the tiled ablation executor); production paths use
the sampled/sparse counterparts in :mod:`repro.tensor.kernels`.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.csr import CSRMatrix

__all__ = [
    "rep",
    "rep_t",
    "sum_rows",
    "sum_cols",
    "rs",
    "gram",
    "matrix_plus_transpose",
]


def rep(x: np.ndarray, i: int) -> np.ndarray:
    """Replication ``rep_i(x) = x 1^T``: tile column vector ``x`` i times.

    Returns an ``(len(x), i)`` matrix whose columns are all ``x``.
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError("rep expects a 1-D vector")
    return np.broadcast_to(x[:, None], (x.shape[0], i)).copy()


def rep_t(x: np.ndarray, i: int) -> np.ndarray:
    """Transposed replication ``rep_i^T(x) = 1 x^T``: rows are all ``x``."""
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError("rep_t expects a 1-D vector")
    return np.broadcast_to(x[None, :], (i, x.shape[0])).copy()


def sum_rows(x: np.ndarray | CSRMatrix) -> np.ndarray:
    """Row summation ``sum(X) = X 1`` (a column vector of row sums)."""
    if isinstance(x, CSRMatrix):
        return x.row_sum()
    return np.asarray(x).sum(axis=1)


def sum_cols(x: np.ndarray | CSRMatrix) -> np.ndarray:
    """Column summation ``sum^T(X) = 1^T X`` (a row vector of column sums)."""
    if isinstance(x, CSRMatrix):
        return x.col_sum()
    return np.asarray(x).sum(axis=0)


def rs(x: np.ndarray | CSRMatrix, i: int) -> np.ndarray:
    """Composition ``rs_i(X) = rep_i(sum(X))`` — multiply by a ones matrix.

    Each row of the result holds ``i`` copies of that row's sum.
    """
    return rep(sum_rows(x), i)


def gram(x: np.ndarray) -> np.ndarray:
    """Gram product :math:`X_\\times = X X^T` (dense; reference use)."""
    x = np.asarray(x)
    return x @ x.T


def matrix_plus_transpose(x: np.ndarray | CSRMatrix) -> np.ndarray | CSRMatrix:
    """Symmetrisation :math:`X_+ = X + X^T` (Table 2, new block).

    Dispatches on the input type: sparse inputs stay sparse via the
    general-pattern CSR add, dense inputs use NumPy broadcasting.
    """
    if isinstance(x, CSRMatrix):
        if x.shape[0] != x.shape[1]:
            raise ValueError("X + X^T requires a square matrix")
        return x.add(x.transpose())
    x = np.asarray(x)
    if x.shape[0] != x.shape[1]:
        raise ValueError("X + X^T requires a square matrix")
    return x + x.T
