"""Global formulations of the attention operators :math:`\\Psi` (Section 4.1)
and their vector-Jacobian products (Section 5).

Each ``psi_*`` function maps ``(A, H, params)`` to the sparse attention
matrix ``S`` sharing A's pattern, never materialising any virtual
:math:`n \\times n` intermediate; each ``psi_*_vjp`` maps the gradient
w.r.t. S's stored values back to gradients of the inputs, using only
Table-2 kernels (SpMM / SDDMM / segment reductions), which is what makes
the backward pass distributable with the same 1.5D schedule as the
forward pass.

Conventions
-----------
* ``A`` is the (possibly weighted) adjacency CSR; attention models
  normally use a binary pattern with self-loops.
* Gradients w.r.t. sparse matrices are arrays over *stored values* in
  A's row-major edge order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.activations import leaky_relu, leaky_relu_grad
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import (
    masked_row_softmax_backward,
    sddmm_add,
    sddmm_cosine,
    sddmm_dot,
    spmm,
)
from repro.tensor.segment import bincount_sum, segment_softmax, segment_sum
from repro.util.counters import FlopCounter, null_counter

__all__ = [
    "PsiVACache",
    "PsiAGNNCache",
    "PsiGATCache",
    "psi_va",
    "psi_va_vjp",
    "psi_agnn",
    "psi_agnn_vjp",
    "psi_gat",
    "psi_gat_vjp",
]


# ----------------------------------------------------------------------
# Vanilla attention:  Psi_VA = A ⊙ (H H^T)
# ----------------------------------------------------------------------
@dataclass
class PsiVACache:
    """Forward-pass intermediates reused by :func:`psi_va_vjp`."""

    a: CSRMatrix
    h: np.ndarray


def psi_va(
    a: CSRMatrix,
    h: np.ndarray,
    counter: FlopCounter = null_counter(),
) -> tuple[CSRMatrix, PsiVACache]:
    """VA attention scores: sampled dot products (one SDDMM).

    :math:`\\Psi = \\mathcal{A} \\odot (H H^T)` — the dense Gram matrix
    is virtual; only entries on A's pattern are computed.
    """
    dots = sddmm_dot(a, h, h, counter=counter)
    s = a.with_data(a.data * dots)
    return s, PsiVACache(a=a, h=h)


def psi_va_vjp(
    ds_values: np.ndarray,
    cache: PsiVACache,
    counter: FlopCounter = null_counter(),
) -> np.ndarray:
    """Gradient of VA's Psi w.r.t. ``H``.

    With :math:`N = \\mathcal{A} \\odot dS` (the masked score gradient),
    the feature gradient is :math:`N_+ H = (N + N^T) H` — the paper's
    Eq. (11) contribution, computed as two SpMMs.
    """
    a, h = cache.a, cache.h
    n_mat = a.with_data(ds_values * a.data)
    dh = spmm(n_mat, h, counter=counter)
    dh += spmm(n_mat.transpose(), h, counter=counter)
    return dh


# ----------------------------------------------------------------------
# AGNN:  Psi_AGNN = sm( A ⊙ (beta * (H H^T ⊘ n n^T)) )
# ----------------------------------------------------------------------
@dataclass
class PsiAGNNCache:
    """Forward-pass intermediates reused by :func:`psi_agnn_vjp`."""

    a: CSRMatrix
    h: np.ndarray
    cos_values: np.ndarray
    norms: np.ndarray
    denom: np.ndarray
    softmax_values: np.ndarray
    beta: float
    eps: float


def psi_agnn(
    a: CSRMatrix,
    h: np.ndarray,
    beta: float = 1.0,
    eps: float = 1e-12,
    counter: FlopCounter = null_counter(),
) -> tuple[CSRMatrix, PsiAGNNCache]:
    """AGNN attention: graph softmax over masked cosine similarities.

    :math:`\\Psi = \\mathrm{sm}(\\mathcal{A} \\odot (H H^T \\oslash
    n\\,n^T))` where ``n`` holds the row L2 norms of ``H`` (Figure 1).
    ``beta`` is AGNN's propagation temperature; the paper's formulation
    fixes it (:math:`\\partial\\Psi/\\partial W = 0`), but it may be
    trained via the ``dbeta`` output of the VJP.
    """
    cos, norms, denom = sddmm_cosine(
        a, h, eps=eps, counter=counter, with_denom=True
    )
    soft = segment_softmax(beta * cos, a.indptr, rows=a.expand_rows())
    counter.add(5 * a.nnz, "softmax")
    s = a.with_data(soft)
    cache = PsiAGNNCache(
        a=a, h=h, cos_values=cos, norms=norms, denom=denom,
        softmax_values=soft, beta=beta, eps=eps,
    )
    return s, cache


def psi_agnn_vjp(
    ds_values: np.ndarray,
    cache: PsiAGNNCache,
    counter: FlopCounter = null_counter(),
) -> tuple[np.ndarray, float]:
    """Gradients of AGNN's Psi w.r.t. ``H`` and ``beta``.

    Chains the softmax Jacobian (Section 4.2's ``sm`` differentiated
    with ``sum``/``rep`` blocks) with the cosine-similarity Jacobian:

    .. math:: \\partial c_{ij}/\\partial h_i = h_j/(n_i n_j)
              - c_{ij} h_i / n_i^2

    accumulated over both endpoint roles of every edge — four SpMM-shaped
    terms, two of which are diagonal row scalings.
    """
    a, h = cache.a, cache.h
    # Softmax backward on stored values.
    dt = masked_row_softmax_backward(
        cache.softmax_values, ds_values, a.indptr,
        rows=a.expand_rows(), counter=counter,
    )
    dbeta = float(np.dot(dt, cache.cos_values))
    dc = cache.beta * dt

    norms = np.maximum(cache.norms, cache.eps)
    # The forward pass already gathered and clipped the per-edge norm
    # products (sddmm_cosine with_denom=True); divide by that exact
    # quantity instead of re-gathering both norm endpoints.
    d_mat = a.with_data(dc / cache.denom)
    dh = spmm(d_mat, h, counter=counter)
    dh += spmm(d_mat.transpose(), h, counter=counter)

    # Diagonal corrections: - rowsum(dc ⊙ c)/n_i^2 * h_i  (row role)
    #                       - colsum(dc ⊙ c)/n_j^2 * h_j  (column role)
    dcc = dc * cache.cos_values
    row_corr = segment_sum(dcc, a.indptr)
    col_corr = bincount_sum(a.indices, dcc, a.shape[1])
    inv_sq = 1.0 / (norms * norms)
    dh -= ((row_corr + col_corr) * inv_sq)[:, None] * h
    counter.add(6 * a.nnz + 4 * h.size, "agnn_vjp")
    return dh, dbeta


# ----------------------------------------------------------------------
# GAT:  Psi_GAT = sm( A ⊙ LeakyReLU( rep(H W a) + rep^T(H W ā) ) )
# ----------------------------------------------------------------------
@dataclass
class PsiGATCache:
    """Forward-pass intermediates reused by :func:`psi_gat_vjp`."""

    a: CSRMatrix
    hp: np.ndarray
    a_src: np.ndarray
    a_dst: np.ndarray
    raw_values: np.ndarray
    softmax_values: np.ndarray
    slope: float


def psi_gat(
    a: CSRMatrix,
    hp: np.ndarray,
    a_src: np.ndarray,
    a_dst: np.ndarray,
    slope: float = 0.2,
    counter: FlopCounter = null_counter(),
) -> tuple[CSRMatrix, PsiGATCache]:
    """GAT attention from *projected* features ``hp = H W``.

    Figure 2's derivation: the concatenated dot product
    :math:`\\mathbf{a}^T [Wh_i \\| Wh_j]` splits into
    :math:`u_i + v_j` with :math:`u = H W a,\\; v = H W \\bar{a}`; the
    virtual matrix :math:`C = \\mathrm{rep}(u) + \\mathrm{rep}^T(v)` is
    sampled on A's pattern (one additive SDDMM), passed through
    LeakyReLU and the graph softmax.

    Head-batched form: ``hp`` of shape ``(n, heads, d)`` with attention
    vectors stacked as ``(heads, d)`` matrices yields ``(nnz, heads)``
    stacked scores ``S`` — every head's logits, LeakyReLU and softmax
    run in the same kernel sweeps, with flop counts equal to the summed
    per-head loop.
    """
    hp = np.asarray(hp)
    # einsum (not BLAS gemv) in both branches: each row's logit is then
    # bitwise independent of how many other rows share the batch, so a
    # vertex scores identically in any ego-batch that contains it (the
    # serving coalescer's batched == per-request identity contract).
    if hp.ndim == 3:
        u = np.einsum("nhd,hd->nh", hp, a_src)
        v = np.einsum("nhd,hd->nh", hp, a_dst)
    else:
        u = np.einsum("nd,d->n", hp, a_src)
        v = np.einsum("nd,d->n", hp, a_dst)
    counter.add(4 * hp.size, "gat_uv")
    raw = sddmm_add(a, u, v, counter=counter)
    logits = leaky_relu(raw, slope)
    counter.add(raw.size, "leaky_relu")
    soft = segment_softmax(logits, a.indptr, rows=a.expand_rows())
    counter.add(5 * raw.size, "softmax")
    s = a.with_data(soft)
    return s, PsiGATCache(
        a=a, hp=hp, a_src=np.asarray(a_src), a_dst=np.asarray(a_dst),
        raw_values=raw, softmax_values=soft, slope=slope,
    )


def psi_gat_vjp(
    ds_values: np.ndarray,
    cache: PsiGATCache,
    counter: FlopCounter = null_counter(),
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of GAT's Psi w.r.t. ``hp``, ``a_src`` and ``a_dst``.

    Returns ``(dhp, da_src, da_dst)``. ``dhp`` carries the
    :math:`\\partial\\Psi/\\partial W` term of the general weight-update
    formulation (Eq. 7): the caller folds it into ``dW = H^T dhp``.
    """
    a, hp = cache.a, cache.hp
    dlogits = masked_row_softmax_backward(
        cache.softmax_values, ds_values, a.indptr,
        rows=a.expand_rows(), counter=counter,
    )
    draw = dlogits * leaky_relu_grad(cache.raw_values, cache.slope)
    du = segment_sum(draw, a.indptr)
    dv = bincount_sum(a.indices, draw, a.shape[1])
    counter.add(3 * draw.size, "gat_vjp")

    # u = hp @ a_src, v = hp @ a_dst — rank-1 feature gradients (one
    # rank-1 update per head in the batched layout).
    if hp.ndim == 3:
        da_src = np.einsum("nhd,nh->hd", hp, du)
        da_dst = np.einsum("nhd,nh->hd", hp, dv)
        dhp = (
            du[:, :, None] * cache.a_src[None]
            + dv[:, :, None] * cache.a_dst[None]
        )
    else:
        da_src = hp.T @ du
        da_dst = hp.T @ dv
        dhp = np.outer(du, cache.a_src) + np.outer(dv, cache.a_dst)
    counter.add(6 * hp.size, "gat_vjp")
    return dhp, da_src, da_dst
