"""Element-wise non-linearities with derivatives.

The generic backward formulation (Eq. 6) multiplies the incoming error
by :math:`\\sigma'(Z^{l-1})`, so every activation is shipped as a
(function, derivative-in-terms-of-Z) pair. Derivatives take the
*pre-activation* ``Z``, matching the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Activation", "get_activation", "leaky_relu", "leaky_relu_grad"]


@dataclass(frozen=True)
class Activation:
    """An activation function bundled with its derivative.

    ``fn(z)`` computes :math:`\\sigma(z)`; ``grad(z)`` computes
    :math:`\\sigma'(z)` as a function of the pre-activation.
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    grad: Callable[[np.ndarray], np.ndarray]


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0)


def _relu_grad(z: np.ndarray) -> np.ndarray:
    return (z > 0).astype(z.dtype)


def _identity(z: np.ndarray) -> np.ndarray:
    return z


def _identity_grad(z: np.ndarray) -> np.ndarray:
    return np.ones_like(z)


def _tanh(z: np.ndarray) -> np.ndarray:
    return np.tanh(z)


def _tanh_grad(z: np.ndarray) -> np.ndarray:
    t = np.tanh(z)
    return 1 - t * t


def _elu(z: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    # Clip to avoid overflow warnings in exp for very negative inputs.
    neg = alpha * np.expm1(np.minimum(z, 0))
    return np.where(z > 0, z, neg).astype(z.dtype, copy=False)


def _elu_grad(z: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    return np.where(z > 0, 1.0, alpha * np.exp(np.minimum(z, 0))).astype(
        z.dtype, copy=False
    )


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _sigmoid_grad(z: np.ndarray) -> np.ndarray:
    s = _sigmoid(z)
    return s * (1 - s)


#: Default negative slope of LeakyReLU, matching the GAT paper.
LEAKY_SLOPE = 0.2


def leaky_relu(z: np.ndarray, slope: float = LEAKY_SLOPE) -> np.ndarray:
    """LeakyReLU used inside the GAT attention logits."""
    return np.where(z > 0, z, slope * z).astype(z.dtype, copy=False)


def leaky_relu_grad(z: np.ndarray, slope: float = LEAKY_SLOPE) -> np.ndarray:
    """Derivative of :func:`leaky_relu` w.r.t. its input."""
    dt = z.dtype if isinstance(z, np.ndarray) else np.float64
    return np.where(z > 0, 1.0, slope).astype(dt, copy=False)


_REGISTRY: dict[str, Activation] = {
    "relu": Activation("relu", _relu, _relu_grad),
    "identity": Activation("identity", _identity, _identity_grad),
    "tanh": Activation("tanh", _tanh, _tanh_grad),
    "elu": Activation("elu", _elu, _elu_grad),
    "sigmoid": Activation("sigmoid", _sigmoid, _sigmoid_grad),
    "leaky_relu": Activation(
        "leaky_relu",
        lambda z: leaky_relu(z),
        lambda z: leaky_relu_grad(z),
    ),
}


def get_activation(name: str | Activation) -> Activation:
    """Look up an activation by name (or pass one through)."""
    if isinstance(name, Activation):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
