"""Global tensor formulations — the paper's primary contribution.

This package holds the model-agnostic pieces of Sections 3–5:

* :mod:`repro.core.blocks` — the tensor-algebra building blocks of
  Table 2 (``rep``, ``sum``, ``rs``, :math:`X + X^T`, :math:`X X^T`).
* :mod:`repro.core.activations` — element-wise non-linearities with
  derivatives, used by both forward and backward formulations.
* :mod:`repro.core.softmax` — the global graph-softmax formulation of
  Section 4.2 (dense reference and sparse production paths).
* :mod:`repro.core.psi` — the per-model attention operators
  :math:`\\Psi(\\mathcal{A}, H)` of Section 4.1 with their backward
  passes (Section 5), expressed purely in Table-2 kernels.
* :mod:`repro.core.formulation` — the programmable generic layer of
  Eq. (1): :math:`H^{l+1} = \\sigma((\\Phi \\circ \\oplus)(\\Psi, H))`.
"""

from repro.core.activations import Activation, get_activation
from repro.core.blocks import (
    gram,
    matrix_plus_transpose,
    rep,
    rep_t,
    rs,
    sum_cols,
    sum_rows,
)
from repro.core.formulation import AttentionSpec, GenericLayer
from repro.core.psi import (
    psi_agnn,
    psi_gat,
    psi_va,
)
from repro.core.softmax import graph_softmax, graph_softmax_dense

__all__ = [
    "Activation",
    "get_activation",
    "rep",
    "rep_t",
    "sum_rows",
    "sum_cols",
    "rs",
    "gram",
    "matrix_plus_transpose",
    "graph_softmax",
    "graph_softmax_dense",
    "psi_va",
    "psi_agnn",
    "psi_gat",
    "AttentionSpec",
    "GenericLayer",
]
