"""Global formulation of the graph softmax (Section 4.2).

The paper derives

.. math:: \\mathrm{sm}(\\mathcal{X}) = \\exp(\\mathcal{X}) \\oslash
          \\mathrm{rs}_n(\\exp(\\mathcal{X}))

— element-wise exponentiation, row sums via multiplication with a
column of ones, replication via a row of ones, and Hadamard division.
Two implementations are provided:

* :func:`graph_softmax_dense` follows the four derivation steps
  literally on a dense masked matrix. It materialises the replicated
  denominator and serves as the executable specification.
* :func:`graph_softmax` is the production path on CSR attention
  matrices; the replicated :math:`n \\times n` denominator stays
  *virtual* (Section 6.1) and only stored entries are touched.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import rep, sum_rows
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import masked_row_softmax

__all__ = ["graph_softmax", "graph_softmax_dense"]


def graph_softmax_dense(
    x: np.ndarray, mask: np.ndarray | None = None
) -> np.ndarray:
    """Literal four-step dense graph softmax (reference semantics).

    Parameters
    ----------
    x:
        Dense score matrix.
    mask:
        Boolean matrix of stored positions (the adjacency pattern).
        Entries outside the mask take no part in normalisation and are
        zero in the output. With ``mask=None`` all entries participate.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[1]
    if mask is None:
        mask = np.ones_like(x, dtype=bool)
    # Step (1): element-wise exponentiation of the stored entries.
    exp = np.where(mask, np.exp(x), 0.0)
    # Step (2): row sums — multiplication by a column vector of ones.
    row = sum_rows(exp)
    # Step (3): replication — multiplication by a row vector of ones.
    denom = rep(row, n)
    # Step (4): element-wise Hadamard division.
    safe = np.where(denom == 0, 1.0, denom)
    return np.where(mask, exp / safe, 0.0)


def graph_softmax(s: CSRMatrix, out: np.ndarray | None = None) -> CSRMatrix:
    """Sparse graph softmax: normalise each row's stored entries.

    Equivalent to :func:`graph_softmax_dense` restricted to the
    pattern, but never materialises the virtual replicated denominator.
    Numerically stabilised with a per-row max shift (which cancels in
    the softmax). ``out``, if given, receives the normalised stored
    values in place and becomes the data vector of the result.

    Head-batched matrices carrying stacked ``(nnz, heads)`` values are
    normalised per head in the same sweep — head ``i`` of the result
    equals the scalar softmax of head ``i``'s values.
    """
    return masked_row_softmax(s, out=out)
