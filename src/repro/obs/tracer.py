"""Nested timed spans with a zero-overhead null fast path.

A :class:`Tracer` records :class:`Span` intervals — name, wall-clock
``[t0, t1)``, nesting depth, free-form attributes, and the
:class:`~repro.util.counters.FlopCounter` /
:class:`~repro.util.counters.EventCounter` deltas that accrued inside
the interval — so a run can be replayed as a timeline
(:mod:`repro.obs.export`) instead of a pile of totals.

Design rules, mirrored from :func:`repro.util.counters.null_counter`:

* **Disabled is free.** The process-global accessor :func:`tracer`
  returns a shared :class:`_NullTracer` unless one was installed;
  its ``span()`` hands back one shared no-op context manager, so
  instrumentation sites cost one attribute lookup and one call.
  No instrumented code ever checks an ``if tracing:`` flag.
* **One tracer per rank.** SPMD rank programs get their own
  :class:`Tracer` (installed thread-locally by the executor, or
  process-globally inside a spawned child) and the instance rides back
  to the driver on :attr:`CommStats.tracer
  <repro.runtime.stats.CommStats>` — which is why :class:`Tracer` and
  :class:`Span` are plain picklable objects and the thread-local
  registry lives at module level, not on the tracer.
* **Timestamps are absolute** ``time.perf_counter()`` readings.
  On Linux that clock is CLOCK_MONOTONIC, which is system-wide, so
  spans recorded in spawned rank processes align with the driver's;
  the exporter normalises to the run's earliest span.

Enabling follows the repo's validated env-var idiom: ``REPRO_TRACE``
(``1/true/on/yes`` vs ``0/false/off/no``, anything else fails fast)
read at call time by :func:`trace_enabled_default`.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from typing import Any

from repro.util.counters import FlopCounter, event_counter

__all__ = [
    "TRACE_ENV_VAR",
    "Span",
    "Tracer",
    "install_global_tracer",
    "install_tracer",
    "null_tracer",
    "trace_enabled_default",
    "traced",
    "tracer",
]

#: Environment variable turning on run-wide tracing (validated boolean).
TRACE_ENV_VAR = "REPRO_TRACE"

_TRUE = frozenset({"1", "true", "on", "yes"})
_FALSE = frozenset({"0", "false", "off", "no"})


def trace_enabled_default() -> bool:
    """Whether ``$REPRO_TRACE`` asks for tracing (default: no).

    Read at call time (like ``$REPRO_SEED``/``$REPRO_PIPELINE``) so
    tests can monkeypatch it; an unrecognised value raises
    ``ValueError`` naming the variable rather than silently disabling.
    """
    raw = os.environ.get(TRACE_ENV_VAR)
    if raw is None:
        return False
    value = raw.strip().lower()
    if value in _TRUE:
        return True
    if value in _FALSE:
        return False
    raise ValueError(
        f"${TRACE_ENV_VAR} must be one of {sorted(_TRUE | _FALSE)}, "
        f"got {raw!r}"
    )


class Span:
    """One closed timed interval recorded by a :class:`Tracer`.

    ``flops`` is the delta of the :class:`FlopCounter` passed to
    :meth:`Tracer.span` (0 when none was); ``events`` is the delta of
    the process-global :class:`~repro.util.counters.EventCounter`'s
    total occurrence count over the interval. Both are *inclusive* of
    child spans — the exporter derives exclusive ("self") figures from
    the nesting.
    """

    __slots__ = ("name", "t0", "t1", "depth", "attrs", "flops", "events")

    def __init__(
        self,
        name: str,
        t0: float,
        t1: float,
        depth: int = 0,
        attrs: dict[str, Any] | None = None,
        flops: int = 0,
        events: int = 0,
    ) -> None:
        self.name = name
        self.t0 = t0
        self.t1 = t1
        self.depth = depth
        self.attrs = attrs or {}
        self.flops = flops
        self.events = events

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    def __getstate__(self):
        return (self.name, self.t0, self.t1, self.depth, self.attrs,
                self.flops, self.events)

    def __setstate__(self, state):
        (self.name, self.t0, self.t1, self.depth, self.attrs,
         self.flops, self.events) = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms, "
            f"depth={self.depth}, flops={self.flops})"
        )


class _SpanHandle:
    """Context manager for one in-flight span (one per ``span()`` call)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_counter",
                 "_t0", "_flops0", "_events0", "_depth")

    def __init__(self, tracer: "Tracer", name: str,
                 counter: FlopCounter | None, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._counter = counter
        self._t0 = 0.0
        self._flops0 = 0
        self._events0 = 0
        self._depth = 0

    def __enter__(self) -> "_SpanHandle":
        t = self._tracer
        self._depth = t._depth
        t._depth += 1
        t._open.append(self)
        if self._counter is not None:
            self._flops0 = self._counter.total
        counts = event_counter().counts
        self._events0 = sum(counts.values()) if counts else 0
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        t = self._tracer
        t._depth -= 1
        t._open.pop()
        flops = 0
        if self._counter is not None:
            flops = self._counter.total - self._flops0
        counts = event_counter().counts
        events = (sum(counts.values()) if counts else 0) - self._events0
        t.spans.append(Span(
            self._name, self._t0, t1, self._depth, self._attrs,
            flops, events,
        ))
        return False

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered after the span opened."""
        self._attrs.update(attrs)


class Tracer:
    """Collects the spans of one rank (or of the driver).

    Plain picklable state — a rank's tracer crosses the process fabric
    back to the driver on its :class:`~repro.runtime.stats.CommStats`.
    """

    #: Class-level flag: ``tracer().enabled`` distinguishes a live
    #: tracer from the null one without an isinstance check.
    enabled = True

    __slots__ = ("rank", "spans", "_depth", "_open")

    def __init__(self, rank: int = 0) -> None:
        self.rank = rank
        self.spans: list[Span] = []
        self._depth = 0
        self._open: list[_SpanHandle] = []

    def span(self, name: str, counter: FlopCounter | None = None,
             **attrs: Any) -> _SpanHandle:
        """Open a timed span: ``with tracer().span("spmm", heads=4): ...``

        Pass the kernel's :class:`FlopCounter` as ``counter`` to record
        the flop delta accrued inside the interval.
        """
        return _SpanHandle(self, name, counter, attrs)

    def add_slice(self, name: str, t0: float, t1: float,
                  **attrs: Any) -> None:
        """Record an already-measured interval (e.g. a blocked wait).

        Timestamps are absolute ``time.perf_counter()`` readings; the
        slice is assigned one nesting level below whatever span is open
        around the call site (``_depth`` counts open spans, so it is
        already the innermost open span's depth + 1).
        """
        self.spans.append(Span(name, t0, t1, self._depth, attrs))

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op if none).

        Lets a function annotated by an enclosing span record facts it
        only learns mid-body (e.g. the :class:`SweepPlan` the
        megakernel resolves after its span opened).
        """
        if self._open:
            self._open[-1].annotate(**attrs)

    def __getstate__(self):
        return (self.rank, self.spans, self._depth)

    def __setstate__(self, state):
        self.rank, self.spans, self._depth = state
        self._open = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer(rank={self.rank}, spans={len(self.spans)})"


class _NullSpanHandle:
    """The shared do-nothing span (disabled-tracing fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpanHandle()


class _NullTracer(Tracer):
    """A tracer that records nothing (avoids ``if tracing`` checks)."""

    enabled = False

    def span(self, name: str, counter: FlopCounter | None = None,
             **attrs: Any) -> _NullSpanHandle:  # type: ignore[override]
        return _NULL_SPAN

    def add_slice(self, name: str, t0: float, t1: float,
                  **attrs: Any) -> None:
        pass

    def annotate(self, **attrs: Any) -> None:
        pass


_NULL = _NullTracer()


def null_tracer() -> Tracer:
    """The shared no-op tracer used when tracing is disabled."""
    return _NULL


# ----------------------------------------------------------------------
# Active-tracer registry.
#
# Thread-local first, process-global second: the thread fabric runs
# every rank as a thread inside one process, so each rank thread
# installs its own tracer thread-locally; a spawned process-fabric
# child is single-threaded and installs process-globally. The registry
# lives at module level so Tracer itself stays picklable.
# ----------------------------------------------------------------------
_TLS = threading.local()
_GLOBAL: Tracer = _NULL


def tracer() -> Tracer:
    """The active tracer: thread-local, else process-global, else null."""
    t = getattr(_TLS, "tracer", None)
    return t if t is not None else _GLOBAL


def install_tracer(t: Tracer | None) -> None:
    """Install ``t`` as this thread's tracer (``None`` uninstalls)."""
    _TLS.tracer = t


def install_global_tracer(t: Tracer | None) -> None:
    """Install ``t`` process-globally (``None`` restores the null one)."""
    global _GLOBAL
    _GLOBAL = t if t is not None else _NULL


def traced(name: str):
    """Decorator spanning a function under the active tracer.

    When tracing is off the wrapper is one call plus one attribute
    check on top of the function — unmeasurable at bench-gate
    resolution. When on, the span records the call's wall interval and
    the flop delta of its ``counter=`` keyword, if the caller passed
    one; the body can attach more attributes via
    :meth:`Tracer.annotate`.
    """

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            t = tracer()
            if not t.enabled:
                return fn(*args, **kwargs)
            with t.span(name, counter=kwargs.get("counter")):
                return fn(*args, **kwargs)

        return wrapper

    return deco
