"""Observability: span tracing, metrics, and Perfetto export.

The runtime's accounting islands — :class:`~repro.util.counters.FlopCounter`,
:class:`~repro.util.counters.EventCounter`, the per-rank
:class:`~repro.runtime.stats.CommStats` and the bounded
:class:`~repro.runtime.trace.CommTrace` — answer *how much*; this
package answers *when* and *where*: nested timed spans over every
execution layer (kernel sweeps, IR ops, schedule steps, epochs and
batches), exported as Chrome trace-event JSON that Perfetto renders as
one timeline track per rank, plus a counter/gauge/histogram registry
with exact quantiles.

Tracing is off by default and costs nothing when off: the accessor
:func:`~repro.obs.tracer.tracer` returns a shared null tracer whose
``span()`` is a no-op (mirroring
:func:`~repro.util.counters.null_counter`). Enable it per run with
``REPRO_TRACE=1`` (see :func:`~repro.obs.tracer.trace_enabled_default`)
or install a :class:`~repro.obs.tracer.Tracer` explicitly.
"""

from repro.obs.export import (
    format_top_spans,
    profile_spans,
    to_chrome_trace,
    write_chrome_trace,
    write_profile_csv,
    write_profile_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
)
from repro.obs.tracer import (
    Span,
    Tracer,
    install_global_tracer,
    install_tracer,
    null_tracer,
    trace_enabled_default,
    traced,
    tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "install_global_tracer",
    "install_tracer",
    "null_tracer",
    "trace_enabled_default",
    "traced",
    "tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "format_top_spans",
    "profile_spans",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_profile_csv",
    "write_profile_json",
]
