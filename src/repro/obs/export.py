"""Span exporters: Chrome trace-event JSON (Perfetto) + profile tables.

:func:`to_chrome_trace` turns the spans of one or more per-rank
:class:`~repro.obs.tracer.Tracer` instances into the Chrome trace-event
format (the JSON Perfetto's https://ui.perfetto.dev loads directly):
one ``pid`` per rank — so ranks render as separate tracks — with
``B``/``E`` begin/end pairs whose microsecond timestamps are normalised
to the run's earliest span. Wait slices recorded by the communicator
(:meth:`CommStats.record_wait <repro.runtime.stats.CommStats>`) arrive
as ordinary spans named ``"wait"`` and render as explicit slices inside
whatever schedule step they stalled.

Emission guarantees, which the test suite asserts:

* ``ts`` values are non-decreasing over the whole event list;
* every ``B`` has a matching ``E`` on the same ``(pid, tid)`` with the
  same name, properly nested;
* intervals recorded out-of-band (waits) that straddle a span boundary
  by clock jitter are clamped into their parent rather than emitted as
  crossed pairs.

:func:`profile_spans` is the flat view: per-name count, inclusive and
exclusive (self) seconds, and the FlopCounter/EventCounter deltas
captured at span boundaries — :func:`format_top_spans` renders it as
the CLI's top-spans table, :func:`write_profile_json` /
:func:`write_profile_csv` persist it.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.tracer import Span, Tracer

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "profile_spans",
    "format_top_spans",
    "write_profile_json",
    "write_profile_csv",
]


def _ordered(spans: Iterable[Span]) -> list[Span]:
    """Chronological order with containing spans before contained ones."""
    return sorted(spans, key=lambda s: (s.t0, -s.t1))


def _rank_events(spans: list[Span], t_min: float, pid: int) -> list[dict]:
    """Emit one rank's B/E stream via an explicit nesting stack.

    The walk pops (emitting ``E``) every span that ends at or before
    the next span's start, and clamps a span's end into its parent's —
    so the stream is sorted and well nested even when an out-of-band
    slice overhangs its enclosing span by clock jitter.
    """

    def us(t: float) -> float:
        return round((t - t_min) * 1e6, 3)

    events: list[dict] = []
    stack: list[tuple[Span, float]] = []  # (span, clamped end)

    def pop_one() -> None:
        span, end = stack.pop()
        events.append({
            "name": span.name, "ph": "E", "ts": us(end),
            "pid": pid, "tid": 0,
        })

    for span in _ordered(spans):
        while stack and stack[-1][1] <= span.t0:
            pop_one()
        end = span.t1
        if stack and end > stack[-1][1]:
            end = stack[-1][1]
        args: dict[str, Any] = dict(span.attrs)
        if span.flops:
            args["flops"] = span.flops
        if span.events:
            args["events"] = span.events
        record = {
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "B",
            "ts": us(span.t0),
            "pid": pid,
            "tid": 0,
        }
        if args:
            record["args"] = args
        events.append(record)
        stack.append((span, end))
    while stack:
        pop_one()
    return events


def to_chrome_trace(
    tracers: Iterable[Tracer],
    labels: dict[int, str] | None = None,
) -> dict[str, Any]:
    """Chrome trace-event JSON document for a set of per-rank tracers.

    Each tracer becomes one ``pid`` (= its :attr:`Tracer.rank`) so
    Perfetto shows one track per rank; ``labels`` overrides the
    ``process_name`` metadata (default ``"rank <r>"``).
    """
    tracers = [t for t in tracers if t is not None]
    all_spans = [s for t in tracers for s in t.spans]
    t_min = min((s.t0 for s in all_spans), default=0.0)
    labels = labels or {}

    events: list[dict] = []
    for t in sorted(tracers, key=lambda t: t.rank):
        name = labels.get(t.rank, f"rank {t.rank}")
        events.append({
            "name": "process_name", "ph": "M", "ts": 0.0,
            "pid": t.rank, "tid": 0, "args": {"name": name},
        })
        events.append({
            "name": "process_sort_index", "ph": "M", "ts": 0.0,
            "pid": t.rank, "tid": 0, "args": {"sort_index": t.rank},
        })
    for t in tracers:
        events.extend(_rank_events(t.spans, t_min, t.rank))
    # Globally non-decreasing ts; the sort is stable, so each rank's
    # B/E discipline (and metadata-first placement at ts 0) survives.
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path,
    tracers: Iterable[Tracer],
    labels: dict[int, str] | None = None,
) -> Path:
    """Write the Perfetto-loadable trace file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(tracers, labels=labels), fh)
    return path


# ----------------------------------------------------------------------
# Flat profile
# ----------------------------------------------------------------------
PROFILE_FIELDS = ("name", "count", "total_s", "self_s", "flops", "events")


def profile_spans(tracers: Iterable[Tracer]) -> list[dict[str, Any]]:
    """Aggregate spans by name across all tracers.

    Returns rows (sorted by inclusive ``total_s``, descending) with
    ``count``, inclusive ``total_s``, exclusive ``self_s`` (inclusive
    minus the time covered by child spans), and the summed
    flop/event-counter deltas. ``total_s`` sums over ranks, so on a
    ``p``-rank run it can legitimately exceed wall-clock.
    """
    rows: dict[str, dict[str, Any]] = {}

    def close(entry: list) -> float:
        span, end, child_t = entry
        duration = max(0.0, end - span.t0)
        row = rows.get(span.name)
        if row is None:
            row = rows[span.name] = {
                "name": span.name, "count": 0, "total_s": 0.0,
                "self_s": 0.0, "flops": 0, "events": 0,
            }
        row["count"] += 1
        row["total_s"] += duration
        row["self_s"] += max(0.0, duration - child_t)
        row["flops"] += span.flops
        row["events"] += span.events
        return duration

    for t in tracers:
        if t is None:
            continue
        stack: list[list] = []  # [span, clamped end, child seconds]
        for span in _ordered(t.spans):
            while stack and stack[-1][1] <= span.t0:
                duration = close(stack.pop())
                if stack:
                    stack[-1][2] += duration
            end = span.t1
            if stack and end > stack[-1][1]:
                end = stack[-1][1]
            stack.append([span, end, 0.0])
        while stack:
            duration = close(stack.pop())
            if stack:
                stack[-1][2] += duration
    return sorted(rows.values(), key=lambda r: -r["total_s"])


def format_top_spans(rows: list[dict[str, Any]], limit: int = 15) -> str:
    """Fixed-width top-spans table (sorted as given, truncated)."""
    header = (
        f"{'span':<32} {'count':>7} {'total ms':>10} {'self ms':>10} "
        f"{'flops':>14} {'events':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows[:limit]:
        lines.append(
            f"{row['name']:<32} {row['count']:>7} "
            f"{row['total_s'] * 1e3:>10.3f} {row['self_s'] * 1e3:>10.3f} "
            f"{row['flops']:>14} {row['events']:>8}"
        )
    if len(rows) > limit:
        lines.append(f"... and {len(rows) - limit} more span names")
    return "\n".join(lines)


def write_profile_json(
    path: str | Path,
    rows: list[dict[str, Any]],
    extra: dict[str, Any] | None = None,
) -> Path:
    """Persist the profile (plus optional counter/metric blocks)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc: dict[str, Any] = {"spans": rows}
    if extra:
        doc.update(extra)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
    return path


def write_profile_csv(path: str | Path, rows: list[dict[str, Any]]) -> Path:
    """Persist the profile as CSV (one row per span name)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=PROFILE_FIELDS)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row[k] for k in PROFILE_FIELDS})
    return path
