"""Trace-and-profile reporter: run a named case, export its timeline.

Runs one of the small named training cases under span tracing and
writes the Perfetto-loadable Chrome trace plus a flat span profile
(JSON + CSV), printing the top-spans table and a flop reconciliation
line — the span-boundary FlopCounter deltas must add up to exactly the
standalone counter totals, or the tracer is lying::

    REPRO_TRACE=1 PYTHONPATH=src python -m repro.obs.report \
        --case pipeline --out-dir benchmarks/results/obs

Cases:

``fullbatch``
    The full-batch :class:`~repro.training.trainer.Trainer` on a small
    ER graph — driver-only timeline (epoch, layer, kernel spans).
``minibatch``
    The serial :class:`~repro.training.minibatch.MinibatchTrainer` —
    adds per-batch sample/train_step spans.
``pipeline``
    The two-rank pipelined sampler/trainer split
    (:func:`~repro.training.minibatch.minibatch_train_pipelined`) —
    one Perfetto track per rank; sample/send spans on rank 0 interleave
    with recv/train_step spans and wait slices on rank 1.

The command refuses to run without ``REPRO_TRACE=1``: silently
producing an empty trace would be worse than failing.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

import numpy as np

from repro.graphs import erdos_renyi
from repro.graphs.prep import prepare_adjacency
from repro.obs.export import (
    format_top_spans,
    profile_spans,
    write_chrome_trace,
    write_profile_csv,
    write_profile_json,
)
from repro.obs.tracer import (
    TRACE_ENV_VAR,
    Tracer,
    install_tracer,
    trace_enabled_default,
)
from repro.util.counters import FlopCounter
from repro.util.rng import make_rng

__all__ = ["run_case", "main"]

#: Small-but-not-trivial shared problem (matches the test-scale graphs).
_CASE = {
    "n": 256,
    "m": 2048,
    "k": 16,
    "classes": 4,
    "layers": 2,
    "epochs": 2,
    "batch_size": 64,
    "seed": 7,
}

CASES = ("fullbatch", "minibatch", "pipeline")


def _problem() -> tuple[Any, np.ndarray, np.ndarray]:
    a = prepare_adjacency(
        erdos_renyi(_CASE["n"], _CASE["m"], seed=_CASE["seed"]),
        dtype=np.float64,
    )
    rng = make_rng(_CASE["seed"] + 1)
    features = rng.normal(size=(_CASE["n"], _CASE["k"])).astype(np.float64)
    labels = rng.integers(0, _CASE["classes"], size=_CASE["n"])
    return a, features, labels


def _run_fullbatch(model_name: str) -> tuple[list[Tracer], dict[str, Any]]:
    from repro.models import build_model
    from repro.training.loss import SoftmaxCrossEntropyLoss
    from repro.training.optim import SGD
    from repro.training.trainer import Trainer

    a, features, labels = _problem()
    model = build_model(
        model_name, _CASE["k"], _CASE["k"], _CASE["classes"],
        num_layers=_CASE["layers"], seed=_CASE["seed"],
    )
    trainer = Trainer(model, SoftmaxCrossEntropyLoss(), SGD(lr=0.01))
    counter = FlopCounter()
    driver = Tracer(rank=0)
    install_tracer(driver)
    try:
        with driver.span("driver.run", counter=counter, case="fullbatch"):
            result = trainer.fit(
                a, features, labels, epochs=_CASE["epochs"], counter=counter,
            )
    finally:
        install_tracer(None)
    return [driver], {
        "losses": result.losses,
        "counter_flops": counter.total,
        "span_flops": _root_flops(driver),
    }


def _run_minibatch(model_name: str) -> tuple[list[Tracer], dict[str, Any]]:
    from repro.models import build_model
    from repro.training.loss import SoftmaxCrossEntropyLoss
    from repro.training.minibatch import MinibatchTrainer
    from repro.training.optim import SGD

    a, features, labels = _problem()
    model = build_model(
        model_name, _CASE["k"], _CASE["k"], _CASE["classes"],
        num_layers=_CASE["layers"], seed=_CASE["seed"],
    )
    trainer = MinibatchTrainer(
        model, SoftmaxCrossEntropyLoss(), SGD(lr=0.01),
        fanouts=(None,) * _CASE["layers"],
        batch_size=_CASE["batch_size"], seed=_CASE["seed"],
    )
    counter = FlopCounter()
    driver = Tracer(rank=0)
    install_tracer(driver)
    try:
        with driver.span("driver.run", counter=counter, case="minibatch"):
            result = trainer.fit(
                a, features, labels, epochs=_CASE["epochs"],
                full_eval=False, counter=counter,
            )
    finally:
        install_tracer(None)
    return [driver], {
        "losses": result.losses,
        "counter_flops": counter.total,
        "span_flops": _root_flops(driver),
    }


def _run_pipeline(
    model_name: str, backend: str | None
) -> tuple[list[Tracer], dict[str, Any]]:
    from repro.training.minibatch import minibatch_train_pipelined

    a, features, labels = _problem()
    losses, stats = minibatch_train_pipelined(
        model_name, a, features, labels,
        hidden_dim=_CASE["k"], out_dim=_CASE["classes"],
        fanouts=(None,) * _CASE["layers"], num_layers=_CASE["layers"],
        batch_size=_CASE["batch_size"], epochs=_CASE["epochs"],
        seed=_CASE["seed"], dtype=np.float64, backend=backend,
    )
    tracers = [s.tracer for s in stats.per_rank if s.tracer is not None]
    return tracers, {
        "losses": losses,
        "counter_flops": sum(s.flops.total for s in stats.per_rank),
        "span_flops": sum(_root_flops(t) for t in tracers),
        "total_wait_s": stats.total_wait_s,
        "wait_fraction": stats.wait_fraction,
    }


def _root_flops(t: Tracer) -> int:
    """Flop delta summed over the tracer's outermost spans."""
    return sum(s.flops for s in t.spans if s.depth == 0)


def run_case(
    case: str, model_name: str = "AGNN", backend: str | None = None
) -> tuple[list[Tracer], dict[str, Any]]:
    """Run ``case`` under tracing; returns (per-rank tracers, summary)."""
    if case == "fullbatch":
        return _run_fullbatch(model_name)
    if case == "minibatch":
        return _run_minibatch(model_name)
    if case == "pipeline":
        return _run_pipeline(model_name, backend)
    raise ValueError(f"unknown case {case!r}; expected one of {CASES}")


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--case", default="pipeline", choices=CASES)
    parser.add_argument("--model", default="AGNN")
    parser.add_argument("--backend", default=None,
                        choices=("thread", "process"),
                        help="fabric backend (default: $REPRO_BACKEND)")
    parser.add_argument("--out-dir", default="benchmarks/results/obs")
    parser.add_argument("--limit", type=int, default=15,
                        help="rows in the printed top-spans table")
    args = parser.parse_args(argv)

    if not trace_enabled_default():
        sys.exit(
            f"tracing is disabled; run with {TRACE_ENV_VAR}=1 "
            "(this command exists to produce traces)"
        )

    tracers, summary = run_case(args.case, args.model, args.backend)
    out_dir = Path(args.out_dir)
    trace_path = write_chrome_trace(
        out_dir / f"trace_{args.case}.json", tracers
    )
    rows = profile_spans(tracers)
    write_profile_json(
        out_dir / f"profile_{args.case}.json", rows,
        extra={"case": args.case, "model": args.model, "summary": summary},
    )
    write_profile_csv(out_dir / f"profile_{args.case}.csv", rows)

    print(format_top_spans(rows, limit=args.limit))
    counter_flops = summary["counter_flops"]
    span_flops = summary["span_flops"]
    status = "OK" if counter_flops == span_flops else "MISMATCH"
    print(
        f"flops reconciliation: spans={span_flops} "
        f"counters={counter_flops} [{status}]"
    )
    print(f"wrote {trace_path} ({len(tracers)} track(s))")
    if counter_flops != span_flops:
        sys.exit("span flop deltas do not reconcile with FlopCounter totals")


if __name__ == "__main__":
    main()
