"""Counter/gauge/histogram registry with exact quantiles.

The third leg of the observability stack (spans show *when*, the
registry shows *how the distribution looks*). Histograms keep every
observation — exact :func:`numpy.quantile` over the raw samples, not
bucket interpolation — because the populations here (per-batch
latencies, per-epoch losses, span durations) are thousands of points,
not millions, and the serving-latency harness the ROADMAP plans (p50 /
p99 under Poisson load) needs quantiles it can assert on bit-for-bit.

All three metric types share the registry's flat ``snapshot()`` form so
one JSON dump carries the whole process state::

    from repro.obs import metrics
    metrics().counter("batches").inc()
    metrics().histogram("batch_ms").observe(3.2)
    print(metrics().snapshot())
"""

from __future__ import annotations

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "metrics"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Exact-quantile histogram over all recorded observations."""

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return float(sum(self.values))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.values else 0.0

    def quantile(self, q: float) -> float:
        """Exact ``q``-quantile (linear interpolation between samples).

        An empty series has no quantiles: the result is ``NaN`` (never
        a fabricated 0.0, which would read as a real latency) and the
        ``histogram.empty_quantile`` warning counter in the process
        registry is bumped so dashboards can flag the misread.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.values:
            metrics().counter("histogram.empty_quantile").inc()
            return float("nan")
        return float(np.quantile(np.asarray(self.values), q))

    def percentiles(self, *ps: float) -> dict[str, float]:
        """Named percentile dict, e.g. ``percentiles(50, 99)``."""
        out = {}
        for p in ps:
            key = f"p{p:g}".replace(".", "_")
            out[key] = self.quantile(p / 100.0)
        return out

    def summary(self) -> dict[str, float]:
        """count/sum/mean/min/max plus the p50/p95/p99 trio."""
        if not self.values:
            nan = float("nan")
            return {"count": 0, "sum": 0.0, "mean": nan,
                    "min": nan, "max": nan, "p50": nan, "p95": nan,
                    "p99": nan}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": float(min(self.values)),
            "max": float(max(self.values)),
            **self.percentiles(50, 95, 99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """Name-keyed home for counters, gauges and histograms.

    Accessors are get-or-create and type-strict: asking for an
    existing name as a different metric type raises rather than
    silently shadowing.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, float | dict[str, float]]:
        """Flat point-in-time view: scalars for counters/gauges,
        the :meth:`Histogram.summary` dict for histograms."""
        out: dict[str, float | dict[str, float]] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def reset(self) -> None:
        self._metrics.clear()


_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY
