"""Versioned LRU cache of per-node hidden activations.

The serving engine's second lever (after coalescing): a node's
layer-ℓ activation is a pure function of its ℓ-hop neighbourhood, the
input features and the model parameters, so hot nodes — power-law hubs
appear in almost every union ego-batch — can be computed once and
reused. Entries are keyed ``(level, node, version)``:

* ``level`` ∈ ``1..L`` — ``level ℓ`` holds :math:`H^ℓ`, the
  post-activation output of layer ``ℓ-1`` (``level L`` is the model
  output, so repeat queries for a hot node skip compute entirely).
  Level 0 is the input feature matrix itself and is never cached.
* ``node`` — global vertex id; entries are whole rows.
* ``version`` — the engine's snapshot version, covering model
  parameters *and* graph/feature state. Any mutation bumps it, so a
  read can never observe a row computed against different weights or
  data; :meth:`advance` migrates still-valid rows to the new version
  (the *targeted* part of delta invalidation) while everything
  computed by in-flight requests against the old snapshot stays keyed
  to the dead version and ages out of the LRU unreachable.

The depth-truncation payoff: a cached level-ℓ row terminates sampling
below level ℓ for that node — the serving engine treats cached rows as
the frontier, so hops beneath them are never sampled and never
computed (DGL's ``frame_cache`` is the exemplar).

All operations take one internal lock; the cache is shared by every
server worker thread. Hits/misses/evictions are observable as the
``serving.cache.{hit,miss,evict}`` counters in
:func:`repro.obs.metrics.metrics` and on :attr:`hits` / :attr:`misses`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.obs.metrics import metrics

__all__ = ["ActivationCache"]


class ActivationCache:
    """Bounded LRU of ``(level, node, version)`` → activation row."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self._rows: OrderedDict[tuple[int, int, int], np.ndarray] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def hit_rate(self) -> float:
        """Lifetime hit fraction (NaN before the first lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")

    # ------------------------------------------------------------------
    def get_rows(
        self, level: int, nodes: np.ndarray, version: int
    ) -> tuple[list[np.ndarray | None], np.ndarray]:
        """Look up ``nodes`` at ``level``/``version``.

        Returns ``(rows, hit_mask)``: ``rows[i]`` is the cached row for
        ``nodes[i]`` (``None`` on miss) and ``hit_mask`` the boolean
        hit vector. Returned rows are the stored arrays — treat them
        as read-only. Hits are refreshed in LRU order.
        """
        rows: list[np.ndarray | None] = []
        hit_mask = np.zeros(len(nodes), dtype=bool)
        n_hit = 0
        with self._lock:
            store = self._rows
            for i, node in enumerate(nodes):
                key = (level, int(node), version)
                row = store.get(key)
                if row is not None:
                    store.move_to_end(key)
                    hit_mask[i] = True
                    n_hit += 1
                rows.append(row)
            self.hits += n_hit
            self.misses += len(nodes) - n_hit
        registry = metrics()
        registry.counter("serving.cache.hit").inc(n_hit)
        registry.counter("serving.cache.miss").inc(len(nodes) - n_hit)
        return rows, hit_mask

    # ------------------------------------------------------------------
    def put_rows(
        self,
        level: int,
        nodes: np.ndarray,
        values: np.ndarray,
        version: int,
    ) -> None:
        """Store ``values[i]`` as the ``level`` activation of ``nodes[i]``.

        Rows are stored by reference (callers hand over freshly
        computed arrays); oldest entries are evicted past capacity.
        """
        if len(nodes) != len(values):
            raise ValueError("one value row per node required")
        evicted = 0
        with self._lock:
            store = self._rows
            for node, row in zip(nodes, values):
                key = (level, int(node), version)
                store[key] = row
                store.move_to_end(key)
            while len(store) > self.capacity:
                store.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        if evicted:
            metrics().counter("serving.cache.evict").inc(evicted)

    # ------------------------------------------------------------------
    def advance(
        self,
        old_version: int,
        new_version: int,
        dropped: dict[int, np.ndarray] | None = None,
    ) -> int:
        """Migrate still-valid rows from ``old_version`` to ``new_version``.

        ``dropped`` maps ``level`` → node ids whose activations the
        delta touched (see the engine's dependency expansion); those
        entries — and, when ``dropped`` is ``None``, *all* entries —
        stay behind on the dead version. Returns the number of rows
        migrated. LRU order is preserved.
        """
        if new_version == old_version:
            raise ValueError("advance requires a new version")
        dead: dict[int, set[int]] | None = None
        if dropped is not None:
            dead = {
                int(level): set(int(n) for n in np.asarray(nodes).ravel())
                for level, nodes in dropped.items()
            }
        migrated = 0
        with self._lock:
            if dead is None:
                self._rows.clear()
                return 0
            remapped: OrderedDict[tuple[int, int, int], np.ndarray] = (
                OrderedDict()
            )
            for (level, node, version), row in self._rows.items():
                if version != old_version:
                    continue  # already-dead versions are dropped
                if node in dead.get(level, ()):  # touched by the delta
                    continue
                remapped[(level, node, new_version)] = row
                migrated += 1
            self._rows = remapped
        return migrated

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._rows.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ActivationCache(n={len(self._rows)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
