"""The serving engine: consistent snapshots, deltas, reloads, workers.

:class:`ServingEngine` owns everything a flush needs — model, graph,
features, fan-outs, the activation cache — and exposes exactly two
kinds of operation:

* **Reads** (:meth:`serve` / :meth:`serve_unique`) are re-entrant: a
  serve captures one immutable :class:`_Snapshot` (graph, features,
  sampling weights, version) in a single attribute read and never
  looks at mutable engine state again. Any number of worker threads
  serve concurrently under a *shared* read lock; layer forwards are
  stateless (``training=False`` retains nothing on the model) and the
  compiled DAG programs are shared read-only (see
  :func:`repro.fusion.layer.compiled_layer_program`).
* **Mutations** (:meth:`reload`, :meth:`apply_feature_delta`,
  :meth:`apply_graph_delta`) serialise on one lock and are
  copy-on-write: they build the next snapshot, migrate still-valid
  cache rows to its version, and publish it with one assignment. An
  in-flight serve keeps its old snapshot — and, crucially, keeps
  *writing* cache rows under the old version, where no future read
  can see them. Staleness is therefore structural: a row is only
  readable under the version it was computed against. The one piece
  of shared *mutable* state a serve does read is the model's
  parameter arrays (:meth:`reload` copies into them in place), so
  reload alone takes the read lock's exclusive side: it waits out
  in-flight serves and blocks new ones for the duration of the copy,
  ensuring no forward ever computes with torn (half-swapped) weights.

Delta invalidation is the standard dependency expansion: a change to
level-ℓ state of node set ``S`` dirties, at level ``ℓ+1``, the set
``S ∪ {i : in-neighbours(i) ∩ S ≠ ∅}`` (each hop propagates one level
up), so a feature delta invalidates the L-hop forward cone of the
touched rows and everything else migrates intact. A model reload or an
un-annotated graph swap invalidates everything.

:class:`ServingServer` is the thin thread-pool shell: an
:class:`~repro.serving.queue.AdmissionQueue` in front, worker threads
draining it through :func:`~repro.serving.batcher.flush_batch`.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from concurrent.futures import Future

import numpy as np

from repro.models.base import GnnModel
from repro.models.serialize import load_state_dict
from repro.obs.tracer import tracer
from repro.serving.batcher import compute_union_rows, flush_batch
from repro.serving.cache import ActivationCache
from repro.serving.queue import AdmissionQueue
from repro.tensor.csr import CSRMatrix
from repro.tensor.sampling_graph import hub_bias_weights
from repro.util.rng import repro_seed_default

__all__ = ["ServingEngine", "ServingServer"]


@dataclass(frozen=True)
class _Snapshot:
    """One immutable (graph, features, weights, version) world-state."""

    a: CSRMatrix
    features: np.ndarray
    weights: np.ndarray | None
    version: int


class _ReadWriteLock:
    """Many concurrent readers (serves) or one writer (reload).

    Writer-preferring enough for serving: an arriving writer only has
    to wait out serves already in flight because it blocks behind the
    reader count, and reloads are rare, so reader starvation of the
    writer is not a practical concern at flush cadence.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False

    def acquire_read(self) -> None:
        with self._cond:
            while self._writing:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            while self._writing or self._readers:
                self._cond.wait()
            self._writing = True

    def release_write(self) -> None:
        with self._cond:
            self._writing = False
            self._cond.notify_all()


def _expand_dirty(
    dirty: np.ndarray, mats: tuple[CSRMatrix, ...]
) -> np.ndarray:
    """One level of dependency expansion: ``dirty ∪ forward-cone hop``.

    Returns the sorted union of ``dirty`` with every vertex that has an
    in-edge from ``dirty`` in any of ``mats`` (old and new adjacency
    for graph deltas — membership in either makes a row stale).
    """
    parts = [dirty]
    for a in mats:
        touched = np.isin(a.indices, dirty)
        if touched.any():
            # Edge position -> its CSR row (the destination vertex).
            rows = (
                np.searchsorted(
                    a.indptr, np.flatnonzero(touched), side="right"
                )
                - 1
            )
            parts.append(np.unique(rows))
    return np.unique(np.concatenate(parts))


class ServingEngine:
    """Re-entrant online-inference engine over one loaded model."""

    def __init__(
        self,
        model: GnnModel,
        a: CSRMatrix,
        features: np.ndarray,
        fanouts: tuple[int | None, ...] | None = None,
        cache: ActivationCache | int | None = 65536,
        weights: np.ndarray | str | None = None,
        seed: int | None = None,
    ) -> None:
        """``fanouts=None`` serves exact (full fan-out) ego graphs.

        ``cache`` accepts a ready :class:`ActivationCache`, a capacity
        (entries), or ``None`` to disable caching. ``weights="hub"``
        turns on degree-biased importance sampling
        (:func:`~repro.tensor.sampling_graph.hub_bias_weights`) so
        limited fan-outs keep the most cacheable vertices; it is
        recomputed on graph swaps. Explicit per-edge arrays pass
        through unchanged (and must be re-supplied with a new graph).
        """
        if features.shape[0] != a.shape[0]:
            raise ValueError(
                "feature rows must cover every vertex of the adjacency"
            )
        for layer in model.layers:
            # Ego-graph serving samples one hop per layer; a layer with
            # an internal multi-hop receptive field (SGC's K-hop
            # propagation) would silently read truncated neighbourhoods.
            if getattr(layer, "hops", 1) != 1:
                raise ValueError(
                    "serving requires one-hop layers; "
                    f"{type(layer).__name__} propagates "
                    f"{layer.hops} hops internally"
                )
        self.model = model
        self.fanouts: tuple[int | None, ...] = (
            tuple(fanouts)
            if fanouts is not None
            else (None,) * model.num_layers
        )
        if len(self.fanouts) != model.num_layers:
            raise ValueError(
                f"got {len(self.fanouts)} fan-outs for "
                f"{model.num_layers} layers"
            )
        if isinstance(cache, int):
            cache = ActivationCache(capacity=cache)
        self.cache = cache
        self._weights_mode = weights if isinstance(weights, str) else None
        if self._weights_mode is not None and self._weights_mode != "hub":
            raise ValueError(
                f"unknown weights mode {weights!r}; use 'hub', an "
                "explicit per-edge array, or None"
            )
        resolved = (
            hub_bias_weights(a)
            if self._weights_mode == "hub"
            else (None if weights is None else np.asarray(weights))
        )
        self._snapshot = _Snapshot(
            a=a,
            features=np.asarray(features),
            weights=resolved,
            version=0,
        )
        self._mutate = threading.Lock()
        self._params = _ReadWriteLock()
        self._seed = repro_seed_default() if seed is None else int(seed)
        self._ticket = itertools.count()

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The live snapshot's version (bumps on every mutation)."""
        return self._snapshot.version

    @property
    def num_nodes(self) -> int:
        return int(self._snapshot.a.shape[0])

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def serve(self, nodes) -> np.ndarray:
        """Output rows for ``nodes`` (any order, duplicates allowed)."""
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        seeds, inverse = np.unique(nodes, return_inverse=True)
        return self.serve_unique(seeds)[inverse]

    def serve_unique(self, seeds: np.ndarray) -> np.ndarray:
        """Output rows for unique sorted ``seeds`` as one union batch."""
        # Each serve draws a private spawned stream so concurrent
        # flushes cannot interleave on a shared generator (full
        # fan-out never consults it at all).
        rng = np.random.default_rng([self._seed, next(self._ticket)])
        # Shared side of the parameter lock: any number of serves run
        # concurrently, but none overlaps a reload's in-place copy.
        self._params.acquire_read()
        try:
            # One atomic read, *inside* the read lock so the version
            # seen here cannot pre-date a parameter copy that finished
            # before we acquired (cached old-version rows must never
            # mix with freshly reloaded weights).
            snapshot = self._snapshot

            with tracer().span(
                "serve.batch", seeds=int(seeds.size),
                version=snapshot.version,
            ):
                return compute_union_rows(
                    self.model,
                    snapshot.a,
                    snapshot.features,
                    seeds,
                    self.fanouts,
                    rng,
                    cache=self.cache,
                    version=snapshot.version,
                    weights=snapshot.weights,
                )
        finally:
            self._params.release_read()

    # ------------------------------------------------------------------
    # Mutations (copy-on-write snapshot swap)
    # ------------------------------------------------------------------
    def reload(self, state: dict[str, np.ndarray]) -> int:
        """Hot-swap model parameters from a ``state_dict`` snapshot.

        Parameters are copied in place under the exclusive side of the
        parameter lock, so the copy waits out every in-flight serve
        and blocks new ones until the bumped snapshot is published —
        each request computes entirely before or entirely after the
        swap. The whole cache is invalidated (old-version rows embed
        the old weights) and the new version starts clean. Returns the
        new version.
        """
        with self._mutate:
            old = self._snapshot
            # Exclusive side of the parameter lock: wait out in-flight
            # serves, copy, publish the bumped snapshot, then let new
            # serves in — no forward ever sees half-swapped weights.
            self._params.acquire_write()
            try:
                load_state_dict(self.model, state)
                if self.cache is not None:
                    self.cache.advance(old.version, old.version + 1, None)
                self._snapshot = _Snapshot(
                    a=old.a,
                    features=old.features,
                    weights=old.weights,
                    version=old.version + 1,
                )
            finally:
                self._params.release_write()
            return self._snapshot.version

    def apply_feature_delta(
        self, nodes: np.ndarray, rows: np.ndarray
    ) -> int:
        """Replace the feature rows of ``nodes``; invalidate their cone.

        Copy-on-write: readers of the old snapshot keep the old
        feature matrix. Cache rows outside the touched nodes' L-hop
        forward cone migrate to the new version. Returns it.
        """
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        rows = np.asarray(rows)
        with self._mutate:
            old = self._snapshot
            features = np.array(old.features, copy=True)
            features[nodes] = rows
            if self.cache is not None:
                dirty = nodes
                dropped: dict[int, np.ndarray] = {}
                for level in range(1, self.model.num_layers + 1):
                    dirty = _expand_dirty(dirty, (old.a,))
                    dropped[level] = dirty
                self.cache.advance(
                    old.version, old.version + 1, dropped
                )
            self._snapshot = _Snapshot(
                a=old.a,
                features=features,
                weights=old.weights,
                version=old.version + 1,
            )
            return self._snapshot.version

    def apply_graph_delta(
        self, a: CSRMatrix, touched_dst: np.ndarray | None = None
    ) -> int:
        """Swap in a new adjacency; invalidate affected activations.

        ``touched_dst`` names the vertices whose in-edge lists (or
        edge values) differ between the two adjacencies; their forward
        cone — expanded through *both* graphs — is invalidated and the
        rest migrates. Without it the whole cache is dropped (safe for
        arbitrary rewires). Hub-bias sampling weights are recomputed.
        Returns the new version.
        """
        if a.shape[0] != self._snapshot.features.shape[0]:
            raise ValueError(
                "new adjacency must keep the vertex set (feature rows)"
            )
        with self._mutate:
            old = self._snapshot
            if self._weights_mode == "hub":
                weights = hub_bias_weights(a)
            elif old.weights is not None:
                raise ValueError(
                    "explicit sampling weights cannot survive a graph "
                    "swap; re-create the engine or use weights='hub'"
                )
            else:
                weights = None
            if self.cache is not None:
                if touched_dst is None:
                    self.cache.advance(old.version, old.version + 1, None)
                else:
                    # Level-1 activations of the touched destinations
                    # are stale; each further level adds one hop of the
                    # forward cone under either adjacency.
                    dirty = np.unique(
                        np.asarray(touched_dst, dtype=np.int64)
                    )
                    dropped = {1: dirty}
                    for level in range(2, self.model.num_layers + 1):
                        dirty = _expand_dirty(dirty, (old.a, a))
                        dropped[level] = dirty
                    self.cache.advance(
                        old.version, old.version + 1, dropped
                    )
            self._snapshot = _Snapshot(
                a=a,
                features=old.features,
                weights=weights,
                version=old.version + 1,
            )
            return self._snapshot.version


class ServingServer:
    """Admission queue + worker threads around one engine.

    ``workers`` sizes the flush pool; with one worker, flushes are
    strictly ordered (the latency-harness configuration), more workers
    overlap independent union batches on the re-entrant engine.
    Usable as a context manager; :meth:`close` drains and joins.
    """

    def __init__(
        self,
        engine: ServingEngine,
        max_batch: int | None = None,
        max_delay_ms: float | None = None,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("a server needs at least one worker")
        self.engine = engine
        self.queue = AdmissionQueue(
            max_batch=max_batch, max_delay_ms=max_delay_ms
        )
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def _worker_loop(self) -> None:
        while True:
            batch = self.queue.next_batch()
            if batch is None:
                return
            flush_batch(self.engine, batch)

    # ------------------------------------------------------------------
    def submit(self, node: int) -> Future:
        """Enqueue one request; resolves to that vertex's output row."""
        return self.queue.submit(node)

    def submit_many(self, nodes) -> list[Future]:
        """Enqueue a burst of requests (one future per node)."""
        return [self.queue.submit(int(node)) for node in np.atleast_1d(
            np.asarray(nodes, dtype=np.int64)
        )]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admissions, drain pending flushes, join the workers."""
        self.queue.close()
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "ServingServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
