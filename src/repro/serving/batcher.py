"""Union ego-graph batching with cache-truncated sampling depth.

The coalescer's compute core. One flush of queued seed vertices runs as
a *single* union ego-batch rather than per-request forwards:

1. **Union sampling** — all seeds share one layered block set
   (:func:`repro.tensor.sampling_graph.sample_one_hop` per level), so
   overlapping neighbourhoods — the common case on power-law graphs —
   are sampled and computed once per flush instead of once per request.
   The blocks keep the square-CSR contract, so the fused megakernel and
   head-batched kernels run on the union batch unchanged.
2. **Depth truncation** — before sampling below a level, the frontier
   is checked against the :class:`~repro.serving.cache.ActivationCache`:
   a node whose level-ℓ activation is cached contributes no sub-tree,
   because its row can be spliced into layer ℓ's input frame directly.
   The descent therefore only expands *uncached* nodes, and a fully
   cached seed costs zero sampling and zero compute.
3. **Single forward + scatter** — the ascent mirrors
   :func:`repro.training.minibatch.forward_blocks` statement for
   statement (layer ``forward`` on the block matrix, slice
   ``dst_positions``), assembling each layer's input frame from cached
   rows plus the rows just computed. Per-seed output rows scatter back
   to the requests' futures.

Identity contract (property-tested): every layer is row-wise in its
source frame, compaction is monotone, and cached rows are exact prior
outputs — so with full fan-out the batched output row of a seed is
**bit-identical** to a per-request forward, with or without cache hits.

The descent/ascent contract: the hop block for layer ``j`` is sampled
with ``dst = need_{j+1}`` (the uncached frontier at level ``j+1``), so
``block_j.dst_nodes == block_{j+1}.src_nodes[~hits_{j+1}]`` exactly —
both sorted — and splicing computed rows into the next frame is a
single sliced assignment, no searching.
"""

from __future__ import annotations

import time

import numpy as np

from repro.models.base import GnnModel
from repro.obs.metrics import metrics
from repro.obs.tracer import tracer
from repro.serving.cache import ActivationCache
from repro.serving.queue import InferenceRequest
from repro.tensor.csr import CSRMatrix
from repro.tensor.sampling_graph import Block, sample_one_hop
from repro.util.counters import FlopCounter, null_counter

__all__ = ["coalesce", "compute_union_rows", "flush_batch"]


def coalesce(
    requests: list[InferenceRequest],
) -> tuple[np.ndarray, np.ndarray]:
    """Dedupe a flush's seeds: ``(unique sorted seeds, inverse map)``.

    Duplicate requests for the same vertex — hot-node traffic — ride
    the same union batch row; ``inverse`` scatters it back to each.
    """
    seeds = np.array([r.node for r in requests], dtype=np.int64)
    return np.unique(seeds, return_inverse=True)


# ----------------------------------------------------------------------
def compute_union_rows(
    model: GnnModel,
    a: CSRMatrix,
    features: np.ndarray,
    seeds: np.ndarray,
    fanouts: tuple[int | None, ...],
    rng: np.random.Generator,
    cache: ActivationCache | None = None,
    version: int = 0,
    weights: np.ndarray | None = None,
    counter: FlopCounter = null_counter(),
) -> np.ndarray:
    """Model output rows for ``seeds`` (unique, sorted) as one batch.

    The cache-free path is exactly ``sample_blocks`` +
    ``forward_blocks``; with a cache, sampling depth truncates at
    cached levels and every freshly computed level lands back in the
    cache under ``version``.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size == 0:
        raise ValueError("a union batch needs at least one seed")
    if seeds.size > 1 and np.any(np.diff(seeds) <= 0):
        raise ValueError("seeds must be unique and sorted (coalesce them)")
    num_layers = model.num_layers
    if len(fanouts) != num_layers:
        raise ValueError(
            f"got {len(fanouts)} fan-outs for {num_layers} layers"
        )

    # Descent: top-level lookup, then expand only uncached frontiers.
    # ``lookups[j]`` pairs with ``hop_blocks``' layer-``j`` block: the
    # cache rows/hits over that block's source frame at level ``j``.
    top_rows: list[np.ndarray | None]
    if cache is not None:
        with tracer().span("serve.cache", level=num_layers,
                           nodes=int(seeds.size)):
            top_rows, top_hits = cache.get_rows(num_layers, seeds, version)
    else:
        top_rows = [None] * seeds.size
        top_hits = np.zeros(seeds.size, dtype=bool)
    hop_blocks: list[tuple[int, Block]] = []
    lookups: dict[int, tuple[list[np.ndarray | None], np.ndarray]] = {}
    frontier = seeds[~top_hits]
    level = num_layers
    while frontier.size and level > 0:
        layer_index = level - 1
        block = sample_one_hop(
            a, frontier, fanouts[layer_index], rng, weights
        )
        hop_blocks.append((layer_index, block))
        level = layer_index
        if level == 0:
            break
        if cache is None:
            frontier = block.src_nodes
            continue
        with tracer().span("serve.cache", level=level,
                           nodes=int(block.num_src)):
            rows, hits = cache.get_rows(level, block.src_nodes, version)
        lookups[level] = (rows, hits)
        frontier = block.src_nodes[~hits]

    # Ascent: assemble each layer's input frame, run it, slice dst —
    # the forward_blocks arithmetic with cached rows spliced in.
    hop_blocks.reverse()
    out: np.ndarray | None = None
    h: np.ndarray | None = None
    for index, (layer_index, block) in enumerate(hop_blocks):
        if index == 0:
            if layer_index == 0:
                h = np.asarray(features)[block.src_nodes]
            else:
                # Truncated base: the whole source frame was cached.
                rows, _ = lookups[layer_index]
                h = np.array(rows)
        elif cache is None:
            h = out  # prev dst set IS this frame (sample_blocks contract)
        else:
            rows, hits = lookups[layer_index]
            assert out is not None
            h = np.empty(
                (block.num_src, out.shape[1]), dtype=out.dtype
            )
            h[~hits] = out  # prev dst == this frame's miss rows, in order
            for position in np.flatnonzero(hits):
                h[position] = rows[position]
        h_next, _ = model.layers[layer_index].forward(
            block.matrix, h, counter=counter, training=False
        )
        out = h_next[block.dst_positions]
        if cache is not None:
            cache.put_rows(layer_index + 1, block.dst_nodes, out, version)

    # Final frame over the unique seeds: cached top rows + computed.
    if out is None:  # every seed's output was cached
        result = np.array(top_rows)
    else:
        result = np.empty((seeds.size, out.shape[1]), dtype=out.dtype)
        result[~top_hits] = out
        for position in np.flatnonzero(top_hits):
            result[position] = top_rows[position]
    return result


# ----------------------------------------------------------------------
def flush_batch(engine, requests: list[InferenceRequest]) -> None:
    """Serve one drained batch and scatter rows back to the futures.

    Any engine failure propagates to *every* future in the flush (the
    batch shares one forward, so there is no per-request blame). Flush
    latency per request lands in ``serving.latency_ms``; union batch
    shape in ``serving.batch_size`` / ``serving.unique_seeds``.
    """
    if not requests:
        return
    with tracer().span("serve.flush", batch=len(requests)):
        seeds, inverse = coalesce(requests)
        try:
            rows = engine.serve_unique(seeds)
        except BaseException as exc:
            for request in requests:
                request.future.set_exception(exc)
            return
        now = time.perf_counter()
        registry = metrics()
        latency = registry.histogram("serving.latency_ms")
        for request, row_index in zip(requests, inverse):
            request.future.set_result(rows[row_index])
            latency.observe((now - request.t_submit) * 1e3)
        registry.histogram("serving.batch_size").observe(len(requests))
        registry.histogram("serving.unique_seeds").observe(seeds.size)
