"""Online inference serving: coalescing, ego-batching, caching.

Training amortises kernel-launch and sampling overheads across large
planned batches; online inference gets neither for free — requests
arrive one seed vertex at a time. This package recovers the batch
economics at serving time with three composable levers:

* **Request coalescing** (:mod:`repro.serving.queue`) — concurrent
  requests accumulate under a max-delay/max-batch admission policy.
* **Union ego-batching** (:mod:`repro.serving.batcher`) — each flush
  samples *one* union ego-subgraph for all queued seeds and runs a
  single fused forward; overlapping neighbourhoods (power-law hubs)
  are computed once per flush.
* **Activation caching** (:mod:`repro.serving.cache`) — hot nodes'
  hidden activations persist across flushes in a versioned LRU; cache
  hits truncate sampling depth.

:mod:`repro.serving.engine` ties them together behind
:class:`ServingEngine` (consistent snapshots, hot reload, graph and
feature deltas) and :class:`ServingServer` (worker threads and
futures). The p50/p99 latency harness lives in
:mod:`repro.bench.serving_latency`.
"""

from repro.serving.batcher import coalesce, compute_union_rows, flush_batch
from repro.serving.cache import ActivationCache
from repro.serving.engine import ServingEngine, ServingServer
from repro.serving.queue import (
    AdmissionQueue,
    InferenceRequest,
    MAX_BATCH_ENV_VAR,
    MAX_DELAY_ENV_VAR,
    serve_max_batch_default,
    serve_max_delay_ms_default,
)

__all__ = [
    "ActivationCache",
    "AdmissionQueue",
    "InferenceRequest",
    "ServingEngine",
    "ServingServer",
    "coalesce",
    "compute_union_rows",
    "flush_batch",
    "MAX_BATCH_ENV_VAR",
    "MAX_DELAY_ENV_VAR",
    "serve_max_batch_default",
    "serve_max_delay_ms_default",
]
