"""Admission queue: collect concurrent requests into coalescable batches.

Online inference traffic arrives one seed vertex at a time, but the
engine's cost is dominated by per-batch fixed work (union sampling,
kernel launch sweeps), so serving throughput comes from *coalescing*:
requests accumulate here until either ``max_batch`` of them are
pending or the oldest has waited ``max_delay_ms`` — the standard
batching-delay tradeoff (TensorFlow Serving's ``batching_parameters``;
the delay bound caps the latency cost of waiting for a fuller batch).

:meth:`AdmissionQueue.submit` is the client edge: it enqueues the seed
under the ``serve.admit`` span and returns a
:class:`concurrent.futures.Future` that resolves to the model's output
row for that vertex. :meth:`next_batch` is the worker edge: it blocks
until a flush is due and drains up to ``max_batch`` requests in FIFO
order. Both defaults are env-tunable (``$REPRO_SERVE_MAX_BATCH``,
``$REPRO_SERVE_MAX_DELAY_MS``), read at construction time.

Queue depth is exported as the ``serving.queue_depth`` gauge and each
request's queueing delay as the ``serving.queue_wait_ms`` histogram.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.obs.metrics import metrics
from repro.obs.tracer import tracer

__all__ = [
    "AdmissionQueue",
    "InferenceRequest",
    "MAX_BATCH_ENV_VAR",
    "MAX_DELAY_ENV_VAR",
    "serve_max_batch_default",
    "serve_max_delay_ms_default",
]

#: Environment variable giving the default coalescing batch cap.
MAX_BATCH_ENV_VAR = "REPRO_SERVE_MAX_BATCH"

#: Environment variable giving the default max queueing delay (ms).
MAX_DELAY_ENV_VAR = "REPRO_SERVE_MAX_DELAY_MS"


def serve_max_batch_default() -> int:
    """Resolve the batch cap from ``$REPRO_SERVE_MAX_BATCH`` (read now).

    Unset means 64 — large enough that a saturating open-loop load
    amortises sampling across a whole union batch, small enough that
    one flush's working set stays cache-resident.
    """
    raw = os.environ.get(MAX_BATCH_ENV_VAR)
    if raw is None:
        return 64
    try:
        value = int(raw.strip())
    except ValueError:
        value = 0
    if value < 1:
        raise ValueError(
            f"invalid ${MAX_BATCH_ENV_VAR}={raw!r}; "
            "expected a positive integer"
        )
    return value


def serve_max_delay_ms_default() -> float:
    """Resolve the delay bound from ``$REPRO_SERVE_MAX_DELAY_MS``.

    Unset means 2 ms; ``0`` disables waiting entirely (every flush
    takes whatever is pending — the lowest-latency, lowest-throughput
    corner).
    """
    raw = os.environ.get(MAX_DELAY_ENV_VAR)
    if raw is None:
        return 2.0
    try:
        value = float(raw.strip())
    except ValueError:
        value = -1.0
    if value < 0.0 or value != value:  # reject negatives and NaN
        raise ValueError(
            f"invalid ${MAX_DELAY_ENV_VAR}={raw!r}; "
            "expected a non-negative number of milliseconds"
        )
    return value


@dataclass
class InferenceRequest:
    """One queued seed vertex and the future its output row resolves."""

    node: int
    future: Future = field(default_factory=Future)
    t_submit: float = field(default_factory=time.perf_counter)


class AdmissionQueue:
    """FIFO request queue with a max-batch / max-delay flush policy."""

    def __init__(
        self,
        max_batch: int | None = None,
        max_delay_ms: float | None = None,
    ) -> None:
        self.max_batch = (
            serve_max_batch_default() if max_batch is None else int(max_batch)
        )
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.max_delay_s = (
            serve_max_delay_ms_default()
            if max_delay_ms is None
            else float(max_delay_ms)
        ) / 1e3
        if self.max_delay_s < 0.0:
            raise ValueError("max_delay_ms must be non-negative")
        self._pending: deque[InferenceRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def __len__(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    def submit(self, node: int) -> Future:
        """Enqueue one seed vertex; returns the future of its output row.

        Raises ``RuntimeError`` after :meth:`close` — a closed queue
        can no longer guarantee the future would ever resolve.
        """
        request = InferenceRequest(node=int(node))
        with tracer().span("serve.admit", node=int(node)):
            with self._cond:
                if self._closed:
                    raise RuntimeError("admission queue is closed")
                self._pending.append(request)
                depth = len(self._pending)
                self._cond.notify()
        registry = metrics()
        registry.counter("serving.requests").inc()
        registry.gauge("serving.queue_depth").set(depth)
        return request.future

    # ------------------------------------------------------------------
    def next_batch(self) -> list[InferenceRequest] | None:
        """Block until a flush is due; drain up to ``max_batch`` requests.

        A flush is due when ``max_batch`` requests are pending or the
        oldest has aged past the delay bound. Returns ``None`` once the
        queue is closed *and* drained — the worker's exit signal.
        """
        with self._cond:
            while True:
                if self._pending:
                    if len(self._pending) >= self.max_batch:
                        return self._drain()
                    wait = (
                        self._pending[0].t_submit
                        + self.max_delay_s
                        - time.perf_counter()
                    )
                    if wait <= 0.0 or self._closed:
                        return self._drain()
                    self._cond.wait(timeout=wait)
                elif self._closed:
                    return None
                else:
                    self._cond.wait()

    def _drain(self) -> list[InferenceRequest]:
        batch = [
            self._pending.popleft()
            for _ in range(min(self.max_batch, len(self._pending)))
        ]
        metrics().gauge("serving.queue_depth").set(len(self._pending))
        now = time.perf_counter()
        waits = metrics().histogram("serving.queue_wait_ms")
        for request in batch:
            waits.observe((now - request.t_submit) * 1e3)
        return batch

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse new submissions; wake workers to drain what is left."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
