"""SPMD launcher: one thread per simulated rank.

``run_spmd(p, fn, ...)`` builds a fabric, spawns ``p`` threads each
executing ``fn(comm, **kwargs)``, joins them, propagates the first
failure (aborting the fabric so no rank hangs), and returns every
rank's return value together with the aggregated traffic statistics.

NumPy releases the GIL inside its kernels, so ranks overlap on real
cores; correctness never depends on it, because all synchronisation
goes through the fabric.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.runtime.communicator import Communicator
from repro.runtime.fabric import Fabric
from repro.runtime.stats import CommStats, RunStats

__all__ = ["run_spmd", "SpmdResult"]


@dataclass
class SpmdResult:
    """Outcome of one SPMD execution."""

    values: list[Any]
    stats: RunStats


def run_spmd(
    size: int,
    fn: Callable[..., Any],
    timeout: float = 120.0,
    trace: bool = False,
    **kwargs: Any,
) -> SpmdResult:
    """Execute ``fn(comm, **kwargs)`` on ``size`` simulated ranks.

    Parameters
    ----------
    size:
        Number of ranks.
    fn:
        The rank program; receives its :class:`Communicator` as the
        first argument. All ranks get identical ``kwargs`` (SPMD) —
        rank-dependent behaviour keys off ``comm.rank``.
    timeout:
        Fabric deadlock guard in seconds.
    trace:
        Record a chronological send trace per rank (see
        :mod:`repro.runtime.trace`) for debugging new operators.

    Returns
    -------
    :class:`SpmdResult` with per-rank return values (rank order) and
    traffic statistics.
    """
    if size < 1:
        raise ValueError("need at least one rank")
    fabric = Fabric(size, timeout=timeout)
    all_stats = [CommStats(rank, trace=trace) for rank in range(size)]
    values: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    error_lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = Communicator(fabric, rank, all_stats[rank])
        try:
            values[rank] = fn(comm, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - propagated below
            with error_lock:
                errors.append((rank, exc))
            fabric.abort()

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"rank-{rank}")
        for rank in range(size)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    if errors:
        # Prefer the root cause: a rank that failed on its own, not one
        # unblocked by the fabric abort after someone else had failed.
        from repro.runtime.fabric import FabricTimeoutError

        primary = [e for e in errors if not isinstance(e[1], FabricTimeoutError)]
        rank, exc = min(primary or errors, key=lambda item: item[0])
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return SpmdResult(values=values, stats=RunStats(per_rank=all_stats))
