"""SPMD launcher: one thread or one process per simulated rank.

``run_spmd(p, fn, ...)`` builds a fabric, runs ``p`` ranks each
executing ``fn(comm, **kwargs)``, joins them, propagates the first
failure (aborting the fabric so no rank hangs), and returns every
rank's return value together with the aggregated traffic statistics.

Two execution backends share this entry point:

``backend="thread"``
    Ranks are Python threads over the in-process
    :class:`~repro.runtime.fabric.ThreadFabric`. NumPy releases the GIL
    inside its kernels, so ranks overlap on real cores, but pure-Python
    stretches serialise — communication *cost* is exact, wall-clock
    scaling is not.

``backend="process"``
    Ranks are spawned processes over the
    :class:`~repro.runtime.process_fabric.ProcessFabric`; large arrays
    move through shared memory. Real wall-clock parallelism, identical
    byte accounting; requires ``fn`` and its kwargs to be picklable
    (module-level functions, not closures).

``backend=None`` consults the ``REPRO_FABRIC_BACKEND`` environment
variable (values ``thread``/``process``), defaulting to ``thread``.
Because the env override is a blanket switch over test suites that
also contain closure-based thread programs, it is best-effort: an
unpicklable program silently stays on threads (the chosen backend is
reported in :attr:`SpmdResult.backend`). Passing ``backend="process"``
explicitly is strict and raises
:class:`~repro.runtime.process_fabric.ProcessBackendError` instead.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.tracer import Tracer, install_tracer, trace_enabled_default
from repro.runtime.communicator import Communicator
from repro.runtime.fabric import FabricTimeoutError, ThreadFabric
from repro.runtime.stats import CommStats, RunStats

__all__ = ["run_spmd", "SpmdResult", "BACKEND_ENV_VAR"]

#: Environment variable consulted when ``run_spmd(backend=None)``.
BACKEND_ENV_VAR = "REPRO_FABRIC_BACKEND"

_VALID_BACKENDS = ("thread", "process")


@dataclass
class SpmdResult:
    """Outcome of one SPMD execution."""

    values: list[Any]
    stats: RunStats
    #: Which fabric actually ran: ``"thread"`` or ``"process"``.
    backend: str = "thread"


def _spmd_picklable(fn: Callable[..., Any], kwargs: dict[str, Any]) -> bool:
    """Whether (fn, kwargs) survive the spawn pickling round-trip."""
    try:
        pickle.dumps((fn, kwargs), protocol=pickle.HIGHEST_PROTOCOL)
        return True
    except Exception:
        return False


def _resolve_backend(backend: str | None) -> tuple[str, bool]:
    """Resolve the backend name; returns ``(name, explicit)``."""
    explicit = backend is not None
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "").strip().lower() or "thread"
    if backend not in _VALID_BACKENDS:
        source = "backend argument" if explicit else f"${BACKEND_ENV_VAR}"
        raise ValueError(
            f"unknown fabric backend {backend!r} (from {source}); "
            f"use one of {_VALID_BACKENDS}"
        )
    return backend, explicit


def run_spmd(
    size: int,
    fn: Callable[..., Any],
    timeout: float = 120.0,
    trace: bool = False,
    backend: str | None = None,
    **kwargs: Any,
) -> SpmdResult:
    """Execute ``fn(comm, **kwargs)`` on ``size`` simulated ranks.

    Parameters
    ----------
    size:
        Number of ranks.
    fn:
        The rank program; receives its :class:`Communicator` as the
        first argument. All ranks get identical ``kwargs`` (SPMD) —
        rank-dependent behaviour keys off ``comm.rank``. Under the
        process backend, ``fn`` and ``kwargs`` must be picklable.
    timeout:
        Fabric deadlock guard in seconds.
    trace:
        Record a chronological send trace per rank (see
        :mod:`repro.runtime.trace`) for debugging new operators.
    backend:
        ``"thread"``, ``"process"``, or ``None`` to consult the
        ``REPRO_FABRIC_BACKEND`` environment variable (default thread).

    Returns
    -------
    :class:`SpmdResult` with per-rank return values (rank order),
    traffic statistics, and the backend that actually ran. Each rank's
    :class:`~repro.runtime.stats.CommStats` carries its measured
    ``wall_s`` and the communicator-recorded ``wait_s`` — see
    :meth:`~repro.runtime.stats.RunStats.breakdown` for the per-rank
    compute-vs-wait split.
    """
    if size < 1:
        raise ValueError("need at least one rank")
    resolved, explicit = _resolve_backend(backend)
    if resolved == "process":
        from repro.runtime.process_fabric import run_process_spmd

        if explicit or _spmd_picklable(fn, kwargs):
            return run_process_spmd(
                size, fn, timeout=timeout, trace=trace, **kwargs
            )
        # Env-derived override over a closure-based program: stay on
        # threads rather than failing a suite-wide sweep.
        resolved = "thread"
    return _run_thread_spmd(size, fn, timeout=timeout, trace=trace, **kwargs)


def _run_thread_spmd(
    size: int,
    fn: Callable[..., Any],
    timeout: float = 120.0,
    trace: bool = False,
    **kwargs: Any,
) -> SpmdResult:
    """The original in-process backend: one thread per rank."""
    fabric = ThreadFabric(size, timeout=timeout)
    all_stats = [CommStats(rank, trace=trace) for rank in range(size)]
    values: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    error_lock = threading.Lock()
    tracing = trace_enabled_default()

    def worker(rank: int) -> None:
        comm = Communicator(fabric, rank, all_stats[rank])
        try:
            if tracing:
                # Each rank thread gets its own tracer, installed
                # thread-locally so nested instrumentation (kernels,
                # schedule steps) lands on this rank's timeline; it
                # stays reachable on the rank's CommStats afterwards.
                rank_tracer = Tracer(rank=rank)
                all_stats[rank].tracer = rank_tracer
                install_tracer(rank_tracer)
                start = time.perf_counter()
                with rank_tracer.span(
                    "rank.program", counter=all_stats[rank].flops
                ):
                    values[rank] = fn(comm, **kwargs)
            else:
                start = time.perf_counter()
                values[rank] = fn(comm, **kwargs)
            all_stats[rank].wall_s = time.perf_counter() - start
        except BaseException as exc:  # noqa: BLE001 - propagated below
            with error_lock:
                errors.append((rank, exc))
            fabric.abort()

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"rank-{rank}")
        for rank in range(size)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    if errors:
        # Prefer the root cause: a rank that failed on its own, not one
        # unblocked by the fabric abort after someone else had failed.
        primary = [e for e in errors if not isinstance(e[1], FabricTimeoutError)]
        rank, exc = min(primary or errors, key=lambda item: item[0])
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return SpmdResult(
        values=values, stats=RunStats(per_rank=all_stats), backend="thread"
    )
