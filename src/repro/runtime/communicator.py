"""MPI-flavoured communicator over the in-process fabric.

The API mirrors the mpi4py subset the paper's implementation uses
(point-to-point plus ``bcast``/``reduce``/``allreduce``/``allgather``/
``alltoall``/``reduce_scatter``/``scatter``/``gather``/``split``), and
the collectives are implemented with *real distribution algorithms* —
binomial trees and rings — on top of point-to-point sends. This matters
for fidelity: the per-rank byte counts recorded by
:class:`~repro.runtime.stats.CommStats` then match what a production
MPI library would put on the wire, so the measured communication
volumes line up with the Section-7 analysis (e.g. broadcasting ``W``
costs ``O(k^2)`` words over ``O(log p)`` supersteps).

Tag discipline: SPMD code executes the same communicator calls in the
same order on every rank, so a per-communicator operation counter
namespaces each collective; user point-to-point tags live in a separate
namespace and cannot collide with collectives.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.runtime.fabric import Fabric
from repro.runtime.stats import CommStats

__all__ = ["Communicator"]

_REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "max": np.maximum,
    "min": np.minimum,
}


def _payload_bytes(payload: Any) -> int:
    """Estimate the wire size of a payload."""
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (list, tuple)):
        return sum(_payload_bytes(item) for item in payload)
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if payload is None:
        return 0
    # Fallback for small control messages (metadata tuples etc.).
    return 64


def _copy(payload: Any) -> Any:
    """Detach a payload from the sender's buffers (models a transfer)."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return payload


class Communicator:
    """One rank's endpoint of a (sub-)communicator.

    Parameters
    ----------
    fabric:
        The shared message fabric.
    rank:
        This rank's *global* id on the fabric.
    stats:
        This rank's traffic counters.
    group:
        Global ranks forming this communicator, in local-rank order.
        ``None`` means the world communicator.
    comm_id:
        Hashable namespace distinguishing this communicator's traffic.
    """

    def __init__(
        self,
        fabric: Fabric,
        rank: int,
        stats: CommStats,
        group: Sequence[int] | None = None,
        comm_id: Any = "world",
    ) -> None:
        self.fabric = fabric
        self.global_rank = rank
        self.stats = stats
        self.group = list(group) if group is not None else list(range(fabric.size))
        if rank not in self.group:
            raise ValueError("rank is not a member of the communicator group")
        self.rank = self.group.index(rank)
        self.size = len(self.group)
        self.comm_id = comm_id
        self._op_counter = 0
        self._split_counter = 0

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, payload: Any, dst: int, tag: Any = 0) -> None:
        """Send ``payload`` to local rank ``dst`` (records traffic)."""
        self._send_raw(payload, dst, ("user", tag))

    def recv(self, src: int, tag: Any = 0) -> Any:
        """Blocking receive from local rank ``src``."""
        return self._recv_raw(src, ("user", tag))

    def _send_raw(self, payload: Any, dst: int, tag: Any) -> None:
        if not 0 <= dst < self.size:
            raise ValueError(f"destination {dst} outside communicator")
        self.stats.record_send(_payload_bytes(payload))
        self.fabric.put(
            self.group[self.rank],
            self.group[dst],
            (self.comm_id, tag),
            _copy(payload),
        )

    def _recv_raw(self, src: int, tag: Any) -> Any:
        if not 0 <= src < self.size:
            raise ValueError(f"source {src} outside communicator")
        return self.fabric.get(
            self.group[src], self.group[self.rank], (self.comm_id, tag)
        )

    def _next_op(self) -> int:
        self._op_counter += 1
        return self._op_counter

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronise the communicator (tree gather + broadcast of tokens)."""
        op = ("barrier", self._next_op())
        self._binomial_reduce(0, 0, lambda a, b: 0, op)
        self._binomial_bcast(0, 0, op)

    #: Payloads at least this large (bytes) use the van de Geijn
    #: scatter+allgather broadcast instead of the binomial tree.
    LARGE_BCAST_BYTES = 1 << 15

    def bcast(self, payload: Any, root: int = 0,
              algorithm: str | None = None) -> Any:
        """Broadcast; returns the payload on every rank.

        Two algorithms, mirroring production MPI libraries:

        ``"binomial"``
            Latency-optimal tree: ``O(log p)`` steps, but the root (and
            inner nodes) send up to ``log p`` full copies.
        ``"scatter_allgather"``
            Bandwidth-optimal (van de Geijn): the root scatters ``p``
            chunks, then a ring allgather reassembles them — per-rank
            volume ``≈ 2m(p-1)/p`` regardless of p, which is what the
            Section-7.1 analysis assumes for the feature-block
            broadcasts.

        ``algorithm=None`` selects by payload *and communicator* size
        (large arrays on wide communicators take the bandwidth-optimal
        path), as real MPI does — on narrow communicators the ring's
        extra message latency outweighs the volume saving.
        """
        op = ("bcast", self._next_op())
        if algorithm is None:
            is_large = (
                self.size >= 8
                and isinstance(payload, np.ndarray)
                and payload.nbytes >= self.LARGE_BCAST_BYTES
            )
            # Every rank must agree on the algorithm; only the root has
            # the payload, so agreement rides a tiny metadata broadcast.
            flag = self._binomial_bcast(
                is_large if self.rank == root else None, root,
                ("bcast_meta", op),
            )
            algorithm = "scatter_allgather" if flag else "binomial"
        if algorithm == "binomial" or self.size == 1:
            return self._binomial_bcast(
                payload if self.rank == root else None, root, op
            )
        if algorithm != "scatter_allgather":
            raise ValueError(f"unknown bcast algorithm {algorithm!r}")
        return self._scatter_allgather_bcast(payload, root, op)

    def _scatter_allgather_bcast(self, payload: Any, root: int,
                                 op: Any) -> Any:
        """Van de Geijn broadcast for large array payloads."""
        if self.rank == root:
            arr = np.ascontiguousarray(payload)
            meta = (arr.shape, arr.dtype.str)
        else:
            meta = None
        meta = self._binomial_bcast(meta, root, ("sag_meta", op))
        shape, dtype = meta
        if self.rank == root:
            flat = arr.reshape(-1)
            bounds = np.linspace(0, flat.size, self.size + 1).astype(int)
            chunks = [flat[bounds[i]:bounds[i + 1]] for i in range(self.size)]
        else:
            chunks = None
        mine = self.scatter(chunks, root=root)
        gathered = self.allgather(mine)
        return np.concatenate(gathered).reshape(shape).astype(dtype, copy=False)

    def reduce(self, payload: Any, root: int = 0, op: str = "sum") -> Any:
        """Binomial-tree reduction to ``root`` (others return ``None``)."""
        tag = ("reduce", self._next_op())
        result = self._binomial_reduce(payload, root, _REDUCE_OPS[op], tag)
        return result if self.rank == root else None

    def allreduce(self, payload: Any, op: str = "sum") -> Any:
        """Reduce-to-root followed by broadcast (``2 log p`` supersteps)."""
        tag = ("allreduce", self._next_op())
        reduced = self._binomial_reduce(payload, 0, _REDUCE_OPS[op], tag)
        return self._binomial_bcast(reduced if self.rank == 0 else None, 0, tag)

    def allgather(self, payload: Any) -> list[Any]:
        """Ring allgather: ``p - 1`` steps, each forwarding one block.

        Per-rank volume is ``(p - 1) * blocksize`` — the bandwidth-
        optimal algorithm, matching the cost the Section-7 analysis
        assigns to feature-block replication.
        """
        op = self._next_op()
        blocks: list[Any] = [None] * self.size
        blocks[self.rank] = payload
        current = payload
        right = (self.rank + 1) % self.size
        left = (self.rank - 1) % self.size
        for step in range(self.size - 1):
            tag = ("allgather", op, step)
            self._send_raw(current, right, tag)
            current = self._recv_raw(left, tag)
            blocks[(self.rank - step - 1) % self.size] = current
        return blocks

    def alltoall(self, payloads: Sequence[Any]) -> list[Any]:
        """Personalised all-to-all: direct sends (``p - 1`` messages)."""
        if len(payloads) != self.size:
            raise ValueError("alltoall needs one payload per rank")
        op = self._next_op()
        received: list[Any] = [None] * self.size
        received[self.rank] = payloads[self.rank]
        for offset in range(1, self.size):
            dst = (self.rank + offset) % self.size
            src = (self.rank - offset) % self.size
            tag = ("alltoall", op, offset)
            self._send_raw(payloads[dst], dst, tag)
            received[src] = self._recv_raw(src, tag)
        return received

    def reduce_scatter(self, blocks: Sequence[np.ndarray], op: str = "sum") -> Any:
        """Ring reduce-scatter over per-rank blocks.

        Each rank contributes ``p`` blocks and receives the fully
        reduced block of its own index; per-rank volume is
        ``(p - 1) * blocksize``. This is the primitive behind summing
        the 1.5D algorithm's partial output blocks (Section 6.3).
        """
        if len(blocks) != self.size:
            raise ValueError("reduce_scatter needs one block per rank")
        op_fn = _REDUCE_OPS[op]
        op_id = self._next_op()
        right = (self.rank + 1) % self.size
        left = (self.rank - 1) % self.size
        # Start by sending the block owned by our left neighbour's chain.
        current = blocks[(self.rank + 1) % self.size]
        for step in range(self.size - 1):
            tag = ("reduce_scatter", op_id, step)
            self._send_raw(current, left, tag)
            incoming = self._recv_raw(right, tag)
            target = (self.rank + step + 2) % self.size
            if step == self.size - 2:
                return op_fn(incoming, blocks[self.rank])
            current = op_fn(incoming, blocks[target])
        # size == 1: nothing to exchange.
        return blocks[self.rank]

    def gather(self, payload: Any, root: int = 0) -> list[Any] | None:
        """Gather payloads at ``root`` (direct sends)."""
        op = ("gather", self._next_op())
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = payload
            for src in range(self.size):
                if src != root:
                    out[src] = self._recv_raw(src, op)
            return out
        self._send_raw(payload, root, op)
        return None

    def scatter(self, payloads: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one payload per rank from ``root``."""
        op = ("scatter", self._next_op())
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise ValueError("root must supply one payload per rank")
            for dst in range(self.size):
                if dst != root:
                    self._send_raw(payloads[dst], dst, op)
            return payloads[root]
        return self._recv_raw(root, op)

    # ------------------------------------------------------------------
    # Communicator management
    # ------------------------------------------------------------------
    def split(self, color: int, key: int | None = None) -> "Communicator":
        """Partition into sub-communicators by ``color`` (MPI_Comm_split).

        Ranks sharing a color form a new communicator ordered by
        ``key`` (default: current local rank). Used by the process grid
        for row/column communicators.
        """
        key = self.rank if key is None else key
        self._split_counter += 1
        members = self.allgather((color, key, self.group[self.rank]))
        same = sorted(
            (k, g) for c, k, g in members if c == color
        )
        group = [g for _k, g in same]
        return Communicator(
            self.fabric,
            self.global_rank,
            self.stats,
            group=group,
            comm_id=(self.comm_id, "split", self._split_counter, color),
        )

    # ------------------------------------------------------------------
    # Internal tree algorithms
    # ------------------------------------------------------------------
    def _binomial_bcast(self, payload: Any, root: int, op: Any) -> Any:
        """Binomial-tree broadcast relative to ``root``."""
        vrank = (self.rank - root) % self.size
        mask = 1
        # Receive phase: find the bit at which we get the payload.
        while mask < self.size:
            if vrank & mask:
                src = ((vrank ^ mask) + root) % self.size
                payload = self._recv_raw(src, ("bc", op, mask))
                break
            mask <<= 1
        # Send phase: forward to the subtrees below our receive bit.
        mask >>= 1
        while mask > 0:
            if vrank + mask < self.size:
                dst = ((vrank + mask) + root) % self.size
                self._send_raw(payload, dst, ("bc", op, mask))
            mask >>= 1
        return payload

    def _binomial_reduce(
        self, payload: Any, root: int, op_fn: Callable[[Any, Any], Any], op: Any
    ) -> Any:
        """Binomial-tree reduction relative to ``root``."""
        vrank = (self.rank - root) % self.size
        mask = 1
        acc = payload
        while mask < self.size:
            if vrank & mask:
                dst = ((vrank ^ mask) + root) % self.size
                self._send_raw(acc, dst, ("rd", op, mask))
                break
            partner = vrank | mask
            if partner < self.size:
                src = (partner + root) % self.size
                incoming = self._recv_raw(src, ("rd", op, mask))
                acc = op_fn(acc, incoming)
            mask <<= 1
        return acc if vrank == 0 else None
