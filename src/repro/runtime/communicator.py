"""MPI-flavoured communicator over the in-process fabric.

The API mirrors the mpi4py subset the paper's implementation uses
(point-to-point plus ``bcast``/``reduce``/``allreduce``/``allgather``/
``alltoall``/``reduce_scatter``/``scatter``/``gather``/``split``), and
the collectives are implemented with *real distribution algorithms* —
binomial trees and rings — on top of point-to-point sends. This matters
for fidelity: the per-rank byte counts recorded by
:class:`~repro.runtime.stats.CommStats` then match what a production
MPI library would put on the wire, so the measured communication
volumes line up with the Section-7 analysis (e.g. broadcasting ``W``
costs ``O(k^2)`` words over ``O(log p)`` supersteps).

Tag discipline: SPMD code executes the same communicator calls in the
same order on every rank, so a per-communicator operation counter
namespaces each collective; user point-to-point tags live in a separate
namespace and cannot collide with collectives.

Non-blocking collectives
------------------------
Every collective body is written once, as a *generator* that performs
its sends eagerly and ``yield``s ``(src, tag)`` whenever it needs a
message. The blocking API runs the generator to completion on the
spot; the ``i``-prefixed variants (:meth:`Communicator.ibcast`,
:meth:`Communicator.ireduce`, :meth:`Communicator.iallreduce`,
:meth:`Communicator.iallgather`) start the generator, advance it as far
as arrived messages allow, and return a :class:`CollectiveHandle` to
finish later — so the traffic (bytes, message count, phase attribution)
is identical by construction whether or not the caller overlaps.

Deadlock safety is by *ordered completion*: every rank initiates
collectives in the same SPMD program order, and a per-rank engine
completes outstanding handles in that same initiation order (waiting
handle *k* first drains handles *1..k-1*). Since a tree collective only
blocks on messages produced by peers executing the *same or earlier*
operations, rank-consistent completion order admits no cycle. The
engine is shared across communicators split from the same world, so
the guarantee spans row/column/world collectives of the process grid.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Generator, Sequence

import numpy as np

from repro.runtime.fabric import (
    ABORT_MESSAGE,
    Fabric,
    FabricTimeoutError,
    SendHandle,
    format_timeout,
)
from repro.runtime.stats import CommStats

__all__ = ["Communicator", "CollectiveHandle", "RecvFuture"]

_REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "max": np.maximum,
    "min": np.minimum,
}

#: Seconds between engine progress sweeps while a blocking receive
#: waits with asynchronous collectives outstanding. Bounded so a
#: message relayed by one of *our* outstanding ops cannot stall a peer
#: longer than this.
_PROGRESS_POLL_S = 0.02


def _payload_bytes(payload: Any) -> int:
    """Estimate the wire size of a payload."""
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (list, tuple)):
        return sum(_payload_bytes(item) for item in payload)
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if payload is None:
        return 0
    # Fallback for small control messages (metadata tuples etc.).
    return 64


def _copy(payload: Any) -> Any:
    """Detach a payload from the sender's buffers (models a transfer)."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return payload


class CollectiveHandle:
    """Completion handle of a non-blocking collective.

    ``wait()`` blocks until the collective finishes and returns its
    result (repeating ``wait`` returns the cached result); ``test()``
    makes as much progress as arrived messages allow and reports
    completion without blocking. Handles must ultimately be waited in
    *initiation order* across ranks — the engine enforces this by
    draining earlier outstanding handles first.
    """

    __slots__ = ("_comm", "_gen", "_phase", "_want", "_started", "_done",
                 "_result")

    def __init__(self, comm: "Communicator",
                 gen: Generator[tuple[int, Any], Any, Any],
                 phase: str) -> None:
        self._comm = comm
        self._gen = gen
        self._phase = phase
        self._want: tuple[int, Any] | None = None
        self._started = False
        self._done = False
        self._result: Any = None

    @property
    def done(self) -> bool:
        return self._done

    def test(self) -> bool:
        """Advance with whatever has arrived; never blocks."""
        return self._comm._engine.progress(self)

    def wait(self) -> Any:
        """Complete this collective (draining earlier handles first)."""
        return self._comm._engine.complete(self)

    # -- generator stepping (engine internals) --------------------------
    def _advance(self, blocking: bool) -> bool:
        """Run the generator until done or a message is unavailable.

        Traffic and wait time produced while stepping is attributed to
        the phase captured at initiation, so synchronous and overlapped
        executions agree on ``by_phase`` exactly.
        """
        if self._done:
            return True
        stats = self._comm.stats
        saved = stats.phase
        stats.set_phase(self._phase)
        try:
            if not self._started:
                self._started = True
                try:
                    self._want = next(self._gen)
                except StopIteration as stop:
                    self._finish(stop.value)
                    return True
            while True:
                src, tag = self._want
                if blocking:
                    payload = self._comm._fabric_get(src, tag)
                else:
                    ok, payload = self._comm._try_recv(src, tag)
                    if not ok:
                        return False
                try:
                    self._want = self._gen.send(payload)
                except StopIteration as stop:
                    self._finish(stop.value)
                    return True
        finally:
            stats.set_phase(saved)

    def _finish(self, value: Any) -> None:
        self._result = value
        self._done = True
        self._gen = None


class _AsyncEngine:
    """Per-rank registry of outstanding collectives, in initiation order.

    One engine is shared by a world communicator and everything split
    from it, so the ordered-completion rule covers the interleaved
    row/column/world collectives of a process grid.
    """

    __slots__ = ("outstanding",)

    def __init__(self) -> None:
        self.outstanding: deque[CollectiveHandle] = deque()

    def start(self, handle: CollectiveHandle) -> CollectiveHandle:
        self.outstanding.append(handle)
        # Eager pass: performs the generator's initial sends (roots and
        # ring/tree leaves transmit immediately) and consumes anything
        # already delivered.
        self.progress(handle)
        return handle

    def progress(self, handle: CollectiveHandle) -> bool:
        done = handle._advance(blocking=False)
        if done:
            try:
                self.outstanding.remove(handle)
            except ValueError:
                pass
        return done

    def progress_all(self) -> None:
        """Opportunistically advance every outstanding collective."""
        for handle in list(self.outstanding):
            self.progress(handle)

    def complete(self, handle: CollectiveHandle) -> Any:
        """Blocking-finish ``handle``, earlier outstanding handles first."""
        while not handle._done:
            head = self.outstanding[0] if self.outstanding else handle
            head._advance(blocking=True)
            if head._done and self.outstanding and self.outstanding[0] is head:
                self.outstanding.popleft()
            elif head._done:
                try:
                    self.outstanding.remove(head)
                except ValueError:
                    pass
        return handle._result

    def drain(self) -> None:
        """Complete every outstanding collective, oldest first."""
        while self.outstanding:
            self.complete(self.outstanding[0])


class RecvFuture:
    """Completion handle of a communicator-level non-blocking receive.

    Unlike the raw fabric handle, waiting on this future keeps the
    rank's outstanding asynchronous collectives progressing, so a
    point-to-point receive can never starve a collective a peer is
    blocked inside — and blocked time is charged to
    :attr:`CommStats.wait_s`.
    """

    __slots__ = ("_comm", "_src", "_tag", "_done", "_value")

    def __init__(self, comm: "Communicator", src: int, tag: Any) -> None:
        self._comm = comm
        self._src = src
        self._tag = tag
        self._done = False
        self._value: Any = None

    @property
    def done(self) -> bool:
        return self._done

    def test(self) -> bool:
        if self._done:
            return True
        ok, value = self._comm._try_recv(self._src, self._tag)
        if ok:
            self._value = value
            self._done = True
        return self._done

    def wait(self) -> Any:
        if not self._done:
            self._value = self._comm._recv_raw(self._src, self._tag)
            self._done = True
        return self._value


class Communicator:
    """One rank's endpoint of a (sub-)communicator.

    Parameters
    ----------
    fabric:
        The shared message fabric.
    rank:
        This rank's *global* id on the fabric.
    stats:
        This rank's traffic counters.
    group:
        Global ranks forming this communicator, in local-rank order.
        ``None`` means the world communicator.
    comm_id:
        Hashable namespace distinguishing this communicator's traffic.
    engine:
        The per-rank async-collective engine. Split communicators share
        their parent's engine so ordered completion spans them.
    """

    def __init__(
        self,
        fabric: Fabric,
        rank: int,
        stats: CommStats,
        group: Sequence[int] | None = None,
        comm_id: Any = "world",
        engine: _AsyncEngine | None = None,
    ) -> None:
        self.fabric = fabric
        self.global_rank = rank
        self.stats = stats
        self.group = list(group) if group is not None else list(range(fabric.size))
        if rank not in self.group:
            raise ValueError("rank is not a member of the communicator group")
        self.rank = self.group.index(rank)
        self.size = len(self.group)
        self.comm_id = comm_id
        self._op_counter = 0
        self._split_counter = 0
        self._engine = engine if engine is not None else _AsyncEngine()

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, payload: Any, dst: int, tag: Any = 0) -> None:
        """Send ``payload`` to local rank ``dst`` (records traffic)."""
        self._send_raw(payload, dst, ("user", tag))

    def recv(self, src: int, tag: Any = 0) -> Any:
        """Blocking receive from local rank ``src``."""
        return self._recv_raw(src, ("user", tag))

    def isend(self, payload: Any, dst: int, tag: Any = 0) -> SendHandle:
        """Non-blocking send. Sends are buffered, so the handle is
        born complete; traffic accounting is identical to :meth:`send`."""
        self._send_raw(payload, dst, ("user", tag))
        return SendHandle()

    def irecv(self, src: int, tag: Any = 0) -> RecvFuture:
        """Post a non-blocking receive; returns a :class:`RecvFuture`."""
        if not 0 <= src < self.size:
            raise ValueError(f"source {src} outside communicator")
        return RecvFuture(self, src, ("user", tag))

    def _send_raw(self, payload: Any, dst: int, tag: Any) -> None:
        if not 0 <= dst < self.size:
            raise ValueError(f"destination {dst} outside communicator")
        self.stats.record_send(_payload_bytes(payload))
        self.fabric.put(
            self.group[self.rank],
            self.group[dst],
            (self.comm_id, tag),
            _copy(payload),
        )

    def _recv_raw(self, src: int, tag: Any) -> Any:
        """Blocking receive that keeps outstanding collectives moving."""
        if not 0 <= src < self.size:
            raise ValueError(f"source {src} outside communicator")
        gsrc = self.group[src]
        gdst = self.group[self.rank]
        key = (self.comm_id, tag)
        started = time.perf_counter()
        try:
            if not self._engine.outstanding:
                return self.fabric.get(gsrc, gdst, key)
            deadline = time.monotonic() + self.fabric.timeout
            while True:
                if self.fabric.aborted:
                    raise FabricTimeoutError(ABORT_MESSAGE)
                ok, payload = self.fabric.try_get(gsrc, gdst, key)
                if ok:
                    return payload
                # A peer may be blocked inside a collective that needs
                # one of *our* outstanding ops to relay — keep them all
                # moving while we wait.
                self._engine.progress_all()
                ok, payload = self.fabric.try_get(gsrc, gdst, key)
                if ok:
                    return payload
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.fabric._trip_abort()
                    raise FabricTimeoutError(
                        format_timeout(gsrc, gdst, key, self.fabric.timeout,
                                       self.fabric.pending_counts())
                    )
                self.fabric.poll(gsrc, gdst, key,
                                 min(remaining, _PROGRESS_POLL_S))
        finally:
            self.stats.record_wait(time.perf_counter() - started)

    def _fabric_get(self, src: int, tag: Any) -> Any:
        """Plain blocking fabric receive with wait-time accounting."""
        started = time.perf_counter()
        try:
            return self.fabric.get(
                self.group[src], self.group[self.rank], (self.comm_id, tag)
            )
        finally:
            self.stats.record_wait(time.perf_counter() - started)

    def _try_recv(self, src: int, tag: Any) -> tuple[bool, Any]:
        if self.fabric.aborted:
            raise FabricTimeoutError(ABORT_MESSAGE)
        return self.fabric.try_get(
            self.group[src], self.group[self.rank], (self.comm_id, tag)
        )

    def _next_op(self) -> int:
        self._op_counter += 1
        return self._op_counter

    # ------------------------------------------------------------------
    # Collective execution (blocking = start + complete immediately)
    # ------------------------------------------------------------------
    def _run(self, gen: Generator[tuple[int, Any], Any, Any]) -> Any:
        return self._start(gen).wait()

    def _start(self, gen: Generator[tuple[int, Any], Any, Any]
               ) -> CollectiveHandle:
        handle = CollectiveHandle(self, gen, self.stats.phase)
        return self._engine.start(handle)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronise the communicator (tree gather + broadcast of tokens)."""
        op = ("barrier", self._next_op())

        def gen():
            token = yield from self._binomial_reduce_gen(
                0, 0, lambda a, b: 0, op
            )
            yield from self._binomial_bcast_gen(token, 0, op)

        self._run(gen())

    #: Payloads at least this large (bytes) use the van de Geijn
    #: scatter+allgather broadcast instead of the binomial tree.
    LARGE_BCAST_BYTES = 1 << 15

    def bcast(self, payload: Any, root: int = 0,
              algorithm: str | None = None) -> Any:
        """Broadcast; returns the payload on every rank.

        Two algorithms, mirroring production MPI libraries:

        ``"binomial"``
            Latency-optimal tree: ``O(log p)`` steps, but the root (and
            inner nodes) send up to ``log p`` full copies.
        ``"scatter_allgather"``
            Bandwidth-optimal (van de Geijn): the root scatters ``p``
            chunks, then a ring allgather reassembles them — per-rank
            volume ``≈ 2m(p-1)/p`` regardless of p, which is what the
            Section-7.1 analysis assumes for the feature-block
            broadcasts.

        ``algorithm=None`` selects by payload *and communicator* size
        (large arrays on wide communicators take the bandwidth-optimal
        path), as real MPI does — on narrow communicators the ring's
        extra message latency outweighs the volume saving.
        """
        return self._run(self._bcast_gen(payload, root, algorithm))

    def ibcast(self, payload: Any, root: int = 0,
               algorithm: str | None = None) -> CollectiveHandle:
        """Non-blocking :meth:`bcast`; complete via the returned handle."""
        return self._start(self._bcast_gen(payload, root, algorithm))

    def _bcast_gen(self, payload: Any, root: int,
                   algorithm: str | None) -> Generator:
        op = ("bcast", self._next_op())
        if algorithm is None:
            is_large = (
                self.size >= 8
                and isinstance(payload, np.ndarray)
                and payload.nbytes >= self.LARGE_BCAST_BYTES
            )
            # Every rank must agree on the algorithm; only the root has
            # the payload, so agreement rides a tiny metadata broadcast.
            flag = yield from self._binomial_bcast_gen(
                is_large if self.rank == root else None, root,
                ("bcast_meta", op),
            )
            algorithm = "scatter_allgather" if flag else "binomial"
        if algorithm == "binomial" or self.size == 1:
            result = yield from self._binomial_bcast_gen(
                payload if self.rank == root else None, root, op
            )
            return result
        if algorithm != "scatter_allgather":
            raise ValueError(f"unknown bcast algorithm {algorithm!r}")
        result = yield from self._scatter_allgather_bcast_gen(
            payload, root, op
        )
        return result

    def _scatter_allgather_bcast_gen(self, payload: Any, root: int,
                                     op: Any) -> Generator:
        """Van de Geijn broadcast for large array payloads.

        The embedded scatter and allgather draw their tags from the
        parent operation (not the op counter), so a deferred broadcast
        consumes exactly one counter increment on every rank no matter
        when each rank learns which algorithm was chosen.
        """
        if self.rank == root:
            arr = np.ascontiguousarray(payload)
            meta = (arr.shape, arr.dtype.str)
        else:
            meta = None
        meta = yield from self._binomial_bcast_gen(meta, root, ("sag_meta", op))
        shape, dtype = meta
        if self.rank == root:
            flat = arr.reshape(-1)
            bounds = np.linspace(0, flat.size, self.size + 1).astype(int)
            chunks = [flat[bounds[i]:bounds[i + 1]] for i in range(self.size)]
        else:
            chunks = None
        mine = yield from self._scatter_gen(chunks, root, ("sag_scatter", op))
        gathered = yield from self._allgather_gen(mine, ("sag_allgather", op))
        return np.concatenate(gathered).reshape(shape).astype(dtype, copy=False)

    def reduce(self, payload: Any, root: int = 0, op: str = "sum") -> Any:
        """Binomial-tree reduction to ``root`` (others return ``None``)."""
        return self._run(self._reduce_gen(payload, root, op))

    def ireduce(self, payload: Any, root: int = 0,
                op: str = "sum") -> CollectiveHandle:
        """Non-blocking :meth:`reduce`."""
        return self._start(self._reduce_gen(payload, root, op))

    def _reduce_gen(self, payload: Any, root: int, op: str) -> Generator:
        tag = ("reduce", self._next_op())
        result = yield from self._binomial_reduce_gen(
            payload, root, _REDUCE_OPS[op], tag
        )
        return result if self.rank == root else None

    def allreduce(self, payload: Any, op: str = "sum") -> Any:
        """Reduce-to-root followed by broadcast (``2 log p`` supersteps)."""
        return self._run(self._allreduce_gen(payload, op))

    def iallreduce(self, payload: Any, op: str = "sum") -> CollectiveHandle:
        """Non-blocking :meth:`allreduce`."""
        return self._start(self._allreduce_gen(payload, op))

    def _allreduce_gen(self, payload: Any, op: str) -> Generator:
        tag = ("allreduce", self._next_op())
        reduced = yield from self._binomial_reduce_gen(
            payload, 0, _REDUCE_OPS[op], tag
        )
        result = yield from self._binomial_bcast_gen(
            reduced if self.rank == 0 else None, 0, tag
        )
        return result

    def allgather(self, payload: Any) -> list[Any]:
        """Ring allgather: ``p - 1`` steps, each forwarding one block.

        Per-rank volume is ``(p - 1) * blocksize`` — the bandwidth-
        optimal algorithm, matching the cost the Section-7 analysis
        assigns to feature-block replication.
        """
        return self._run(
            self._allgather_gen(payload, ("allgather", self._next_op()))
        )

    def iallgather(self, payload: Any) -> CollectiveHandle:
        """Non-blocking :meth:`allgather` (pipelined ring)."""
        return self._start(
            self._allgather_gen(payload, ("allgather", self._next_op()))
        )

    def _allgather_gen(self, payload: Any, base: Any) -> Generator:
        blocks: list[Any] = [None] * self.size
        blocks[self.rank] = payload
        current = payload
        right = (self.rank + 1) % self.size
        left = (self.rank - 1) % self.size
        for step in range(self.size - 1):
            tag = (base, step)
            self._send_raw(current, right, tag)
            current = yield (left, tag)
            blocks[(self.rank - step - 1) % self.size] = current
        return blocks

    def alltoall(self, payloads: Sequence[Any]) -> list[Any]:
        """Personalised all-to-all: direct sends (``p - 1`` messages)."""
        if len(payloads) != self.size:
            raise ValueError("alltoall needs one payload per rank")
        return self._run(self._alltoall_gen(payloads))

    def _alltoall_gen(self, payloads: Sequence[Any]) -> Generator:
        op = self._next_op()
        received: list[Any] = [None] * self.size
        received[self.rank] = payloads[self.rank]
        for offset in range(1, self.size):
            dst = (self.rank + offset) % self.size
            src = (self.rank - offset) % self.size
            tag = ("alltoall", op, offset)
            self._send_raw(payloads[dst], dst, tag)
            received[src] = yield (src, tag)
        return received

    def reduce_scatter(self, blocks: Sequence[np.ndarray],
                       op: str = "sum") -> Any:
        """Ring reduce-scatter over per-rank blocks.

        Each rank contributes ``p`` blocks and receives the fully
        reduced block of its own index; per-rank volume is
        ``(p - 1) * blocksize``. This is the primitive behind summing
        the 1.5D algorithm's partial output blocks (Section 6.3).
        """
        return self._run(self._reduce_scatter_gen(blocks, op))

    def ireduce_scatter(self, blocks: Sequence[np.ndarray],
                        op: str = "sum") -> CollectiveHandle:
        """Non-blocking :meth:`reduce_scatter`."""
        return self._start(self._reduce_scatter_gen(blocks, op))

    def _reduce_scatter_gen(self, blocks: Sequence[np.ndarray],
                            op: str) -> Generator:
        if len(blocks) != self.size:
            raise ValueError("reduce_scatter needs one block per rank")
        op_fn = _REDUCE_OPS[op]
        op_id = self._next_op()
        right = (self.rank + 1) % self.size
        left = (self.rank - 1) % self.size
        # Start by sending the block owned by our left neighbour's chain.
        current = blocks[(self.rank + 1) % self.size]
        for step in range(self.size - 1):
            tag = ("reduce_scatter", op_id, step)
            self._send_raw(current, left, tag)
            incoming = yield (right, tag)
            target = (self.rank + step + 2) % self.size
            if step == self.size - 2:
                return op_fn(incoming, blocks[self.rank])
            current = op_fn(incoming, blocks[target])
        # size == 1: nothing to exchange.
        return blocks[self.rank]

    def gather(self, payload: Any, root: int = 0) -> list[Any] | None:
        """Gather payloads at ``root`` (direct sends)."""
        return self._run(
            self._gather_gen(payload, root, ("gather", self._next_op()))
        )

    def _gather_gen(self, payload: Any, root: int, tag: Any) -> Generator:
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = payload
            for src in range(self.size):
                if src != root:
                    out[src] = yield (src, tag)
            return out
        self._send_raw(payload, root, tag)
        return None

    def scatter(self, payloads: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one payload per rank from ``root``."""
        return self._run(
            self._scatter_gen(payloads, root, ("scatter", self._next_op()))
        )

    def _scatter_gen(self, payloads: Sequence[Any] | None, root: int,
                     tag: Any) -> Generator:
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise ValueError("root must supply one payload per rank")
            for dst in range(self.size):
                if dst != root:
                    self._send_raw(payloads[dst], dst, tag)
            return payloads[root]
        result = yield (root, tag)
        return result

    # ------------------------------------------------------------------
    # Communicator management
    # ------------------------------------------------------------------
    def split(self, color: int, key: int | None = None) -> "Communicator":
        """Partition into sub-communicators by ``color`` (MPI_Comm_split).

        Ranks sharing a color form a new communicator ordered by
        ``key`` (default: current local rank). Used by the process grid
        for row/column communicators. The child shares this rank's
        async engine, so ordered completion spans parent and child
        collectives.
        """
        key = self.rank if key is None else key
        self._split_counter += 1
        members = self.allgather((color, key, self.group[self.rank]))
        same = sorted(
            (k, g) for c, k, g in members if c == color
        )
        group = [g for _k, g in same]
        return Communicator(
            self.fabric,
            self.global_rank,
            self.stats,
            group=group,
            comm_id=(self.comm_id, "split", self._split_counter, color),
            engine=self._engine,
        )

    # ------------------------------------------------------------------
    # Internal tree algorithms (generator bodies)
    # ------------------------------------------------------------------
    def _binomial_bcast_gen(self, payload: Any, root: int,
                            op: Any) -> Generator:
        """Binomial-tree broadcast relative to ``root``.

        The root's sends are performed eagerly at initiation; inner
        nodes forward as soon as their subtree payload arrives.
        """
        vrank = (self.rank - root) % self.size
        mask = 1
        # Receive phase: find the bit at which we get the payload.
        while mask < self.size:
            if vrank & mask:
                src = ((vrank ^ mask) + root) % self.size
                payload = yield (src, ("bc", op, mask))
                break
            mask <<= 1
        # Send phase: forward to the subtrees below our receive bit.
        mask >>= 1
        while mask > 0:
            if vrank + mask < self.size:
                dst = ((vrank + mask) + root) % self.size
                self._send_raw(payload, dst, ("bc", op, mask))
            mask >>= 1
        return payload

    def _binomial_reduce_gen(
        self, payload: Any, root: int,
        op_fn: Callable[[Any, Any], Any], op: Any
    ) -> Generator:
        """Binomial-tree reduction relative to ``root``.

        Leaves send eagerly at initiation; inner nodes accumulate their
        children's contributions as they arrive, then forward upward.
        """
        vrank = (self.rank - root) % self.size
        mask = 1
        acc = payload
        while mask < self.size:
            if vrank & mask:
                dst = ((vrank ^ mask) + root) % self.size
                self._send_raw(acc, dst, ("rd", op, mask))
                break
            partner = vrank | mask
            if partner < self.size:
                src = (partner + root) % self.size
                incoming = yield (src, ("rd", op, mask))
                acc = op_fn(acc, incoming)
            mask <<= 1
        return acc if vrank == 0 else None
