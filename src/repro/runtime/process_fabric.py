"""Process-parallel message fabric: spawned ranks, shared-memory transfer.

The thread fabric simulates ranks faithfully but the GIL serialises all
pure-Python compute, so wall-clock never scales with ``p``. This module
provides the second :class:`~repro.runtime.fabric.FabricBase` backend:
each rank is a *spawned* process, large NumPy payloads travel through
POSIX shared memory (one segment per message, unlinked by the
receiver), and small payloads plus control flow ride multiprocessing
queues. The :class:`~repro.runtime.communicator.Communicator` and its
byte accounting run unchanged on top — collective algorithms, tag
discipline and :class:`~repro.runtime.stats.CommStats` are transport-
independent, so the recorded traffic is bit-identical to the thread
backend.

Robustness contract (what the thread fabric never needed):

* a child that raises reports ``(rank, repr, traceback)`` to the driver
  over a dedicated pipe and trips the shared abort event, so every
  other rank unblocks instead of hanging;
* a child that *dies* (killed, segfault) is detected through its pipe's
  EOF plus the process sentinel and surfaces as a driver-side error
  naming the rank and exit code;
* blocked receives give up after the fabric timeout with a report
  naming the blocked ``(src, dst, tag)`` and the undelivered mailboxes;
* shared-memory segments are reference-tracked end to end: receivers
  unlink after copying out, both sides drain their inboxes on exit, and
  the driver sweeps the run's name prefix as a last resort — no run
  leaks segments, even when aborted.

Spawn start method only: fork would inherit arbitrary parent state
(thread locks, BLAS pools) and is unsafe in threaded test runners. The
price is that the rank function and its kwargs must be picklable —
module-level functions, not closures (see
:func:`repro.runtime.executor.run_spmd`).
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import pickle
import queue as queue_mod
import secrets
import threading
import time
import traceback
from collections import defaultdict, deque
from multiprocessing import resource_tracker, shared_memory
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Hashable

import numpy as np

from repro.runtime.fabric import FabricBase, FabricTimeoutError

__all__ = ["ProcessFabric", "ProcessBackendError", "run_process_spmd"]

#: Arrays at least this large (bytes) travel via SharedMemory; smaller
#: payloads are pickled straight through the queue (one syscall beats a
#: segment create/attach/unlink round-trip for small messages).
SHM_THRESHOLD = 1 << 16

#: Prefix of every shared-memory segment created by this fabric; the
#: driver sweeps ``/dev/shm/<prefix>*`` of its own run token on exit.
SHM_PREFIX = "reprofab"

#: Poll interval for abort-event checks while blocked on a queue.
_POLL_S = 0.05

#: Extra driver-side seconds on top of the fabric timeout, covering
#: interpreter start-up and module imports in spawned children.
_SPAWN_GRACE_S = 60.0

_ABORT_MESSAGE = "fabric aborted by another rank"


class ProcessBackendError(RuntimeError):
    """The rank program cannot run on the process backend."""


class _ShmRef:
    """Handle to an array parked in a shared-memory segment."""

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape: tuple[int, ...], dtype: str) -> None:
        self.name = name
        self.shape = shape
        self.dtype = dtype

    def __getstate__(self):
        return (self.name, self.shape, self.dtype)

    def __setstate__(self, state):
        self.name, self.shape, self.dtype = state


def _untrack(raw_name: str) -> None:
    """Drop a segment from this process's resource tracker.

    The sender hands ownership to the receiver (who unlinks after
    copying out); without this, the sender's tracker would try to
    unlink the same name again at interpreter exit and log warnings.
    """
    try:
        resource_tracker.unregister(raw_name, "shared_memory")
    except Exception:  # pragma: no cover - tracker is an implementation detail
        pass


def _encode(payload: Any, namer: Callable[[], str]) -> Any:
    """Recursively park large arrays in shared memory.

    Returns a queue-safe structure mirroring ``payload`` with big
    ndarrays replaced by :class:`_ShmRef`.
    """
    if isinstance(payload, np.ndarray):
        if payload.nbytes >= SHM_THRESHOLD and not payload.dtype.hasobject:
            arr = np.ascontiguousarray(payload)
            shm = shared_memory.SharedMemory(
                create=True, size=arr.nbytes, name=namer()
            )
            np.ndarray(arr.shape, arr.dtype, buffer=shm.buf)[...] = arr
            shm.close()
            _untrack(shm._name)
            return _ShmRef(shm.name, arr.shape, arr.dtype.str)
        return payload
    if isinstance(payload, (list, tuple)):
        return type(payload)(_encode(item, namer) for item in payload)
    return payload


def _decode(payload: Any) -> Any:
    """Materialise an encoded payload, unlinking consumed segments."""
    if isinstance(payload, _ShmRef):
        shm = shared_memory.SharedMemory(name=payload.name)
        try:
            view = np.ndarray(
                payload.shape, dtype=np.dtype(payload.dtype), buffer=shm.buf
            )
            return view.copy()
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already swept
                pass
    if isinstance(payload, (list, tuple)):
        return type(payload)(_decode(item) for item in payload)
    return payload


def _release(payload: Any) -> None:
    """Unlink every segment referenced by an undelivered payload."""
    if isinstance(payload, _ShmRef):
        try:
            shm = shared_memory.SharedMemory(name=payload.name)
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass
    elif isinstance(payload, (list, tuple)):
        for item in payload:
            _release(item)


class ProcessFabric(FabricBase):
    """One rank's endpoint of the multiprocessing fabric.

    Each rank owns one inbound queue; ``put`` deposits into the
    destination's queue. A background *drainer* thread (started lazily
    on the first receive) moves arrivals from the queue into local
    per-``(src, tag)`` mailboxes under a condition variable, so
    blocking receives, non-blocking probes and completion handles all
    see one consistent mailbox view — and a message posted while the
    rank is busy computing is already local when it finally asks for
    it. Per-key FIFO order holds because each (src, dst) pair has a
    single producer, multiprocessing queues preserve per-producer
    order, and the single drainer preserves queue order into the
    mailboxes.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        queues: list,
        barrier,
        abort_event,
        timeout: float,
        shm_token: str,
    ) -> None:
        super().__init__(size, timeout=timeout)
        self.rank = rank
        self._queues = queues
        self._barrier = barrier
        self._abort = abort_event
        self._pending: dict[tuple[int, Hashable], deque] = defaultdict(deque)
        self._shm_token = shm_token
        self._shm_seq = 0
        self._cond = threading.Condition()
        self._drainer: threading.Thread | None = None
        self._drainer_stop = threading.Event()

    # ------------------------------------------------------------------
    def _next_shm_name(self) -> str:
        self._shm_seq += 1
        return f"{self._shm_token}r{self.rank}n{self._shm_seq}"

    def put(self, src: int, dst: int, tag: Hashable, payload: Any) -> None:
        self._check_ranks(src, dst)
        if src != self.rank:
            raise ValueError(
                f"rank {self.rank} cannot send on behalf of rank {src}"
            )
        encoded = _encode(payload, self._next_shm_name)
        self._queues[dst].put((src, tag, encoded))

    # -- background drain ----------------------------------------------
    def _ensure_drainer(self) -> None:
        if self._drainer is None or not self._drainer.is_alive():
            if self._drainer_stop.is_set():  # drained and shut down
                return
            self._drainer = threading.Thread(
                target=self._drain_loop,
                name=f"fabric-drain-r{self.rank}",
                daemon=True,
            )
            self._drainer.start()

    def _drain_loop(self) -> None:
        """Move inbound queue traffic into the mailboxes until stopped."""
        inbox = self._queues[self.rank]
        while not self._drainer_stop.is_set():
            try:
                src_got, tag_got, encoded = inbox.get(timeout=_POLL_S)
            except queue_mod.Empty:
                continue
            except (OSError, ValueError):  # pragma: no cover - queue closed
                break
            with self._cond:
                self._pending[(src_got, tag_got)].append(encoded)
                self._cond.notify_all()

    def _stop_drainer(self) -> None:
        self._drainer_stop.set()
        if self._drainer is not None and self._drainer.is_alive():
            self._drainer.join(timeout=5.0)

    # -- mailbox primitives --------------------------------------------
    def try_get(self, src: int, dst: int, tag: Hashable) -> tuple[bool, Any]:
        self._check_ranks(src, dst)
        if dst != self.rank:
            raise ValueError(
                f"rank {self.rank} cannot receive on behalf of rank {dst}"
            )
        self._ensure_drainer()
        with self._cond:
            box = self._pending.get((src, tag))
            if not box:
                return False, None
            encoded = box.popleft()
        # Decode (shared-memory attach + copy + unlink) outside the lock.
        return True, _decode(encoded)

    def poll(self, src: int, dst: int, tag: Hashable,
             timeout: float) -> None:
        self._ensure_drainer()
        with self._cond:
            box = self._pending.get((src, tag))
            if box or self._abort.is_set():
                return
            # Cap the sleep: the abort event is a cross-process flag and
            # does not notify this rank's local condition variable.
            self._cond.wait(timeout=min(timeout, _POLL_S))

    def pending_counts(self) -> dict[tuple[int, int, Hashable], int]:
        with self._cond:
            return {
                (s, self.rank, t): len(d)
                for (s, t), d in self._pending.items()
                if d
            }

    @property
    def aborted(self) -> bool:
        return self._abort.is_set()

    def _trip_abort(self) -> None:
        self._abort.set()
        with self._cond:
            self._cond.notify_all()

    def abort(self) -> None:
        self._abort.set()
        self._barrier.abort()
        with self._cond:
            self._cond.notify_all()

    def barrier(self) -> None:
        try:
            self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            raise FabricTimeoutError(
                "barrier broken (a rank aborted or timed out)"
            ) from None

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Release segments of every undelivered inbound message.

        Stops the background drainer first so this rank is the sole
        consumer of its queue during cleanup.
        """
        self._stop_drainer()
        while True:
            try:
                _src, _tag, encoded = self._queues[self.rank].get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                break
            _release(encoded)
        with self._cond:
            boxes = list(self._pending.values())
        for box in boxes:
            while box:
                _release(box.popleft())


# ----------------------------------------------------------------------
# Child process entry point
# ----------------------------------------------------------------------
def _child_main(
    rank: int,
    size: int,
    queues: list,
    conn,
    barrier,
    abort_event,
    timeout: float,
    trace: bool,
    shm_token: str,
    fn_bytes: bytes,
) -> None:
    """Run one rank program and report the outcome to the driver."""
    from repro.obs.tracer import (
        Tracer,
        install_global_tracer,
        trace_enabled_default,
    )
    from repro.runtime.communicator import Communicator
    from repro.runtime.stats import CommStats
    from repro.util.counters import event_counter

    fabric = ProcessFabric(
        rank, size, queues, barrier, abort_event, timeout, shm_token
    )
    stats = CommStats(rank, trace=trace)
    comm = Communicator(fabric, rank, stats)
    try:
        # Spawned children inherit the driver's environment, so the
        # $REPRO_TRACE gate resolves identically here. The child is
        # single-threaded: installing process-globally is enough, and
        # the tracer rides home pickled on this rank's CommStats.
        if trace_enabled_default():
            rank_tracer = Tracer(rank=rank)
            stats.tracer = rank_tracer
            install_global_tracer(rank_tracer)
        fn, kwargs = pickle.loads(fn_bytes)
        start = time.perf_counter()
        if stats.tracer is not None:
            with stats.tracer.span("rank.program", counter=stats.flops):
                value = fn(comm, **kwargs)
        else:
            value = fn(comm, **kwargs)
        stats.wall_s = time.perf_counter() - start
        # The child's process-global EventCounter is invisible to the
        # driver; ship a snapshot so structure-cache hit/miss counts
        # merge into the driver's counter (parity with threads).
        outcome = ("ok", value, stats, event_counter().snapshot())
    except BaseException as exc:  # noqa: BLE001 - reported to the driver
        abort_event.set()
        is_timeout = isinstance(exc, FabricTimeoutError)
        is_echo = is_timeout and str(exc) == _ABORT_MESSAGE
        outcome = (
            "error", repr(exc), traceback.format_exc(), is_timeout, is_echo
        )
    finally:
        fabric.drain()
    try:
        conn.send(outcome)
    except (BrokenPipeError, OSError):  # pragma: no cover - driver gone
        pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _pick_primary(errors: dict[int, tuple]) -> tuple[int, tuple]:
    """Root-cause heuristic matching the thread executor.

    Prefer a rank that failed on its own over one unblocked by the
    abort, and a genuine deadlock report over an abort echo; break ties
    by rank so reports are deterministic.
    """

    def badness(item):
        rank, err = item
        if err[0] == "died":
            return (0, rank)
        _kind, _repr, _tb, is_timeout, is_echo = err
        return (0 if not is_timeout else 2 if is_echo else 1, rank)

    return min(errors.items(), key=badness)


def _sweep_segments(shm_token: str) -> int:
    """Unlink any leftover segments of this run (crash-path backstop)."""
    swept = 0
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX hosts
        return 0
    for path in glob.glob(os.path.join(shm_dir, f"{shm_token}*")):
        try:
            os.unlink(path)
            swept += 1
        except OSError:  # pragma: no cover - concurrent unlink
            pass
    return swept


def run_process_spmd(
    size: int,
    fn: Callable[..., Any],
    timeout: float = 120.0,
    trace: bool = False,
    **kwargs: Any,
):
    """Execute ``fn(comm, **kwargs)`` on ``size`` spawned process ranks.

    Mirrors the thread path of :func:`repro.runtime.executor.run_spmd`
    (same return type, same error conventions) with real OS-level
    parallelism. Raises :class:`ProcessBackendError` when ``fn`` or its
    kwargs cannot be pickled for the spawn start method.
    """
    from repro.runtime.executor import SpmdResult
    from repro.runtime.stats import RunStats

    if size < 1:
        raise ValueError("need at least one rank")
    try:
        fn_bytes = pickle.dumps((fn, kwargs), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ProcessBackendError(
            "the process backend spawns fresh interpreters, so the rank "
            "function and its kwargs must be picklable; use a module-level "
            f"function instead of a closure/lambda (pickling failed: {exc!r})"
        ) from exc

    ctx = multiprocessing.get_context("spawn")
    shm_token = f"{SHM_PREFIX}{os.getpid():x}x{secrets.token_hex(4)}"
    queues = [ctx.Queue() for _ in range(size)]
    barrier = ctx.Barrier(size)
    abort_event = ctx.Event()
    pipes = [ctx.Pipe(duplex=False) for _ in range(size)]
    procs = [
        ctx.Process(
            target=_child_main,
            args=(
                rank, size, queues, pipes[rank][1], barrier, abort_event,
                timeout, trace, shm_token, fn_bytes,
            ),
            name=f"rank-{rank}",
            daemon=True,
        )
        for rank in range(size)
    ]

    outcomes: dict[int, tuple] = {}
    try:
        for proc in procs:
            proc.start()
        # Close the driver's copies of the send ends so a dead child
        # reads as EOF on its pipe.
        for _recv_end, send_end in pipes:
            send_end.close()

        conn_to_rank = {pipes[rank][0]: rank for rank in range(size)}
        deadline = time.monotonic() + timeout + _SPAWN_GRACE_S
        while len(outcomes) < size:
            waiting = [
                conn for conn, rank in conn_to_rank.items()
                if rank not in outcomes
            ]
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                abort_event.set()
                for rank in range(size):
                    outcomes.setdefault(
                        rank,
                        ("error",
                         f"driver timeout after {timeout + _SPAWN_GRACE_S}s",
                         "", True, False),
                    )
                break
            for conn in connection_wait(waiting, timeout=min(remaining, 0.5)):
                rank = conn_to_rank[conn]
                try:
                    outcomes[rank] = conn.recv()
                except EOFError:
                    # Child exited without reporting: killed or crashed
                    # below Python. Tear the group down.
                    abort_event.set()
                    procs[rank].join(timeout=5.0)
                    outcomes[rank] = ("died", procs[rank].exitcode)
    finally:
        abort_event.set()
        started = [proc for proc in procs if proc.pid is not None]
        for proc in started:
            proc.join(timeout=5.0)
        for proc in started:
            if proc.is_alive():  # pragma: no cover - hung child backstop
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - unkillable child
                proc.kill()
                proc.join(timeout=2.0)
        # Release any in-flight segments, then close the queues.
        for rank, q in enumerate(queues):
            while True:
                try:
                    _src, _tag, encoded = q.get_nowait()
                except (queue_mod.Empty, OSError, ValueError):
                    break
                _release(encoded)
            q.close()
        for recv_end, _send_end in pipes:
            recv_end.close()
        _sweep_segments(shm_token)

    errors = {
        rank: outcome
        for rank, outcome in outcomes.items()
        if outcome[0] != "ok"
    }
    if errors:
        rank, err = _pick_primary(errors)
        if err[0] == "died":
            raise RuntimeError(
                f"rank {rank} died without reporting (exit code {err[1]}); "
                "the process group was torn down. If this happened at "
                "interpreter start-up, ensure the driver script guards "
                "run_spmd behind `if __name__ == '__main__':` (the spawn "
                "start method re-imports the main module)"
            )
        _kind, exc_repr, tb_text, _is_timeout, _is_echo = err
        detail = f"\n--- rank {rank} traceback ---\n{tb_text}" if tb_text else ""
        raise RuntimeError(f"rank {rank} failed: {exc_repr}{detail}")

    values = [outcomes[rank][1] for rank in range(size)]
    all_stats = [outcomes[rank][2] for rank in range(size)]
    # Fold every child's EventCounter snapshot into the driver's
    # process-global counter, mirroring what the thread backend gets
    # for free by sharing one interpreter.
    from repro.util.counters import event_counter

    for rank in range(size):
        for label, n in outcomes[rank][3].items():
            event_counter().bump(label, n)
    return SpmdResult(
        values=values,
        stats=RunStats(per_rank=all_stats),
        backend="process",
    )
