"""Simulated MPI/BSP runtime.

The paper runs on Piz Daint with mpi4py; this environment has neither a
cluster nor MPI, so the distributed algorithms run on a *simulated*
cluster instead (see DESIGN.md's substitution table):

* :mod:`repro.runtime.fabric` — the fabric interface plus the
  in-process backend: per-``(src, dst, tag)`` mailboxes, ranks are
  Python threads.
* :mod:`repro.runtime.process_fabric` — the process-parallel backend:
  spawned ranks, shared-memory array transfer, child-crash detection.
* :mod:`repro.runtime.communicator` — an mpi4py-flavoured communicator
  (``send``/``recv``/``bcast``/``reduce``/``allreduce``/``allgather``/
  ``alltoall``/``reduce_scatter``/``split``) whose collectives use real
  algorithms (binomial trees, rings), so the *communication volume each
  rank observes matches what a real MPI job would move*. Every
  collective also has a non-blocking ``i``-variant returning a
  :class:`~repro.runtime.communicator.CollectiveHandle` (plus
  ``isend``/``irecv`` point-to-point futures) — the substrate of the
  comm/compute-overlapped 1.5D layer schedules.
* :mod:`repro.runtime.stats` — per-rank byte/message/flop accounting
  plus the wall-time split into compute vs. blocked-on-recv seconds;
  the BSP "maximum words sent by any processor" of Section 7 is read
  directly off these counters.
* :mod:`repro.runtime.costmodel` — an alpha-beta-gamma machine model
  converting the accounting into modeled execution time, which is the
  quantity the scaling figures plot.
* :mod:`repro.runtime.executor` — the SPMD launcher running one thread
  or process per rank (``run_spmd(..., backend=...)``) and propagating
  failures.
* :mod:`repro.runtime.grid` — the 2D ``Px x Py`` cartesian process
  grid with row/column sub-communicators (Section 6.3).
"""

from repro.runtime.communicator import (
    CollectiveHandle,
    Communicator,
    RecvFuture,
)
from repro.runtime.costmodel import CostModel, MachineParams
from repro.runtime.executor import SpmdResult, run_spmd
from repro.runtime.fabric import (
    Fabric,
    FabricTimeoutError,
    RecvHandle,
    SendHandle,
    ThreadFabric,
)
from repro.runtime.grid import ProcessGrid, square_grid
from repro.runtime.process_fabric import ProcessBackendError, ProcessFabric
from repro.runtime.stats import CommStats, RunStats

__all__ = [
    "Fabric",
    "ThreadFabric",
    "ProcessFabric",
    "FabricTimeoutError",
    "ProcessBackendError",
    "Communicator",
    "CollectiveHandle",
    "RecvFuture",
    "SendHandle",
    "RecvHandle",
    "CommStats",
    "RunStats",
    "CostModel",
    "MachineParams",
    "run_spmd",
    "SpmdResult",
    "ProcessGrid",
    "square_grid",
]
