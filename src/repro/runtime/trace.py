"""Chronological communication traces for SPMD debugging.

When enabled on a rank's :class:`~repro.runtime.stats.CommStats`, every
outgoing message is appended to a bounded in-memory trace with its
sequence number, phase, destination and size. Traces are the tool for
diagnosing tag mismatches and deadlocks in new distributed operators:
diffing two ranks' traces shows exactly where their collective
sequences diverge (the bug class the OpSequencer exists to prevent).

Usage::

    result = run_spmd(4, program, trace=True)
    for event in result.stats.per_rank[0].trace.events:
        print(event)
    print(diff_traces(result.stats.per_rank[0].trace,
                      result.stats.per_rank[1].trace))
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TraceEvent", "WaitEvent", "CommTrace", "diff_traces"]

#: Default maximum retained events per rank (a ring buffer bound).
DEFAULT_CAPACITY = 10_000


@dataclass(frozen=True)
class TraceEvent:
    """One recorded send."""

    sequence: int
    phase: str
    nbytes: int

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"#{self.sequence:<6} {self.phase:<14} {self.nbytes} B"


@dataclass(frozen=True)
class WaitEvent:
    """One blocked-on-recv interval (attributed at initiation)."""

    phase: str
    seconds: float

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"wait   {self.phase:<14} {self.seconds * 1e3:.3f} ms"


@dataclass
class CommTrace:
    """Bounded chronological record of a rank's sends and waits.

    Sends capture the traffic sequence (used by :func:`diff_traces` to
    pinpoint diverging collective orders); waits capture *time blocked
    on a receive* so a trace shows not just what a rank sent but where
    it stalled — the per-phase stall profile the comm/compute overlap
    work targets.

    Both lists are true ring buffers: at capacity the *oldest* entry is
    evicted, so a long run's trace always ends at the interesting part
    (the hang or divergence you are debugging), and the eviction counts
    are kept separately as ``dropped_events`` / ``dropped_waits``
    (``dropped`` is the combined total).
    """

    capacity: int = DEFAULT_CAPACITY
    events: list[TraceEvent] = field(default_factory=list)
    waits: list[WaitEvent] = field(default_factory=list)
    dropped_events: int = 0
    dropped_waits: int = 0

    @property
    def dropped(self) -> int:
        """Total evicted entries of either kind (combined view)."""
        return self.dropped_events + self.dropped_waits

    def record(self, sequence: int, phase: str, nbytes: int) -> None:
        if len(self.events) >= self.capacity:
            del self.events[0]
            self.dropped_events += 1
        self.events.append(TraceEvent(sequence, phase, nbytes))

    def record_wait(self, phase: str, seconds: float) -> None:
        if len(self.waits) >= self.capacity:
            del self.waits[0]
            self.dropped_waits += 1
        self.waits.append(WaitEvent(phase, seconds))

    def by_phase(self) -> dict[str, int]:
        """Event counts per phase."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.phase] = out.get(event.phase, 0) + 1
        return out

    def wait_by_phase(self) -> dict[str, float]:
        """Blocked seconds per phase."""
        out: dict[str, float] = {}
        for event in self.waits:
            out[event.phase] = out.get(event.phase, 0.0) + event.seconds
        return out

    def wait_s(self) -> float:
        """Total traced blocked seconds."""
        return sum(event.seconds for event in self.waits)


def diff_traces(a: CommTrace, b: CommTrace) -> str:
    """First divergence between two ranks' send sequences.

    SPMD collectives keep ranks' *phase sequences* aligned even though
    payload sizes differ; a phase divergence pinpoints a rank taking a
    different code path (the root cause of most tag-mismatch hangs).
    Returns a human-readable report ("traces agree" if none). When
    either ring buffer evicted old events the comparison only covers
    the retained tail windows, and the report says so — a "divergence"
    between differently-truncated windows is then positional, not
    necessarily a real code-path split.
    """
    note = ""
    if a.dropped_events or b.dropped_events:
        note = (
            " (note: ring truncation — rank A dropped "
            f"{a.dropped_events} and rank B dropped {b.dropped_events} "
            "oldest events; only the retained tails were compared)"
        )
    for index, (ea, eb) in enumerate(zip(a.events, b.events)):
        if ea.phase != eb.phase:
            return (
                f"divergence at event {index}: "
                f"rank A sent in phase {ea.phase!r} ({ea.nbytes} B) "
                f"but rank B sent in phase {eb.phase!r} ({eb.nbytes} B)"
                f"{note}"
            )
    if len(a.events) != len(b.events):
        longer = "A" if len(a.events) > len(b.events) else "B"
        shorter_len = min(len(a.events), len(b.events))
        extra = (a if longer == "A" else b).events[shorter_len]
        return (
            f"rank {longer} has extra events from index {shorter_len}: "
            f"first extra is {extra}{note}"
        )
    return "traces agree" + note
