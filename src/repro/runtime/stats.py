"""Per-rank communication and compute accounting.

The theoretical analysis of Section 7 is phrased in the BSP model: the
*communication volume* is the maximum number of words sent by any
processor. These counters measure exactly that — every ``send`` of the
simulated communicator records its payload size against the sending
rank (optionally under a phase label), and local kernels record flops
via :class:`~repro.util.counters.FlopCounter`. The benchmark figures
are produced from these counters through the cost model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


from repro.util.counters import FlopCounter

__all__ = ["CommStats", "RunStats"]

#: Word size used when converting bytes to "words" (fp32, as in the
#: paper's experiments).
WORD_BYTES = 4


class CommStats:
    """Counters for one rank.

    Attributes
    ----------
    bytes_sent, messages_sent:
        Cumulative traffic originated by this rank.
    flops:
        Local compute, via the embedded :class:`FlopCounter`.
    by_phase:
        ``phase -> bytes`` breakdown (e.g. "psi", "redistribute").
    wall_s:
        Measured wall-clock seconds of this rank's program, set by the
        executor. On the thread backend ranks share the GIL so this is
        not a scaling signal; on the process backend it is real
        per-rank time and the strong-scaling benchmarks report it.
    wait_s:
        Seconds this rank spent *blocked on a receive* (inside the
        communicator waiting for a message or a collective step to
        arrive). ``wall_s - wait_s`` is the compute share; the overlap
        work in the 1.5D layers exists to shrink ``wait_s`` without
        touching the traffic counters above.
    wait_by_phase:
        ``phase -> seconds`` breakdown of ``wait_s``, attributed to the
        phase active when the operation was *initiated* (so synchronous
        and overlapped runs attribute waits to the same phases).
    tracer:
        Optional per-rank :class:`~repro.obs.tracer.Tracer`, installed
        by the executor when tracing is on. Waits recorded here become
        timed ``"wait"`` slices on the rank's timeline, and — because
        ``CommStats`` is what the process fabric pickles back — the
        rank's whole span record rides home to the driver on it.
    """

    __slots__ = ("rank", "bytes_sent", "messages_sent", "flops", "by_phase",
                 "_phase", "trace", "wall_s", "wait_s", "wait_by_phase",
                 "tracer")

    def __init__(self, rank: int, trace: bool = False) -> None:
        self.rank = rank
        self.bytes_sent = 0
        self.messages_sent = 0
        self.flops = FlopCounter()
        self.by_phase: dict[str, int] = {}
        self._phase = "default"
        self.wall_s = 0.0
        self.wait_s = 0.0
        self.wait_by_phase: dict[str, float] = {}
        self.tracer = None
        if trace:
            from repro.runtime.trace import CommTrace

            self.trace: "CommTrace | None" = CommTrace()
        else:
            self.trace = None

    # ------------------------------------------------------------------
    def set_phase(self, phase: str) -> None:
        """Label subsequent traffic (e.g. per pipeline stage)."""
        self._phase = phase

    @property
    def phase(self) -> str:
        """The currently active traffic label."""
        return self._phase

    def record_send(self, nbytes: int) -> None:
        """Charge one outgoing message of ``nbytes`` to this rank."""
        self.bytes_sent += int(nbytes)
        self.messages_sent += 1
        self.by_phase[self._phase] = (
            self.by_phase.get(self._phase, 0) + int(nbytes)
        )
        if self.trace is not None:
            self.trace.record(self.messages_sent, self._phase, int(nbytes))

    def record_wait(self, seconds: float, phase: str | None = None) -> None:
        """Charge blocked-on-recv time (attributed to ``phase``)."""
        if seconds <= 0.0:
            return
        label = self._phase if phase is None else phase
        self.wait_s += seconds
        self.wait_by_phase[label] = (
            self.wait_by_phase.get(label, 0.0) + seconds
        )
        if self.trace is not None:
            self.trace.record_wait(label, seconds)
        if self.tracer is not None:
            # Callers invoke record_wait immediately after the blocking
            # wait returns, so "now" is the interval's end to within
            # call overhead — good enough for a timeline slice.
            end = time.perf_counter()
            self.tracer.add_slice("wait", end - seconds, end, phase=label)

    @property
    def compute_s(self) -> float:
        """Wall-clock share spent computing rather than blocked."""
        return max(0.0, self.wall_s - self.wait_s)

    @property
    def words_sent(self) -> int:
        """Traffic in fp32 words — the unit of the Section-7 bounds."""
        return self.bytes_sent // WORD_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CommStats(rank={self.rank}, msgs={self.messages_sent}, "
            f"bytes={self.bytes_sent}, flops={self.flops.total}, "
            f"wait_s={self.wait_s:.3f})"
        )


@dataclass
class RunStats:
    """Aggregate over all ranks of one SPMD execution."""

    per_rank: list[CommStats] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.per_rank)

    @property
    def max_bytes_sent(self) -> int:
        """BSP communication volume in bytes (max over ranks)."""
        return max((s.bytes_sent for s in self.per_rank), default=0)

    @property
    def max_words_sent(self) -> int:
        """BSP communication volume in fp32 words (max over ranks)."""
        return self.max_bytes_sent // WORD_BYTES

    @property
    def total_bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.per_rank)

    @property
    def max_messages_sent(self) -> int:
        return max((s.messages_sent for s in self.per_rank), default=0)

    @property
    def max_flops(self) -> int:
        """Critical-path compute (max flops over ranks)."""
        return max((s.flops.total for s in self.per_rank), default=0)

    @property
    def max_wall_s(self) -> float:
        """Slowest rank's measured wall-clock seconds (0 if unset)."""
        return max((s.wall_s for s in self.per_rank), default=0.0)

    @property
    def max_wait_s(self) -> float:
        """Largest per-rank blocked-on-recv time."""
        return max((s.wait_s for s in self.per_rank), default=0.0)

    @property
    def total_wait_s(self) -> float:
        return sum(s.wait_s for s in self.per_rank)

    def breakdown(self) -> list[dict[str, float]]:
        """Per-rank compute-vs-wait split of the measured wall time.

        Each entry reports ``wall_s``, ``wait_s`` (blocked on a
        receive), ``compute_s`` (the difference) and the blocked
        fraction — the number the comm/compute overlap work moves.
        """
        rows = []
        for stats in self.per_rank:
            wall = stats.wall_s
            rows.append({
                "rank": stats.rank,
                "wall_s": wall,
                "wait_s": stats.wait_s,
                "compute_s": stats.compute_s,
                "wait_fraction": (stats.wait_s / wall) if wall > 0 else 0.0,
                "wait_by_phase": dict(stats.wait_by_phase),
            })
        return rows

    def phase_bytes(self) -> dict[str, int]:
        """Per-phase max-over-ranks byte counts."""
        phases: dict[str, int] = {}
        for stats in self.per_rank:
            for phase, nbytes in stats.by_phase.items():
                phases[phase] = max(phases.get(phase, 0), nbytes)
        return phases

    @property
    def wait_fraction(self) -> float:
        """Blocked share of the slowest rank's wall-clock.

        ``max_wait_s / max_wall_s`` — the same summary-level definition
        the strong-scaling bench reports; 0 when wall time is unset
        (thread backend without measurement).
        """
        wall = self.max_wall_s
        return (self.max_wait_s / wall) if wall > 0 else 0.0

    def max_wait_by_phase(self) -> dict[str, float]:
        """Per-phase max-over-ranks blocked seconds."""
        phases: dict[str, float] = {}
        for stats in self.per_rank:
            for phase, seconds in stats.wait_by_phase.items():
                phases[phase] = max(phases.get(phase, 0.0), seconds)
        return phases

    def summary(self) -> dict[str, float]:
        """Flat dict for CSV emission by the benchmark harness.

        Includes the overlap-era wait columns: ``total_wait_s``,
        ``wait_fraction`` and one ``max_wait_<phase>_s`` column per
        traffic phase that recorded blocked time.
        """
        out = {
            "ranks": self.size,
            "max_bytes_sent": self.max_bytes_sent,
            "max_words_sent": self.max_words_sent,
            "total_bytes_sent": self.total_bytes_sent,
            "max_messages_sent": self.max_messages_sent,
            "max_flops": self.max_flops,
            "max_wall_s": self.max_wall_s,
            "max_wait_s": self.max_wait_s,
            "total_wait_s": self.total_wait_s,
            "wait_fraction": self.wait_fraction,
        }
        for phase, seconds in sorted(self.max_wait_by_phase().items()):
            out[f"max_wait_{phase}_s"] = seconds
        return out
