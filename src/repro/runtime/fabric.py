"""In-process message fabric backing the simulated MPI ranks.

Each simulated rank is a Python thread; messages are NumPy arrays (or
arbitrary payloads) deposited into per-``(src, dst, tag)`` mailboxes.
Blocking ``recv`` waits on a condition variable, so rank interleaving
is handled by the OS scheduler exactly as in a real multi-process MPI
job — with the obvious difference that "transfer" is a reference hand-
off. Communication *cost* is therefore accounted separately (see
:mod:`repro.runtime.stats`), not timed.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from typing import Any, Hashable

__all__ = ["Fabric", "FabricTimeoutError"]

#: Default seconds a blocked receive waits before declaring deadlock.
DEFAULT_TIMEOUT = 60.0


class FabricTimeoutError(RuntimeError):
    """A receive waited longer than the deadlock timeout."""


class Fabric:
    """Shared state connecting ``size`` simulated ranks.

    Parameters
    ----------
    size:
        Number of ranks.
    timeout:
        Deadlock guard: any receive blocked longer than this raises
        :class:`FabricTimeoutError` instead of hanging the test suite.
    """

    def __init__(self, size: int, timeout: float = DEFAULT_TIMEOUT) -> None:
        if size < 1:
            raise ValueError("fabric needs at least one rank")
        self.size = size
        self.timeout = timeout
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._mailboxes: dict[tuple[int, int, Hashable], deque] = defaultdict(deque)
        self._barrier = threading.Barrier(size)
        self._aborted = False

    # ------------------------------------------------------------------
    def put(self, src: int, dst: int, tag: Hashable, payload: Any) -> None:
        """Deposit a message; wakes any blocked receivers."""
        self._check_ranks(src, dst)
        with self._condition:
            self._mailboxes[(src, dst, tag)].append(payload)
            self._condition.notify_all()

    def get(self, src: int, dst: int, tag: Hashable) -> Any:
        """Blocking receive of the oldest matching message."""
        self._check_ranks(src, dst)
        key = (src, dst, tag)
        with self._condition:
            while True:
                if self._aborted:
                    raise FabricTimeoutError("fabric aborted by another rank")
                box = self._mailboxes.get(key)
                if box:
                    return box.popleft()
                if not self._condition.wait(timeout=self.timeout):
                    self._aborted = True
                    self._condition.notify_all()
                    raise FabricTimeoutError(
                        f"recv(src={src}, dst={dst}, tag={tag}) timed out "
                        f"after {self.timeout}s — likely deadlock"
                    )

    def abort(self) -> None:
        """Unblock every waiting rank with an error (failure propagation)."""
        with self._condition:
            self._aborted = True
            self._barrier.abort()
            self._condition.notify_all()

    def barrier(self) -> None:
        """Global synchronisation across all ranks."""
        self._barrier.wait(timeout=self.timeout)

    # ------------------------------------------------------------------
    def _check_ranks(self, src: int, dst: int) -> None:
        if not (0 <= src < self.size and 0 <= dst < self.size):
            raise ValueError(
                f"rank out of range: src={src}, dst={dst}, size={self.size}"
            )
