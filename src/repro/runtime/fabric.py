"""Message fabrics backing the simulated MPI ranks.

A *fabric* is the transport layer underneath the
:class:`~repro.runtime.communicator.Communicator`: per-``(src, dst,
tag)`` mailboxes with blocking receives, a global barrier, and abort
propagation so one failing rank unblocks everyone else. Two backends
implement the interface:

* :class:`ThreadFabric` (this module) — ranks are Python threads and a
  "transfer" is a reference hand-off guarded by a condition variable.
  Cheap, zero-copy, but the GIL serialises pure-Python compute.
* :class:`~repro.runtime.process_fabric.ProcessFabric` — ranks are
  spawned processes; large arrays travel through POSIX shared memory
  and everything else over multiprocessing queues. Real parallelism,
  at the price of serialisation and process start-up.

Both fabrics expose the same *non-blocking* primitives on top of the
mailbox model: :meth:`FabricBase.try_get` (probe-and-pop),
:meth:`FabricBase.poll` (bounded wait for arrivals) and the
:meth:`FabricBase.isend` / :meth:`FabricBase.irecv` pair returning
completion handles (:class:`SendHandle` / :class:`RecvHandle` with
``wait``/``test``). Blocking :meth:`FabricBase.get` is implemented once
here on top of those primitives, so the deadlock timeout report — the
blocked ``(src, dst, tag)`` plus every undelivered mailbox — is
identical across backends.

Communication *cost* is accounted separately (see
:mod:`repro.runtime.stats`) and identically on both backends, because
the communicator's collective algorithms — not the transport — decide
what goes on the simulated wire.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque
from typing import Any, Hashable

__all__ = [
    "Fabric",
    "FabricBase",
    "ThreadFabric",
    "FabricTimeoutError",
    "SendHandle",
    "RecvHandle",
]

#: Default seconds a blocked receive waits before declaring deadlock.
DEFAULT_TIMEOUT = 60.0

#: Maximum mailbox lines included in a timeout report.
_SUMMARY_LIMIT = 8

#: Error text used when a rank is unblocked by another rank's failure.
ABORT_MESSAGE = "fabric aborted by another rank"


class FabricTimeoutError(RuntimeError):
    """A receive waited longer than the deadlock timeout."""


def format_timeout(
    src: int,
    dst: int,
    tag: Hashable,
    timeout: float,
    pending: dict[tuple[int, int, Hashable], int],
) -> str:
    """Deadlock report naming the blocked edge and undelivered traffic.

    ``pending`` maps ``(src, dst, tag)`` to the number of messages
    deposited but never received — the first place to look when a tag
    mismatch or a diverging collective sequence hangs a rank. Messages
    posted with :meth:`FabricBase.isend` land in the same mailboxes, so
    pending isends show up here exactly like blocking sends.
    """
    head = (
        f"recv(src={src}, dst={dst}, tag={tag!r}) timed out after "
        f"{timeout}s — likely deadlock"
    )
    boxes = sorted(
        ((key, count) for key, count in pending.items() if count > 0),
        key=lambda item: item[1],
        reverse=True,
    )
    if not boxes:
        return head + "; no undelivered messages (sender never sent)"
    lines = [
        f"(src={k[0]}, dst={k[1]}, tag={k[2]!r}) x{count}"
        for k, count in boxes[:_SUMMARY_LIMIT]
    ]
    more = len(boxes) - _SUMMARY_LIMIT
    if more > 0:
        lines.append(f"... and {more} more mailboxes")
    return (
        head
        + f"; {sum(c for _, c in boxes)} undelivered message(s) in "
        + f"{len(boxes)} mailbox(es): "
        + ", ".join(lines)
    )


class SendHandle:
    """Completion handle of a non-blocking send.

    Both fabrics buffer sends (a deposit never blocks on the receiver),
    so the handle is born complete; it exists so SPMD code can treat
    sends and receives uniformly (``wait`` all handles of a phase).
    """

    __slots__ = ()

    def test(self) -> bool:
        """Whether the send has completed locally (always ``True``)."""
        return True

    @property
    def done(self) -> bool:
        return True

    def wait(self, timeout: float | None = None) -> None:
        """No-op: the payload left this rank at post time."""
        return None


class RecvHandle:
    """Completion handle of a non-blocking receive.

    ``test()`` probes without blocking, ``wait()`` blocks with the
    fabric's deadlock diagnostics. Completion is sticky: the first
    successful ``wait``/``test`` caches the payload, and every later
    ``wait`` returns the same object (double-wait is legal, as in MPI's
    ``MPI_Wait`` on an inactive request). Waiting after the fabric
    aborted raises :class:`FabricTimeoutError` instead of hanging.
    """

    __slots__ = ("_fabric", "src", "dst", "tag", "_done", "_value")

    def __init__(self, fabric: "FabricBase", src: int, dst: int,
                 tag: Hashable) -> None:
        self._fabric = fabric
        self.src = src
        self.dst = dst
        self.tag = tag
        self._done = False
        self._value: Any = None

    @property
    def done(self) -> bool:
        return self._done

    def test(self) -> bool:
        """Probe for completion without blocking."""
        if self._done:
            return True
        if self._fabric.aborted:
            raise FabricTimeoutError(ABORT_MESSAGE)
        ok, payload = self._fabric.try_get(self.src, self.dst, self.tag)
        if ok:
            self._value = payload
            self._done = True
        return self._done

    def wait(self, timeout: float | None = None) -> Any:
        """Block until the message arrives; returns the payload."""
        if self._done:
            return self._value
        self._value = self._fabric.get(
            self.src, self.dst, self.tag, timeout=timeout
        )
        self._done = True
        return self._value


class FabricBase:
    """Interface shared by the thread and process fabrics.

    Subclasses implement the non-blocking mailbox primitives
    (:meth:`put`, :meth:`try_get`, :meth:`poll`,
    :meth:`pending_counts`, :meth:`_trip_abort`) plus :meth:`abort` and
    :meth:`barrier`; blocking :meth:`get` and the handle-returning
    :meth:`isend`/:meth:`irecv` are provided here once, so timeout
    diagnostics and handle semantics cannot drift between backends.

    Parameters
    ----------
    size:
        Number of ranks.
    timeout:
        Deadlock guard: any receive blocked longer than this raises
        :class:`FabricTimeoutError` instead of hanging the test suite.
    """

    def __init__(self, size: int, timeout: float = DEFAULT_TIMEOUT) -> None:
        if size < 1:
            raise ValueError("fabric needs at least one rank")
        self.size = size
        self.timeout = timeout

    # -- transport primitives (subclass responsibility) -----------------
    def put(self, src: int, dst: int, tag: Hashable, payload: Any) -> None:
        """Deposit a message; wakes any blocked receivers. Never blocks."""
        raise NotImplementedError

    def try_get(self, src: int, dst: int, tag: Hashable) -> tuple[bool, Any]:
        """Non-blocking probe-and-pop: ``(True, payload)`` or ``(False, None)``."""
        raise NotImplementedError

    def poll(self, src: int, dst: int, tag: Hashable,
             timeout: float) -> None:
        """Block up to ``timeout`` seconds for inbound activity.

        Returns as soon as *any* message lands at this rank (not only
        the requested key), so callers interleaving several pending
        receives can make progress on all of them.
        """
        raise NotImplementedError

    def pending_counts(self) -> dict[tuple[int, int, Hashable], int]:
        """Undelivered-message counts per mailbox (for timeout reports)."""
        raise NotImplementedError

    @property
    def aborted(self) -> bool:
        """Whether any rank tripped the abort flag."""
        raise NotImplementedError

    def _trip_abort(self) -> None:
        """Set the abort flag and wake blocked ranks (no barrier abort)."""
        raise NotImplementedError

    def abort(self) -> None:
        """Unblock every waiting rank with an error (failure propagation)."""
        raise NotImplementedError

    def barrier(self) -> None:
        """Global synchronisation across all ranks."""
        raise NotImplementedError

    # -- shared blocking receive + non-blocking handles ------------------
    def get(self, src: int, dst: int, tag: Hashable,
            timeout: float | None = None) -> Any:
        """Blocking receive of the oldest matching message.

        On timeout the abort flag is tripped (unblocking all other
        ranks) and the raised error names the blocked edge plus every
        undelivered mailbox — including payloads posted via ``isend``
        that nobody received.
        """
        self._check_ranks(src, dst)
        limit = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + limit
        while True:
            if self.aborted:
                raise FabricTimeoutError(ABORT_MESSAGE)
            ok, payload = self.try_get(src, dst, tag)
            if ok:
                return payload
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._trip_abort()
                raise FabricTimeoutError(
                    format_timeout(src, dst, tag, limit,
                                   self.pending_counts())
                )
            self.poll(src, dst, tag, remaining)

    def isend(self, src: int, dst: int, tag: Hashable,
              payload: Any) -> SendHandle:
        """Non-blocking send; the returned handle is born complete."""
        self.put(src, dst, tag, payload)
        return SendHandle()

    def irecv(self, src: int, dst: int, tag: Hashable) -> RecvHandle:
        """Post a non-blocking receive; complete via ``wait``/``test``."""
        self._check_ranks(src, dst)
        return RecvHandle(self, src, dst, tag)

    # ------------------------------------------------------------------
    def _check_ranks(self, src: int, dst: int) -> None:
        if not (0 <= src < self.size and 0 <= dst < self.size):
            raise ValueError(
                f"rank out of range: src={src}, dst={dst}, size={self.size}"
            )


class ThreadFabric(FabricBase):
    """Shared state connecting ``size`` simulated thread ranks.

    Messages are NumPy arrays (or arbitrary payloads) deposited into
    per-``(src, dst, tag)`` mailboxes; blocking ``recv`` waits on a
    condition variable, so rank interleaving is handled by the OS
    scheduler exactly as in a real multi-process MPI job — with the
    obvious difference that "transfer" is a reference hand-off.
    """

    def __init__(self, size: int, timeout: float = DEFAULT_TIMEOUT) -> None:
        super().__init__(size, timeout=timeout)
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._mailboxes: dict[tuple[int, int, Hashable], deque] = defaultdict(deque)
        self._barrier = threading.Barrier(size)
        self._aborted = False

    # ------------------------------------------------------------------
    def put(self, src: int, dst: int, tag: Hashable, payload: Any) -> None:
        self._check_ranks(src, dst)
        with self._condition:
            self._mailboxes[(src, dst, tag)].append(payload)
            self._condition.notify_all()

    def try_get(self, src: int, dst: int, tag: Hashable) -> tuple[bool, Any]:
        self._check_ranks(src, dst)
        with self._condition:
            box = self._mailboxes.get((src, dst, tag))
            if box:
                return True, box.popleft()
        return False, None

    def poll(self, src: int, dst: int, tag: Hashable,
             timeout: float) -> None:
        key = (src, dst, tag)
        with self._condition:
            # Atomic re-check before sleeping: a deposit between the
            # caller's probe and this lock acquisition must not be lost.
            box = self._mailboxes.get(key)
            if box or self._aborted:
                return
            self._condition.wait(timeout=timeout)

    def pending_counts(self) -> dict[tuple[int, int, Hashable], int]:
        with self._condition:
            return {k: len(v) for k, v in self._mailboxes.items() if v}

    @property
    def aborted(self) -> bool:
        return self._aborted

    def _trip_abort(self) -> None:
        with self._condition:
            self._aborted = True
            self._condition.notify_all()

    def abort(self) -> None:
        with self._condition:
            self._aborted = True
            self._barrier.abort()
            self._condition.notify_all()

    def barrier(self) -> None:
        self._barrier.wait(timeout=self.timeout)


#: Backward-compatible name: the thread fabric was the only backend
#: before the process backend existed.
Fabric = ThreadFabric
