"""Message fabrics backing the simulated MPI ranks.

A *fabric* is the transport layer underneath the
:class:`~repro.runtime.communicator.Communicator`: per-``(src, dst,
tag)`` mailboxes with blocking receives, a global barrier, and abort
propagation so one failing rank unblocks everyone else. Two backends
implement the interface:

* :class:`ThreadFabric` (this module) — ranks are Python threads and a
  "transfer" is a reference hand-off guarded by a condition variable.
  Cheap, zero-copy, but the GIL serialises pure-Python compute.
* :class:`~repro.runtime.process_fabric.ProcessFabric` — ranks are
  spawned processes; large arrays travel through POSIX shared memory
  and everything else over multiprocessing queues. Real parallelism,
  at the price of serialisation and process start-up.

Communication *cost* is accounted separately (see
:mod:`repro.runtime.stats`) and identically on both backends, because
the communicator's collective algorithms — not the transport — decide
what goes on the simulated wire.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from typing import Any, Hashable

__all__ = ["Fabric", "FabricBase", "ThreadFabric", "FabricTimeoutError"]

#: Default seconds a blocked receive waits before declaring deadlock.
DEFAULT_TIMEOUT = 60.0

#: Maximum mailbox lines included in a timeout report.
_SUMMARY_LIMIT = 8


class FabricTimeoutError(RuntimeError):
    """A receive waited longer than the deadlock timeout."""


def format_timeout(
    src: int,
    dst: int,
    tag: Hashable,
    timeout: float,
    pending: dict[tuple[int, int, Hashable], int],
) -> str:
    """Deadlock report naming the blocked edge and undelivered traffic.

    ``pending`` maps ``(src, dst, tag)`` to the number of messages
    deposited but never received — the first place to look when a tag
    mismatch or a diverging collective sequence hangs a rank.
    """
    head = (
        f"recv(src={src}, dst={dst}, tag={tag!r}) timed out after "
        f"{timeout}s — likely deadlock"
    )
    boxes = sorted(
        ((key, count) for key, count in pending.items() if count > 0),
        key=lambda item: item[1],
        reverse=True,
    )
    if not boxes:
        return head + "; no undelivered messages (sender never sent)"
    lines = [
        f"(src={k[0]}, dst={k[1]}, tag={k[2]!r}) x{count}"
        for k, count in boxes[:_SUMMARY_LIMIT]
    ]
    more = len(boxes) - _SUMMARY_LIMIT
    if more > 0:
        lines.append(f"... and {more} more mailboxes")
    return (
        head
        + f"; {sum(c for _, c in boxes)} undelivered message(s) in "
        + f"{len(boxes)} mailbox(es): "
        + ", ".join(lines)
    )


class FabricBase:
    """Interface shared by the thread and process fabrics.

    Parameters
    ----------
    size:
        Number of ranks.
    timeout:
        Deadlock guard: any receive blocked longer than this raises
        :class:`FabricTimeoutError` instead of hanging the test suite.
    """

    def __init__(self, size: int, timeout: float = DEFAULT_TIMEOUT) -> None:
        if size < 1:
            raise ValueError("fabric needs at least one rank")
        self.size = size
        self.timeout = timeout

    def put(self, src: int, dst: int, tag: Hashable, payload: Any) -> None:
        """Deposit a message; wakes any blocked receivers."""
        raise NotImplementedError

    def get(self, src: int, dst: int, tag: Hashable) -> Any:
        """Blocking receive of the oldest matching message."""
        raise NotImplementedError

    def abort(self) -> None:
        """Unblock every waiting rank with an error (failure propagation)."""
        raise NotImplementedError

    def barrier(self) -> None:
        """Global synchronisation across all ranks."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _check_ranks(self, src: int, dst: int) -> None:
        if not (0 <= src < self.size and 0 <= dst < self.size):
            raise ValueError(
                f"rank out of range: src={src}, dst={dst}, size={self.size}"
            )


class ThreadFabric(FabricBase):
    """Shared state connecting ``size`` simulated thread ranks.

    Messages are NumPy arrays (or arbitrary payloads) deposited into
    per-``(src, dst, tag)`` mailboxes; blocking ``recv`` waits on a
    condition variable, so rank interleaving is handled by the OS
    scheduler exactly as in a real multi-process MPI job — with the
    obvious difference that "transfer" is a reference hand-off.
    """

    def __init__(self, size: int, timeout: float = DEFAULT_TIMEOUT) -> None:
        super().__init__(size, timeout=timeout)
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._mailboxes: dict[tuple[int, int, Hashable], deque] = defaultdict(deque)
        self._barrier = threading.Barrier(size)
        self._aborted = False

    # ------------------------------------------------------------------
    def put(self, src: int, dst: int, tag: Hashable, payload: Any) -> None:
        self._check_ranks(src, dst)
        with self._condition:
            self._mailboxes[(src, dst, tag)].append(payload)
            self._condition.notify_all()

    def get(self, src: int, dst: int, tag: Hashable) -> Any:
        self._check_ranks(src, dst)
        key = (src, dst, tag)
        with self._condition:
            while True:
                if self._aborted:
                    raise FabricTimeoutError("fabric aborted by another rank")
                box = self._mailboxes.get(key)
                if box:
                    return box.popleft()
                if not self._condition.wait(timeout=self.timeout):
                    self._aborted = True
                    self._condition.notify_all()
                    pending = {
                        k: len(v) for k, v in self._mailboxes.items() if v
                    }
                    raise FabricTimeoutError(
                        format_timeout(src, dst, tag, self.timeout, pending)
                    )

    def abort(self) -> None:
        with self._condition:
            self._aborted = True
            self._barrier.abort()
            self._condition.notify_all()

    def barrier(self) -> None:
        self._barrier.wait(timeout=self.timeout)


#: Backward-compatible name: the thread fabric was the only backend
#: before the process backend existed.
Fabric = ThreadFabric
