"""2D cartesian process grids (Section 6.3).

The 1.5D A-stationary distribution places the adjacency matrix on a
``Px x Py`` grid: rank ``r`` holds grid position ``(row, col) =
(r // Py, r % Py)`` and the adjacency block ``A[row, col]``. Row and
column sub-communicators carry the broadcast/reduce traffic of the
distributed SpMM and attention kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.communicator import Communicator

__all__ = ["ProcessGrid", "square_grid"]


@dataclass
class ProcessGrid:
    """One rank's view of a ``px x py`` cartesian grid.

    Attributes
    ----------
    comm:
        The full (world or parent) communicator.
    row, col:
        This rank's grid coordinates.
    row_comm:
        Sub-communicator of the ranks sharing ``row`` (local rank =
        ``col``); carries broadcasts along a grid row.
    col_comm:
        Sub-communicator of the ranks sharing ``col`` (local rank =
        ``row``); carries broadcasts/reductions along a grid column.
    """

    comm: Communicator
    px: int
    py: int
    row: int
    col: int
    row_comm: Communicator
    col_comm: Communicator

    @property
    def size(self) -> int:
        return self.px * self.py


def square_grid(comm: Communicator, px: int | None = None,
                py: int | None = None) -> ProcessGrid:
    """Build a process grid from ``comm``.

    Without explicit dimensions the grid is the squarest factorisation
    of ``p`` (exactly ``sqrt(p) x sqrt(p)`` for perfect squares, the
    shape the Section-7 analysis assumes).
    """
    p = comm.size
    if px is None or py is None:
        px = int(np.sqrt(p))
        while p % px:
            px -= 1
        py = p // px
    if px * py != p:
        raise ValueError(f"grid {px}x{py} does not match {p} ranks")
    row, col = divmod(comm.rank, py)
    row_comm = comm.split(color=row, key=col)
    col_comm = comm.split(color=col, key=row)
    return ProcessGrid(
        comm=comm, px=px, py=py, row=row, col=col,
        row_comm=row_comm, col_comm=col_comm,
    )
