"""Alpha-beta-gamma machine model: accounting → modeled time.

On a single host, wall-clock time of the threaded simulation measures
the host, not the simulated cluster. The scaling figures therefore plot
*modeled* execution time computed from the exact per-rank accounting:

.. math:: T = \\max_r \\left( \\frac{F_r}{\\gamma} \\right)
          + \\alpha \\cdot \\max_r M_r + \\beta \\cdot \\max_r B_r

with per-rank flops :math:`F_r`, messages :math:`M_r` and bytes
:math:`B_r` — the standard LogP-style alpha (per-message latency),
beta (per-byte bandwidth) and gamma (flop rate) decomposition the
Section-7 analysis is phrased in. Default parameters approximate the
paper's Cray Aries + P100 platform.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.stats import RunStats

__all__ = ["MachineParams", "CostModel"]


@dataclass(frozen=True)
class MachineParams:
    """Machine constants of the modeled cluster.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds (Aries-class fabric ≈ 1.5 µs).
    beta:
        Seconds per byte (≈ 10 GB/s effective per-node injection
        bandwidth → 1e-10 s/B).
    flop_rate:
        Sustained flops/s of one node's accelerator on *dense* kernels
        (P100-class ≈ 1 Tflop/s sustained on GEMM).
    sparse_flop_rate:
        Sustained flops/s on *sparse/edge-wise* kernels (SpMM, SDDMM,
        segment softmax). These are memory-bandwidth-bound: a P100
        sustains ~50 Gflop/s on SpMM-class work, a 20x gap to GEMM.
        Modelling this gap is essential — it is why the paper's
        full-batch runtimes grow steeply with edge count at high
        density, letting DistDGL's sampled mini-batches win there.
    """

    alpha: float = 1.5e-6
    beta: float = 1.0e-10
    flop_rate: float = 1.0e12
    sparse_flop_rate: float = 5.0e10

    def __post_init__(self) -> None:
        if min(self.alpha, self.beta, self.flop_rate,
               self.sparse_flop_rate) <= 0:
            raise ValueError("machine parameters must be positive")


#: Piz-Daint-flavoured defaults used by the benchmark harness.
PIZ_DAINT = MachineParams()

#: Flop-counter labels charged at the sparse (memory-bound) rate; all
#: other labels (dense GEMMs, the pre-calibrated sampling charge) use
#: the dense rate.
SPARSE_LABELS = frozenset({
    "SpMM", "SDDMM", "softmax", "softmax_bwd", "agnn_vjp", "gat_vjp",
    "gat_uv", "norms", "leaky_relu", "local_scores", "local_va_edges",
    "local_va_agg", "local_agnn_edges", "local_agnn_agg",
    "local_gat_edges", "local_gat_agg",
})


class CostModel:
    """Convert :class:`RunStats` into modeled execution time."""

    def __init__(self, params: MachineParams = PIZ_DAINT) -> None:
        self.params = params

    def _rank_compute(self, flops_by_label: dict[str, int]) -> float:
        sparse = sum(
            v for k, v in flops_by_label.items() if k in SPARSE_LABELS
        )
        dense = sum(
            v for k, v in flops_by_label.items() if k not in SPARSE_LABELS
        )
        return (
            sparse / self.params.sparse_flop_rate
            + dense / self.params.flop_rate
        )

    def compute_time(self, stats: RunStats) -> float:
        """Critical-path local compute: ``max_r`` of the two-rate sum."""
        return max(
            (self._rank_compute(s.flops.by_label) for s in stats.per_rank),
            default=0.0,
        )

    def communication_time(self, stats: RunStats) -> float:
        """Latency plus bandwidth terms, ``alpha max M_r + beta max B_r``."""
        return (
            self.params.alpha * stats.max_messages_sent
            + self.params.beta * stats.max_bytes_sent
        )

    def time(self, stats: RunStats) -> float:
        """Total modeled time of a *synchronous* execution."""
        return self.compute_time(stats) + self.communication_time(stats)

    def overlapped_time(self, stats: RunStats) -> float:
        """Modeled time when local compute hides the bandwidth term.

        The overlapped schedule (``REPRO_OVERLAP=1``) initiates each
        transfer at its program point but blocks only at first use, so
        the wire and the local kernels run concurrently: per phase the
        cost is ``max(compute, beta·B)`` rather than their sum. The
        per-message latency term stays serial — handles are resolved in
        initiation order, so every message's alpha is still paid on the
        critical path.
        """
        bandwidth_s = self.params.beta * stats.max_bytes_sent
        latency_s = self.params.alpha * stats.max_messages_sent
        return max(self.compute_time(stats), bandwidth_s) + latency_s

    def serial_fraction(self, stats: RunStats) -> float:
        """Share of the synchronous modeled time overlap cannot hide.

        ``overlapped_time / time`` — 1.0 means nothing to gain (all
        compute or all latency), values toward 0.5 mean compute and
        bandwidth are balanced and overlap halves the modeled total.
        """
        total = self.time(stats)
        if total == 0.0:
            return 1.0
        return self.overlapped_time(stats) / total

    def breakdown(self, stats: RunStats) -> dict[str, float]:
        """Compute/communication split for reporting.

        ``total_s`` keeps the synchronous sum (``compute_s +
        communication_s``); the overlap projection rides along as
        ``overlapped_s``/``serial_fraction``.
        """
        return {
            "compute_s": self.compute_time(stats),
            "communication_s": self.communication_time(stats),
            "total_s": self.time(stats),
            "overlapped_s": self.overlapped_time(stats),
            "serial_fraction": self.serial_fraction(stats),
        }
