"""Shared communication patterns of the 1.5D GNN schedule.

Four patterns cover every distributed operation of the forward and
backward passes (Figure 1's compute DAGs):

1. **Diagonal row broadcast** — the SDDMM kernels pair *row-side*
   features :math:`H_i` with *column-side* features :math:`H_j`; the
   column-replicated layout already provides :math:`H_j` locally, and
   :math:`H_i` is broadcast along grid row ``i`` from the diagonal
   rank ``(i, i)`` (which owns it as its column block).
2. **Row-wise reductions** — the graph softmax needs per-row maxima
   and sums over the *full* row of the distributed score matrix:
   ``allreduce`` along the grid row with ``max``/``sum``.
3. **Reduce + redistribute** — the layer output exists as ``P``
   partial sums per row block; a ring reduce-scatter along the grid
   row sums them leaving each rank one chunk, and a chunk exchange
   reassembles column-replicated input blocks for the next layer.
   Per-rank volume: :math:`2nk/\\sqrt{p}` — the Section-7 bound.
4. **Transpose exchange** — backward passes produce some terms grouped
   by *row* block while the output layout needs *column* blocks; ranks
   ``(i, j)`` and ``(j, i)`` swap their blocks pairwise.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.partition import block_ranges
from repro.runtime.grid import ProcessGrid
from repro.tensor.csr import CSRMatrix
from repro.tensor.segment import expand_segments, segment_max, segment_sum

__all__ = [
    "row_bcast_from_diagonal",
    "irow_bcast_from_diagonal",
    "reduce_and_redistribute",
    "transpose_exchange",
    "itranspose_exchange",
    "distributed_row_softmax",
    "distributed_row_softmax_backward",
    "distributed_semiring_aggregate",
    "OpSequencer",
    "ReadyResult",
]


class ReadyResult:
    """Handle-shaped wrapper around an already-available value.

    Lets schedule code treat local no-op "transfers" (diagonal ranks in
    a transpose, 1x1 grids) uniformly with real completion handles.
    """

    __slots__ = ("_value",)

    def __init__(self, value) -> None:
        self._value = value

    @property
    def done(self) -> bool:
        return True

    def test(self) -> bool:
        return True

    def wait(self):
        return self._value


class OpSequencer:
    """Per-rank counter issuing matching tags for point-to-point phases.

    SPMD code advances it identically on every rank, so tag ``n`` on
    the sender matches tag ``n`` on the receiver without negotiation.
    """

    def __init__(self) -> None:
        self._next = 0

    def next(self) -> int:
        self._next += 1
        return self._next


def row_bcast_from_diagonal(
    grid: ProcessGrid, block: np.ndarray | None
) -> np.ndarray:
    """Broadcast the diagonal rank's block along its grid row.

    Rank ``(i, i)`` contributes its column block (which equals row
    block ``i`` on a square grid); after the call every rank ``(i, j)``
    holds :math:`H_i`. Volume :math:`O(nk/\\sqrt{p})` per rank over
    :math:`O(\\log p)` steps, as in Section 7.1.
    """
    root = grid.row  # local rank within row_comm whose col == row.
    return grid.row_comm.bcast(block, root=root)


def irow_bcast_from_diagonal(grid: ProcessGrid, block: np.ndarray | None):
    """Non-blocking :func:`row_bcast_from_diagonal`.

    Returns a :class:`~repro.runtime.communicator.CollectiveHandle`;
    the diagonal rank's sends go out immediately, so local compute
    issued before ``wait()`` runs while :math:`H_i` is in flight.
    """
    root = grid.row
    return grid.row_comm.ibcast(block, root=root)


def reduce_and_redistribute(
    grid: ProcessGrid,
    partial: np.ndarray,
    sequencer: OpSequencer,
) -> np.ndarray:
    """Sum row-wise partial outputs and form next-layer input blocks.

    ``partial`` is this rank's :math:`\\Psi_{ij} H'_j` contribution to
    output row block ``i``. Steps:

    * ring reduce-scatter along the grid row: rank ``(i, j)`` ends with
      the fully-summed ``j``-th chunk of row block ``i``;
    * chunk exchange: the chunk's rows belong to next-layer input
      block ``i``, needed by every rank of grid *column* ``i`` — send
      it there, and receive the chunks of block ``j`` from the ranks of
      grid row ``j``.

    Returns the complete, column-replicated next input block
    :math:`H_j`. On a 1x1 grid this is the identity.
    """
    p = grid.px
    tag = ("redistribute", sequencer.next())
    if p == 1:
        return partial
    chunks = [
        np.ascontiguousarray(partial[start:stop])
        for start, stop in block_ranges(partial.shape[0], p)
    ]
    mine = grid.row_comm.reduce_scatter(chunks)
    comm = grid.comm
    # Send my chunk (rows of block `grid.row`) to every rank in grid
    # column `grid.row`; receive block `grid.col`'s chunks from grid
    # row `grid.col`.
    for t in range(p):
        dst = t * p + grid.row
        comm.send(mine, dst, tag=(tag, grid.col))
    received = [comm.recv(grid.col * p + t, tag=(tag, t)) for t in range(p)]
    return np.concatenate(received, axis=0)


def transpose_exchange(
    grid: ProcessGrid,
    block: np.ndarray,
    sequencer: OpSequencer,
) -> np.ndarray:
    """Swap blocks between ranks ``(i, j)`` and ``(j, i)``.

    Converts a quantity indexed by *row* block into the rank's *column*
    block index (diagonal ranks are a no-op). One message of block size
    each way.
    """
    # Advance the sequencer on EVERY rank — including diagonal ones that
    # send nothing — so tag streams stay aligned across the grid.
    tag = ("transpose", sequencer.next())
    if grid.row == grid.col:
        return block
    partner = grid.col * grid.py + grid.row
    grid.comm.send(block, partner, tag=tag)
    return grid.comm.recv(partner, tag=tag)


def itranspose_exchange(
    grid: ProcessGrid,
    block: np.ndarray,
    sequencer: OpSequencer,
):
    """Non-blocking :func:`transpose_exchange`.

    The outgoing block is posted immediately (sends are buffered); the
    returned handle's ``wait()`` collects the partner's block, keeping
    any outstanding collectives progressing meanwhile. The sequencer
    advances on every rank, identically to the blocking form.
    """
    tag = ("transpose", sequencer.next())
    if grid.row == grid.col:
        return ReadyResult(block)
    partner = grid.col * grid.py + grid.row
    grid.comm.isend(block, partner, tag=tag)
    return grid.comm.irecv(partner, tag=tag)


def distributed_semiring_aggregate(
    grid: ProcessGrid,
    a_block: CSRMatrix,
    h_block: np.ndarray,
    semiring,
    sequencer: OpSequencer,
) -> np.ndarray:
    """Semiring aggregation :math:`\\mathcal{A} \\oplus H` on the 1.5D grid.

    The generalisation of Section 4.3 to the distributed schedule: the
    local blocks run the semiring SpMM, and the cross-rank combination
    reuses the reduce+redistribute pipeline with the semiring's *own*
    additive monoid (min/max ride the communicator's ``min``/``max``
    reduce ops; the commutative-monoid laws are exactly what makes the
    ring reduce-scatter valid for them).

    Supports the real and tropical semirings; the pair-valued AVERAGE
    semiring would need a two-channel reduce and is left to the
    single-node path.
    """
    from repro.tensor.kernels import spmm as _spmm

    if semiring.pair_valued:
        raise NotImplementedError(
            "pair-valued semirings are not distributed"
        )
    op = {"add": "sum", "minimum": "min", "maximum": "max"}.get(
        semiring.add.__name__
    )
    if op is None:
        raise ValueError(f"no collective reduce op for {semiring.name}")
    partial = _spmm(a_block, h_block, semiring=semiring, backend="reference")

    p = grid.px
    tag = ("semiring_redistribute", sequencer.next())
    if p == 1:
        return partial
    chunks = [
        np.ascontiguousarray(partial[start:stop])
        for start, stop in block_ranges(partial.shape[0], p)
    ]
    mine = grid.row_comm.reduce_scatter(chunks, op=op)
    comm = grid.comm
    for t in range(p):
        comm.send(mine, t * p + grid.row, tag=(tag, grid.col))
    received = [comm.recv(grid.col * p + t, tag=(tag, t)) for t in range(p)]
    return np.concatenate(received, axis=0)


def distributed_row_softmax(
    grid: ProcessGrid,
    a_block: CSRMatrix,
    values: np.ndarray,
) -> np.ndarray:
    """Graph softmax over rows that span the whole grid row.

    The local block holds only a slice of each vertex's neighbourhood,
    so the stabilising max and the normalising sum are reduced along
    the grid row (``allreduce`` of one scalar per local row —
    :math:`O(n/\\sqrt{p})` words, feature-free). The exp/divide steps
    stay local, exactly as the global formulation's virtual replicated
    denominator prescribes (Section 4.2).
    """
    indptr = a_block.indptr
    local_max = segment_max(values, indptr, identity=-np.inf)
    row_max = grid.row_comm.allreduce(local_max, op="max")
    # Rows empty across the entire grid row keep -inf; make the shift
    # benign (their exp contributes nothing anyway).
    shift = np.where(np.isfinite(row_max), row_max, 0.0)
    exp = np.exp(values - expand_segments(shift, indptr))
    local_sum = segment_sum(exp, indptr)
    row_sum = grid.row_comm.allreduce(local_sum)
    denom = np.where(row_sum == 0, 1.0, row_sum)
    return exp / expand_segments(denom, indptr)


def distributed_row_softmax_backward(
    grid: ProcessGrid,
    a_block: CSRMatrix,
    softmax_values: np.ndarray,
    grad_values: np.ndarray,
) -> np.ndarray:
    """Jacobian-vector product of :func:`distributed_row_softmax`.

    ``dE = S ⊙ (dS - rs(<S, dS>))`` with the per-row inner product
    reduced along the grid row.
    """
    indptr = a_block.indptr
    local_inner = segment_sum(softmax_values * grad_values, indptr)
    inner = grid.row_comm.allreduce(local_inner)
    return softmax_values * (grad_values - expand_segments(inner, indptr))
