"""Distributed GNN model: layer orchestration on the process grid.

The distributed twin of :class:`repro.models.base.GnnModel`. The
forward pass threads column-replicated feature blocks through the
layers (each layer ends with the reduce+redistribute, so no extra
``redistribute`` hook is needed); the backward pass chains errors with
:math:`G^{l-1} = \\sigma'(Z^{l-1}) \\odot \\Gamma^l` exactly as in the
single-node model, on blocks. Because parameters and their gradients
are replicated, the optimiser step runs identically on every rank.

Backend note: construct the model *inside* the rank function (layers
hold per-rank state and communicator references, neither of which may
cross a process boundary). Only the rank function and its kwargs are
pickled for the process backend — the model itself never is, so this
class works unchanged on both the thread and the process fabric.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.distributed.layers import (
    DistAGNNLayer,
    DistGATLayer,
    DistGCNLayer,
    DistGnnLayer,
    DistMultiHeadGATLayer,
    DistVALayer,
)
from repro.distributed.ops import OpSequencer
from repro.runtime.grid import ProcessGrid
from repro.tensor.csr import CSRMatrix
from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng

__all__ = ["DistGnnModel", "build_dist_model"]


class DistGnnModel:
    """A stack of distributed layers bound to a process grid.

    Construct *inside* the SPMD rank function, after the grid exists;
    the same constructor arguments (in particular ``seed``) on every
    rank guarantee replicated parameters.
    """

    def __init__(
        self,
        grid: ProcessGrid,
        layers: Sequence[DistGnnLayer],
        overlap: bool | None = None,
    ) -> None:
        if not layers:
            raise ValueError("a model needs at least one layer")
        self.grid = grid
        self.layers = list(layers)
        self.sequencer = OpSequencer()
        # None defers to REPRO_OVERLAP at each layer call.
        self.overlap = overlap
        self._caches: list[Any] | None = None

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------
    def forward(
        self,
        a_block: CSRMatrix,
        h_block: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> np.ndarray:
        """Full forward pass; returns the output block :math:`H^L_j`."""
        caches: list[Any] = []
        for layer in self.layers:
            h_block, cache = layer.forward(
                self.grid, a_block, h_block, self.sequencer,
                counter=counter, training=training, overlap=self.overlap,
            )
            caches.append(cache)
        self._caches = caches if training else None
        return h_block

    # ------------------------------------------------------------------
    def backward(
        self,
        d_h_out_block: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> list[dict[str, np.ndarray]]:
        """Full backward pass from the loss gradient block.

        ``d_h_out_block`` is :math:`\\nabla_{H^L}\\mathcal{L}`
        restricted to this rank's column block (replicated down the
        column, like every feature block). Returns replicated per-layer
        gradients.
        """
        if self._caches is None:
            raise RuntimeError("backward requires a prior forward(training=True)")
        grads: list[dict[str, np.ndarray]] = [None] * len(self.layers)  # type: ignore[list-item]
        gamma = d_h_out_block
        for index in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[index]
            cache = self._caches[index]
            g_block = gamma * layer.activation.grad(cache.z_block)
            gamma, grads[index] = layer.backward(
                self.grid, cache, g_block, self.sequencer,
                counter=counter, need_input_grad=index > 0,
                overlap=self.overlap,
            )
        return grads

    # ------------------------------------------------------------------
    def apply_gradients(
        self, grads: list[dict[str, np.ndarray]], lr: float
    ) -> None:
        """Replicated SGD step on every layer."""
        for layer, layer_grads in zip(self.layers, grads):
            layer.apply_gradients(layer_grads, lr)

    def parameters(self) -> list[dict[str, np.ndarray]]:
        return [layer.parameters() for layer in self.layers]

    def zero_caches(self) -> None:
        self._caches = None


def build_dist_model(
    grid: ProcessGrid,
    name: str,
    in_dim: int,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    activation: str | None = None,
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
    overlap: bool | None = None,
    **layer_kwargs,
) -> DistGnnModel:
    """Construct a distributed model by name (VA / AGNN / GAT / GCN).

    Mirrors :func:`repro.models.build_model` — same dims, same seeds,
    same activations — so the two produce numerically identical results
    given the same inputs, which the equivalence tests rely on.
    ``overlap`` selects comm/compute-overlapped layer execution
    (``None`` defers to ``REPRO_OVERLAP``); results and traffic are
    bit-identical either way.
    """
    layer_cls = {
        "va": DistVALayer,
        "agnn": DistAGNNLayer,
        "gat": DistGATLayer,
        "gcn": DistGCNLayer,
    }.get(name.lower())
    if layer_cls is None:
        raise ValueError(f"unknown model {name!r}; use VA, AGNN, GAT or GCN")
    if activation is None:
        activation = "elu" if name.lower() == "gat" else "relu"
    rng = make_rng(seed)
    heads = layer_kwargs.pop("heads", 1)
    # Head-batched execution is a multi-head concern; single-head layer
    # classes never see the flag.
    batched = layer_kwargs.pop("batched", True)
    if heads > 1:
        if name.lower() != "gat":
            raise ValueError("multi-head execution is a GAT feature")
        # Mirror repro.models.gat.gat_model's multi-head structure.
        layers: list[DistGnnLayer] = []
        current = in_dim
        for i in range(num_layers):
            last = i + 1 == num_layers
            layers.append(
                DistMultiHeadGATLayer(
                    current,
                    out_dim if last else hidden_dim,
                    heads=heads,
                    combine="mean" if last else "concat",
                    activation="identity" if last else activation,
                    seed=rng,
                    dtype=dtype,
                    batched=batched,
                    **layer_kwargs,
                )
            )
            current = hidden_dim * heads if not last else out_dim
        return DistGnnModel(grid, layers, overlap=overlap)
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    layers = [
        layer_cls(
            dims[i],
            dims[i + 1],
            activation=activation if i + 1 < num_layers else "identity",
            seed=rng,
            dtype=dtype,
            **layer_kwargs,
        )
        for i in range(num_layers)
    ]
    return DistGnnModel(grid, layers, overlap=overlap)
