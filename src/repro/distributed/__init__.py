"""A-stationary 1.5D distributed GNN execution (Section 6.3).

The distribution scheme, verbatim from the paper: the adjacency matrix
gets a 2D distribution on a ``P x P`` process grid (the analysis of
Section 7 slices into ``sqrt(p) x sqrt(p)`` blocks, so the grid is
square); the layer input :math:`H^l` is distributed in ``P`` row
blocks, each replicated ``P`` times down its grid column; the output is
distributed in ``P`` blocks, each split into ``P`` partial sums across
its grid row. Between layers the partial sums are reduced
(ring reduce-scatter along grid rows) and redistributed (a chunk
exchange) back into column-replicated input blocks. Weight matrices and
attention vectors are replicated everywhere.

Modules:

* :mod:`repro.distributed.partition` — block ranges, adjacency block
  extraction, feature distribution/collection.
* :mod:`repro.distributed.ops` — the shared communication patterns:
  diagonal row broadcast, softmax row-reductions, the reduce+
  redistribute pipeline, the transpose exchange.
* :mod:`repro.distributed.layers` — distributed VA/AGNN/GAT/GCN layers
  (forward and backward).
* :mod:`repro.distributed.model` — the distributed ``GnnModel``
  equivalent orchestrating layers, loss and training steps.
* :mod:`repro.distributed.api` — one-call helpers that run a whole
  distributed inference/training job on the simulated cluster and
  return outputs plus communication statistics.
"""

from repro.distributed.api import (
    distributed_inference,
    distributed_training_step,
)
from repro.distributed.model import DistGnnModel
from repro.distributed.partition import (
    block_range,
    block_ranges,
    collect_feature_blocks,
    distribute_adjacency,
    distribute_features,
)

__all__ = [
    "block_range",
    "block_ranges",
    "distribute_adjacency",
    "distribute_features",
    "collect_feature_blocks",
    "DistGnnModel",
    "distributed_inference",
    "distributed_training_step",
]
