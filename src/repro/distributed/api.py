"""One-call entry points for distributed execution on the simulated cluster.

These helpers own the SPMD boilerplate: they spin up ``p`` ranks, build
the grid, distribute the adjacency and features, construct replicated
models, run inference or full-batch training, and hand back the
assembled outputs together with the communication statistics that the
benchmark harness converts into modeled time.

Loss handling is genuinely distributed: each rank evaluates the loss
and its gradient on its own feature block only, with the global
normaliser (labelled-vertex count) and the scalar loss reduced across
ranks — matching the numerics of the single-node trainer exactly, which
the equivalence tests assert.

The rank programs are module-level functions (not closures) so the
same entry points run unchanged on the process-parallel backend:
``distributed_inference(..., backend="process")`` spawns real OS
processes, and the ``REPRO_FABRIC_BACKEND`` environment variable flips
a whole test run without touching call sites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.model import build_dist_model
from repro.distributed.partition import (
    block_range,
    collect_feature_blocks,
    distribute_adjacency,
    distribute_features,
)
from repro.runtime.executor import run_spmd
from repro.runtime.grid import square_grid
from repro.runtime.stats import RunStats
from repro.tensor.csr import CSRMatrix
from repro.training.loss import log_softmax

__all__ = [
    "DistributedResult",
    "distributed_inference",
    "distributed_training_step",
    "distributed_train",
]


@dataclass
class DistributedResult:
    """Assembled outcome of a distributed run."""

    output: np.ndarray | None
    losses: list[float]
    stats: RunStats


def _block_loss_gradient(
    loss: str,
    h_block: np.ndarray,
    labels_block: np.ndarray,
    mask_block: np.ndarray | None,
    global_count: int,
) -> tuple[float, np.ndarray]:
    """Local (unreduced) loss sum and gradient block.

    The gradient uses the *global* labelled count as normaliser so the
    concatenated blocks equal the single-node gradient; the returned
    loss is this block's unnormalised sum (callers allreduce and divide).
    """
    if mask_block is None:
        mask_block = np.ones(h_block.shape[0], dtype=bool)
    idx = np.flatnonzero(mask_block)
    grad = np.zeros_like(h_block, dtype=np.float64)
    if idx.size == 0:
        return 0.0, grad.astype(h_block.dtype)
    h = h_block[idx].astype(np.float64)
    y = labels_block[idx]
    if loss == "ce":
        logp = log_softmax(h)
        local_sum = float(-logp[np.arange(idx.size), y].sum())
        g = np.exp(logp)
        g[np.arange(idx.size), y] -= 1.0
        grad[idx] = g / max(global_count, 1)
    elif loss == "mse":
        diff = h - y
        local_sum = float((diff * diff).sum())
        grad[idx] = 2.0 * diff / max(global_count * h.shape[1], 1)
    else:
        raise ValueError("loss must be 'ce' or 'mse'")
    return local_sum, grad.astype(h_block.dtype)


def _loss_denominator(loss: str, mask: np.ndarray | None, n: int,
                      out_dim: int) -> int:
    count = int(mask.sum()) if mask is not None else n
    return count if loss == "ce" else count * out_dim


def _inference_program(
    comm,
    model_name: str,
    a: CSRMatrix,
    features: np.ndarray,
    hidden_dim: int,
    out_dim: int,
    num_layers: int,
    seed: int,
    dtype,
    layer_kwargs: dict,
    overlap: bool | None = None,
):
    """SPMD rank program for :func:`distributed_inference`.

    Module-level (not a closure) so the spawn-based process backend can
    pickle it by reference; every argument after ``comm`` arrives via
    ``run_spmd`` kwargs, identical on all ranks.
    """
    grid = square_grid(comm)
    a_block = distribute_adjacency(a, grid)
    h_block = distribute_features(features, grid)
    model = build_dist_model(
        grid, model_name, features.shape[1], hidden_dim, out_dim,
        num_layers=num_layers, seed=seed, dtype=dtype, overlap=overlap,
        **layer_kwargs,
    )
    out_block = model.forward(
        a_block, h_block, counter=comm.stats.flops, training=False
    )
    return collect_feature_blocks(grid, out_block)


def distributed_inference(
    model_name: str,
    a: CSRMatrix,
    features: np.ndarray,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    p: int = 4,
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
    timeout: float = 120.0,
    backend: str | None = None,
    overlap: bool | None = None,
    **layer_kwargs,
) -> DistributedResult:
    """Run a full inference pass on ``p`` simulated ranks.

    ``p`` must be a perfect square (the Section-7 grid). Returns the
    assembled output features and the run's traffic statistics.
    ``backend`` selects the execution fabric (thread/process) and
    ``overlap`` the comm/compute-overlapped layer schedules; see
    :func:`repro.runtime.executor.run_spmd`.
    """
    result = run_spmd(
        p, _inference_program, timeout=timeout, backend=backend,
        model_name=model_name, a=a, features=features,
        hidden_dim=hidden_dim, out_dim=out_dim, num_layers=num_layers,
        seed=seed, dtype=dtype, layer_kwargs=layer_kwargs, overlap=overlap,
    )
    return DistributedResult(
        output=result.values[0], losses=[], stats=result.stats
    )


def _training_program(
    comm,
    model_name: str,
    a: CSRMatrix,
    features: np.ndarray,
    labels: np.ndarray,
    hidden_dim: int,
    out_dim: int,
    num_layers: int,
    epochs: int,
    lr: float,
    loss: str,
    mask: np.ndarray | None,
    seed: int,
    dtype,
    collect_output: bool,
    denom: int,
    layer_kwargs: dict,
    overlap: bool | None = None,
):
    """SPMD rank program for :func:`distributed_train` (module-level,
    picklable — see :func:`_inference_program`)."""
    n = features.shape[0]
    grid = square_grid(comm)
    a_block = distribute_adjacency(a, grid)
    h_block = distribute_features(features, grid)
    c0, c1 = block_range(n, grid.py, grid.col)
    labels_block = labels[c0:c1]
    mask_block = None if mask is None else mask[c0:c1]
    model = build_dist_model(
        grid, model_name, features.shape[1], hidden_dim, out_dim,
        num_layers=num_layers, seed=seed, dtype=dtype, overlap=overlap,
        **layer_kwargs,
    )
    losses: list[float] = []
    out_block = None
    for _epoch in range(epochs):
        out_block = model.forward(
            a_block, h_block, counter=comm.stats.flops, training=True
        )
        global_count = denom if loss == "ce" else denom // out_dim
        local_sum, grad_block = _block_loss_gradient(
            loss, out_block, labels_block, mask_block, global_count
        )
        # Feature blocks are replicated down grid columns; count each
        # block's loss contribution exactly once (grid row 0).
        contribution = local_sum if grid.row == 0 else 0.0
        losses.append(
            float(grid.comm.allreduce(np.array(contribution))) / denom
        )
        grads = model.backward(grad_block, counter=comm.stats.flops)
        model.apply_gradients(grads, lr)
    model.zero_caches()
    collected = (
        collect_feature_blocks(grid, out_block) if collect_output else None
    )
    return losses, collected


def distributed_train(
    model_name: str,
    a: CSRMatrix,
    features: np.ndarray,
    labels: np.ndarray,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    p: int = 4,
    epochs: int = 1,
    lr: float = 0.01,
    loss: str = "ce",
    mask: np.ndarray | None = None,
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
    timeout: float = 300.0,
    collect_output: bool = True,
    backend: str | None = None,
    overlap: bool | None = None,
    **layer_kwargs,
) -> DistributedResult:
    """Full-batch distributed training for ``epochs`` iterations.

    Each epoch is one forward + backward pass plus a replicated SGD
    step — the paper's measured training unit. Returns the per-epoch
    losses, the final output features (assembled at rank 0 when
    ``collect_output``) and traffic statistics. ``backend`` selects the
    execution fabric (thread/process); ``overlap`` the comm/compute-
    overlapped layer schedules (``None`` defers to ``REPRO_OVERLAP``).
    """
    n = features.shape[0]
    denom = _loss_denominator(loss, mask, n, out_dim)
    result = run_spmd(
        p, _training_program, timeout=timeout, backend=backend,
        model_name=model_name, a=a, features=features, labels=labels,
        hidden_dim=hidden_dim, out_dim=out_dim, num_layers=num_layers,
        epochs=epochs, lr=lr, loss=loss, mask=mask, seed=seed, dtype=dtype,
        collect_output=collect_output, denom=denom,
        layer_kwargs=layer_kwargs, overlap=overlap,
    )
    losses, output = result.values[0]
    return DistributedResult(output=output, losses=losses, stats=result.stats)


def distributed_training_step(
    model_name: str,
    a: CSRMatrix,
    features: np.ndarray,
    labels: np.ndarray,
    hidden_dim: int,
    out_dim: int,
    **kwargs,
) -> DistributedResult:
    """One full-batch training iteration (``epochs=1`` convenience)."""
    kwargs.setdefault("epochs", 1)
    return distributed_train(
        model_name, a, features, labels, hidden_dim, out_dim, **kwargs
    )
