"""Distributed GNN layers on the 1.5D A-stationary schedule.

Each layer is the SPMD twin of its single-node counterpart in
``repro.models``: identical mathematics, with the Table-2 kernels
applied to local blocks and the four communication patterns of
:mod:`repro.distributed.ops` carrying the cross-rank data flow. The
communication structure per layer (square ``P x P`` grid, block size
``b = n / P``):

========================  =======================================
operation                 per-rank volume (words)
========================  =======================================
diagonal row broadcast    ``O(b k)`` (VA/AGNN/GAT forward+backward)
softmax row reductions    ``O(b log p)``   (feature-free)
reduce + redistribute     ``2 b k``
transpose exchange        ``b k``          (backward only)
weight-gradient reduce    ``O(k^2 log p)``
========================  =======================================

summing to the paper's :math:`O(nk/\\sqrt{p} + k^2)` per layer.

Rather than interleaving communicator calls and math by hand, each
layer *declares* its forward and backward passes as a
:class:`~repro.distributed.schedule.CommSchedule` — an ordered list of
:class:`~repro.distributed.schedule.Compute` kernels and labelled
:class:`~repro.distributed.schedule.Transfer` patterns. The base class
drives the shared scheduler, which can run the transfers synchronously
(the parity oracle) or overlapped with the local kernels scheduled
between a transfer and its first consumer (``REPRO_OVERLAP=1``).
Transfer initiation order is identical in both modes, so traffic
counters and tag streams never diverge.

Replication invariant: input feature blocks, weights, and every
backward output are identical across the ranks of a grid column; all
code paths preserve this bit-for-bit (NumPy kernels are deterministic),
which the distributed-equivalence tests assert.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from repro.core.activations import (
    get_activation,
    leaky_relu,
    leaky_relu_grad,
)
from repro.distributed.ops import (
    OpSequencer,
    distributed_row_softmax,
    distributed_row_softmax_backward,
)
from repro.distributed.schedule import (
    CommSchedule,
    Compute,
    Transfer,
    overlap_default,
)
from repro.models.base import glorot
from repro.runtime.grid import ProcessGrid
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import mm, sddmm_add, sddmm_dot, spmm
from repro.tensor.segment import bincount_sum, segment_sum
from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng

__all__ = [
    "DistGnnLayer",
    "DistVALayer",
    "DistAGNNLayer",
    "DistGATLayer",
    "DistMultiHeadGATLayer",
    "DistGCNLayer",
]


@dataclass
class _DistLayerCache:
    """Training cache shared by every distributed layer.

    One dataclass with per-model optional fields replaces the five
    near-identical per-layer caches the schedule refactor exposed.
    ``as_ctx`` seeds the backward schedule's context with whatever the
    forward pass recorded; ``caches`` is only used by the multi-head
    per-head oracle (a list of per-head caches, never a ctx entry).
    """

    a_block: CSRMatrix | None = None
    h_block: np.ndarray | None = None
    z_block: np.ndarray | None = None
    h_row: np.ndarray | None = None
    s_block: CSRMatrix | None = None
    hp: np.ndarray | None = None
    hp_col: np.ndarray | None = None
    hp_row: np.ndarray | None = None
    raw_values: np.ndarray | None = None
    cos_values: np.ndarray | None = None
    norms_row: np.ndarray | None = None
    norms_col: np.ndarray | None = None
    denom: np.ndarray | None = None
    caches: list | None = None

    _CTX_FIELDS: ClassVar[tuple[str, ...]] = (
        "a_block", "h_block", "z_block", "h_row", "s_block", "hp",
        "hp_col", "hp_row", "raw_values", "cos_values", "norms_row",
        "norms_col", "denom",
    )

    def as_ctx(self) -> dict[str, Any]:
        """Non-``None`` fields as a schedule context seed."""
        return {
            name: value
            for name in self._CTX_FIELDS
            if (value := getattr(self, name)) is not None
        }


class DistGnnLayer(ABC):
    """Base class: replicated parameters + schedule-driven SPMD passes.

    Parameters are initialised from an explicit ``seed`` so that every
    rank constructs bit-identical replicas — the distributed equivalent
    of the paper's "weight matrices W and vectors a are replicated
    across all processes".

    Subclasses declare their data flow via :meth:`_forward_schedule` /
    :meth:`_backward_schedule`; the concrete :meth:`forward` and
    :meth:`backward` drivers here execute those schedules, apply the
    activation, and assemble the cache/gradients. ``overlap`` selects
    comm/compute-overlapped execution (default: the ``REPRO_OVERLAP``
    environment variable).
    """

    #: ctx keys (beyond ``a_block``/``h_block``/``z_block``) the
    #: backward schedule reads; recorded into the training cache.
    forward_cache_keys: ClassVar[tuple[str, ...]] = ()

    def __init__(self, activation: str) -> None:
        self.activation = get_activation(activation)

    # ------------------------------------------------------------------
    def forward(
        self,
        grid: ProcessGrid,
        a_block: CSRMatrix,
        h_block: np.ndarray,
        sequencer: OpSequencer,
        counter: FlopCounter = null_counter(),
        training: bool = True,
        overlap: bool | None = None,
    ) -> tuple[np.ndarray, Any]:
        """Compute the next column-replicated feature block.

        ``h_block`` is this rank's input block :math:`H_j`; the return
        value is :math:`H^{l+1}_j` (post-activation, already reduced
        and redistributed) plus a training cache exposing ``z_block``.
        """
        overlap = overlap_default() if overlap is None else overlap
        ctx: dict[str, Any] = {
            "grid": grid, "a_block": a_block,
            "h_block": h_block, "counter": counter,
        }
        self._forward_schedule().run(grid, sequencer, ctx, overlap=overlap)
        h_next = self.activation.fn(ctx["z_block"])
        if not training:
            return h_next, None
        keys = ("a_block", "h_block", "z_block") + self.forward_cache_keys
        return h_next, _DistLayerCache(**{key: ctx[key] for key in keys})

    # ------------------------------------------------------------------
    def backward(
        self,
        grid: ProcessGrid,
        cache: Any,
        g_block: np.ndarray,
        sequencer: OpSequencer,
        counter: FlopCounter = null_counter(),
        need_input_grad: bool = True,
        overlap: bool | None = None,
    ) -> tuple[np.ndarray | None, dict[str, np.ndarray]]:
        """SPMD backward: ``g_block`` is :math:`dL/dZ` restricted to
        block ``j`` (column-replicated). Returns the input-feature
        gradient block (or ``None`` when ``need_input_grad=False`` —
        the first layer) and replicated parameter gradients.
        """
        overlap = overlap_default() if overlap is None else overlap
        ctx = cache.as_ctx()
        ctx.update({"grid": grid, "counter": counter, "g_block": g_block})
        self._backward_schedule(need_input_grad).run(
            grid, sequencer, ctx, overlap=overlap
        )
        gamma = ctx["gamma"] if need_input_grad else None
        return gamma, self._collect_grads(ctx)

    # ------------------------------------------------------------------
    @abstractmethod
    def _forward_schedule(self) -> CommSchedule:
        """Declare the forward pass; must produce ``z_block``."""

    @abstractmethod
    def _backward_schedule(self, need_input_grad: bool) -> CommSchedule:
        """Declare the backward pass; must produce ``gamma`` when
        ``need_input_grad`` and every key :meth:`_collect_grads` reads."""

    @abstractmethod
    def _collect_grads(self, ctx: dict[str, Any]) -> dict[str, np.ndarray]:
        """Assemble the replicated parameter gradients from the ctx."""

    @abstractmethod
    def parameters(self) -> dict[str, np.ndarray]:
        """Replicated parameters by name."""

    def apply_gradients(self, grads: dict[str, np.ndarray], lr: float) -> None:
        """SGD update; identical on every rank, preserving replication."""
        params = self.parameters()
        for name, grad in grads.items():
            param = params[name]
            param -= lr * np.asarray(grad, dtype=param.dtype)


# ----------------------------------------------------------------------
# Vanilla attention
# ----------------------------------------------------------------------
class DistVALayer(DistGnnLayer):
    """Distributed VA layer: one fused SDDMM + one SpMM + redistribution."""

    forward_cache_keys = ("h_row", "s_block", "hp")

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        self.weight = glorot(make_rng(seed), (in_dim, out_dim), dtype)
        self.in_dim = in_dim
        self.out_dim = out_dim

    def _forward_schedule(self) -> CommSchedule:
        return CommSchedule([
            Transfer("h_row", "row_bcast", "h_block", phase="psi"),
            # H W reads nothing remote — it runs while H_i is in flight.
            Compute("hp", lambda c: mm(
                c["h_block"], self.weight, counter=c["counter"])),
            Compute("dots", lambda c: sddmm_dot(
                c["a_block"], c["h_row"], c["h_block"], counter=c["counter"]
            ), needs=("h_row",)),
            Compute("s_block", lambda c: c["a_block"].with_data(
                c["a_block"].data * c["dots"])),
            Compute("partial", lambda c: spmm(
                c["s_block"], c["hp"], counter=c["counter"])),
            Transfer("z_block", "redistribute", "partial",
                     phase="redistribute"),
        ], name="va.forward")

    def _backward_schedule(self, need_input_grad: bool) -> CommSchedule:
        steps: list[Compute | Transfer] = [
            Transfer("g_row", "row_bcast", "g_block", phase="backward"),
            Compute("stg_partial", lambda c: spmm(
                c["s_block"].transpose(), c["g_row"], counter=c["counter"]
            ), needs=("g_row",)),
            Compute("dw_local", lambda c: mm(
                c["h_block"].T, c["stg_partial"], counter=c["counter"])),
            Transfer("d_weight", "allreduce", "dw_local", phase="backward"),
        ]
        if need_input_grad:
            steps += [
                # The Eq.-14 score gradient and its two feature terms
                # run under the weight-gradient allreduce.
                Compute("ds", lambda c: sddmm_dot(
                    c["a_block"], c["g_row"], c["hp"], counter=c["counter"])),
                Compute("n_block", lambda c: c["a_block"].with_data(
                    c["ds"] * c["a_block"].data)),
                Compute("row_partial", lambda c: spmm(
                    c["n_block"], c["h_block"], counter=c["counter"])),
                Transfer("row_term", "row_allreduce", "row_partial",
                         phase="backward"),
                Compute("col_partial", lambda c: spmm(
                    c["n_block"].transpose(), c["h_row"],
                    counter=c["counter"],
                ) + mm(c["stg_partial"], self.weight.T,
                       counter=c["counter"])),
                Transfer("col_term", "col_allreduce", "col_partial",
                         phase="backward"),
                Transfer("row_t", "transpose", "row_term", phase="backward"),
                Compute("gamma", lambda c: c["col_term"] + c["row_t"],
                        needs=("col_term", "row_t")),
            ]
        return CommSchedule(steps, name="va.backward")

    def _collect_grads(self, ctx):
        return {"weight": ctx["d_weight"]}

    def parameters(self):
        return {"weight": self.weight}


# ----------------------------------------------------------------------
# AGNN
# ----------------------------------------------------------------------
class DistAGNNLayer(DistGnnLayer):
    """Distributed AGNN layer (cosine attention + distributed softmax)."""

    forward_cache_keys = (
        "h_row", "s_block", "hp", "cos_values",
        "norms_row", "norms_col", "denom",
    )

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        beta: float = 1.0,
        learnable_beta: bool = False,
        eps: float = 1e-12,
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        self.weight = glorot(make_rng(seed), (in_dim, out_dim), dtype)
        self.beta = np.array(beta, dtype=dtype)
        self.learnable_beta = learnable_beta
        self.eps = eps
        self.in_dim = in_dim
        self.out_dim = out_dim

    def _forward_schedule(self) -> CommSchedule:
        def norms_row(c):
            norms = np.sqrt(np.einsum("ij,ij->i", c["h_row"], c["h_row"]))
            c["counter"].add(4 * c["h_block"].size, "norms")
            return norms

        def soft(c):
            values = distributed_row_softmax(
                c["grid"], c["a_block"], float(self.beta) * c["cos_values"]
            )
            c["counter"].add(7 * c["a_block"].nnz, "softmax")
            return values

        return CommSchedule([
            Transfer("h_row", "row_bcast", "h_block", phase="psi"),
            # Column norms and the projection only read local blocks —
            # both overlap the broadcast.
            Compute("norms_col", lambda c: np.sqrt(
                np.einsum("ij,ij->i", c["h_block"], c["h_block"]))),
            Compute("hp", lambda c: mm(
                c["h_block"], self.weight, counter=c["counter"])),
            Compute("norms_row", norms_row, needs=("h_row",)),
            Compute("dots", lambda c: sddmm_dot(
                c["a_block"], c["h_row"], c["h_block"], counter=c["counter"])),
            Compute("denom", lambda c: np.maximum(
                c["norms_row"][c["a_block"].expand_rows()]
                * c["norms_col"][c["a_block"].indices],
                self.eps,
            )),
            Compute("cos_values", lambda c: c["dots"] / c["denom"]),
            Compute("soft", soft, phase="softmax"),
            Compute("s_block", lambda c: c["a_block"].with_data(c["soft"])),
            Compute("partial", lambda c: spmm(
                c["s_block"], c["hp"], counter=c["counter"])),
            Transfer("z_block", "redistribute", "partial",
                     phase="redistribute"),
        ], name="agnn.forward")

    def _backward_schedule(self, need_input_grad: bool) -> CommSchedule:
        steps: list[Compute | Transfer] = [
            Transfer("g_row", "row_bcast", "g_block", phase="backward"),
            Compute("stg_partial", lambda c: spmm(
                c["s_block"].transpose(), c["g_row"], counter=c["counter"]
            ), needs=("g_row",)),
            Compute("dw_local", lambda c: mm(
                c["h_block"].T, c["stg_partial"], counter=c["counter"])),
            Transfer("d_weight", "allreduce", "dw_local", phase="backward"),
            Compute("ds", lambda c: sddmm_dot(
                c["a_block"], c["g_row"], c["hp"], counter=c["counter"])),
            Compute("dt", lambda c: distributed_row_softmax_backward(
                c["grid"], c["a_block"], c["s_block"].data, c["ds"]
            ), phase="backward"),
        ]
        if self.learnable_beta:
            steps += [
                Compute("d_beta_local", lambda c: np.array(
                    np.dot(c["dt"], c["cos_values"]))),
                Transfer("d_beta", "allreduce", "d_beta_local",
                         phase="backward"),
            ]
        if need_input_grad:
            def corrections(c):
                # Diagonal corrections of the cosine Jacobian.
                norms_row = np.maximum(c["norms_row"], self.eps)
                norms_col = np.maximum(c["norms_col"], self.eps)
                c["row_term"] = (
                    c["row_sum"]
                    - (c["rc"] / (norms_row**2))[:, None] * c["h_row"]
                )
                c["col_term"] = (
                    c["col_sum"]
                    - (c["cc"] / (norms_col**2))[:, None] * c["h_block"]
                )
                c["counter"].add(8 * c["a_block"].nnz, "agnn_vjp")

            steps += [
                Compute("dc", lambda c: float(self.beta) * c["dt"]),
                # Forward already gathered/clipped the per-edge norm
                # products (``denom``).
                Compute("d_mat", lambda c: c["a_block"].with_data(
                    c["dc"] / c["denom"])),
                Compute("row_partial", lambda c: spmm(
                    c["d_mat"], c["h_block"], counter=c["counter"])),
                Transfer("row_sum", "row_allreduce", "row_partial",
                         phase="backward"),
                Compute("col_partial", lambda c: spmm(
                    c["d_mat"].transpose(), c["h_row"], counter=c["counter"]
                ) + mm(c["stg_partial"], self.weight.T,
                       counter=c["counter"])),
                Transfer("col_sum", "col_allreduce", "col_partial",
                         phase="backward"),
                Compute("dcc", lambda c: c["dc"] * c["cos_values"]),
                Compute("rc_local", lambda c: segment_sum(
                    c["dcc"], c["a_block"].indptr)),
                Transfer("rc", "row_allreduce", "rc_local",
                         phase="backward"),
                Compute("cc_local", lambda c: bincount_sum(
                    c["a_block"].indices, c["dcc"], c["a_block"].shape[1])),
                Transfer("cc", "col_allreduce", "cc_local",
                         phase="backward"),
                Compute(None, corrections,
                        needs=("row_sum", "col_sum", "rc", "cc")),
                Transfer("row_t", "transpose", "row_term", phase="backward"),
                Compute("gamma", lambda c: c["col_term"] + c["row_t"],
                        needs=("row_t",)),
            ]
        return CommSchedule(steps, name="agnn.backward")

    def _collect_grads(self, ctx):
        grads = {"weight": ctx["d_weight"]}
        if self.learnable_beta:
            grads["beta"] = ctx["d_beta"].astype(self.beta.dtype)
        return grads

    def parameters(self):
        params = {"weight": self.weight}
        if self.learnable_beta:
            params["beta"] = self.beta
        return params


# ----------------------------------------------------------------------
# GAT
# ----------------------------------------------------------------------
class DistGATLayer(DistGnnLayer):
    """Distributed GAT layer.

    The projected features :math:`H' = H W` are computed locally
    (``W`` is replicated); the row-side block :math:`H'_i` is what gets
    broadcast along the grid row — one broadcast covers both the
    additive SDDMM (:math:`u_i + v_j`) and the backward pass.
    """

    forward_cache_keys = ("hp_col", "hp_row", "s_block", "raw_values")

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "elu",
        slope: float = 0.2,
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        rng = make_rng(seed)
        self.weight = glorot(rng, (in_dim, out_dim), dtype)
        self.a_src = glorot(rng, (out_dim,), dtype)
        self.a_dst = glorot(rng, (out_dim,), dtype)
        self.slope = slope
        self.in_dim = in_dim
        self.out_dim = out_dim

    def _forward_schedule(self) -> CommSchedule:
        def u(c):
            result = c["hp_row"] @ self.a_src
            c["counter"].add(4 * c["hp_col"].size, "gat_uv")
            return result

        def soft(c):
            values = distributed_row_softmax(
                c["grid"], c["a_block"], c["logits"]
            )
            c["counter"].add(6 * c["a_block"].nnz, "softmax")
            return values

        return CommSchedule([
            Compute("hp_col", lambda c: mm(
                c["h_block"], self.weight, counter=c["counter"])),
            Transfer("hp_row", "row_bcast", "hp_col", phase="psi"),
            # The destination scores only need the local block — they
            # overlap the broadcast of the source-side block.
            Compute("v", lambda c: c["hp_col"] @ self.a_dst),
            Compute("u", u, needs=("hp_row",)),
            Compute("raw_values", lambda c: sddmm_add(
                c["a_block"], c["u"], c["v"], counter=c["counter"])),
            Compute("logits", lambda c: leaky_relu(
                c["raw_values"], self.slope)),
            Compute("soft", soft, phase="softmax"),
            Compute("s_block", lambda c: c["a_block"].with_data(c["soft"])),
            Compute("partial", lambda c: spmm(
                c["s_block"], c["hp_col"], counter=c["counter"])),
            Transfer("z_block", "redistribute", "partial",
                     phase="redistribute"),
        ], name="gat.forward")

    def _backward_schedule(self, need_input_grad: bool) -> CommSchedule:
        def draw(c):
            result = c["dlogits"] * leaky_relu_grad(
                c["raw_values"], self.slope
            )
            c["counter"].add(4 * c["a_block"].nnz, "gat_vjp")
            return result

        # Attention-vector gradients: contribute each complete block
        # exactly once (grid column 0 / grid row 0 / diagonal), then sum.
        def da_src_local(c):
            if c["grid"].col == 0:
                return c["hp_row"].T @ c["du"]
            return np.zeros_like(self.a_src, dtype=c["du"].dtype)

        def da_dst_local(c):
            if c["grid"].row == 0:
                return c["hp_col"].T @ c["dv"]
            return np.zeros_like(self.a_dst, dtype=c["dv"].dtype)

        def col_partial(c):
            return c["stg_partial"] + (
                np.outer(c["dv"], self.a_dst) if c["grid"].row == 0
                else np.zeros_like(c["stg_partial"])
            )

        # Weight gradient dW = H^T dH' assembled from single-count parts.
        def dw_local(c):
            grid = c["grid"]
            dw = mm(c["h_block"].T, c["stg_partial"], counter=c["counter"])
            if grid.row == 0:
                dw = dw + c["h_block"].T @ np.outer(c["dv"], self.a_dst)
            if grid.row == grid.col:
                dw = dw + c["h_block"].T @ np.outer(c["du"], self.a_src)
            return dw

        steps: list[Compute | Transfer] = [
            Transfer("g_row", "row_bcast", "g_block", phase="backward"),
            Compute("ds", lambda c: sddmm_dot(
                c["a_block"], c["g_row"], c["hp_col"], counter=c["counter"]
            ), needs=("g_row",)),
            Compute("dlogits", lambda c: distributed_row_softmax_backward(
                c["grid"], c["a_block"], c["s_block"].data, c["ds"]
            ), phase="backward"),
            Compute("draw", draw),
            Compute("du_local", lambda c: segment_sum(
                c["draw"], c["a_block"].indptr)),
            Transfer("du", "row_allreduce", "du_local", phase="backward"),
            Compute("dv_local", lambda c: bincount_sum(
                c["a_block"].indices, c["draw"], c["a_block"].shape[1])),
            Transfer("dv", "col_allreduce", "dv_local", phase="backward"),
            # S^T G reads neither du nor dv — it runs under both
            # score-gradient allreduces.
            Compute("stg_partial", lambda c: spmm(
                c["s_block"].transpose(), c["g_row"], counter=c["counter"])),
            Compute("da_src_local", da_src_local, needs=("du",)),
            Transfer("da_src", "allreduce", "da_src_local",
                     phase="backward"),
            Compute("da_dst_local", da_dst_local, needs=("dv",)),
            Transfer("da_dst", "allreduce", "da_dst_local",
                     phase="backward"),
            Compute("col_partial", col_partial),
            Transfer("col_term", "col_allreduce", "col_partial",
                     phase="backward"),  # dHp via col terms
            Compute("row_term", lambda c: np.outer(
                c["du"], self.a_src)),  # complete locally
            Compute("dw_local", dw_local),
            Transfer("d_weight", "allreduce", "dw_local", phase="backward"),
        ]
        if need_input_grad:
            steps += [
                Transfer("row_t", "transpose", "row_term",
                         phase="backward"),
                Compute("dhp", lambda c: c["col_term"] + c["row_t"],
                        needs=("col_term", "row_t")),
                Compute("gamma", lambda c: mm(
                    c["dhp"], self.weight.T, counter=c["counter"])),
            ]
        return CommSchedule(steps, name="gat.backward")

    def _collect_grads(self, ctx):
        return {
            "weight": ctx["d_weight"],
            "a_src": ctx["da_src"],
            "a_dst": ctx["da_dst"],
        }

    def parameters(self):
        return {"weight": self.weight, "a_src": self.a_src, "a_dst": self.a_dst}


# ----------------------------------------------------------------------
# GCN (C-GNN special case)
# ----------------------------------------------------------------------
class DistGCNLayer(DistGnnLayer):
    """Distributed GCN layer: pure SpMM + MM, no attention traffic.

    ``a_block`` must be the block of the pre-normalised adjacency.
    One inference layer costs exactly one broadcast-free SpMM plus the
    reduce+redistribute — the minimal-communication case of Section 8.4.
    """

    forward_cache_keys = ("hp",)

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        self.weight = glorot(make_rng(seed), (in_dim, out_dim), dtype)
        self.in_dim = in_dim
        self.out_dim = out_dim

    def _forward_schedule(self) -> CommSchedule:
        return CommSchedule([
            Compute("hp", lambda c: mm(
                c["h_block"], self.weight, counter=c["counter"])),
            Compute("partial", lambda c: spmm(
                c["a_block"], c["hp"], counter=c["counter"])),
            Transfer("z_block", "redistribute", "partial",
                     phase="redistribute"),
        ], name="gcn.forward")

    def _backward_schedule(self, need_input_grad: bool) -> CommSchedule:
        steps: list[Compute | Transfer] = [
            Transfer("g_row", "row_bcast", "g_block", phase="backward"),
            Compute("stg_partial", lambda c: spmm(
                c["a_block"].transpose(), c["g_row"], counter=c["counter"]
            ), needs=("g_row",)),
            Compute("dw_local", lambda c: mm(
                c["h_block"].T, c["stg_partial"], counter=c["counter"])),
            Transfer("d_weight", "allreduce", "dw_local", phase="backward"),
        ]
        if need_input_grad:
            steps += [
                Compute("gamma_local", lambda c: mm(
                    c["stg_partial"], self.weight.T, counter=c["counter"])),
                Transfer("gamma", "col_allreduce", "gamma_local",
                         phase="backward"),
            ]
        return CommSchedule(steps, name="gcn.backward")

    def _collect_grads(self, ctx):
        return {"weight": ctx["d_weight"]}

    def parameters(self):
        return {"weight": self.weight}


# ----------------------------------------------------------------------
# Multi-head GAT (extension, mirrors models.gat.MultiHeadGATLayer)
# ----------------------------------------------------------------------
class DistMultiHeadGATLayer(DistGnnLayer):
    """Distributed multi-head GAT on the 1.5D schedule.

    With ``batched=True`` (the default) the per-head messages of every
    communication step are coalesced into one stacked fabric transfer:
    a single ``(b, heads*d)`` row broadcast, one distributed softmax
    over stacked ``(nnz, heads)`` logits, one reduce+redistribute and
    one transpose exchange per layer step — ``heads`` times fewer
    messages than the per-head loop at the same total payload, which
    :class:`~repro.runtime.stats.CommStats` makes observable.

    ``batched=False`` keeps the original sequential per-head loop of
    full :class:`DistGATLayer` objects as the correctness oracle. Both
    modes share parameter storage (per-head ``weight``/``a_src``/
    ``a_dst`` are views into the stacked arrays), matching the
    single-node :class:`~repro.models.gat.MultiHeadGATLayer` given the
    same seeds — the equivalence tests assert this.
    """

    forward_cache_keys = ("hp_col", "hp_row", "s_block", "raw_values")

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        heads: int = 4,
        combine: str = "concat",
        activation: str = "elu",
        slope: float = 0.2,
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
        batched: bool = True,
    ) -> None:
        super().__init__(activation)
        if combine not in ("concat", "mean"):
            raise ValueError("combine must be 'concat' or 'mean'")
        rng = make_rng(seed)
        self.heads = [
            DistGATLayer(in_dim, out_dim, activation="identity",
                         slope=slope, seed=rng, dtype=dtype)
            for _ in range(heads)
        ]
        self.combine = combine
        self.batched = batched
        self.slope = slope
        self.in_dim = in_dim
        self.head_dim = out_dim
        self.num_heads = heads
        self.out_dim = out_dim * heads if combine == "concat" else out_dim
        # Stacked replicated parameters; per-head attributes are
        # contiguous (head-major) views, so oracle and batched paths
        # share storage, SGD updates and flat-index perturbation.
        self._w_stack = np.stack([head.weight for head in self.heads])
        self._a_src_mat = np.stack([head.a_src for head in self.heads])
        self._a_dst_mat = np.stack([head.a_dst for head in self.heads])
        for index, head in enumerate(self.heads):
            head.weight = self._w_stack[index]
            head.a_src = self._a_src_mat[index]
            head.a_dst = self._a_dst_mat[index]

    def _stacked_weight(self) -> np.ndarray:
        """``(in, heads*d)`` column-block weight, rebuilt per call so
        in-place updates are always reflected."""
        return self._w_stack.transpose(1, 0, 2).reshape(
            self.in_dim, self.num_heads * self.head_dim
        )

    # ------------------------------------------------------------------
    def forward(self, grid, a_block, h_block, sequencer,
                counter=null_counter(), training=True, overlap=None):
        if self.batched:
            return super().forward(
                grid, a_block, h_block, sequencer,
                counter=counter, training=training, overlap=overlap,
            )
        outputs, caches = [], []
        for head in self.heads:
            out, cache = head.forward(
                grid, a_block, h_block, sequencer,
                counter=counter, training=training, overlap=overlap,
            )
            outputs.append(out)
            caches.append(cache)
        if self.combine == "concat":
            z_block = np.concatenate(outputs, axis=1)
        else:
            z_block = np.mean(outputs, axis=0)
        h_next = self.activation.fn(z_block)
        if not training:
            return h_next, None
        return h_next, _DistLayerCache(caches=caches, z_block=z_block)

    def backward(self, grid, cache, g_block, sequencer,
                 counter=null_counter(), need_input_grad=True, overlap=None):
        if cache.caches is None:
            return super().backward(
                grid, cache, g_block, sequencer,
                counter=counter, need_input_grad=need_input_grad,
                overlap=overlap,
            )
        n_heads = len(self.heads)
        if self.combine == "concat":
            width = g_block.shape[1] // n_heads
            head_grads = [
                np.ascontiguousarray(g_block[:, i * width: (i + 1) * width])
                for i in range(n_heads)
            ]
        else:
            head_grads = [g_block / n_heads] * n_heads
        gamma = None
        grads: dict[str, np.ndarray] = {}
        for index, (head, head_cache, head_g) in enumerate(
            zip(self.heads, cache.caches, head_grads)
        ):
            head_gamma, head_param_grads = head.backward(
                grid, head_cache, head_g, sequencer,
                counter=counter, need_input_grad=need_input_grad,
                overlap=overlap,
            )
            if need_input_grad:
                gamma = head_gamma if gamma is None else gamma + head_gamma
            for name, value in head_param_grads.items():
                grads[f"head{index}.{name}"] = value
        return gamma, grads

    # ------------------------------------------------------------------
    def _forward_schedule(self) -> CommSchedule:
        heads, d = self.num_heads, self.head_dim

        def u(c):
            result = np.einsum("nhd,hd->nh", c["hp_row"], self._a_src_mat)
            c["counter"].add(4 * c["hp_col"].size, "gat_uv")
            return result

        def soft(c):
            # Stacked (nnz, heads) logits: one distributed softmax (two
            # feature-free allreduces) normalises all heads.
            values = distributed_row_softmax(
                c["grid"], c["a_block"], c["logits"]
            )
            c["counter"].add(6 * c["raw_values"].size, "softmax")
            return values

        def z_block(c):
            if self.combine == "concat":
                return c["z_flat"]
            return c["z_flat"].reshape(-1, heads, d).mean(axis=1)

        return CommSchedule([
            Compute("hp_col_flat", lambda c: mm(
                c["h_block"], self._stacked_weight(), counter=c["counter"])),
            # ONE row broadcast carries every head's projected block.
            Transfer("hp_row_flat", "row_bcast", "hp_col_flat", phase="psi"),
            Compute("hp_col", lambda c: c["hp_col_flat"].reshape(
                -1, heads, d)),
            Compute("v", lambda c: np.einsum(
                "nhd,hd->nh", c["hp_col"], self._a_dst_mat)),
            Compute("hp_row", lambda c: c["hp_row_flat"].reshape(
                -1, heads, d), needs=("hp_row_flat",)),
            Compute("u", u),
            Compute("raw_values", lambda c: sddmm_add(
                c["a_block"], c["u"], c["v"], counter=c["counter"])),
            Compute("logits", lambda c: leaky_relu(
                c["raw_values"], self.slope)),
            Compute("soft", soft, phase="softmax"),
            Compute("s_block", lambda c: c["a_block"].with_data(c["soft"])),
            # ONE reduce+redistribute of the flat (b, heads*d) partials.
            Compute("partial", lambda c: spmm(
                c["s_block"], c["hp_col"], counter=c["counter"]
            ).reshape(-1, heads * d)),
            Transfer("z_flat", "redistribute", "partial",
                     phase="redistribute"),
            Compute("z_block", z_block),
        ], name="mh_gat.forward")

    def _backward_schedule(self, need_input_grad: bool) -> CommSchedule:
        heads, d = self.num_heads, self.head_dim

        def g_flat(c):
            if self.combine == "concat":
                return np.ascontiguousarray(c["g_block"])
            # Mean combine: each head sees dL/dZ_h = g / heads.
            b = c["g_block"].shape[0]
            return np.ascontiguousarray(
                np.broadcast_to(
                    (c["g_block"] / heads)[:, None, :], (b, heads, d)
                ).reshape(b, heads * d)
            )

        def draw(c):
            result = c["dlogits"] * leaky_relu_grad(
                c["raw_values"], self.slope
            )
            c["counter"].add(4 * result.size, "gat_vjp")
            return result

        # Attention-vector gradients: single-count blocks, then sum —
        # one allreduce carries all heads' (heads, d) gradients.
        def da_src_local(c):
            if c["grid"].col == 0:
                return np.einsum("nhd,nh->hd", c["hp_row"], c["du"])
            return np.zeros_like(self._a_src_mat, dtype=c["du"].dtype)

        def da_dst_local(c):
            if c["grid"].row == 0:
                return np.einsum("nhd,nh->hd", c["hp_col"], c["dv"])
            return np.zeros_like(self._a_dst_mat, dtype=c["dv"].dtype)

        def col_partial(c):
            return c["stg_flat"] + (
                c["dst_rank1"] if c["grid"].row == 0
                else np.zeros_like(c["stg_flat"])
            )

        # Weight gradient dW = H^T dH' from single-count parts; one
        # (in, heads*d) allreduce replaces `heads` separate ones.
        def dw_local(c):
            grid = c["grid"]
            dw = mm(c["h_block"].T, c["stg_flat"], counter=c["counter"])
            if grid.row == 0:
                dw = dw + c["h_block"].T @ c["dst_rank1"]
            if grid.row == grid.col:
                dw = dw + c["h_block"].T @ c["src_rank1"]
            return dw

        steps: list[Compute | Transfer] = [
            Compute("g_flat", g_flat),
            # ONE row broadcast of the stacked output gradient.
            Transfer("g_row_flat", "row_bcast", "g_flat", phase="backward"),
            Compute("g_row", lambda c: c["g_row_flat"].reshape(
                -1, heads, d), needs=("g_row_flat",)),
            Compute("ds", lambda c: sddmm_dot(
                c["a_block"], c["g_row"], c["hp_col"], counter=c["counter"])),
            Compute("dlogits", lambda c: distributed_row_softmax_backward(
                c["grid"], c["a_block"], c["s_block"].data, c["ds"]
            ), phase="backward"),
            Compute("draw", draw),
            Compute("du_local", lambda c: segment_sum(
                c["draw"], c["a_block"].indptr)),
            Transfer("du", "row_allreduce", "du_local", phase="backward"),
            Compute("dv_local", lambda c: bincount_sum(
                c["a_block"].indices, c["draw"], c["a_block"].shape[1])),
            Transfer("dv", "col_allreduce", "dv_local", phase="backward"),
            Compute("stg_flat", lambda c: spmm(
                c["s_block"].transpose(), c["g_row"], counter=c["counter"]
            ).reshape(-1, heads * d)),
            Compute("da_src_local", da_src_local, needs=("du",)),
            Transfer("da_src", "allreduce", "da_src_local",
                     phase="backward"),
            Compute("da_dst_local", da_dst_local, needs=("dv",)),
            Transfer("da_dst", "allreduce", "da_dst_local",
                     phase="backward"),
            # Per-head rank-1 updates, stacked flat: outer(dv_h, a_dst_h)
            # becomes one (b, heads*d) array.
            Compute("dst_rank1", lambda c: (
                c["dv"][:, :, None] * self._a_dst_mat[None]
            ).reshape(-1, heads * d)),
            Compute("src_rank1", lambda c: (
                c["du"][:, :, None] * self._a_src_mat[None]
            ).reshape(-1, heads * d)),
            Compute("col_partial", col_partial),
            # ONE allreduce of the stacked column terms.
            Transfer("col_term", "col_allreduce", "col_partial",
                     phase="backward"),
            Compute("dw_local", dw_local),
            Transfer("d_weight", "allreduce", "dw_local", phase="backward"),
        ]
        if need_input_grad:
            steps += [
                # ONE transpose exchange of the stacked row terms
                # (src_rank1 is complete locally).
                Transfer("row_t", "transpose", "src_rank1",
                         phase="backward"),
                Compute("dhp_flat", lambda c: c["col_term"] + c["row_t"],
                        needs=("col_term", "row_t")),
                Compute("gamma", lambda c: mm(
                    c["dhp_flat"], self._stacked_weight().T,
                    counter=c["counter"])),
            ]
        return CommSchedule(steps, name="mh_gat.backward")

    def _collect_grads(self, ctx):
        d = self.head_dim
        grads: dict[str, np.ndarray] = {}
        for i in range(self.num_heads):
            grads[f"head{i}.weight"] = ctx["d_weight"][:, i * d: (i + 1) * d]
            grads[f"head{i}.a_src"] = ctx["da_src"][i]
            grads[f"head{i}.a_dst"] = ctx["da_dst"][i]
        return grads

    def parameters(self):
        params: dict[str, np.ndarray] = {}
        for index, head in enumerate(self.heads):
            for name, value in head.parameters().items():
                params[f"head{index}.{name}"] = value
        return params
