"""Distributed GNN layers on the 1.5D A-stationary schedule.

Each layer is the SPMD twin of its single-node counterpart in
``repro.models``: identical mathematics, with the Table-2 kernels
applied to local blocks and the four communication patterns of
:mod:`repro.distributed.ops` carrying the cross-rank data flow. The
communication structure per layer (square ``P x P`` grid, block size
``b = n / P``):

========================  =======================================
operation                 per-rank volume (words)
========================  =======================================
diagonal row broadcast    ``O(b k)`` (VA/AGNN/GAT forward+backward)
softmax row reductions    ``O(b log p)``   (feature-free)
reduce + redistribute     ``2 b k``
transpose exchange        ``b k``          (backward only)
weight-gradient reduce    ``O(k^2 log p)``
========================  =======================================

summing to the paper's :math:`O(nk/\\sqrt{p} + k^2)` per layer.

Replication invariant: input feature blocks, weights, and every
backward output are identical across the ranks of a grid column; all
code paths preserve this bit-for-bit (NumPy kernels are deterministic),
which the distributed-equivalence tests assert.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.activations import (
    get_activation,
    leaky_relu,
    leaky_relu_grad,
)
from repro.distributed.ops import (
    OpSequencer,
    distributed_row_softmax,
    distributed_row_softmax_backward,
    reduce_and_redistribute,
    row_bcast_from_diagonal,
    transpose_exchange,
)
from repro.models.base import glorot
from repro.runtime.grid import ProcessGrid
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import mm, sddmm_add, sddmm_dot, spmm
from repro.tensor.segment import bincount_sum, segment_sum
from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng

__all__ = [
    "DistGnnLayer",
    "DistVALayer",
    "DistAGNNLayer",
    "DistGATLayer",
    "DistMultiHeadGATLayer",
    "DistGCNLayer",
]


# ----------------------------------------------------------------------
# Shared SPMD plumbing (used by every layer below; the helpers fix the
# communication-op order, which the sequencer-equivalence tests pin)
# ----------------------------------------------------------------------
def _aggregate_redistribute(grid, s_block, hp, sequencer, counter):
    """Aggregation tail shared by all layers: :math:`Z_j` from local
    :math:`S_{ij} H'_j` partials via one reduce+redistribute."""
    grid.comm.stats.set_phase("aggregate")
    partial = spmm(s_block, hp, counter=counter)
    grid.comm.stats.set_phase("redistribute")
    return reduce_and_redistribute(grid, partial, sequencer)


def _project_aggregate_redistribute(
    grid, s_block, h_block, weight, sequencer, counter
):
    """``project_first`` forward tail: ``hp = H W`` then aggregate."""
    grid.comm.stats.set_phase("aggregate")
    hp = mm(h_block, weight, counter=counter)
    z_block = _aggregate_redistribute(grid, s_block, hp, sequencer, counter)
    return hp, z_block


def _backward_entry(grid, s_block, h_block, g_block, counter):
    """Common backward prologue of VA/AGNN/GCN.

    Broadcasts the output gradient along grid rows, forms the
    :math:`S^T G` partial and allreduces the Eq.-13 weight gradient
    :math:`Y = H^T S^T G` — in that exact communication order.
    """
    g_row = row_bcast_from_diagonal(grid, g_block)
    stg_partial = spmm(s_block.transpose(), g_row, counter=counter)
    d_weight = grid.comm.allreduce(
        mm(h_block.T, stg_partial, counter=counter)
    )
    return g_row, stg_partial, d_weight


def _assemble_gamma(grid, sequencer, row_term, col_term):
    """Fold the row-role feature terms into the column distribution:
    :math:`\\Gamma_j = \\text{col} + (\\text{row})^T`-exchange."""
    return col_term + transpose_exchange(grid, row_term, sequencer)


class DistGnnLayer(ABC):
    """Base class: replicated parameters + SPMD forward/backward.

    Parameters are initialised from an explicit ``seed`` so that every
    rank constructs bit-identical replicas — the distributed equivalent
    of the paper's "weight matrices W and vectors a are replicated
    across all processes".
    """

    def __init__(self, activation: str) -> None:
        self.activation = get_activation(activation)

    @abstractmethod
    def forward(
        self,
        grid: ProcessGrid,
        a_block: CSRMatrix,
        h_block: np.ndarray,
        sequencer: OpSequencer,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, Any]:
        """Compute the next column-replicated feature block.

        ``h_block`` is this rank's input block :math:`H_j`; the return
        value is :math:`H^{l+1}_j` (post-activation, already reduced
        and redistributed) plus a training cache exposing ``z_block``.
        """

    @abstractmethod
    def backward(
        self,
        grid: ProcessGrid,
        cache: Any,
        g_block: np.ndarray,
        sequencer: OpSequencer,
        counter: FlopCounter = null_counter(),
        need_input_grad: bool = True,
    ) -> tuple[np.ndarray | None, dict[str, np.ndarray]]:
        """SPMD backward: ``g_block`` is :math:`dL/dZ` restricted to
        block ``j`` (column-replicated). Returns the input-feature
        gradient block (or ``None`` when ``need_input_grad=False`` —
        the first layer) and replicated parameter gradients.
        """

    @abstractmethod
    def parameters(self) -> dict[str, np.ndarray]:
        """Replicated parameters by name."""

    def apply_gradients(self, grads: dict[str, np.ndarray], lr: float) -> None:
        """SGD update; identical on every rank, preserving replication."""
        params = self.parameters()
        for name, grad in grads.items():
            param = params[name]
            param -= lr * np.asarray(grad, dtype=param.dtype)


# ----------------------------------------------------------------------
# Vanilla attention
# ----------------------------------------------------------------------
@dataclass
class _DistVACache:
    a_block: CSRMatrix
    h_block: np.ndarray
    h_row: np.ndarray
    s_block: CSRMatrix
    hp: np.ndarray
    z_block: np.ndarray


class DistVALayer(DistGnnLayer):
    """Distributed VA layer: one fused SDDMM + one SpMM + redistribution."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        self.weight = glorot(make_rng(seed), (in_dim, out_dim), dtype)
        self.in_dim = in_dim
        self.out_dim = out_dim

    def forward(self, grid, a_block, h_block, sequencer,
                counter=null_counter(), training=True):
        grid.comm.stats.set_phase("psi")
        h_row = row_bcast_from_diagonal(grid, h_block)
        dots = sddmm_dot(a_block, h_row, h_block, counter=counter)
        s_block = a_block.with_data(a_block.data * dots)
        hp, z_block = _project_aggregate_redistribute(
            grid, s_block, h_block, self.weight, sequencer, counter
        )
        h_next = self.activation.fn(z_block)
        if not training:
            return h_next, None
        return h_next, _DistVACache(
            a_block=a_block, h_block=h_block, h_row=h_row,
            s_block=s_block, hp=hp, z_block=z_block,
        )

    def backward(self, grid, cache, g_block, sequencer,
                 counter=null_counter(), need_input_grad=True):
        grid.comm.stats.set_phase("backward")
        a_block = cache.a_block
        g_row, stg_partial, d_weight = _backward_entry(
            grid, cache.s_block, cache.h_block, g_block, counter
        )
        if not need_input_grad:
            return None, {"weight": d_weight}

        ds = sddmm_dot(a_block, g_row, cache.hp, counter=counter)
        n_block = a_block.with_data(ds * a_block.data)
        row_partial = spmm(n_block, cache.h_block, counter=counter)
        row_term = grid.row_comm.allreduce(row_partial)
        col_partial = spmm(n_block.transpose(), cache.h_row, counter=counter)
        col_partial = col_partial + mm(stg_partial, self.weight.T, counter=counter)
        col_term = grid.col_comm.allreduce(col_partial)
        gamma = _assemble_gamma(grid, sequencer, row_term, col_term)
        return gamma, {"weight": d_weight}

    def parameters(self):
        return {"weight": self.weight}


# ----------------------------------------------------------------------
# AGNN
# ----------------------------------------------------------------------
@dataclass
class _DistAGNNCache:
    a_block: CSRMatrix
    h_block: np.ndarray
    h_row: np.ndarray
    s_block: CSRMatrix
    hp: np.ndarray
    cos_values: np.ndarray
    norms_row: np.ndarray
    norms_col: np.ndarray
    denom: np.ndarray
    z_block: np.ndarray


class DistAGNNLayer(DistGnnLayer):
    """Distributed AGNN layer (cosine attention + distributed softmax)."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        beta: float = 1.0,
        learnable_beta: bool = False,
        eps: float = 1e-12,
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        self.weight = glorot(make_rng(seed), (in_dim, out_dim), dtype)
        self.beta = np.array(beta, dtype=dtype)
        self.learnable_beta = learnable_beta
        self.eps = eps
        self.in_dim = in_dim
        self.out_dim = out_dim

    def forward(self, grid, a_block, h_block, sequencer,
                counter=null_counter(), training=True):
        grid.comm.stats.set_phase("psi")
        h_row = row_bcast_from_diagonal(grid, h_block)
        norms_col = np.sqrt(np.einsum("ij,ij->i", h_block, h_block))
        norms_row = np.sqrt(np.einsum("ij,ij->i", h_row, h_row))
        counter.add(4 * h_block.size, "norms")
        dots = sddmm_dot(a_block, h_row, h_block, counter=counter)
        denom = np.maximum(
            norms_row[a_block.expand_rows()] * norms_col[a_block.indices],
            self.eps,
        )
        cos = dots / denom
        grid.comm.stats.set_phase("softmax")
        soft = distributed_row_softmax(
            grid, a_block, float(self.beta) * cos
        )
        counter.add(7 * a_block.nnz, "softmax")
        s_block = a_block.with_data(soft)
        hp, z_block = _project_aggregate_redistribute(
            grid, s_block, h_block, self.weight, sequencer, counter
        )
        h_next = self.activation.fn(z_block)
        if not training:
            return h_next, None
        return h_next, _DistAGNNCache(
            a_block=a_block, h_block=h_block, h_row=h_row, s_block=s_block,
            hp=hp, cos_values=cos, norms_row=norms_row, norms_col=norms_col,
            denom=denom, z_block=z_block,
        )

    def backward(self, grid, cache, g_block, sequencer,
                 counter=null_counter(), need_input_grad=True):
        grid.comm.stats.set_phase("backward")
        a_block = cache.a_block
        g_row, stg_partial, d_weight = _backward_entry(
            grid, cache.s_block, cache.h_block, g_block, counter
        )
        ds = sddmm_dot(a_block, g_row, cache.hp, counter=counter)
        dt = distributed_row_softmax_backward(
            grid, a_block, cache.s_block.data, ds
        )
        grads = {"weight": d_weight}
        if self.learnable_beta:
            grads["beta"] = grid.comm.allreduce(
                np.array(np.dot(dt, cache.cos_values))
            ).astype(self.beta.dtype)
        if not need_input_grad:
            return None, grads

        dc = float(self.beta) * dt
        norms_row = np.maximum(cache.norms_row, self.eps)
        norms_col = np.maximum(cache.norms_col, self.eps)
        # Forward already gathered/clipped the per-edge norm products.
        d_mat = a_block.with_data(dc / cache.denom)

        row_partial = spmm(d_mat, cache.h_block, counter=counter)
        row_term = grid.row_comm.allreduce(row_partial)
        col_partial = spmm(d_mat.transpose(), cache.h_row, counter=counter)
        col_partial = col_partial + mm(stg_partial, self.weight.T, counter=counter)
        col_term = grid.col_comm.allreduce(col_partial)

        # Diagonal corrections of the cosine Jacobian.
        dcc = dc * cache.cos_values
        rc = grid.row_comm.allreduce(segment_sum(dcc, a_block.indptr))
        cc = grid.col_comm.allreduce(
            bincount_sum(a_block.indices, dcc, a_block.shape[1])
        )
        row_term = row_term - (rc / (norms_row**2))[:, None] * cache.h_row
        col_term = col_term - (cc / (norms_col**2))[:, None] * cache.h_block
        counter.add(8 * a_block.nnz, "agnn_vjp")

        gamma = _assemble_gamma(grid, sequencer, row_term, col_term)
        return gamma, grads

    def parameters(self):
        params = {"weight": self.weight}
        if self.learnable_beta:
            params["beta"] = self.beta
        return params


# ----------------------------------------------------------------------
# GAT
# ----------------------------------------------------------------------
@dataclass
class _DistGATCache:
    a_block: CSRMatrix
    h_block: np.ndarray
    hp_col: np.ndarray
    hp_row: np.ndarray
    s_block: CSRMatrix
    raw_values: np.ndarray
    z_block: np.ndarray


class DistGATLayer(DistGnnLayer):
    """Distributed GAT layer.

    The projected features :math:`H' = H W` are computed locally
    (``W`` is replicated); the row-side block :math:`H'_i` is what gets
    broadcast along the grid row — one broadcast covers both the
    additive SDDMM (:math:`u_i + v_j`) and the backward pass.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "elu",
        slope: float = 0.2,
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        rng = make_rng(seed)
        self.weight = glorot(rng, (in_dim, out_dim), dtype)
        self.a_src = glorot(rng, (out_dim,), dtype)
        self.a_dst = glorot(rng, (out_dim,), dtype)
        self.slope = slope
        self.in_dim = in_dim
        self.out_dim = out_dim

    def forward(self, grid, a_block, h_block, sequencer,
                counter=null_counter(), training=True):
        grid.comm.stats.set_phase("psi")
        hp_col = mm(h_block, self.weight, counter=counter)
        hp_row = row_bcast_from_diagonal(grid, hp_col)
        u = hp_row @ self.a_src
        v = hp_col @ self.a_dst
        counter.add(4 * hp_col.size, "gat_uv")
        raw = sddmm_add(a_block, u, v, counter=counter)
        logits = leaky_relu(raw, self.slope)
        grid.comm.stats.set_phase("softmax")
        soft = distributed_row_softmax(grid, a_block, logits)
        counter.add(6 * a_block.nnz, "softmax")
        s_block = a_block.with_data(soft)
        z_block = _aggregate_redistribute(
            grid, s_block, hp_col, sequencer, counter
        )
        h_next = self.activation.fn(z_block)
        if not training:
            return h_next, None
        return h_next, _DistGATCache(
            a_block=a_block, h_block=h_block, hp_col=hp_col, hp_row=hp_row,
            s_block=s_block, raw_values=raw, z_block=z_block,
        )

    def backward(self, grid, cache, g_block, sequencer,
                 counter=null_counter(), need_input_grad=True):
        grid.comm.stats.set_phase("backward")
        a_block = cache.a_block
        g_row = row_bcast_from_diagonal(grid, g_block)
        ds = sddmm_dot(a_block, g_row, cache.hp_col, counter=counter)
        dlogits = distributed_row_softmax_backward(
            grid, a_block, cache.s_block.data, ds
        )
        draw = dlogits * leaky_relu_grad(cache.raw_values, self.slope)
        du = grid.row_comm.allreduce(segment_sum(draw, a_block.indptr))
        dv = grid.col_comm.allreduce(
            bincount_sum(a_block.indices, draw, a_block.shape[1])
        )
        counter.add(4 * a_block.nnz, "gat_vjp")

        # Attention-vector gradients: contribute each complete block
        # exactly once (grid column 0 / grid row 0 / diagonal), then sum.
        da_src_local = (
            cache.hp_row.T @ du if grid.col == 0
            else np.zeros_like(self.a_src, dtype=du.dtype)
        )
        da_dst_local = (
            cache.hp_col.T @ dv if grid.row == 0
            else np.zeros_like(self.a_dst, dtype=dv.dtype)
        )
        da_src = grid.comm.allreduce(da_src_local)
        da_dst = grid.comm.allreduce(da_dst_local)

        stg_partial = spmm(cache.s_block.transpose(), g_row, counter=counter)
        col_partial = stg_partial + (
            np.outer(dv, self.a_dst) if grid.row == 0
            else np.zeros_like(stg_partial)
        )
        col_term = grid.col_comm.allreduce(col_partial)  # dHp via col terms
        row_term = np.outer(du, self.a_src)              # complete locally

        # Weight gradient dW = H^T dH' assembled from single-count parts.
        dw_local = mm(cache.h_block.T, stg_partial, counter=counter)
        if grid.row == 0:
            dw_local = dw_local + cache.h_block.T @ np.outer(dv, self.a_dst)
        if grid.row == grid.col:
            dw_local = dw_local + cache.h_block.T @ np.outer(du, self.a_src)
        d_weight = grid.comm.allreduce(dw_local)

        grads = {"weight": d_weight, "a_src": da_src, "a_dst": da_dst}
        if not need_input_grad:
            return None, grads
        dhp = _assemble_gamma(grid, sequencer, row_term, col_term)
        gamma = mm(dhp, self.weight.T, counter=counter)
        return gamma, grads

    def parameters(self):
        return {"weight": self.weight, "a_src": self.a_src, "a_dst": self.a_dst}


# ----------------------------------------------------------------------
# GCN (C-GNN special case)
# ----------------------------------------------------------------------
@dataclass
class _DistGCNCache:
    a_block: CSRMatrix
    h_block: np.ndarray
    hp: np.ndarray
    z_block: np.ndarray


class DistGCNLayer(DistGnnLayer):
    """Distributed GCN layer: pure SpMM + MM, no attention traffic.

    ``a_block`` must be the block of the pre-normalised adjacency.
    One inference layer costs exactly one broadcast-free SpMM plus the
    reduce+redistribute — the minimal-communication case of Section 8.4.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(activation)
        self.weight = glorot(make_rng(seed), (in_dim, out_dim), dtype)
        self.in_dim = in_dim
        self.out_dim = out_dim

    def forward(self, grid, a_block, h_block, sequencer,
                counter=null_counter(), training=True):
        hp, z_block = _project_aggregate_redistribute(
            grid, a_block, h_block, self.weight, sequencer, counter
        )
        h_next = self.activation.fn(z_block)
        if not training:
            return h_next, None
        return h_next, _DistGCNCache(
            a_block=a_block, h_block=h_block, hp=hp, z_block=z_block
        )

    def backward(self, grid, cache, g_block, sequencer,
                 counter=null_counter(), need_input_grad=True):
        grid.comm.stats.set_phase("backward")
        _, stg_partial, d_weight = _backward_entry(
            grid, cache.a_block, cache.h_block, g_block, counter
        )
        if not need_input_grad:
            return None, {"weight": d_weight}
        col_term = grid.col_comm.allreduce(
            mm(stg_partial, self.weight.T, counter=counter)
        )
        return col_term, {"weight": d_weight}

    def parameters(self):
        return {"weight": self.weight}




# ----------------------------------------------------------------------
# Multi-head GAT (extension, mirrors models.gat.MultiHeadGATLayer)
# ----------------------------------------------------------------------
@dataclass
class _DistMultiHeadCache:
    caches: list
    z_block: np.ndarray


@dataclass
class _DistBatchedMultiHeadCache:
    a_block: CSRMatrix
    h_block: np.ndarray
    hp_col: np.ndarray
    hp_row: np.ndarray
    s_block: CSRMatrix
    raw_values: np.ndarray
    z_block: np.ndarray


class DistMultiHeadGATLayer(DistGnnLayer):
    """Distributed multi-head GAT on the 1.5D schedule.

    With ``batched=True`` (the default) the per-head messages of every
    communication step are coalesced into one stacked fabric transfer:
    a single ``(b, heads*d)`` row broadcast, one distributed softmax
    over stacked ``(nnz, heads)`` logits, one reduce+redistribute and
    one transpose exchange per layer step — ``heads`` times fewer
    messages than the per-head loop at the same total payload, which
    :class:`~repro.runtime.stats.CommStats` makes observable.

    ``batched=False`` keeps the original sequential per-head loop of
    full :class:`DistGATLayer` objects as the correctness oracle. Both
    modes share parameter storage (per-head ``weight``/``a_src``/
    ``a_dst`` are views into the stacked arrays), matching the
    single-node :class:`~repro.models.gat.MultiHeadGATLayer` given the
    same seeds — the equivalence tests assert this.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        heads: int = 4,
        combine: str = "concat",
        activation: str = "elu",
        slope: float = 0.2,
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
        batched: bool = True,
    ) -> None:
        super().__init__(activation)
        if combine not in ("concat", "mean"):
            raise ValueError("combine must be 'concat' or 'mean'")
        rng = make_rng(seed)
        self.heads = [
            DistGATLayer(in_dim, out_dim, activation="identity",
                         slope=slope, seed=rng, dtype=dtype)
            for _ in range(heads)
        ]
        self.combine = combine
        self.batched = batched
        self.slope = slope
        self.in_dim = in_dim
        self.head_dim = out_dim
        self.num_heads = heads
        self.out_dim = out_dim * heads if combine == "concat" else out_dim
        # Stacked replicated parameters; per-head attributes are
        # contiguous (head-major) views, so oracle and batched paths
        # share storage, SGD updates and flat-index perturbation.
        self._w_stack = np.stack([head.weight for head in self.heads])
        self._a_src_mat = np.stack([head.a_src for head in self.heads])
        self._a_dst_mat = np.stack([head.a_dst for head in self.heads])
        for index, head in enumerate(self.heads):
            head.weight = self._w_stack[index]
            head.a_src = self._a_src_mat[index]
            head.a_dst = self._a_dst_mat[index]

    def _stacked_weight(self) -> np.ndarray:
        """``(in, heads*d)`` column-block weight, rebuilt per call so
        in-place updates are always reflected."""
        return self._w_stack.transpose(1, 0, 2).reshape(
            self.in_dim, self.num_heads * self.head_dim
        )

    def forward(self, grid, a_block, h_block, sequencer,
                counter=null_counter(), training=True):
        if self.batched:
            return self._forward_batched(
                grid, a_block, h_block, sequencer, counter, training
            )
        outputs, caches = [], []
        for head in self.heads:
            out, cache = head.forward(
                grid, a_block, h_block, sequencer,
                counter=counter, training=training,
            )
            outputs.append(out)
            caches.append(cache)
        if self.combine == "concat":
            z_block = np.concatenate(outputs, axis=1)
        else:
            z_block = np.mean(outputs, axis=0)
        h_next = self.activation.fn(z_block)
        if not training:
            return h_next, None
        return h_next, _DistMultiHeadCache(caches=caches, z_block=z_block)

    def _forward_batched(self, grid, a_block, h_block, sequencer,
                         counter, training):
        heads, d = self.num_heads, self.head_dim
        b = h_block.shape[0]
        grid.comm.stats.set_phase("psi")
        hp_col_flat = mm(h_block, self._stacked_weight(), counter=counter)
        # ONE row broadcast carries every head's projected block.
        hp_row_flat = row_bcast_from_diagonal(grid, hp_col_flat)
        hp_col = hp_col_flat.reshape(b, heads, d)
        hp_row = hp_row_flat.reshape(-1, heads, d)
        u = np.einsum("nhd,hd->nh", hp_row, self._a_src_mat)
        v = np.einsum("nhd,hd->nh", hp_col, self._a_dst_mat)
        counter.add(4 * hp_col.size, "gat_uv")
        raw = sddmm_add(a_block, u, v, counter=counter)
        logits = leaky_relu(raw, self.slope)
        grid.comm.stats.set_phase("softmax")
        # Stacked (nnz, heads) logits: one distributed softmax (two
        # feature-free allreduces) normalises all heads.
        soft = distributed_row_softmax(grid, a_block, logits)
        counter.add(6 * raw.size, "softmax")
        s_block = a_block.with_data(soft)
        grid.comm.stats.set_phase("aggregate")
        partial = spmm(s_block, hp_col, counter=counter)
        grid.comm.stats.set_phase("redistribute")
        # ONE reduce+redistribute of the flat (b, heads*d) partials.
        z_flat = reduce_and_redistribute(
            grid, partial.reshape(-1, heads * d), sequencer
        )
        if self.combine == "concat":
            z_block = z_flat
        else:
            z_block = z_flat.reshape(-1, heads, d).mean(axis=1)
        h_next = self.activation.fn(z_block)
        if not training:
            return h_next, None
        return h_next, _DistBatchedMultiHeadCache(
            a_block=a_block, h_block=h_block, hp_col=hp_col, hp_row=hp_row,
            s_block=s_block, raw_values=raw, z_block=z_block,
        )

    def backward(self, grid, cache, g_block, sequencer,
                 counter=null_counter(), need_input_grad=True):
        if isinstance(cache, _DistBatchedMultiHeadCache):
            return self._backward_batched(
                grid, cache, g_block, sequencer, counter, need_input_grad
            )
        n_heads = len(self.heads)
        if self.combine == "concat":
            width = g_block.shape[1] // n_heads
            head_grads = [
                np.ascontiguousarray(g_block[:, i * width: (i + 1) * width])
                for i in range(n_heads)
            ]
        else:
            head_grads = [g_block / n_heads] * n_heads
        gamma = None
        grads: dict[str, np.ndarray] = {}
        for index, (head, head_cache, head_g) in enumerate(
            zip(self.heads, cache.caches, head_grads)
        ):
            head_gamma, head_param_grads = head.backward(
                grid, head_cache, head_g, sequencer,
                counter=counter, need_input_grad=need_input_grad,
            )
            if need_input_grad:
                gamma = head_gamma if gamma is None else gamma + head_gamma
            for name, value in head_param_grads.items():
                grads[f"head{index}.{name}"] = value
        return gamma, grads

    def _backward_batched(self, grid, cache, g_block, sequencer,
                          counter, need_input_grad):
        heads, d = self.num_heads, self.head_dim
        a_block = cache.a_block
        b = g_block.shape[0]
        grid.comm.stats.set_phase("backward")
        if self.combine == "concat":
            g_flat = np.ascontiguousarray(g_block)
        else:
            # Mean combine: each head sees dL/dZ_h = g / heads.
            g_flat = np.ascontiguousarray(
                np.broadcast_to(
                    (g_block / heads)[:, None, :], (b, heads, d)
                ).reshape(b, heads * d)
            )
        # ONE row broadcast of the stacked output gradient.
        g_row = row_bcast_from_diagonal(grid, g_flat).reshape(-1, heads, d)
        ds = sddmm_dot(a_block, g_row, cache.hp_col, counter=counter)
        dlogits = distributed_row_softmax_backward(
            grid, a_block, cache.s_block.data, ds
        )
        draw = dlogits * leaky_relu_grad(cache.raw_values, self.slope)
        du = grid.row_comm.allreduce(segment_sum(draw, a_block.indptr))
        dv = grid.col_comm.allreduce(
            bincount_sum(a_block.indices, draw, a_block.shape[1])
        )
        counter.add(4 * draw.size, "gat_vjp")

        # Attention-vector gradients: single-count blocks, then sum —
        # one allreduce carries all heads' (heads, d) gradients.
        da_src_local = (
            np.einsum("nhd,nh->hd", cache.hp_row, du) if grid.col == 0
            else np.zeros_like(self._a_src_mat, dtype=du.dtype)
        )
        da_dst_local = (
            np.einsum("nhd,nh->hd", cache.hp_col, dv) if grid.row == 0
            else np.zeros_like(self._a_dst_mat, dtype=dv.dtype)
        )
        da_src = grid.comm.allreduce(da_src_local)
        da_dst = grid.comm.allreduce(da_dst_local)

        stg_flat = spmm(
            cache.s_block.transpose(), g_row, counter=counter
        ).reshape(-1, heads * d)
        # Per-head rank-1 updates, stacked flat: outer(dv_h, a_dst_h)
        # becomes one (b, heads*d) array.
        dst_rank1 = (dv[:, :, None] * self._a_dst_mat[None]).reshape(
            -1, heads * d
        )
        src_rank1 = (du[:, :, None] * self._a_src_mat[None]).reshape(
            -1, heads * d
        )
        col_partial = stg_flat + (
            dst_rank1 if grid.row == 0 else np.zeros_like(stg_flat)
        )
        # ONE allreduce of the stacked column terms.
        col_term = grid.col_comm.allreduce(col_partial)
        row_term = src_rank1  # complete locally

        # Weight gradient dW = H^T dH' from single-count parts; one
        # (in, heads*d) allreduce replaces `heads` separate ones.
        dw_local = mm(cache.h_block.T, stg_flat, counter=counter)
        if grid.row == 0:
            dw_local = dw_local + cache.h_block.T @ dst_rank1
        if grid.row == grid.col:
            dw_local = dw_local + cache.h_block.T @ src_rank1
        d_weight = grid.comm.allreduce(dw_local)

        grads: dict[str, np.ndarray] = {}
        for i in range(heads):
            grads[f"head{i}.weight"] = d_weight[:, i * d : (i + 1) * d]
            grads[f"head{i}.a_src"] = da_src[i]
            grads[f"head{i}.a_dst"] = da_dst[i]
        if not need_input_grad:
            return None, grads
        # ONE transpose exchange of the stacked row terms.
        dhp_flat = col_term + transpose_exchange(grid, row_term, sequencer)
        gamma = mm(dhp_flat, self._stacked_weight().T, counter=counter)
        return gamma, grads

    def parameters(self):
        params: dict[str, np.ndarray] = {}
        for index, head in enumerate(self.heads):
            for name, value in head.parameters().items():
                params[f"head{index}.{name}"] = value
        return params
