"""Block partitioning of adjacency and feature matrices.

The square grid uses one global row partition into ``P`` near-equal
blocks (the paper's :math:`n/\\sqrt{p}` slices); the adjacency block
``(i, j)`` pairs row block ``i`` with column block ``j``. Block
extraction happens rank-locally from the full matrix — modelling the
artifact's setup phase, where the graph is generated/loaded directly
into its distributed layout and is not part of the measured runtime.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.grid import ProcessGrid
from repro.tensor.csr import CSRMatrix

__all__ = [
    "block_range",
    "block_ranges",
    "distribute_adjacency",
    "distribute_features",
    "collect_feature_blocks",
]


def block_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into ``parts`` contiguous near-equal ranges.

    The first ``n % parts`` ranges get the extra element, so any two
    ranges differ in size by at most one — keeping the 2D blocks
    balanced without requiring ``parts | n``.
    """
    if parts < 1:
        raise ValueError("parts must be positive")
    base, extra = divmod(n, parts)
    ranges = []
    start = 0
    for index in range(parts):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def block_range(n: int, parts: int, index: int) -> tuple[int, int]:
    """The ``index``-th range of :func:`block_ranges` (O(1))."""
    base, extra = divmod(n, parts)
    if not 0 <= index < parts:
        raise ValueError("block index out of range")
    start = index * base + min(index, extra)
    return start, start + base + (1 if index < extra else 0)


def distribute_adjacency(
    a: CSRMatrix, grid: ProcessGrid
) -> CSRMatrix:
    """Extract this rank's adjacency block ``A[i, j]``.

    Uses the same ``P``-way partition for rows and columns (square
    grid), so the input and output feature blockings coincide — the
    property the Section-7 analysis relies on.
    """
    if grid.px != grid.py:
        raise ValueError("the 1.5D schedule requires a square grid")
    n = a.shape[0]
    r0, r1 = block_range(n, grid.px, grid.row)
    c0, c1 = block_range(n, grid.py, grid.col)
    return a.extract_block(r0, r1, c0, c1)


def distribute_features(
    h: np.ndarray, grid: ProcessGrid
) -> np.ndarray:
    """This rank's input feature block ``H_j`` (column-replicated).

    Every rank in grid column ``j`` holds an identical copy of block
    ``j`` — "distributed in :math:`P_y` blocks, each replicated
    :math:`P_x` times".
    """
    c0, c1 = block_range(h.shape[0], grid.py, grid.col)
    return np.ascontiguousarray(h[c0:c1])


def collect_feature_blocks(
    grid: ProcessGrid, local_block: np.ndarray
) -> np.ndarray | None:
    """Gather the column-replicated blocks into the full matrix at rank 0.

    Only grid row 0 contributes (the other rows hold replicas); used by
    tests and the API layer to compare distributed against single-node
    results. Returns the assembled matrix on world rank 0, ``None``
    elsewhere.
    """
    payload = local_block if grid.row == 0 else None
    gathered = grid.comm.gather(payload, root=0)
    if grid.comm.rank != 0:
        return None
    blocks = [None] * grid.py
    for rank, block in enumerate(gathered):
        if block is not None:
            row, col = divmod(rank, grid.py)
            if row == 0:
                blocks[col] = block
    return np.concatenate(blocks, axis=0)
