"""Declarative per-layer communication schedules for the 1.5D layers.

Every distributed layer's forward and backward pass is a short,
straight-line program over two kinds of steps:

* :class:`Compute` — a local kernel over named context entries;
* :class:`Transfer` — one of the grid communication patterns
  (diagonal row broadcast, row/column/world allreduce, transpose
  exchange, reduce+redistribute), labelled with its traffic phase.

Instead of interleaving communicator calls and math by hand in five
near-identical layer bodies, each layer *declares* its steps and a
shared scheduler (:meth:`CommSchedule.run`) executes them against a
context dict. The scheduler has two execution modes with bit-identical
results and identical traffic:

**Synchronous** (the parity oracle): every transfer blocks in program
order — exactly the pre-refactor behaviour, byte for byte.

**Overlapped** (``REPRO_OVERLAP=1`` or ``overlap=True``): transfers
with an asynchronous form are *initiated* at their program point but
completed only when a later step first names their output — so the
local compute scheduled between a transfer and its first consumer (the
SDDMM under the H-block broadcast, the gamma assembly under the
weight-gradient allreduces) runs while the wire is busy. Initiation
order is identical to the synchronous mode and resolution points are
the same SPMD program points on every rank, which together with the
communicator's ordered-completion engine makes overlap deadlock-free
by construction.

Traffic parity holds because overlap changes only *when a rank blocks*,
never what it sends: the same collective generators run either way,
and phase labels are captured at initiation, so ``CommStats.by_phase``
and ``comm_words`` are equal in both modes (pinned by tests).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.distributed.ops import (
    OpSequencer,
    irow_bcast_from_diagonal,
    itranspose_exchange,
    reduce_and_redistribute,
    row_bcast_from_diagonal,
    transpose_exchange,
)
from repro.obs.tracer import tracer
from repro.runtime.grid import ProcessGrid

__all__ = [
    "Compute",
    "Transfer",
    "CommSchedule",
    "overlap_default",
    "OVERLAP_ENV_VAR",
]

#: Environment variable selecting overlapped execution by default.
OVERLAP_ENV_VAR = "REPRO_OVERLAP"

_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})
_FALSE_VALUES = frozenset({"", "0", "false", "no", "off"})


def overlap_default() -> bool:
    """Resolve the process-wide overlap default from ``REPRO_OVERLAP``."""
    raw = os.environ.get(OVERLAP_ENV_VAR, "")
    value = raw.strip().lower()
    if value in _TRUE_VALUES:
        return True
    if value in _FALSE_VALUES:
        return False
    raise ValueError(
        f"{OVERLAP_ENV_VAR} must be one of "
        f"{sorted(_TRUE_VALUES | _FALSE_VALUES)!r}, got {raw!r}"
    )


@dataclass(frozen=True)
class Compute:
    """A local kernel: ``ctx[out] = fn(ctx)``.

    ``needs`` lists the context keys the kernel reads that may still be
    in flight — the scheduler resolves those transfers first. ``out``
    may be ``None`` for effect-only steps (e.g. writing several keys).
    ``phase`` labels traffic for kernels that communicate internally
    (the distributed softmax and its backward run feature-free
    allreduces); plain local kernels leave it ``None``.
    """

    out: str | None
    fn: Callable[[dict[str, Any]], Any]
    needs: tuple[str, ...] = ()
    phase: str | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Compute({self.out!r}, needs={self.needs!r})"


@dataclass(frozen=True)
class Transfer:
    """A grid communication pattern: ``ctx[out] = kind(ctx[src])``.

    ``kind`` is one of:

    ``"row_bcast"``
        Diagonal row broadcast of ``src`` (async form: ``ibcast``).
    ``"row_allreduce"`` / ``"col_allreduce"`` / ``"allreduce"``
        Allreduce of ``src`` over the row / column / world
        communicator with ``op`` (async form: ``iallreduce``).
    ``"transpose"``
        Pairwise ``(i, j) <-> (j, i)`` exchange (async form: deferred
        receive; the send is always posted at the program point).
    ``"redistribute"``
        Ring reduce-scatter + chunk exchange. Always synchronous: it is
        the terminal transfer of a pass, so there is no later compute
        to hide it behind, and its internal collective is itself a
        blocking rendezvous of the whole grid row.

    ``phase`` labels the traffic for ``CommStats.by_phase``; it is set
    at initiation so synchronous and overlapped runs attribute bytes
    and wait time identically.
    """

    out: str
    kind: str
    src: str
    phase: str
    op: str = "sum"
    needs: tuple[str, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Transfer({self.out!r} <- {self.kind} {self.src!r})"


#: Transfer kinds with an asynchronous (handle-returning) form.
_ASYNC_KINDS = frozenset({
    "row_bcast", "row_allreduce", "col_allreduce", "allreduce", "transpose",
})


@dataclass
class CommSchedule:
    """An ordered step list executed by the shared scheduler."""

    steps: list[Compute | Transfer] = field(default_factory=list)
    name: str = ""

    def run(
        self,
        grid: ProcessGrid,
        sequencer: OpSequencer,
        ctx: dict[str, Any],
        overlap: bool = False,
    ) -> dict[str, Any]:
        """Execute the steps against ``ctx`` (mutated and returned).

        In overlap mode, async-capable transfers leave a completion
        handle in flight; the handle is resolved when a later step
        first lists its output in ``needs`` (or ``src``), and any
        transfer nothing consumed is resolved at the end, in initiation
        order.
        """
        pending: dict[str, Any] = {}

        def resolve(key: str) -> None:
            handle = pending.pop(key, None)
            if handle is not None:
                ctx[key] = handle.wait()

        # Each step gets a span carrying its phase label and the
        # wait_s delta it incurred (resolves + blocking transfers), so
        # the timeline ties back to CommStats.wait_by_phase; the
        # communicator's own wait slices nest inside the step span.
        t = tracer()
        stats = grid.comm.stats
        for step in self.steps:
            if isinstance(step, Transfer):
                with t.span(
                    "sched.transfer", sched=self.name, kind=step.kind,
                    out=step.out, phase=step.phase,
                ) as sp:
                    wait0 = stats.wait_s
                    for key in (*step.needs, step.src):
                        resolve(key)
                    value_or_handle = self._execute_transfer(
                        step, grid, sequencer, ctx, overlap
                    )
                    sp.annotate(wait_s=stats.wait_s - wait0)
                if overlap and step.kind in _ASYNC_KINDS:
                    pending[step.out] = value_or_handle
                else:
                    ctx[step.out] = value_or_handle
            else:
                with t.span(
                    "sched.compute", sched=self.name,
                    out=step.out or "", phase=step.phase,
                ) as sp:
                    wait0 = stats.wait_s
                    for key in step.needs:
                        resolve(key)
                    if step.phase is not None:
                        stats.set_phase(step.phase)
                    result = step.fn(ctx)
                    sp.annotate(wait_s=stats.wait_s - wait0)
                if step.out is not None:
                    ctx[step.out] = result
        if pending:
            with t.span("sched.drain", sched=self.name):
                for key in list(pending):
                    resolve(key)
        return ctx

    def _execute_transfer(
        self,
        step: Transfer,
        grid: ProcessGrid,
        sequencer: OpSequencer,
        ctx: dict[str, Any],
        overlap: bool,
    ) -> Any:
        """Initiate one transfer; returns a value (sync) or handle."""
        grid.comm.stats.set_phase(step.phase)
        payload = ctx[step.src]
        kind = step.kind
        if kind == "row_bcast":
            if overlap:
                return irow_bcast_from_diagonal(grid, payload)
            return row_bcast_from_diagonal(grid, payload)
        if kind in ("row_allreduce", "col_allreduce", "allreduce"):
            comm = {
                "row_allreduce": grid.row_comm,
                "col_allreduce": grid.col_comm,
                "allreduce": grid.comm,
            }[kind]
            if overlap:
                return comm.iallreduce(payload, op=step.op)
            return comm.allreduce(payload, op=step.op)
        if kind == "transpose":
            if overlap:
                return itranspose_exchange(grid, payload, sequencer)
            return transpose_exchange(grid, payload, sequencer)
        if kind == "redistribute":
            return reduce_and_redistribute(grid, payload, sequencer)
        raise ValueError(f"unknown transfer kind {kind!r}")
