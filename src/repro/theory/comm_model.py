"""Closed-form communication-volume predictors (Section 7).

The paper's bounds, per GNN layer, in words (fp32):

* **Global formulation** (Section 7.1): :math:`O(nk/\\sqrt{p} + k^2)`
  — feature-block broadcasts/reductions along the grid plus replicated
  parameter traffic.
* **Local formulation** (message passing): up to
  :math:`\\Omega(nkd/p + k^2)` — each of the :math:`n/p` owned vertices
  needs its (up to :math:`d`) neighbours' :math:`k`-word features.
* **Erdős–Rényi** (Section 7.3): with edge probability :math:`q`, the
  local volume concentrates at :math:`O(n^2 k q / p)` (every remote
  vertex is a neighbour of some owned vertex once :math:`nq/p` is
  large, capping at :math:`nk` per rank — the predictor takes the
  exact expectation below); the global formulation wins whenever
  :math:`q > \\sqrt{p}/n`.

Besides the asymptotic forms, :func:`exact_local_halo_words` computes
the *exact* per-rank halo volume of our DistDGL-like engine for a given
graph and partition, so the verification benchmark can assert
measured == predicted, not merely "same shape".
"""

from __future__ import annotations

import numpy as np

from repro.distributed.partition import block_range
from repro.tensor.csr import CSRMatrix

__all__ = [
    "global_layer_words",
    "local_layer_words_bound",
    "erdos_renyi_local_words",
    "exact_local_halo_words",
    "crossover_density",
    "predict_training_words",
]


def global_layer_words(
    n: int,
    k: int,
    p: int,
    model: str = "gat",
    training: bool = False,
    constant: float = 1.0,
) -> float:
    """Per-layer volume of the global formulation, in words.

    Implements :math:`c \\cdot (nk/\\sqrt{p} + k^2 \\log_2 p)` with a
    model-dependent constant reflecting how many feature-block-sized
    transfers the layer performs (broadcast, reduce-scatter, exchange;
    roughly doubled for training). For ``p == 1`` the volume is zero.
    """
    if p <= 1:
        return 0.0
    # Feature-block transfers per layer (see distributed.layers table).
    transfers = {
        "gcn": 2.0,   # reduce-scatter + exchange only
        "va": 4.0,    # + diagonal broadcast (~2 with the tree algorithm)
        "agnn": 4.0,
        "gat": 4.0,
    }.get(model.lower(), 4.0)
    if training:
        transfers *= 2.5  # g broadcast, two allreduces, transpose swap
    log_p = max(np.log2(p), 1.0)
    return constant * (
        transfers * n * k / np.sqrt(p) + (k * k) * log_p
    )


def local_layer_words_bound(
    n: int,
    k: int,
    p: int,
    d: float,
    training: bool = False,
    constant: float = 1.0,
) -> float:
    """Worst-case per-layer volume of the local formulation.

    :math:`c \\cdot (\\min(nkd/p,\\; nk) + k^2 \\log_2 p)` — the halo
    cannot exceed fetching every vertex once. Training roughly doubles
    it (reverse halo).
    """
    if p <= 1:
        return 0.0
    halo = min(n * k * d / p, n * k * (p - 1) / p)
    if training:
        halo *= 2.0
    return constant * (halo + k * k * max(np.log2(p), 1.0))


def erdos_renyi_local_words(
    n: int, k: int, p: int, q: float, constant: float = 1.0
) -> float:
    """Expected per-layer halo volume on :math:`G_{n,q}` (Section 7.3).

    A remote vertex ``u`` is fetched by rank ``r`` iff ``u`` neighbours
    at least one of the rank's :math:`n/p` owned vertices (symmetric
    edges ⇒ probability :math:`1 - (1-q')^{n/p}` with
    :math:`q' = 1-(1-q)^2 \\approx 2q`). Expected words:

    .. math:: k \\cdot n\\frac{p-1}{p}\\left(1 - (1 - q')^{n/p}\\right)

    which is :math:`\\Theta(n^2 k q / p)` for small :math:`q` and
    saturates at :math:`nk` for dense graphs.
    """
    if p <= 1:
        return 0.0
    own = n / p
    q_sym = 1.0 - (1.0 - q) ** 2
    prob = 1.0 - (1.0 - q_sym) ** own
    return constant * k * n * (p - 1) / p * prob


def exact_local_halo_words(a: CSRMatrix, p: int, k: int) -> int:
    """Exact max-per-rank halo words of the 1D-partitioned local engine.

    For each rank, counts the distinct out-of-block column indices of
    its owned rows (features fetched) — the words *sent* by the owners;
    the BSP metric is the maximum over senders, which we compute by
    attributing each fetched vertex to its owner.
    """
    n = a.shape[0]
    sent_by = np.zeros(p, dtype=np.int64)
    for r in range(p):
        r0, r1 = block_range(n, p, r)
        start, stop = a.indptr[r0], a.indptr[r1]
        cols = a.indices[start:stop]
        remote = np.unique(cols[(cols < r0) | (cols >= r1)])
        owners = np.minimum(remote * p // max(n, 1), p - 1)
        # Exact owner lookup (block_range may be uneven): correct owners
        # by searchsorted against boundaries.
        bounds = np.array([block_range(n, p, s)[0] for s in range(p)] + [n])
        owners = np.searchsorted(bounds, remote, side="right") - 1
        np.add.at(sent_by, owners, 1)
    return int(sent_by.max()) * k


def crossover_density(n: int, p: int) -> float:
    """The Section-7.3 density above which the global view wins:
    :math:`q > \\sqrt{p}/n`."""
    return float(np.sqrt(p) / n)


def predict_training_words(
    n: int,
    k: int,
    p: int,
    layers: int,
    model: str = "gat",
    formulation: str = "global",
    d: float | None = None,
) -> float:
    """End-to-end per-iteration volume (forward + backward, all layers)."""
    if formulation == "global":
        per_layer = global_layer_words(n, k, p, model=model, training=True)
    elif formulation == "local":
        if d is None:
            raise ValueError("local prediction needs the max degree d")
        per_layer = local_layer_words_bound(n, k, p, d, training=True)
    else:
        raise ValueError("formulation must be 'global' or 'local'")
    return layers * per_layer
