"""Communication-cost theory (Section 7).

Closed-form predictors for the per-layer communication volume of the
global and local formulations, the Erdős–Rényi specialisation of
Section 7.3, and exact (graph-aware) calculators that the verification
benchmarks compare against measured traffic.
"""

from repro.theory.comm_model import (
    crossover_density,
    exact_local_halo_words,
    global_layer_words,
    local_layer_words_bound,
    erdos_renyi_local_words,
    predict_training_words,
)

__all__ = [
    "global_layer_words",
    "local_layer_words_bound",
    "erdos_renyi_local_words",
    "exact_local_halo_words",
    "crossover_density",
    "predict_training_words",
]
