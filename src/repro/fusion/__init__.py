"""The op-DAG toolchain: sparsity inference, virtual tensors, fusion.

Implements the design flow of Figure 4 and the fusing optimisation of
Section 6.2. A model's :math:`\\Psi` is written as a DAG of tensor ops
(:mod:`repro.fusion.dag`); sparsity inference
(:mod:`repro.fusion.sparsity`) classifies every intermediate as dense,
sparse, or *virtual* (an :math:`n \\times n` dense that must never be
materialised, Section 6.1); the fusion pass (:mod:`repro.fusion.fuse`)
walks the execution DAG, finds paths from a virtual-producing edge to
the sparse sampling that consumes it, and collapses them into
SDDMM-like fused kernels; the interpreter (:mod:`repro.fusion.interp`)
executes either the fused program (production) or a tile-materialising
fallback (the ablation baseline quantifying what fusion buys).

Pre-built DAGs for the paper's three models live in
:mod:`repro.fusion.models`. Reverse-mode autodiff over the IR
(:mod:`repro.fusion.autodiff`) derives the Section-5 backward
formulations from the same forward DAGs, and
:class:`repro.fusion.layer.DagLayer` trains models from them with zero
hand-written backward code.
"""

from repro.fusion.autodiff import GradProgram, build_vjp
from repro.fusion.dag import OpDag, OpNode
from repro.fusion.fuse import FusedKernel, FusedProgram, fuse
from repro.fusion.interp import ProgramRunner, execute
from repro.fusion.layer import DagLayer
from repro.fusion.models import (
    agnn_layer_dag,
    agnn_psi_dag,
    gat_layer_dag,
    gat_psi_dag,
    va_layer_dag,
    va_psi_dag,
)
from repro.fusion.sparsity import Sparsity, infer_sparsity

__all__ = [
    "OpDag",
    "OpNode",
    "Sparsity",
    "infer_sparsity",
    "fuse",
    "FusedKernel",
    "FusedProgram",
    "execute",
    "ProgramRunner",
    "GradProgram",
    "build_vjp",
    "DagLayer",
    "va_psi_dag",
    "agnn_psi_dag",
    "gat_psi_dag",
    "va_layer_dag",
    "agnn_layer_dag",
    "gat_layer_dag",
]
