"""Tensor-op DAG: the IR of the toolchain (Figure 4).

Nodes carry a symbolic *shape kind* rather than concrete dimensions —
what matters for sparsity inference and fusion is whether a tensor is
``n x n`` (graph-sized), ``n x k`` (tall), ``k x k`` / ``k`` (parameter
sized), or ``n`` (per-vertex). The op vocabulary covers everything the
three A-GNN :math:`\\Psi` formulations *and their Section-5 backward
formulations* need: matmul, transpose, Hadamard product/division,
addition, row/column summation (the adjoints of ``rep``/``rep^T``),
replication (``rep``/``rep^T`` of Table 2), outer products, row
scaling, element-wise exp/LeakyReLU/scale, and explicit pattern
sampling. A DAG may carry several *named* outputs (forward value plus
per-input gradients), which is how
:mod:`repro.fusion.autodiff` returns joint forward+backward programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["OpNode", "OpDag", "SHAPE_KINDS"]

SHAPE_KINDS = ("nn", "nk", "kn", "kk", "n", "k", "scalar")

#: Ops whose output shape follows these rules (checked at build time).
_UNARY = {"exp", "leaky_relu", "leaky_relu_grad", "scale", "reciprocal"}
_BINARY_ELEMENTWISE = {"hadamard", "divide", "add"}


@dataclass
class OpNode:
    """One operation (or input) of the DAG."""

    id: int
    op: str
    inputs: tuple[int, ...]
    shape_kind: str
    name: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or f"%{self.id}"
        args = ", ".join(f"%{i}" for i in self.inputs)
        return f"{label} = {self.op}({args}) : {self.shape_kind}"


class OpDag:
    """A small SSA-style tensor-op graph with a builder API.

    Example — the VA attention operator::

        dag = OpDag()
        h = dag.input("H", "nk")
        a = dag.input("A", "nn", sparse=True)
        scores = dag.matmul(h, dag.transpose(h))   # virtual n x n
        psi = dag.hadamard(a, scores)              # sampled on A
        dag.set_output(psi)
    """

    def __init__(self) -> None:
        self.nodes: list[OpNode] = []
        self.output: int | None = None
        self.outputs: dict[str, int] = {}
        self._sparse_inputs: set[int] = set()

    # ------------------------------------------------------------------
    def _add(self, op: str, inputs: tuple[int, ...], kind: str,
             name: str | None = None, **attrs) -> int:
        if kind not in SHAPE_KINDS:
            raise ValueError(f"unknown shape kind {kind!r}")
        for i in inputs:
            if not 0 <= i < len(self.nodes):
                raise ValueError(f"undefined operand %{i}")
        node = OpNode(len(self.nodes), op, inputs, kind, name, attrs)
        self.nodes.append(node)
        return node.id

    def _kind(self, a: int) -> str:
        """Shape kind of operand ``a`` (validating the reference)."""
        if not 0 <= a < len(self.nodes):
            raise ValueError(f"undefined operand %{a}")
        return self.nodes[a].shape_kind

    def input(self, name: str, kind: str, sparse: bool = False) -> int:
        """Declare a graph input; ``sparse=True`` marks a CSR operand."""
        nid = self._add("input", (), kind, name=name)
        if sparse:
            if kind != "nn":
                raise ValueError("only n x n inputs can be sparse")
            self._sparse_inputs.add(nid)
        return nid

    @property
    def sparse_inputs(self) -> frozenset[int]:
        return frozenset(self._sparse_inputs)

    # ------------------------------------------------------------------
    # Builder ops
    # ------------------------------------------------------------------
    def matmul(self, a: int, b: int) -> int:
        """Matrix product; shape kind follows from operand kinds."""
        ka, kb = self._kind(a), self._kind(b)
        table = {
            ("nk", "kn"): "nn",
            ("nk", "kk"): "nk",
            ("nn", "nk"): "nk",
            ("kn", "nk"): "kk",
            ("kk", "kn"): "kn",
            ("nk", "k"): "n",
            ("kk", "k"): "k",
            # Backward-pass products (Section 5): sparse-times-vector
            # and the adjoints of the tall-times-vector projections.
            ("nn", "n"): "n",
            ("kn", "n"): "k",
        }
        kind = table.get((ka, kb))
        if kind is None:
            raise ValueError(f"matmul of {ka} x {kb} not supported")
        return self._add("matmul", (a, b), kind)

    def transpose(self, a: int) -> int:
        kind = {"nk": "kn", "kn": "nk", "nn": "nn", "kk": "kk"}.get(
            self._kind(a)
        )
        if kind is None:
            raise ValueError("cannot transpose a vector node")
        return self._add("transpose", (a,), kind)

    def hadamard(self, a: int, b: int) -> int:
        """Element-wise product; with a sparse operand this *samples*."""
        return self._elementwise("hadamard", a, b)

    def divide(self, a: int, b: int) -> int:
        """Element-wise (Hadamard) division ``a ⊘ b``."""
        return self._elementwise("divide", a, b)

    def add(self, a: int, b: int) -> int:
        return self._elementwise("add", a, b)

    def _elementwise(self, op: str, a: int, b: int) -> int:
        ka, kb = self._kind(a), self._kind(b)
        if ka != kb:
            raise ValueError(f"{op} operands must share a shape kind")
        return self._add(op, (a, b), ka)

    def exp(self, a: int) -> int:
        return self._add("exp", (a,), self._kind(a))

    def leaky_relu(self, a: int, slope: float = 0.2) -> int:
        return self._add(
            "leaky_relu", (a,), self._kind(a), slope=slope
        )

    def leaky_relu_grad(self, a: int, slope: float = 0.2) -> int:
        """Element-wise LeakyReLU derivative mask (1 or ``slope``)."""
        return self._add(
            "leaky_relu_grad", (a,), self._kind(a), slope=slope
        )

    def scale(self, a: int, factor: float) -> int:
        return self._add("scale", (a,), self._kind(a), factor=factor)

    def reciprocal(self, a: int, eps: float = 0.0) -> int:
        return self._add("reciprocal", (a,), self._kind(a), eps=eps)

    def row_sum(self, a: int) -> int:
        """``sum(X) = X 1`` — per-row summation (Table 2)."""
        kind = {"nn": "n", "nk": "n", "kk": "k"}.get(self._kind(a))
        if kind is None:
            raise ValueError("row_sum needs a matrix operand")
        return self._add("row_sum", (a,), kind)

    def col_sum(self, a: int) -> int:
        """``sum(X^T) = X^T 1`` — per-column summation.

        The adjoint of :meth:`replicate_t` (Table 2's ``rep^T``), used
        throughout the Section-5 backward formulations.
        """
        kind = {"nn": "n", "nk": "k", "kk": "k"}.get(self._kind(a))
        if kind is None:
            raise ValueError("col_sum needs a matrix operand")
        return self._add("col_sum", (a,), kind)

    def row_scale(self, a: int, s: int) -> int:
        """``diag(s) X`` — scale each row of ``a`` by a vector entry.

        The adjoint of :meth:`row_norm` routes through this op:
        :math:`dH \\mathrel{+}= \\mathrm{diag}(dn \\oslash n)\\,H`.
        """
        ka, ks = self._kind(a), self._kind(s)
        if (ka, ks) not in (("nk", "n"), ("nn", "n"), ("kk", "k")):
            raise ValueError(f"row_scale of {ka} by {ks} not supported")
        return self._add("row_scale", (a, s), ka)

    def sample(self, a: int) -> int:
        """Restrict an ``n x n`` operand to the adjacency pattern.

        Explicit Table-1 sampling without an adjacency multiplication:
        the output is SPARSE and carries the operand's values at the
        stored entries only. The autodiff pass emits this whenever the
        adjoint of a SPARSE node is assembled purely from virtual
        contributions (e.g. the replicated softmax-denominator
        gradient).
        """
        if self._kind(a) != "nn":
            raise ValueError("sample needs an n x n operand")
        return self._add("sample", (a,), "nn")

    def row_norm(self, a: int) -> int:
        """Per-row L2 norms of an ``n x k`` operand (AGNN's ``n`` vector)."""
        if self._kind(a) != "nk":
            raise ValueError("row_norm needs an n x k operand")
        return self._add("row_norm", (a,), "n")

    def replicate(self, a: int) -> int:
        """``rep_n(x) = x 1^T`` — column-wise replication to n x n."""
        if self._kind(a) != "n":
            raise ValueError("replicate needs an n-vector")
        return self._add("replicate", (a,), "nn")

    def replicate_t(self, a: int) -> int:
        """``rep_n^T(x) = 1 x^T`` — row-wise replication to n x n."""
        if self._kind(a) != "n":
            raise ValueError("replicate_t needs an n-vector")
        return self._add("replicate_t", (a,), "nn")

    def outer(self, a: int, b: int) -> int:
        """Outer product of two vectors.

        ``(n, n)`` gives AGNN's virtual ``n n^T``; ``(n, k)`` gives the
        rank-1 ``n x k`` feature gradients of the GAT backward pass
        (:math:`du\\,a^T`), which are DENSE (tall, not graph-quadratic).
        """
        kind = {("n", "n"): "nn", ("n", "k"): "nk", ("k", "n"): "kn"}.get(
            (self._kind(a), self._kind(b))
        )
        if kind is None:
            raise ValueError("outer needs two vector operands")
        return self._add("outer", (a, b), kind)

    def set_output(self, a: int) -> None:
        self.output = a

    def mark_output(self, name: str, a: int) -> None:
        """Register ``a`` as a named output (multi-output programs)."""
        if not 0 <= a < len(self.nodes):
            raise ValueError(f"undefined operand %{a}")
        self.outputs[name] = a

    # ------------------------------------------------------------------
    def topological_order(self) -> list[int]:
        """Node ids in definition (already topological) order."""
        return list(range(len(self.nodes)))

    def consumers(self) -> dict[int, list[int]]:
        """Map node id -> ids of nodes consuming it."""
        out: dict[int, list[int]] = {node.id: [] for node in self.nodes}
        for node in self.nodes:
            for operand in node.inputs:
                out[operand].append(node.id)
        return out

    def pretty(self) -> str:
        """Readable listing of the DAG (used in docs/tests)."""
        lines = [repr(node) for node in self.nodes]
        for name, nid in self.outputs.items():
            lines.append(f"output {name} = %{nid}")
        return "\n".join(lines)
