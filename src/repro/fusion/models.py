"""Pre-built :math:`\\Psi` and full-layer DAGs for VA, AGNN and GAT.

These are the global tensor formulations written in the toolchain IR —
the programmability demonstration of the paper: each model is a handful
of Table-2 building blocks, and the fusion pass turns every virtual
intermediate into an SDDMM-like kernel automatically. The executed
results match the hand-fused kernels of :mod:`repro.core.psi` (tests
assert it).

Two granularities are provided:

* ``*_psi_dag`` — the attention operator alone; the DAG output is the
  SPARSE score matrix :math:`\\Psi` (Figure 1).
* ``*_layer_dag`` — the whole layer pre-activation :math:`Z = \\Psi
  (H W)`; the DAG output is DENSE, which is what
  :func:`repro.fusion.autodiff.build_vjp` seeds with :math:`dZ` to
  derive every parameter gradient of the layer (including GAT's
  two-path :math:`dW`) from one joint program. The sparse scores stay
  reachable through the named output ``"S"``.

Inputs expected at execution:

* VA / AGNN — ``H`` (n x k), ``A`` (sparse CSR); layer DAGs add ``W``.
* GAT — ``H``, ``A``, ``W`` (k x k'), ``a_src``/``a_dst`` (k' vectors).
"""

from __future__ import annotations

from repro.fusion.dag import OpDag

__all__ = [
    "va_psi_dag", "agnn_psi_dag", "gat_psi_dag",
    "va_layer_dag", "agnn_layer_dag", "gat_layer_dag",
]


def _graph_softmax(dag: OpDag, scores: int) -> int:
    """Attach the Section-4.2 softmax: exp, row-sum, replicate, divide.

    ``scores`` must be SPARSE; the replicated denominator is virtual
    and fuses into the final sampled division.
    """
    exp = dag.exp(scores)
    denom = dag.replicate(dag.row_sum(exp))
    return dag.divide(exp, denom)


# ----------------------------------------------------------------------
# Psi sub-graphs (shared by the psi-level and layer-level builders)
# ----------------------------------------------------------------------
def _va_psi(dag: OpDag, h: int, a: int) -> int:
    gram = dag.matmul(h, dag.transpose(h))  # virtual n x n
    return dag.hadamard(a, gram)            # sampled on A


def _agnn_psi(dag: OpDag, h: int, a: int, beta: float) -> int:
    gram = dag.matmul(h, dag.transpose(h))          # virtual
    norms = dag.row_norm(h)
    denom = dag.outer(norms, norms)                 # virtual n n^T
    cos = dag.divide(gram, denom)                   # virtual
    masked = dag.hadamard(a, dag.scale(cos, beta))  # sampled
    return _graph_softmax(dag, masked)


def _gat_psi(
    dag: OpDag, hw: int, a: int, a_src: int, a_dst: int, slope: float
) -> int:
    u = dag.matmul(hw, a_src)
    v = dag.matmul(hw, a_dst)
    c = dag.add(dag.replicate(u), dag.replicate_t(v))  # virtual C
    logits = dag.leaky_relu(c, slope=slope)            # virtual
    masked = dag.hadamard(a, logits)                   # sampled
    return _graph_softmax(dag, masked)


# ----------------------------------------------------------------------
# Psi-level DAGs (output: the sparse attention scores)
# ----------------------------------------------------------------------
def va_psi_dag() -> OpDag:
    """:math:`\\Psi_{VA} = \\mathcal{A} \\odot (H H^T)`."""
    dag = OpDag()
    h = dag.input("H", "nk")
    a = dag.input("A", "nn", sparse=True)
    dag.set_output(_va_psi(dag, h, a))
    return dag


def agnn_psi_dag(beta: float = 1.0) -> OpDag:
    """:math:`\\Psi_{AGNN} = \\mathrm{sm}(\\mathcal{A} \\odot \\beta
    (H H^T \\oslash n n^T))`."""
    dag = OpDag()
    h = dag.input("H", "nk")
    a = dag.input("A", "nn", sparse=True)
    dag.set_output(_agnn_psi(dag, h, a, beta))
    return dag


def gat_psi_dag(slope: float = 0.2) -> OpDag:
    """:math:`\\Psi_{GAT} = \\mathrm{sm}(\\mathcal{A} \\odot
    \\mathrm{LeakyReLU}(\\mathrm{rep}(HWa) + \\mathrm{rep}^T(HW\\bar a)))`.

    The Figure-2 derivation verbatim: the concatenated dot product
    splits into :math:`u_i + v_j`, expressed as two replications of the
    projected score vectors.
    """
    dag = OpDag()
    h = dag.input("H", "nk")
    a = dag.input("A", "nn", sparse=True)
    w = dag.input("W", "kk")
    a_src = dag.input("a_src", "k")
    a_dst = dag.input("a_dst", "k")
    hw = dag.matmul(h, w)
    dag.set_output(_gat_psi(dag, hw, a, a_src, a_dst, slope))
    return dag


# ----------------------------------------------------------------------
# Full-layer DAGs (output: the dense pre-activation Z = Psi H W)
# ----------------------------------------------------------------------
def va_layer_dag() -> OpDag:
    """VA layer pre-activation :math:`Z = (\\mathcal{A} \\odot H H^T)
    (H W)` with ``S`` as a named output."""
    dag = OpDag()
    h = dag.input("H", "nk")
    a = dag.input("A", "nn", sparse=True)
    w = dag.input("W", "kk")
    psi = _va_psi(dag, h, a)
    dag.mark_output("S", psi)
    dag.set_output(dag.matmul(psi, dag.matmul(h, w)))
    return dag


def agnn_layer_dag(beta: float = 1.0) -> OpDag:
    """AGNN layer pre-activation :math:`Z = \\Psi_{AGNN} (H W)`.

    ``beta`` is baked into the DAG as a ``scale`` attribute — the
    paper's formulation keeps the temperature fixed; a learnable beta
    stays on the hand-fused path (:class:`repro.models.agnn.AGNNLayer`
    with ``learnable_beta=True``).
    """
    dag = OpDag()
    h = dag.input("H", "nk")
    a = dag.input("A", "nn", sparse=True)
    w = dag.input("W", "kk")
    psi = _agnn_psi(dag, h, a, beta)
    dag.mark_output("S", psi)
    dag.set_output(dag.matmul(psi, dag.matmul(h, w)))
    return dag


def gat_layer_dag(slope: float = 0.2) -> OpDag:
    """GAT layer pre-activation :math:`Z = \\Psi_{GAT} (H W)`.

    The projection ``H W`` is a *shared* node: the attention logits and
    the aggregation both consume it, so the autodiff pass accumulates
    both Eq.-(7) weight-gradient paths into one ``grad:W`` output
    automatically.
    """
    dag = OpDag()
    h = dag.input("H", "nk")
    a = dag.input("A", "nn", sparse=True)
    w = dag.input("W", "kk")
    a_src = dag.input("a_src", "k")
    a_dst = dag.input("a_dst", "k")
    hw = dag.matmul(h, w)
    psi = _gat_psi(dag, hw, a, a_src, a_dst, slope)
    dag.mark_output("S", psi)
    dag.set_output(dag.matmul(psi, hw))
    return dag
