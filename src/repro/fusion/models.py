"""Pre-built :math:`\\Psi` DAGs for VA, AGNN and GAT (Figure 1).

These are the global tensor formulations written in the toolchain IR —
the programmability demonstration of the paper: each model is a handful
of Table-2 building blocks, and the fusion pass turns every virtual
intermediate into an SDDMM-like kernel automatically. The executed
results match the hand-fused kernels of :mod:`repro.core.psi` (tests
assert it).

Inputs expected at execution:

* ``va_psi_dag`` — ``H`` (n x k), ``A`` (sparse CSR).
* ``agnn_psi_dag`` — ``H``, ``A``.
* ``gat_psi_dag`` — ``H``, ``A``, ``W`` (k x k'), ``a_src``/``a_dst``
  (k' vectors).
"""

from __future__ import annotations

from repro.fusion.dag import OpDag

__all__ = ["va_psi_dag", "agnn_psi_dag", "gat_psi_dag"]


def _graph_softmax(dag: OpDag, scores: int) -> int:
    """Attach the Section-4.2 softmax: exp, row-sum, replicate, divide.

    ``scores`` must be SPARSE; the replicated denominator is virtual
    and fuses into the final sampled division.
    """
    exp = dag.exp(scores)
    denom = dag.replicate(dag.row_sum(exp))
    return dag.divide(exp, denom)


def va_psi_dag() -> OpDag:
    """:math:`\\Psi_{VA} = \\mathcal{A} \\odot (H H^T)`."""
    dag = OpDag()
    h = dag.input("H", "nk")
    a = dag.input("A", "nn", sparse=True)
    gram = dag.matmul(h, dag.transpose(h))  # virtual n x n
    psi = dag.hadamard(a, gram)             # sampled on A
    dag.set_output(psi)
    return dag


def agnn_psi_dag(beta: float = 1.0) -> OpDag:
    """:math:`\\Psi_{AGNN} = \\mathrm{sm}(\\mathcal{A} \\odot \\beta
    (H H^T \\oslash n n^T))`."""
    dag = OpDag()
    h = dag.input("H", "nk")
    a = dag.input("A", "nn", sparse=True)
    gram = dag.matmul(h, dag.transpose(h))          # virtual
    norms = dag.row_norm(h)
    denom = dag.outer(norms, norms)                 # virtual n n^T
    cos = dag.divide(gram, denom)                   # virtual
    masked = dag.hadamard(a, dag.scale(cos, beta))  # sampled
    dag.set_output(_graph_softmax(dag, masked))
    return dag


def gat_psi_dag(slope: float = 0.2) -> OpDag:
    """:math:`\\Psi_{GAT} = \\mathrm{sm}(\\mathcal{A} \\odot
    \\mathrm{LeakyReLU}(\\mathrm{rep}(HWa) + \\mathrm{rep}^T(HW\\bar a)))`.

    The Figure-2 derivation verbatim: the concatenated dot product
    splits into :math:`u_i + v_j`, expressed as two replications of the
    projected score vectors.
    """
    dag = OpDag()
    h = dag.input("H", "nk")
    a = dag.input("A", "nn", sparse=True)
    w = dag.input("W", "kk")
    a_src = dag.input("a_src", "k")
    a_dst = dag.input("a_dst", "k")
    hw = dag.matmul(h, w)
    u = dag.matmul(hw, a_src)
    v = dag.matmul(hw, a_dst)
    c = dag.add(dag.replicate(u), dag.replicate_t(v))  # virtual C
    logits = dag.leaky_relu(c, slope=slope)            # virtual
    masked = dag.hadamard(a, logits)                   # sampled
    dag.set_output(_graph_softmax(dag, masked))
    return dag
