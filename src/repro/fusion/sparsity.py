"""Sparsity and virtual-tensor inference (Section 6.1).

For every node of an :class:`~repro.fusion.dag.OpDag` we infer one of
three storage classes:

``DENSE``
    Materialisable: anything not graph-quadratic (``n x k``, ``k x k``,
    vectors) — and, for completeness, explicitly dense ``n x n``
    requests on tiny graphs.
``SPARSE``
    Shares the adjacency pattern (an output of sampling, or the
    adjacency itself); stored as CSR values.
``VIRTUAL``
    An ``n x n`` *dense* intermediate — e.g. GAT's ``C`` or the
    replicated softmax denominator. "We never instantiate it
    explicitly, and it is instead computed in parts" — the fusion pass
    must eliminate every such node by folding it into a sampled kernel.

The propagation rules follow Table 1's sparsity/density patterns:
element-wise ops with one SPARSE operand sample (output SPARSE);
element-wise ops of VIRTUAL/DENSE ``n x n`` operands stay VIRTUAL;
``matmul`` producing ``n x n`` from dense talls is VIRTUAL; reductions
of SPARSE operands (row sums) are DENSE vectors.
"""

from __future__ import annotations

from enum import Enum

from repro.fusion.dag import OpDag

__all__ = ["Sparsity", "infer_sparsity"]


class Sparsity(Enum):
    DENSE = "dense"
    SPARSE = "sparse"
    VIRTUAL = "virtual"


def infer_sparsity(dag: OpDag) -> dict[int, Sparsity]:
    """Classify every node; raises on rules the IR cannot express."""
    cls: dict[int, Sparsity] = {}
    for node in dag.nodes:
        if node.op == "input":
            if node.id in dag.sparse_inputs:
                cls[node.id] = Sparsity.SPARSE
            elif node.shape_kind == "nn":
                cls[node.id] = Sparsity.VIRTUAL
            else:
                cls[node.id] = Sparsity.DENSE
            continue

        in_cls = [cls[i] for i in node.inputs]
        if node.op in ("hadamard", "divide", "add"):
            if Sparsity.SPARSE in in_cls:
                # Sampling: the sparse operand masks the other.
                cls[node.id] = Sparsity.SPARSE
            elif node.shape_kind == "nn":
                cls[node.id] = Sparsity.VIRTUAL
            else:
                cls[node.id] = Sparsity.DENSE
        elif node.op in ("exp", "leaky_relu", "leaky_relu_grad", "scale",
                         "reciprocal"):
            cls[node.id] = in_cls[0]
        elif node.op == "transpose":
            cls[node.id] = in_cls[0]
        elif node.op == "matmul":
            if node.shape_kind == "nn":
                # Tall x tall-transposed: graph-quadratic dense result.
                cls[node.id] = Sparsity.VIRTUAL
            else:
                # Includes SpMM/SpMV: a sparse (or transposed-sparse)
                # first operand with a tall/vector second operand
                # produces a non-quadratic, materialisable result.
                cls[node.id] = Sparsity.DENSE
        elif node.op in ("replicate", "replicate_t", "outer"):
            # Graph-quadratic replications are virtual; rank-1 tall
            # outer products (n x k feature gradients) materialise.
            cls[node.id] = (
                Sparsity.VIRTUAL
                if node.shape_kind == "nn"
                else Sparsity.DENSE
            )
        elif node.op == "sample":
            if in_cls[0] is Sparsity.DENSE:
                raise ValueError(
                    "sample needs a virtual or sparse n x n operand"
                )
            cls[node.id] = Sparsity.SPARSE
        elif node.op in ("row_sum", "col_sum", "row_norm", "row_scale"):
            cls[node.id] = Sparsity.DENSE
        else:  # pragma: no cover - guarded by the builder
            raise ValueError(f"no sparsity rule for op {node.op!r}")
    return cls
