"""``DagLayer``: a trainable GNN layer executed from the op-DAG IR.

The programmability end-point of the toolchain (Figure 4): the model
author supplies only the forward global formulation — one of the
:mod:`repro.fusion.models` layer DAGs —
:func:`repro.fusion.autodiff.build_vjp` derives the joint
forward+backward program, the fusion pass compiles its virtual
intermediates into SDDMM-like kernels, and this layer runs both passes
through one :class:`~repro.fusion.interp.ProgramRunner` per step so the
backward outputs reuse the cached forward activations (softmax edge
values, projected features, Gram dot products).

``DagLayer`` satisfies the :class:`repro.models.base.GnnLayer`
contract, so it drops into :class:`repro.models.base.GnnModel` next to
the hand-fused layers. The hand-written kernels
(:mod:`repro.core.psi`, used by ``VALayer``/``AGNNLayer``/``GATLayer``)
remain the default *fast path* — they fuse the softmax into two
segment sweeps and reuse pooled workspaces — while ``DagLayer`` is the
*derived* path: slower per edge, but requiring zero backward code.
Tests assert the two paths agree to tight tolerances, which is exactly
the paper's argument that the global formulations and their derived
gradients are the single source of truth.

Program/parameter split
-----------------------
A layer's *program* — the joint forward+backward DAG and its fused
kernel grouping — is a pure function of ``(model, beta, slope)``; only
the parameter arrays differ between two GAT ``DagLayer`` instances.
Compiled programs are therefore interned in a module-level cache and
shared read-only: the per-step :class:`ProgramRunner` (which binds the
actual arrays and memoises activations) is the *per-request* state, so
one compiled program serves any number of layers, models, and
concurrent in-flight batches — the same parameters-vs-workspace split
the serving engine makes at the model level. A side effect of interning
is that fusion runs once per distinct layer shape instead of once per
``forward`` call.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.fusion.autodiff import GradProgram, build_vjp
from repro.fusion.fuse import FusedProgram, fuse
from repro.fusion.interp import ProgramRunner
from repro.fusion.models import agnn_layer_dag, gat_layer_dag, va_layer_dag
from repro.models.base import GnnLayer, glorot
from repro.obs.tracer import tracer
from repro.tensor.csr import CSRMatrix
from repro.util.counters import FlopCounter, event_counter, null_counter
from repro.util.rng import make_rng

__all__ = ["DagLayer", "LAYER_DAG_BUILDERS", "compiled_layer_program"]

#: model name -> (layer-DAG builder kwargs -> OpDag, extra param names)
LAYER_DAG_BUILDERS = {
    "va": (lambda **kw: va_layer_dag(), ()),
    "agnn": (
        lambda beta=1.0, **kw: agnn_layer_dag(beta=beta),
        (),
    ),
    "gat": (
        lambda slope=0.2, **kw: gat_layer_dag(slope=slope),
        ("a_src", "a_dst"),
    ),
}


#: (model, beta, slope) -> (derived joint program, fused compilation).
#: Both values are immutable once built; runners bind inputs privately.
_PROGRAM_CACHE: dict[
    tuple[str, float, float], tuple[GradProgram, FusedProgram]
] = {}
_PROGRAM_LOCK = threading.Lock()


def compiled_layer_program(
    model: str, beta: float = 1.0, slope: float = 0.2
) -> tuple[GradProgram, FusedProgram]:
    """The interned (derived, fused) program pair for one layer shape.

    Built once per distinct ``(model, beta, slope)`` and shared by
    every :class:`DagLayer` with that shape — programs carry no
    parameter values, so sharing is safe across instances, reloads and
    concurrent requests. Events ``dag_program.built`` /
    ``dag_program.hit`` report cache behaviour.
    """
    if model not in LAYER_DAG_BUILDERS:
        raise ValueError(
            f"unknown model {model!r}; expected one of "
            f"{sorted(LAYER_DAG_BUILDERS)}"
        )
    key = (model, float(beta), float(slope))
    with _PROGRAM_LOCK:
        entry = _PROGRAM_CACHE.get(key)
        if entry is None:
            builder, extra = LAYER_DAG_BUILDERS[model]
            forward = builder(beta=beta, slope=slope)
            wrt = ("H", "W") + extra
            program = build_vjp(forward, wrt, seed_name="dZ")
            entry = (program, fuse(program.dag))
            _PROGRAM_CACHE[key] = entry
            event_counter().bump("dag_program.built")
        else:
            event_counter().bump("dag_program.hit")
    return entry


@dataclass
class _DagCache:
    """Training cache: the joint-program runner plus the contract's ``z``.

    The runner *is* the request-scoped workspace: it owns the bound
    inputs and memoised activations of one forward/backward round
    trip, while the compiled program it executes is shared module
    state. Dropping the cache drops everything request-specific.
    """

    runner: ProgramRunner
    z: np.ndarray


class DagLayer(GnnLayer):
    """One A-GNN layer whose backward pass is *derived*, not written.

    Parameters
    ----------
    model:
        ``"va"``, ``"agnn"`` or ``"gat"`` — selects the layer DAG.
    in_dim, out_dim:
        Feature dimensions of :math:`W`.
    activation:
        Output non-linearity applied outside the DAG (the DAG computes
        the pre-activation ``Z``; :math:`\\sigma'` masking is the
        model's job, per Eq. 4/6).
    mode:
        Executor mode forwarded to the runner (``"fused"`` for
        production; ``"tiled"``/``"dense"`` for ablations/tests).
    fused:
        Megakernel switch forwarded to the runner: ``True`` lowers the
        recognised attention chain to the single-sweep executor
        (:mod:`repro.tensor.megakernel`), ``False`` keeps the
        kernel-at-a-time interpreter (the parity oracle), ``None``
        (default) defers to ``$REPRO_FUSION``.
    beta, slope:
        AGNN temperature / GAT LeakyReLU slope baked into the DAG.
    """

    def __init__(
        self,
        model: str,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        mode: str = "fused",
        fused: bool | None = None,
        beta: float = 1.0,
        slope: float = 0.2,
        seed: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        super().__init__(activation)
        _, extra = LAYER_DAG_BUILDERS.get(model, (None, ()))
        self.model = model
        self.mode = mode
        self.fused = fused
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.program, self._fused_program = compiled_layer_program(
            model, beta=beta, slope=slope
        )
        rng = make_rng(seed)
        self.weight = glorot(rng, (in_dim, out_dim), dtype)
        if "a_src" in extra:
            self.a_src = glorot(rng, (out_dim,), dtype)
            self.a_dst = glorot(rng, (out_dim,), dtype)
        self._extra = extra

    # ------------------------------------------------------------------
    def _bindings(self, a: CSRMatrix, h: np.ndarray) -> dict:
        inputs = {"A": a, "H": h, "W": self.weight}
        for name in self._extra:
            inputs[name] = getattr(self, name)
        return inputs

    def forward(
        self,
        a: CSRMatrix,
        h: np.ndarray,
        counter: FlopCounter = null_counter(),
        training: bool = True,
    ) -> tuple[np.ndarray, _DagCache | None]:
        with tracer().span(
            "daglayer.forward", counter=counter, model=self.model,
        ):
            runner = ProgramRunner(
                self._fused_program, self._bindings(a, h), mode=self.mode,
                fused=self.fused, counter=counter,
            )
            z = runner.run()
            h_next = self.activation.fn(z)
        if not training:
            return h_next, None
        return h_next, _DagCache(runner=runner, z=z)

    # ------------------------------------------------------------------
    def backward(
        self,
        cache: _DagCache,
        g: np.ndarray,
        counter: FlopCounter = null_counter(),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        with tracer().span(
            "daglayer.backward", counter=counter, model=self.model,
        ):
            runner = cache.runner
            runner.set_counter(counter)
            runner.bind(self.program.seed, np.asarray(g))
            grads = {
                name: runner.run(f"grad:{name}")
                for name in ("W",) + self._extra
            }
            dh = runner.run("grad:H")
        renamed = {"weight": grads.pop("W"), **grads}
        return dh, renamed

    # ------------------------------------------------------------------
    def parameters(self) -> dict[str, np.ndarray]:
        params = {"weight": self.weight}
        for name in self._extra:
            params[name] = getattr(self, name)
        return params

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Full joint-program listing (forward + derived backward)."""
        return self.program.describe()
