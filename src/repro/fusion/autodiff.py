"""Reverse-mode autodiff over the op-DAG IR (Section 5, derived).

The paper's programmability claim is that a model author writes only
the forward :math:`\\Psi` formulation and the toolchain (Figure 4)
derives everything else — including the Section-5 backward tensor
formulations. This pass delivers that for the IR: given a forward
:class:`~repro.fusion.dag.OpDag`, :func:`build_vjp` emits the backward
DAG *in the same IR*, using the per-op vector-Jacobian rules implied by
Table 2 and Section 5:

===================  ==============================================
forward op           adjoint rule
===================  ==============================================
``matmul``           :math:`dA = G B^T`, :math:`dB = A^T G`
``hadamard``         :math:`dA = G \\odot B` (and symmetrically)
``divide``           :math:`dA = G \\oslash B`,
                     :math:`dB = -(G \\oslash B) \\odot (A \\oslash B)`
``exp``              :math:`dA = G \\odot e^A` (forward value reused)
``leaky_relu``       :math:`dA = G \\odot \\mathrm{LReLU}'(A)`
``replicate``        ``row_sum`` (``rep`` and ``sum`` are adjoint)
``replicate_t``      ``col_sum``
``row_sum``          ``replicate``
``col_sum``          ``replicate_t``
``outer``            :math:`da = G b`, :math:`db = G^T a`
``row_norm``         ``row_scale`` by :math:`dn \\oslash n`
graph softmax        composition of the rules above — no special case
===================  ==============================================

Sparsity is *inferred, not assumed*: the adjoint of every virtual
:math:`n \\times n` intermediate is sampled on the adjacency pattern
(a gradient can only flow back through the sampling op that consumed
the virtual value), so the emitted backward DAG passes the Section-6.2
fusion pass unchanged and every backward n-quadratic intermediate
becomes an SDDMM-like kernel, exactly like the forward ones. When the
adjoint of a SPARSE node would otherwise assemble from purely virtual
contributions (the replicated softmax-denominator gradient), an
explicit ``sample`` op restores the invariant.

The result is a *joint* program: one DAG holding the forward nodes, a
gradient seed input, and one named output per requested input gradient.
Executing it through a
:class:`~repro.fusion.interp.ProgramRunner` evaluates the forward
output first and the gradients later, against cached activations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.fusion.dag import OpDag
from repro.fusion.fuse import FusedProgram, fuse
from repro.fusion.sparsity import Sparsity, infer_sparsity

__all__ = ["GradProgram", "build_vjp"]

#: Shape kinds that a plain ``matmul(transpose(a), g)`` adjoint covers.
_MATRIX_KINDS = ("nn", "nk", "kn", "kk")


@dataclass
class GradProgram:
    """A joint forward+backward DAG emitted by :func:`build_vjp`.

    Attributes
    ----------
    dag:
        The joint DAG. Node ids ``0 .. len(forward)-1`` are the copied
        forward nodes; the default output is the forward output; the
        named outputs ``grad:<name>`` are the input gradients.
    seed:
        Name of the gradient-seed input (bind it before running any
        gradient output).
    output:
        Id of the forward output node inside the joint DAG.
    grads:
        Differentiated input name -> gradient node id.
    """

    dag: OpDag
    seed: str
    output: int
    grads: dict[str, int] = field(default_factory=dict)

    def fuse(self) -> FusedProgram:
        """Run the Section-6.2 fusion pass over the joint DAG."""
        return fuse(self.dag)

    def describe(self) -> str:
        """Full forward+backward listing with kernels (docs/reports)."""
        return self.fuse().describe()


def build_vjp(
    forward: OpDag,
    wrt: Iterable[str],
    seed_name: str = "dOut",
) -> GradProgram:
    """Derive the backward DAG of ``forward`` w.r.t. named inputs.

    Parameters
    ----------
    forward:
        A forward DAG with ``output`` set (SPARSE or DENSE output).
    wrt:
        Names of the inputs whose gradients are wanted. Inputs not
        listed (typically the adjacency) get no adjoint nodes at all —
        the backward DAG is pruned to the requested gradients.
    seed_name:
        Name of the seed input carrying :math:`\\partial L/\\partial
        \\mathrm{out}`. It shares the output's shape kind, and is a
        sparse input when the output is SPARSE (bind the gradient edge
        values as a CSR on the adjacency pattern).

    Returns
    -------
    A :class:`GradProgram` whose DAG contains the forward program plus
    the derived backward, with ``grad:<name>`` outputs registered.
    """
    if forward.output is None:
        raise ValueError("forward DAG has no output set")
    wrt = tuple(wrt)
    names = {
        node.name for node in forward.nodes if node.op == "input"
    }
    for name in wrt:
        if name not in names:
            raise ValueError(f"no input named {name!r} to differentiate")

    dag = _copy_dag(forward)
    fwd_count = len(forward.nodes)
    fwd_cls = infer_sparsity(forward)

    # Forward-propagate which nodes depend on a requested input: only
    # those need adjoints (prunes e.g. the adjacency's gradient).
    needs: set[int] = set()
    for node in forward.nodes:
        if node.op == "input" and node.name in wrt:
            needs.add(node.id)
        elif any(i in needs for i in node.inputs):
            needs.add(node.id)
    if forward.output not in needs:
        raise ValueError(
            "the output does not depend on any requested input"
        )

    # Lazily re-run sparsity inference as the joint DAG grows; DAGs are
    # tens of nodes, so recomputation is cheaper than bug-prone
    # incremental bookkeeping.
    cls_cache: dict[int, Sparsity] = {}

    def cls(nid: int) -> Sparsity:
        if nid not in cls_cache:
            cls_cache.clear()
            cls_cache.update(infer_sparsity(dag))
        return cls_cache[nid]

    out_kind = forward.nodes[forward.output].shape_kind
    seed = dag.input(
        seed_name,
        out_kind,
        sparse=fwd_cls[forward.output] is Sparsity.SPARSE,
    )

    contributions: dict[int, list[int]] = {forward.output: [seed]}

    def push(target: int, grad: int) -> None:
        if target in needs:
            contributions.setdefault(target, []).append(grad)

    grads: dict[str, int] = {}
    for nid in range(fwd_count - 1, -1, -1):
        parts = contributions.get(nid)
        if not parts:
            continue
        node = dag.nodes[nid]
        total = parts[0]
        for extra in parts[1:]:
            total = dag.add(total, extra)
        if (
            fwd_cls[nid] is Sparsity.SPARSE
            and cls(total) is Sparsity.VIRTUAL
        ):
            # Adjoint of a sparse tensor lives on the pattern: sample
            # the virtual accumulation instead of materialising it.
            total = dag.sample(total)
        if node.op == "input":
            grads[node.name] = total
            continue
        _emit_vjp(dag, node, total, push, cls, needs)

    for name in wrt:
        if name not in grads:  # pragma: no cover - guarded by `needs`
            raise RuntimeError(f"no gradient reached input {name!r}")
        dag.mark_output(f"grad:{name}", grads[name])
    return GradProgram(
        dag=dag, seed=seed_name, output=forward.output, grads=grads
    )


def _copy_dag(forward: OpDag) -> OpDag:
    """Clone a DAG node-for-node (ids and named outputs preserved)."""
    dag = OpDag()
    for node in forward.nodes:
        dag._add(
            node.op, node.inputs, node.shape_kind, name=node.name,
            **node.attrs,
        )
    dag._sparse_inputs.update(forward.sparse_inputs)
    dag.output = forward.output
    dag.outputs.update(forward.outputs)
    return dag


def _emit_vjp(dag: OpDag, node, g: int, push, cls, needs) -> None:
    """Append the adjoint nodes of one forward op, seeding its inputs.

    ``g`` is the node's accumulated output adjoint; ``push(operand,
    grad)`` registers a contribution (no-op for operands outside the
    differentiated cone). ``needs`` gates node *construction* where a
    rule would otherwise emit dead adjoint products.
    """
    op = node.op
    kind = lambda nid: dag.nodes[nid].shape_kind  # noqa: E731

    if op == "matmul":
        a, b = node.inputs
        _emit_matmul_vjp(dag, a, b, g, push, cls, kind, needs)
        return
    operand = node.inputs[0] if node.inputs else None
    if op == "transpose":
        if operand in needs:
            push(operand, dag.transpose(g))
    elif op == "hadamard":
        a, b = node.inputs
        if a in needs:
            push(a, dag.hadamard(g, b))
        if b in needs:
            push(b, dag.hadamard(g, a))
    elif op == "divide":
        a, b = node.inputs
        if a in needs or b in needs:
            ga = dag.divide(g, b)
            push(a, ga)
            if b in needs:
                # d/dB (A ⊘ B) = -(G ⊘ B) ⊙ (A ⊘ B): forward reuse.
                push(b, dag.scale(dag.hadamard(ga, node.id), -1.0))
    elif op == "add":
        push(node.inputs[0], g)
        push(node.inputs[1], g)
    elif op == "exp":
        if operand in needs:
            push(operand, dag.hadamard(g, node.id))
    elif op == "leaky_relu":
        if operand in needs:
            mask = dag.leaky_relu_grad(operand, node.attrs["slope"])
            push(operand, dag.hadamard(g, mask))
    elif op == "leaky_relu_grad":
        pass  # piecewise-constant: zero gradient almost everywhere
    elif op == "scale":
        if operand in needs:
            push(operand, dag.scale(g, node.attrs["factor"]))
    elif op == "reciprocal":
        if operand in needs:
            sq = dag.hadamard(node.id, node.id)
            push(operand, dag.scale(dag.hadamard(g, sq), -1.0))
    elif op == "row_sum":
        if operand in needs:
            if kind(operand) != "nn":
                raise NotImplementedError(
                    "row_sum adjoint is only derived for n x n operands"
                )
            push(operand, dag.replicate(g))
    elif op == "col_sum":
        if operand in needs:
            if kind(operand) != "nn":
                raise NotImplementedError(
                    "col_sum adjoint is only derived for n x n operands"
                )
            push(operand, dag.replicate_t(g))
    elif op == "row_norm":
        # n = ||h_i||: dH += diag(dn ⊘ n) H.
        if operand in needs:
            push(operand, dag.row_scale(operand, dag.divide(g, node.id)))
    elif op == "row_scale":
        x, s = node.inputs
        if x in needs:
            push(x, dag.row_scale(g, s))
        if s in needs:
            push(s, dag.row_sum(dag.hadamard(g, x)))
    elif op == "replicate":
        if operand in needs:
            push(operand, dag.row_sum(g))
    elif op == "replicate_t":
        if operand in needs:
            push(operand, dag.col_sum(g))
    elif op == "outer":
        a, b = node.inputs
        if a in needs:
            push(a, dag.matmul(g, b))
        if b in needs:
            push(b, dag.matmul(dag.transpose(g), a))
    elif op == "sample":
        push(node.inputs[0], g)
    else:
        raise NotImplementedError(f"no VJP rule for op {op!r}")


def _emit_matmul_vjp(dag, a, b, g, push, cls, kind, needs) -> None:
    """Adjoints of ``matmul(a, b)`` for every supported kind pairing.

    The emitted products are exactly the Section-5 kernel shapes: the
    adjoint of an SDDMM-shaped virtual product is an SpMM pair, the
    adjoint of an SpMM is an SDDMM (sampled through the sparsity of the
    adjoint), and tall-times-vector projections turn into rank-1 outer
    products plus transposed matrix-vector products.
    """
    if a in needs:
        if kind(b) in _MATRIX_KINDS:
            ga = dag.matmul(g, dag.transpose(b))
        else:  # vector second operand: rank-1 gradient
            ga = dag.outer(g, b)
        if cls(a) is Sparsity.SPARSE and cls(ga) is Sparsity.VIRTUAL:
            ga = dag.sample(ga)
        push(a, ga)
    if b in needs:
        if kind(g) == "nn":
            # nk x kn -> nn: dB = (G^T A)^T keeps the sparse adjoint on
            # the left of the product (an SpMM the engine can run).
            gb = dag.transpose(dag.matmul(dag.transpose(g), a))
        else:
            gb = dag.matmul(dag.transpose(a), g)
        if cls(b) is Sparsity.SPARSE and cls(gb) is Sparsity.VIRTUAL:
            gb = dag.sample(gb)
        push(b, gb)
