"""Executors for fused op-DAG programs.

Three modes, sharing one evaluation engine:

``"fused"``
    Production semantics: SPARSE nodes are computed by evaluating their
    upstream (possibly virtual) expressions *only at the stored entries*
    of the adjacency pattern — each :class:`~repro.fusion.fuse.FusedKernel`
    becomes one gather + vectorised arithmetic sweep over the edges.
``"tiled"``
    The unfused ablation: virtual :math:`n \\times n` intermediates ARE
    materialised, but one row tile at a time (bounded memory), and the
    sampling ops read from the tiles. Models what a tensor framework
    without the fusion pass must do, at :math:`O(n^2/\\text{tiles})`
    temporary cost per tile — the fusion benchmark quantifies the gap.
``"dense"``
    Fully materialised oracle for tiny graphs (tests only).

Inputs are bound by node *name*; the single sparse input binds a
:class:`~repro.tensor.csr.CSRMatrix` whose pattern every SPARSE node
shares. Outputs: a SPARSE result returns a CSR with the computed edge
values; DENSE results return arrays. A program with *named* outputs
(e.g. a joint forward+backward program from
:mod:`repro.fusion.autodiff`) can be run output-by-output through a
:class:`ProgramRunner`, which keeps every intermediate it computed —
so a backward output evaluated after the forward one reuses the cached
activations instead of recomputing them.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.fusion.dag import OpDag
from repro.fusion.fuse import FusedProgram, fuse, match_attention_chain
from repro.obs.tracer import tracer
from repro.fusion.sparsity import Sparsity
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import spmm
from repro.tensor.megakernel import attention_backward, attention_forward
from repro.tensor.segment import bincount_sum, segment_sum
from repro.tensor.workspace import workspace
from repro.util.counters import (
    FlopCounter,
    event_counter,
    null_counter,
)

__all__ = ["execute", "fusion_enabled_default", "ProgramRunner"]


def fusion_enabled_default() -> bool:
    """Resolve the megakernel default from ``$REPRO_FUSION``.

    Read at *call* time (every :class:`ProgramRunner` construction with
    ``fused=None``), not at import, so tests and callers can flip the
    variable per run. Unset means off — the megakernel is opt-in.
    """
    raw = os.environ.get("REPRO_FUSION")
    if raw is None:
        return False
    value = raw.strip().lower()
    if value in ("1", "true", "on", "yes"):
        return True
    if value in ("0", "false", "off", "no", ""):
        return False
    raise ValueError(
        f"invalid $REPRO_FUSION={raw!r}; "
        "use one of 1/0, true/false, on/off, yes/no"
    )


def execute(
    program: OpDag | FusedProgram,
    inputs: dict[str, Any],
    mode: str = "fused",
    tile_rows: int = 128,
    outputs: list[str] | tuple[str, ...] | None = None,
    fused: bool | None = None,
    counter: FlopCounter = null_counter(),
):
    """Run a psi DAG; returns the output node's value.

    Parameters
    ----------
    program:
        An :class:`OpDag` (fused on the fly) or a pre-fused program.
    inputs:
        Name -> value bindings; the sparse adjacency input must be a
        :class:`CSRMatrix`.
    mode:
        ``"fused"``, ``"tiled"`` or ``"dense"``.
    tile_rows:
        Row-tile height for the tiled executor.
    outputs:
        Names of registered outputs (``dag.mark_output``) to evaluate;
        returns a dict. With ``None`` the single ``dag.output`` value
        is returned directly.
    fused:
        Megakernel switch — see :class:`ProgramRunner`.
    counter:
        Flop counter threaded into the executor's kernels.
    """
    runner = ProgramRunner(
        program, inputs, mode=mode, tile_rows=tile_rows, fused=fused,
        counter=counter,
    )
    if outputs is None:
        return runner.run()
    return {name: runner.run(name) for name in outputs}


class ProgramRunner:
    """Stateful program executor with cached activations.

    Wraps one :class:`_Engine` whose memo tables persist across
    :meth:`run` calls — the execution contract behind
    :class:`repro.fusion.layer.DagLayer`: run the forward output first,
    :meth:`bind` the gradient seed, then run the gradient outputs; all
    forward intermediates (softmax values, projected features, …) are
    reused rather than recomputed. Inputs that no requested output
    depends on (e.g. the seed during forward) may stay unbound.
    """

    def __init__(
        self,
        program: OpDag | FusedProgram,
        inputs: dict[str, Any],
        mode: str = "fused",
        tile_rows: int = 128,
        fused: bool | None = None,
        counter: FlopCounter = null_counter(),
    ) -> None:
        if isinstance(program, OpDag):
            program = fuse(program)
        if mode not in ("fused", "tiled", "dense"):
            raise ValueError("mode must be 'fused', 'tiled' or 'dense'")
        self.program = program
        self.dag = program.dag
        self._inputs = dict(inputs)
        pattern = _find_pattern(self.dag, self._inputs)
        if fused is None:
            fused = fusion_enabled_default()
        chain = None
        if fused and mode == "fused":
            # Megakernel lowering: only the production executor has
            # single-sweep semantics; tiled/dense ablations stay as-is.
            chain = match_attention_chain(program)
            if chain is None:
                event_counter().bump("megakernel.unmatched")
        self.fused = chain is not None
        self._engine = _Engine(
            program, self._inputs, pattern, mode, tile_rows,
            chain=chain, counter=counter,
        )

    def set_counter(self, counter: FlopCounter) -> None:
        """Redirect kernel flop accounting (e.g. per training phase)."""
        self._engine.counter = counter

    @property
    def pattern(self) -> CSRMatrix | None:
        return self._engine.pattern

    def bind(self, name: str, value: Any) -> None:
        """Bind (or rebind) an input by name before it is first read.

        Rebinding an input whose value already flowed into cached
        results is rejected — the memoised activations would be stale.
        """
        for node in self.dag.nodes:
            if node.op == "input" and node.name == name:
                if (node.id in self._engine._dense
                        or node.id in self._engine._edge):
                    raise RuntimeError(
                        f"input {name!r} was already consumed; "
                        "rebinding would desynchronise cached values"
                    )
                if node.id in self.dag.sparse_inputs:
                    if not isinstance(value, CSRMatrix):
                        raise TypeError(
                            f"sparse input {name!r} must be a CSRMatrix"
                        )
                    pattern = self._engine.pattern
                    if pattern is not None and value.nnz != pattern.nnz:
                        raise ValueError(
                            "all sparse inputs must share one pattern"
                        )
                self._inputs[name] = value
                return
        raise KeyError(f"no input named {name!r}")

    def run(self, output: str | None = None):
        """Evaluate one output: a named one, or the default output."""
        if output is None:
            if self.dag.output is None:
                raise ValueError("DAG has no output set")
            return self._engine.result(self.dag.output)
        if output not in self.dag.outputs:
            raise KeyError(f"no output named {output!r}")
        return self._engine.result(self.dag.outputs[output])


def _find_pattern(dag: OpDag, inputs: dict[str, Any]) -> CSRMatrix | None:
    pattern = None
    for nid in dag.sparse_inputs:
        name = dag.nodes[nid].name
        if name not in inputs:
            continue  # may be bound later (e.g. the autodiff seed)
        value = inputs.get(name)
        if not isinstance(value, CSRMatrix):
            raise TypeError(f"sparse input {name!r} must be a CSRMatrix")
        if pattern is not None and value.nnz != pattern.nnz:
            raise ValueError("all sparse inputs must share one pattern")
        pattern = value
    if pattern is None and dag.sparse_inputs:
        raise TypeError(
            "at least one sparse input must be bound at construction"
        )
    return pattern


class _Engine:
    """Evaluates node values with lazy virtual semantics."""

    def __init__(self, program: FusedProgram, inputs, pattern, mode,
                 tile_rows, chain=None,
                 counter: FlopCounter = null_counter()) -> None:
        self.dag = program.dag
        self.sparsity = program.sparsity
        self.inputs = inputs
        self.pattern = pattern
        self.mode = mode
        self.tile_rows = tile_rows
        self.counter = counter
        self._dense: dict[int, np.ndarray] = {}
        self._edge: dict[int, np.ndarray] = {}
        self._chain = chain  # matched AttentionChain, or None
        self._mega_stats = None
        self._mega_backward_done = False

    # ------------------------------------------------------------------
    def result(self, nid: int):
        if self.sparsity[nid] is Sparsity.SPARSE:
            return self.pattern.with_data(self.edge_values(nid))
        if self.sparsity[nid] is Sparsity.VIRTUAL:
            raise ValueError("virtual output cannot be returned")
        return self.value(nid)

    # ------------------------------------------------------------------
    # Megakernel lowering of a matched attention chain
    # ------------------------------------------------------------------
    def _mega_operands(self, chain) -> dict:
        """Evaluate the chain's dense score operands (all generic)."""
        kwargs: dict = {"slope": chain.slope, "beta": chain.beta}
        if chain.psi_kind == "add":
            kwargs["u"] = self.value(chain.u)
            kwargs["v"] = self.value(chain.v)
        else:
            kwargs["x_src"] = self.value(chain.x_src)
            kwargs["x_dst"] = self.value(chain.x_dst)
            if chain.norms is not None:
                kwargs["norms"] = self.value(chain.norms)
        return kwargs

    def _run_megakernel(self, backward: bool) -> None:
        """Populate every chain exit reachable from the request.

        The forward sweep runs once (first exit requested, or first
        backward exit — its softmax statistics feed the recomputation);
        the backward sweeps run once and fill all gradient exits
        together, so the generic interpreter only ever sees finished
        DENSE values at the chain boundary.
        """
        chain = self._chain
        adjacency = self.inputs[self.dag.nodes[chain.adjacency].name]
        z_nid = next(
            nid for nid, key in chain.exits.items() if key == "Z"
        )
        kwargs = self._mega_operands(chain)
        if z_nid not in self._dense:
            z, stats = attention_forward(
                adjacency, chain.psi_kind, self.value(chain.y),
                softmax=chain.softmax, counter=self.counter, **kwargs,
            )
            self._dense[z_nid] = z
            self._mega_stats = stats
        if backward and not self._mega_backward_done:
            grads = attention_backward(
                adjacency, chain.psi_kind, self.value(chain.y),
                self.value(chain.seed), stats=self._mega_stats,
                softmax=chain.softmax, counter=self.counter, **kwargs,
            )
            for nid, key in chain.exits.items():
                if key != "Z":
                    self._dense[nid] = grads[key]
            self._mega_backward_done = True

    # ------------------------------------------------------------------
    # Dense-value evaluation (eager)
    # ------------------------------------------------------------------
    def value(self, nid: int) -> np.ndarray:
        if nid in self._dense:
            return self._dense[nid]
        if self._chain is not None and nid in self._chain.exits:
            self._run_megakernel(self._chain.exits[nid] != "Z")
            return self._dense[nid]
        node = self.dag.nodes[nid]
        sp = self.sparsity[nid]
        if sp is Sparsity.SPARSE:
            raise RuntimeError("sparse node accessed as dense")
        if sp is Sparsity.VIRTUAL and self.mode != "dense":
            raise RuntimeError(
                f"virtual node %{nid} materialisation blocked in "
                f"{self.mode} mode"
            )
        t = tracer()
        if t.enabled:
            with t.span("ir." + node.op, node=nid):
                out = self._dense_op(node)
        else:
            out = self._dense_op(node)
        self._dense[nid] = out
        return out

    def _dense_op(self, node) -> np.ndarray:
        """One dense IR op (the interpreter's dispatch, span-wrapped)."""
        op = node.op
        if op == "input":
            value = self.inputs[node.name]
            out = (
                value.to_dense()
                if isinstance(value, CSRMatrix)
                else np.asarray(value)
            )
        elif op == "matmul":
            out = self._matmul_dense(node)
        elif op == "transpose":
            out = self.value(node.inputs[0]).T
        elif op in ("hadamard", "divide", "add"):
            a = self.value(node.inputs[0])
            b = self.value(node.inputs[1])
            out = {"hadamard": a * b, "divide": _safe_div(a, b),
                   "add": a + b}[op]
        elif op == "exp":
            out = np.exp(self.value(node.inputs[0]))
        elif op in ("leaky_relu", "leaky_relu_grad"):
            x = self.value(node.inputs[0])
            out = _apply_unary(op, x, node.attrs)
        elif op == "scale":
            out = node.attrs["factor"] * self.value(node.inputs[0])
        elif op == "reciprocal":
            out = 1.0 / np.maximum(
                self.value(node.inputs[0]), node.attrs.get("eps", 0.0) or 1e-300
            )
        elif op == "row_sum":
            operand = node.inputs[0]
            if self.sparsity[operand] is Sparsity.SPARSE:
                out = segment_sum(self.edge_values(operand),
                                  self.pattern.indptr)
            else:
                out = self.value(operand).sum(axis=1)
        elif op == "col_sum":
            operand = node.inputs[0]
            if self.sparsity[operand] is Sparsity.SPARSE:
                out = bincount_sum(
                    self.pattern.indices,
                    self.edge_values(operand),
                    self.pattern.shape[1],
                )
            else:
                out = self.value(operand).sum(axis=0)
        elif op == "row_norm":
            x = self.value(node.inputs[0])
            out = np.sqrt(np.einsum("ij,ij->i", x, x))
        elif op == "row_scale":
            x = self.value(node.inputs[0])
            s = self.value(node.inputs[1])
            out = s[:, None] * x
        elif op in ("replicate", "replicate_t", "outer"):
            out = self._replicate_dense(node)
        else:  # pragma: no cover
            raise ValueError(f"cannot evaluate op {op!r}")
        return out

    def _as_csr(self, nid: int) -> CSRMatrix | None:
        """Resolve a node to a CSR operand for sparse matrix products.

        Handles SPARSE nodes (edge values on the shared pattern) and
        lazy transposes of SPARSE nodes (the ``S^T G`` / ``N^T H``
        SpMMs of the Section-5 backward formulations) without ever
        aligning transposed edge values with the forward pattern.
        """
        node = self.dag.nodes[nid]
        if self.sparsity[nid] is not Sparsity.SPARSE:
            return None
        if node.op == "transpose":
            operand = node.inputs[0]
            if self.sparsity[operand] is not Sparsity.SPARSE:
                return None
            return self.pattern.with_data(
                self.edge_values(operand)
            ).transpose()
        return self.pattern.with_data(self.edge_values(nid))

    def _matmul_dense(self, node) -> np.ndarray:
        left = self._as_csr(node.inputs[0])
        if left is not None:
            # SpMM / SpMV: sparse-times-dense (Table 2).
            return spmm(left, self.value(node.inputs[1]))
        a = self.value(node.inputs[0])
        b = self.value(node.inputs[1])
        if a.ndim == 2 and b.ndim == 1:
            # Row-stable matrix-vector product: BLAS gemv accumulates
            # differently depending on the row count, which would make
            # attention logits (hence outputs) depend on ego-batch
            # composition; einsum keeps each row's dot bitwise fixed.
            return np.einsum("nd,d->n", a, b)
        return a @ b

    def _replicate_dense(self, node) -> np.ndarray:
        if node.op == "outer":
            a = self.value(node.inputs[0])
            b = self.value(node.inputs[1])
            return np.outer(a, b)
        x = self.value(node.inputs[0])
        n = x.shape[0]
        if node.op == "replicate":
            return np.broadcast_to(x[:, None], (n, n)).copy()
        return np.broadcast_to(x[None, :], (n, n)).copy()

    # ------------------------------------------------------------------
    # Edge-value evaluation of SPARSE nodes
    # ------------------------------------------------------------------
    def edge_values(self, nid: int) -> np.ndarray:
        if nid in self._edge:
            return self._edge[nid]
        if self.pattern is None:
            raise RuntimeError("no sparse pattern bound")
        rows = self.pattern.expand_rows()
        cols = self.pattern.indices
        t = tracer()
        if t.enabled:
            with t.span("ir.edge." + self.dag.nodes[nid].op, node=nid):
                out = self._edge_op(nid, rows, cols)
        else:
            out = self._edge_op(nid, rows, cols)
        self._edge[nid] = out
        return out

    def _edge_op(self, nid: int, rows: np.ndarray,
                 cols: np.ndarray) -> np.ndarray:
        """Evaluate a SPARSE node's stored values (span-wrapped above)."""
        if self.mode == "fused":
            return self._eval_at(nid, rows, cols)
        if self.mode == "dense":
            node = self.dag.nodes[nid]
            if node.op == "input":
                return self.inputs[node.name].data
            return self._dense_of_sparse(nid)[rows, cols]
        return self._eval_tiled(nid, rows, cols)

    def _dense_of_sparse(self, nid: int) -> np.ndarray:
        """Dense-oracle evaluation of a SPARSE node (dense mode only).

        Mask-aware recursion: a sparse tensor's op applies to *stored
        values only* (e.g. ``exp`` of a sparse matrix does not turn
        absent entries into ones), so the result is re-masked after
        every sparse-valued op. This is the executable specification
        the fused/tiled paths are tested against on tiny graphs.
        """
        node = self.dag.nodes[nid]
        mask = self.pattern.to_dense() != 0
        if node.op == "input":
            return self.inputs[node.name].to_dense()
        operands = []
        for operand in node.inputs:
            if self.sparsity[operand] is Sparsity.SPARSE:
                operands.append(self._dense_of_sparse(operand))
            else:
                # Virtual/dense operands evaluate eagerly (dense mode).
                operands.append(self.value(operand))
        op = node.op
        if op in ("hadamard", "divide", "add"):
            a, b = operands
            out = {"hadamard": a * b, "divide": _safe_div(a, b),
                   "add": a + b}[op]
        elif op == "sample":
            out = operands[0]
        elif op in ("exp", "leaky_relu", "leaky_relu_grad", "scale",
                    "reciprocal"):
            out = _apply_unary(op, operands[0], node.attrs)
        else:
            raise ValueError(f"sparse op {op!r} unsupported in dense mode")
        return np.where(mask, out, 0.0)

    def _eval_at(self, nid: int, rows: np.ndarray, cols: np.ndarray
                 ) -> np.ndarray:
        """Recursive per-edge evaluation — the fused SDDMM-like kernel."""
        node = self.dag.nodes[nid]
        sp = self.sparsity[nid]
        op = node.op
        if sp is Sparsity.SPARSE:
            if op == "input":
                base = self.inputs[node.name].data
                return base if rows is None else base
            # Sampling elementwise op: sparse operand keeps edge values,
            # the other side is evaluated at the edges.
            if op in ("hadamard", "divide", "add"):
                a, b = node.inputs
                va = self._operand_at(a, rows, cols)
                vb = self._operand_at(b, rows, cols)
                return {"hadamard": va * vb, "divide": _safe_div(va, vb),
                        "add": va + vb}[op]
            if op == "sample":
                return self._operand_at(node.inputs[0], rows, cols)
            if op in ("exp", "leaky_relu", "leaky_relu_grad", "scale",
                      "reciprocal"):
                v = self._operand_at(node.inputs[0], rows, cols)
                return _apply_unary(op, v, node.attrs)
            raise ValueError(f"sparse op {op!r} unsupported in fused mode")
        if sp is Sparsity.VIRTUAL:
            if op == "matmul":
                a = self.value(node.inputs[0])
                b = self.value(node.inputs[1])
                # Gather both operands into pooled scratch (row slices of
                # ``a``, column slices of ``b``) instead of fancy-indexed
                # temporaries; the per-edge dot products are returned
                # fresh because they escape into the caller's DAG values.
                ga = workspace(
                    "interp.matmul.a", (rows.shape[0], a.shape[1]), a.dtype
                )
                np.take(a, rows, axis=0, out=ga, mode="clip")
                gb = workspace(
                    "interp.matmul.b", (b.shape[0], cols.shape[0]), b.dtype
                )
                np.take(b, cols, axis=1, out=gb, mode="clip")
                return np.einsum("ij,ji->i", ga, gb)
            if op == "transpose":
                return self._operand_at(node.inputs[0], cols, rows)
            if op == "replicate":
                return self.value(node.inputs[0])[rows]
            if op == "replicate_t":
                return self.value(node.inputs[0])[cols]
            if op == "outer":
                return (
                    self.value(node.inputs[0])[rows]
                    * self.value(node.inputs[1])[cols]
                )
            if op in ("hadamard", "divide", "add"):
                va = self._operand_at(node.inputs[0], rows, cols)
                vb = self._operand_at(node.inputs[1], rows, cols)
                return {"hadamard": va * vb, "divide": _safe_div(va, vb),
                        "add": va + vb}[op]
            if op in ("exp", "leaky_relu", "leaky_relu_grad", "scale",
                      "reciprocal"):
                v = self._operand_at(node.inputs[0], rows, cols)
                return _apply_unary(op, v, node.attrs)
            raise ValueError(f"virtual op {op!r} unsupported in fused mode")
        raise RuntimeError("dense node reached edge evaluation")

    def _operand_at(self, nid: int, rows, cols) -> np.ndarray:
        sp = self.sparsity[nid]
        if sp is Sparsity.DENSE:
            raise RuntimeError(
                "dense n x n operand in elementwise graph op"
            )
        if sp is Sparsity.SPARSE:
            # Edge values are aligned with the pattern's edge order.
            return self.edge_values(nid)
        return self._eval_at(nid, rows, cols)

    # ------------------------------------------------------------------
    def _eval_tiled(self, nid: int, rows, cols) -> np.ndarray:
        """Tile-materialising evaluation (the unfused ablation).

        Sparse-valued ops stay edge-wise (a framework keeps sparse
        storage sparse); only their *virtual* operands are
        materialised, one row tile at a time, and sampled — the cost a
        tensor framework without the fusion pass pays.
        """
        n = self.pattern.shape[0]
        out = np.empty(self.pattern.nnz)
        indptr = self.pattern.indptr
        for t0 in range(0, n, self.tile_rows):
            t1 = min(t0 + self.tile_rows, n)
            e0, e1 = int(indptr[t0]), int(indptr[t1])
            if e0 == e1:
                continue
            out[e0:e1] = self._edges_in_tile(
                nid, rows[e0:e1], cols[e0:e1], e0, e1, t0, t1
            )
        return out

    def _edges_in_tile(self, nid, rows, cols, e0, e1, t0, t1) -> np.ndarray:
        """Edge values of a SPARSE node restricted to a row tile."""
        node = self.dag.nodes[nid]
        op = node.op
        if op == "input":
            return self.inputs[node.name].data[e0:e1]
        operands = []
        for operand in node.inputs:
            sp = self.sparsity[operand]
            if sp is Sparsity.SPARSE:
                operands.append(
                    self._edges_in_tile(operand, rows, cols, e0, e1, t0, t1)
                )
            elif sp is Sparsity.VIRTUAL:
                tile = self._tile_value(operand, t0, t1)
                operands.append(tile[rows - t0, cols])
            else:
                raise RuntimeError(
                    "dense n x n operand in sampled elementwise op"
                )
        if op in ("hadamard", "divide", "add"):
            a, b = operands
            return {"hadamard": a * b, "divide": _safe_div(a, b),
                    "add": a + b}[op]
        if op == "sample":
            return operands[0]
        if op in ("exp", "leaky_relu", "leaky_relu_grad", "scale",
                  "reciprocal"):
            return _apply_unary(op, operands[0], node.attrs)
        raise ValueError(f"sparse op {op!r} unsupported in tiled mode")

    def _tile_value(self, nid: int, t0: int, t1: int) -> np.ndarray:
        """Materialise rows [t0, t1) of an n x n node (tiled mode)."""
        node = self.dag.nodes[nid]
        op = node.op
        sp = self.sparsity[nid]
        if sp is Sparsity.SPARSE and op == "input":
            block = self.inputs[node.name].extract_block(
                t0, t1, 0, self.pattern.shape[1]
            )
            return block.to_dense()
        if op == "matmul":
            a = self.value(node.inputs[0])
            b = self.value(node.inputs[1])
            return a[t0:t1] @ b
        if op == "transpose":
            raise NotImplementedError(
                "tiled executor does not transpose n x n operands"
            )
        if op == "replicate":
            return np.broadcast_to(
                self.value(node.inputs[0])[t0:t1, None],
                (t1 - t0, self.pattern.shape[1]),
            )
        if op == "replicate_t":
            return np.broadcast_to(
                self.value(node.inputs[0])[None, :],
                (t1 - t0, self.pattern.shape[1]),
            )
        if op == "outer":
            return np.outer(
                self.value(node.inputs[0])[t0:t1], self.value(node.inputs[1])
            )
        if op in ("hadamard", "divide", "add"):
            a = self._tile_value(node.inputs[0], t0, t1)
            b = self._tile_value(node.inputs[1], t0, t1)
            return {"hadamard": a * b, "divide": _safe_div(a, b),
                    "add": a + b}[op]
        if op in ("exp", "leaky_relu", "leaky_relu_grad", "scale",
                  "reciprocal"):
            return _apply_unary(
                op, self._tile_value(node.inputs[0], t0, t1), node.attrs
            )
        if op == "row_sum" or op == "row_norm":
            raise NotImplementedError("vector ops are not tiled")
        raise ValueError(f"cannot tile op {op!r}")


def _safe_div(a, b):
    return a / np.where(b == 0, 1.0, b) * (b != 0)


def _apply_unary(op: str, v: np.ndarray, attrs: dict) -> np.ndarray:
    if op == "exp":
        return np.exp(v)
    if op == "leaky_relu":
        return np.where(v > 0, v, attrs["slope"] * v)
    if op == "leaky_relu_grad":
        return np.where(v > 0, np.ones_like(v), attrs["slope"])
    if op == "scale":
        return attrs["factor"] * v
    if op == "reciprocal":
        return 1.0 / np.maximum(v, attrs.get("eps", 0.0) or 1e-300)
    raise ValueError(op)
