"""The fusing pass (Section 6.2).

Verbatim from the paper: *"we traverse the DAG until we find an edge
whose output is a virtual matrix. Then, we continue to traverse the
graph until we meet an edge where the output is a sparse intermediate
result ... we proceed by fusing all the operations in this path to
generate an SDDMM-like kernel."*

:func:`fuse` performs exactly this analysis: for every VIRTUAL node it
follows consumer edges through virtual-valued operations until a
SPARSE-valued sampling op is reached, then groups the traversed path
into a :class:`FusedKernel`. The pass also *validates* the program: a
virtual node whose value escapes through anything other than a sampled
path (or a tolerated reduction) can never be executed without
materialising an :math:`n \\times n` dense, so it is rejected at
compile time rather than at 10^18-byte allocation time.

The fused program is interpreted by :mod:`repro.fusion.interp`, whose
fused mode evaluates each kernel only at the stored entries of the
sampling pattern — the "basic form of the kernels iterates over the
non-zero values of the sparse matrix performing the sampling".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fusion.dag import OpDag
from repro.fusion.sparsity import Sparsity, infer_sparsity

__all__ = ["FusedKernel", "FusedProgram", "fuse"]

#: Ops that can traverse a virtual value without materialising it.
_EDGEWISE = {"hadamard", "divide", "add", "exp", "leaky_relu",
             "leaky_relu_grad", "scale", "reciprocal", "transpose",
             "sample"}


@dataclass
class FusedKernel:
    """One SDDMM-like fused kernel.

    Attributes
    ----------
    output:
        The SPARSE node whose stored values the kernel produces.
    fused_nodes:
        The VIRTUAL (and intermediate edge-wise) node ids folded into
        the kernel — these never materialise.
    dense_operands:
        DENSE node ids the kernel reads (tall feature matrices,
        vectors) — its gather sources.
    """

    output: int
    fused_nodes: tuple[int, ...]
    dense_operands: tuple[int, ...]

    def describe(self, dag: OpDag) -> str:
        """Human-readable kernel summary for reports/tests."""
        ops = [dag.nodes[i].op for i in self.fused_nodes]
        return f"SDDMM-like[{dag.nodes[self.output].op}] fusing {ops}"


@dataclass
class FusedProgram:
    """Result of the pass: the DAG plus its kernel grouping."""

    dag: OpDag
    sparsity: dict[int, Sparsity]
    kernels: list[FusedKernel] = field(default_factory=list)

    @property
    def virtual_nodes(self) -> list[int]:
        return [i for i, s in self.sparsity.items() if s is Sparsity.VIRTUAL]

    def describe(self) -> str:
        """Full-program listing: every node with its sparsity class,
        kernel membership, and the fused-kernel summaries.

        Builds on :meth:`FusedKernel.describe`; covers joint
        forward+backward programs (see :mod:`repro.fusion.autodiff`)
        as well as forward-only ones. Used by the docs/examples to show
        what the toolchain derived.
        """
        kernel_of: dict[int, int] = {}
        for index, kernel in enumerate(self.kernels):
            kernel_of[kernel.output] = index
            for nid in kernel.fused_nodes:
                kernel_of[nid] = index
        lines = []
        for node in self.dag.nodes:
            tag = self.sparsity[node.id].value
            where = (
                f"  [kernel {kernel_of[node.id]}]"
                if node.id in kernel_of
                else ""
            )
            lines.append(f"{node!r:<48} : {tag}{where}")
        for name, nid in self.dag.outputs.items():
            lines.append(f"output {name} = %{nid}")
        lines.append(f"-- {len(self.kernels)} fused kernel(s) --")
        for index, kernel in enumerate(self.kernels):
            lines.append(f"kernel {index}: {kernel.describe(self.dag)}")
        return "\n".join(lines)


def fuse(dag: OpDag) -> FusedProgram:
    """Run sparsity inference + the path-fusing analysis.

    Raises ``ValueError`` if some virtual intermediate cannot be fused
    away (its value would have to materialise).
    """
    sparsity = infer_sparsity(dag)
    consumers = dag.consumers()
    out_nodes = set(dag.outputs.values())
    if dag.output is not None:
        out_nodes.add(dag.output)

    # Validate: every virtual node's consumers must themselves be
    # virtual edge-wise ops or sparse sampling ops.
    for node in dag.nodes:
        if sparsity[node.id] is not Sparsity.VIRTUAL:
            continue
        uses = consumers[node.id]
        if not uses and node.id not in out_nodes:
            continue  # dead virtual — harmless
        if node.id in out_nodes:
            raise ValueError(
                f"virtual node %{node.id} is a DAG output; it would "
                "materialise an n x n dense matrix"
            )
        for user in uses:
            user_node = dag.nodes[user]
            user_sparsity = sparsity[user]
            consumable = (
                user_node.op in _EDGEWISE
                and user_sparsity in (Sparsity.VIRTUAL, Sparsity.SPARSE)
            )
            if not consumable:
                raise ValueError(
                    f"virtual node %{node.id} escapes through "
                    f"{user_node.op} (%{user}); cannot fuse"
                )

    # Group each sparse sampling op with the maximal virtual subgraph
    # feeding it (the paper's virtual->...->sparse path).
    kernels: list[FusedKernel] = []
    for node in dag.nodes:
        if sparsity[node.id] is not Sparsity.SPARSE or node.op == "input":
            continue
        # Walk upstream collecting reachable virtual nodes.
        fused: list[int] = []
        dense_ops: list[int] = []
        stack = [i for i in node.inputs]
        seen = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if sparsity[current] is Sparsity.VIRTUAL:
                fused.append(current)
                stack.extend(dag.nodes[current].inputs)
            elif sparsity[current] is Sparsity.DENSE:
                dense_ops.append(current)
        if fused:
            kernels.append(
                FusedKernel(
                    output=node.id,
                    fused_nodes=tuple(sorted(fused)),
                    dense_operands=tuple(sorted(dense_ops)),
                )
            )
    return FusedProgram(dag=dag, sparsity=sparsity, kernels=kernels)
