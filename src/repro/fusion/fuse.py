"""The fusing pass (Section 6.2).

Verbatim from the paper: *"we traverse the DAG until we find an edge
whose output is a virtual matrix. Then, we continue to traverse the
graph until we meet an edge where the output is a sparse intermediate
result ... we proceed by fusing all the operations in this path to
generate an SDDMM-like kernel."*

:func:`fuse` performs exactly this analysis: for every VIRTUAL node it
follows consumer edges through virtual-valued operations until a
SPARSE-valued sampling op is reached, then groups the traversed path
into a :class:`FusedKernel`. The pass also *validates* the program: a
virtual node whose value escapes through anything other than a sampled
path (or a tolerated reduction) can never be executed without
materialising an :math:`n \\times n` dense, so it is rejected at
compile time rather than at 10^18-byte allocation time.

The fused program is interpreted by :mod:`repro.fusion.interp`, whose
fused mode evaluates each kernel only at the stored entries of the
sampling pattern — the "basic form of the kernels iterates over the
non-zero values of the sparse matrix performing the sampling".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fusion.dag import OpDag
from repro.fusion.sparsity import Sparsity, infer_sparsity

__all__ = [
    "AttentionChain",
    "FusedKernel",
    "FusedProgram",
    "fuse",
    "match_attention_chain",
]

#: Ops that can traverse a virtual value without materialising it.
_EDGEWISE = {"hadamard", "divide", "add", "exp", "leaky_relu",
             "leaky_relu_grad", "scale", "reciprocal", "transpose",
             "sample"}


@dataclass
class FusedKernel:
    """One SDDMM-like fused kernel.

    Attributes
    ----------
    output:
        The SPARSE node whose stored values the kernel produces.
    fused_nodes:
        The VIRTUAL (and intermediate edge-wise) node ids folded into
        the kernel — these never materialise.
    dense_operands:
        DENSE node ids the kernel reads (tall feature matrices,
        vectors) — its gather sources.
    """

    output: int
    fused_nodes: tuple[int, ...]
    dense_operands: tuple[int, ...]

    def describe(self, dag: OpDag) -> str:
        """Human-readable kernel summary for reports/tests."""
        ops = [dag.nodes[i].op for i in self.fused_nodes]
        return f"SDDMM-like[{dag.nodes[self.output].op}] fusing {ops}"


@dataclass
class FusedProgram:
    """Result of the pass: the DAG plus its kernel grouping."""

    dag: OpDag
    sparsity: dict[int, Sparsity]
    kernels: list[FusedKernel] = field(default_factory=list)

    @property
    def virtual_nodes(self) -> list[int]:
        return [i for i, s in self.sparsity.items() if s is Sparsity.VIRTUAL]

    def describe(self) -> str:
        """Full-program listing: every node with its sparsity class,
        kernel membership, and the fused-kernel summaries.

        Builds on :meth:`FusedKernel.describe`; covers joint
        forward+backward programs (see :mod:`repro.fusion.autodiff`)
        as well as forward-only ones. Used by the docs/examples to show
        what the toolchain derived.
        """
        kernel_of: dict[int, int] = {}
        for index, kernel in enumerate(self.kernels):
            kernel_of[kernel.output] = index
            for nid in kernel.fused_nodes:
                kernel_of[nid] = index
        lines = []
        for node in self.dag.nodes:
            tag = self.sparsity[node.id].value
            where = (
                f"  [kernel {kernel_of[node.id]}]"
                if node.id in kernel_of
                else ""
            )
            lines.append(f"{node!r:<48} : {tag}{where}")
        for name, nid in self.dag.outputs.items():
            lines.append(f"output {name} = %{nid}")
        lines.append(f"-- {len(self.kernels)} fused kernel(s) --")
        for index, kernel in enumerate(self.kernels):
            lines.append(f"kernel {index}: {kernel.describe(self.dag)}")
        return "\n".join(lines)


@dataclass
class AttentionChain:
    """A recognised SDDMM → (softmax) → SpMM attention chain.

    Produced by :func:`match_attention_chain`; consumed by the
    megakernel adapter in :mod:`repro.fusion.interp`, which lowers the
    whole chain — forward and, when the joint program's backward
    emission is also recognised, backward — to the single-sweep
    executor in :mod:`repro.tensor.megakernel`.

    All fields ending in a node role hold *node ids* of the program's
    DAG: ``adjacency`` (the sparse input whose stored values are the
    Hadamard mask), ``y`` (the DENSE aggregation operand, ``H W``), the
    psi-specific score operands (``x_src``/``x_dst`` for
    ``"dot"``/``"cosine"``, ``u``/``v`` for ``"add"``, plus ``norms``
    for ``"cosine"``), and ``seed`` (the gradient-seed input of a joint
    program; ``None`` when only the forward chain matched).

    ``exits`` maps DENSE node ids to megakernel output keys (``"Z"``,
    ``"dY"``, ``"dRow"``, ``"dCol"``, ``"dNormRow"``, ``"dNormCol"``,
    ``"dU"``, ``"dV"``): every node the megakernel computes in one
    sweep instead of the kernel-at-a-time interpreter. Everything
    downstream of the exits (dense gradient assembly, ``grad:W``
    accumulation) stays on the generic interpreter.
    """

    psi_kind: str  #: ``"dot"`` | ``"add"`` | ``"cosine"``
    softmax: bool
    adjacency: int
    y: int
    exits: dict[int, str]
    slope: float = 0.2
    beta: float = 1.0
    x_src: int | None = None
    x_dst: int | None = None
    norms: int | None = None
    u: int | None = None
    v: int | None = None
    seed: int | None = None


def match_attention_chain(program: FusedProgram) -> AttentionChain | None:
    """Recognise the attention chain in a fused program, or ``None``.

    Matches the layer shapes built by :mod:`repro.fusion.models` —
    ``Z = Psi @ Y`` with ``Psi`` either a masked virtual score
    (``hadamard(A, score)``) or the Section-4.2 graph softmax of one —
    for all three score kinds:

    * ``matmul(x, transpose(x_dst))``            → ``"dot"`` (VA)
    * ``scale(divide(gram, outer(norms, norms)))`` → ``"cosine"`` (AGNN)
    * ``leaky_relu(add(replicate(u), replicate_t(v)))`` → ``"add"`` (GAT)

    On a joint program (from :func:`repro.fusion.autodiff.build_vjp`)
    it additionally matches the deterministic backward emission —
    sampled ``dPsi``, the softmax VJP chain, and the per-kind gradient
    reductions — and registers their root nodes as extra exits. A
    joint program whose backward does not match still yields a
    forward-only chain (``seed is None``); any forward mismatch yields
    ``None`` so the caller falls back to the interpreter.
    """
    dag = program.dag
    nodes = dag.nodes
    sparsity = program.sparsity

    def resolve_transpose(nid: int) -> tuple[int, int]:
        hops = 0
        while nodes[nid].op == "transpose":
            nid = nodes[nid].inputs[0]
            hops += 1
        return nid, hops

    z = dag.output
    if z is None or nodes[z].op != "matmul" or len(nodes[z].inputs) != 2:
        return None
    psi_id, y_id = nodes[z].inputs
    if (
        sparsity.get(psi_id) is not Sparsity.SPARSE
        or sparsity.get(y_id) is not Sparsity.DENSE
        or nodes[psi_id].shape_kind != "nn"
        or nodes[y_id].shape_kind != "nk"
    ):
        return None

    # ---- optional graph softmax: divide(exp(m), replicate(row_sum)) --
    softmax = False
    exp_id = denom_rep = None
    masked_id = psi_id
    top = nodes[psi_id]
    if top.op == "divide":
        exp_id, denom_rep = top.inputs
        if nodes[exp_id].op != "exp" or nodes[denom_rep].op != "replicate":
            return None
        row_sum_id = nodes[denom_rep].inputs[0]
        if (
            nodes[row_sum_id].op != "row_sum"
            or nodes[row_sum_id].inputs[0] != exp_id
        ):
            return None
        masked_id = nodes[exp_id].inputs[0]
        softmax = True
    masked = nodes[masked_id]
    if masked.op != "hadamard":
        return None
    adjacency = score_id = None
    for cand, other in (masked.inputs, masked.inputs[::-1]):
        if (
            nodes[cand].op == "input"
            and sparsity.get(cand) is Sparsity.SPARSE
        ):
            adjacency, score_id = cand, other
            break
    if adjacency is None:
        return None

    # ---- classify the score expression -------------------------------
    chain = AttentionChain(
        psi_kind="", softmax=softmax, adjacency=adjacency, y=y_id,
        exits={z: "Z"},
    )
    score = nodes[score_id]
    gram_id = cos_id = outer_id = c_id = None
    if score.op == "matmul":
        chain.psi_kind = "dot"
        gram_id = score_id
        left, right = score.inputs
        base, hops = resolve_transpose(right)
        if hops % 2 != 1:
            return None
        chain.x_src, chain.x_dst = left, base
    elif score.op == "scale":
        chain.psi_kind = "cosine"
        chain.beta = float(score.attrs["factor"])
        cos_id = score.inputs[0]
        if nodes[cos_id].op != "divide":
            return None
        gram_id, outer_id = nodes[cos_id].inputs
        if nodes[gram_id].op != "matmul" or nodes[outer_id].op != "outer":
            return None
        left, right = nodes[gram_id].inputs
        base, hops = resolve_transpose(right)
        if hops % 2 != 1:
            return None
        chain.x_src, chain.x_dst = left, base
        norms_l, norms_r = nodes[outer_id].inputs
        if norms_l != norms_r or nodes[norms_l].shape_kind != "n":
            return None
        chain.norms = norms_l
    elif score.op == "leaky_relu":
        chain.psi_kind = "add"
        chain.slope = float(score.attrs["slope"])
        c_id = score.inputs[0]
        if nodes[c_id].op != "add":
            return None
        rep_a, rep_b = nodes[c_id].inputs
        if nodes[rep_a].op == "replicate" and nodes[rep_b].op == "replicate_t":
            chain.u = nodes[rep_a].inputs[0]
            chain.v = nodes[rep_b].inputs[0]
        elif (
            nodes[rep_b].op == "replicate"
            and nodes[rep_a].op == "replicate_t"
        ):
            chain.u = nodes[rep_b].inputs[0]
            chain.v = nodes[rep_a].inputs[0]
        else:
            return None
    else:
        return None

    # ---- backward emission (joint programs) --------------------------
    consumers = dag.consumers()

    def sole(nid: int, op: str, check=None) -> int | None:
        """The unique consumer of ``nid`` with ``op`` passing ``check``."""
        found = None
        for user in consumers[nid]:
            node = nodes[user]
            if node.op != op or (check is not None and not check(node)):
                continue
            if found is not None:
                return None  # ambiguous — refuse to guess
            found = user
        return found

    def factor_is(value):
        return lambda node: float(node.attrs.get("factor", 0.0)) == value

    forward_only = chain

    # dPsi = sample(matmul(seed, transpose(y))) — ``y`` may have several
    # transpose consumers (GAT shares ``H W``), so search for the full
    # sampled-product shape rather than a unique transpose.
    seed = sample_id = None
    for t_y in consumers[y_id]:
        if nodes[t_y].op != "transpose":
            continue
        for mm in consumers[t_y]:
            node = nodes[mm]
            if node.op != "matmul" or len(node.inputs) != 2:
                continue
            if node.inputs[1] != t_y:
                continue
            if nodes[node.inputs[0]].op != "input":
                continue
            samp = sole(mm, "sample")
            if samp is None:
                continue
            if sample_id is not None:
                return forward_only  # ambiguous — refuse to guess
            seed, sample_id = node.inputs[0], samp
    if sample_id is None:
        return forward_only

    # dY = matmul(transpose(psi), seed)
    t_psi = sole(psi_id, "transpose")
    if t_psi is None:
        return forward_only
    dy = sole(
        t_psi, "matmul", lambda node: node.inputs == (t_psi, seed)
    )
    if dy is None:
        return forward_only
    exits = dict(chain.exits)
    exits[dy] = "dY"

    # softmax VJP: dMasked = psi * (dPsi - rowsum(psi * dPsi))
    if softmax:
        d1 = sole(
            sample_id, "divide",
            lambda node: node.inputs == (sample_id, denom_rep),
        )
        if d1 is None:
            return forward_only
        h1 = sole(d1, "hadamard", lambda node: node.inputs == (d1, psi_id))
        if h1 is None:
            return forward_only
        s1 = sole(h1, "scale", factor_is(-1.0))
        rs = sole(s1, "row_sum") if s1 is not None else None
        rep2 = sole(rs, "replicate") if rs is not None else None
        if rep2 is None:
            return forward_only
        ad = sole(rep2, "add", lambda node: node.inputs == (d1, rep2))
        if ad is None:
            return forward_only
        d_masked = sole(
            ad, "hadamard", lambda node: node.inputs == (ad, exp_id)
        )
        if d_masked is None:
            return forward_only
        grad_root = d_masked
    else:
        grad_root = sample_id

    # dMasked ⊙ A (adjacency on either side)
    d_masked_a = sole(
        grad_root, "hadamard", lambda node: adjacency in node.inputs
    )
    if d_masked_a is None:
        return forward_only

    def gram_grad_exits(dgram: int) -> bool:
        """Register dRow/dCol: the sampled-Gram endpoint gradients."""
        def is_dst(node):
            base, hops = resolve_transpose(node.inputs[1])
            return base == chain.x_dst and hops % 2 == 0

        drow = sole(
            dgram, "matmul", lambda node: node.inputs[0] == dgram
            and is_dst(node)
        )
        t_dgram = sole(dgram, "transpose")
        dcol = (
            sole(
                t_dgram, "matmul",
                lambda node: node.inputs == (t_dgram, chain.x_src),
            )
            if t_dgram is not None
            else None
        )
        if drow is None or dcol is None:
            return False
        exits[drow] = "dRow"
        exits[dcol] = "dCol"
        return True

    if chain.psi_kind == "dot":
        if not gram_grad_exits(d_masked_a):
            return forward_only
    elif chain.psi_kind == "cosine":
        dcos = sole(d_masked_a, "scale", factor_is(chain.beta))
        dgram = (
            sole(
                dcos, "divide",
                lambda node: node.inputs == (dcos, outer_id),
            )
            if dcos is not None
            else None
        )
        if dgram is None or not gram_grad_exits(dgram):
            return forward_only
        h_cos = sole(
            dgram, "hadamard", lambda node: node.inputs == (dgram, cos_id)
        )
        d_denom = sole(h_cos, "scale", factor_is(-1.0)) if h_cos else None
        if d_denom is None:
            return forward_only
        dnorm_row = sole(
            d_denom, "matmul",
            lambda node: node.inputs == (d_denom, chain.norms),
        )
        t_dd = sole(d_denom, "transpose")
        dnorm_col = (
            sole(
                t_dd, "matmul",
                lambda node: node.inputs == (t_dd, chain.norms),
            )
            if t_dd is not None
            else None
        )
        if dnorm_row is None or dnorm_col is None:
            return forward_only
        exits[dnorm_row] = "dNormRow"
        exits[dnorm_col] = "dNormCol"
    else:  # add (GAT): dC = dMaskedA ⊙ LeakyReLU'(c); dU/dV row/col sums
        lr_grad = sole(
            c_id, "leaky_relu_grad",
            lambda node: float(node.attrs["slope"]) == chain.slope,
        )
        dc = (
            sole(
                d_masked_a, "hadamard",
                lambda node: node.inputs == (d_masked_a, lr_grad),
            )
            if lr_grad is not None
            else None
        )
        if dc is None:
            return forward_only
        dv = sole(dc, "col_sum")
        du = sole(dc, "row_sum")
        if dv is None or du is None:
            return forward_only
        exits[dv] = "dV"
        exits[du] = "dU"

    chain.exits = exits
    chain.seed = seed
    return chain


def fuse(dag: OpDag) -> FusedProgram:
    """Run sparsity inference + the path-fusing analysis.

    Raises ``ValueError`` if some virtual intermediate cannot be fused
    away (its value would have to materialise).
    """
    sparsity = infer_sparsity(dag)
    consumers = dag.consumers()
    out_nodes = set(dag.outputs.values())
    if dag.output is not None:
        out_nodes.add(dag.output)

    # Validate: every virtual node's consumers must themselves be
    # virtual edge-wise ops or sparse sampling ops.
    for node in dag.nodes:
        if sparsity[node.id] is not Sparsity.VIRTUAL:
            continue
        uses = consumers[node.id]
        if not uses and node.id not in out_nodes:
            continue  # dead virtual — harmless
        if node.id in out_nodes:
            raise ValueError(
                f"virtual node %{node.id} is a DAG output; it would "
                "materialise an n x n dense matrix"
            )
        for user in uses:
            user_node = dag.nodes[user]
            user_sparsity = sparsity[user]
            consumable = (
                user_node.op in _EDGEWISE
                and user_sparsity in (Sparsity.VIRTUAL, Sparsity.SPARSE)
            )
            if not consumable:
                raise ValueError(
                    f"virtual node %{node.id} escapes through "
                    f"{user_node.op} (%{user}); cannot fuse"
                )

    # Group each sparse sampling op with the maximal virtual subgraph
    # feeding it (the paper's virtual->...->sparse path).
    kernels: list[FusedKernel] = []
    for node in dag.nodes:
        if sparsity[node.id] is not Sparsity.SPARSE or node.op == "input":
            continue
        # Walk upstream collecting reachable virtual nodes.
        fused: list[int] = []
        dense_ops: list[int] = []
        stack = [i for i in node.inputs]
        seen = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if sparsity[current] is Sparsity.VIRTUAL:
                fused.append(current)
                stack.extend(dag.nodes[current].inputs)
            elif sparsity[current] is Sparsity.DENSE:
                dense_ops.append(current)
        if fused:
            kernels.append(
                FusedKernel(
                    output=node.id,
                    fused_nodes=tuple(sorted(fused)),
                    dense_operands=tuple(sorted(dense_ops)),
                )
            )
    return FusedProgram(dag=dag, sparsity=sparsity, kernels=kernels)
