"""Distributed full-batch *local-formulation* engine (the DistDGL model).

This is the communication pattern the paper's theory (Section 7) and
the Fig.-7 verification experiments attribute to the local view:

* **1D vertex partition** — rank ``r`` owns a contiguous block of
  vertices, their feature rows, and their adjacency rows.
* **Halo exchange per layer** — aggregating a vertex needs the feature
  vectors of *all* its neighbours, so each rank fetches every distinct
  remote neighbour's current features each layer. Per-rank volume is
  :math:`\\Theta(k \\cdot \\#\\text{remote neighbours})`, which is
  :math:`\\Omega(nkd/p)` in the worst case and
  :math:`O(n^2 k q / p)` on Erdős–Rényi graphs — precisely the bounds
  the global formulation beats when :math:`d \\in \\omega(\\sqrt{p})`.
* **Backward reverse halo** — gradients destined for remote features
  travel back to their owners; weight gradients are allreduced.

The per-edge compute reuses the DGL-flavoured primitives of
:mod:`repro.baselines.message_passing`; mathematics are identical to
the global formulation (the equivalence tests assert it), only the
distribution differs — which is exactly the comparison the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.activations import (
    get_activation,
    leaky_relu,
    leaky_relu_grad,
)
from repro.distributed.partition import block_range
from repro.models.base import glorot
from repro.runtime.communicator import Communicator
from repro.runtime.executor import run_spmd
from repro.runtime.stats import RunStats
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import sddmm_dot, spmm
from repro.tensor.segment import (
    bincount_sum,
    expand_segments,
    segment_softmax,
    segment_sum,
)
from repro.util.rng import make_rng

__all__ = ["dist_local_inference", "dist_local_train", "LocalPartition"]


@dataclass
class LocalPartition:
    """One rank's static partition state (built once at setup).

    Attributes
    ----------
    r0, r1:
        Owned vertex range.
    pattern:
        Owned adjacency rows with columns remapped into the
        owned-plus-halo local id space ``[0, n_own + n_halo)``.
    halo_ids:
        Global ids of remote neighbours, sorted; local id of
        ``halo_ids[t]`` is ``n_own + t``.
    send_lists:
        ``send_lists[s]`` = *local* indices (within the owned block) of
        the vertices rank ``s`` needs from us each layer.
    recv_counts:
        Number of halo vertices we receive from each rank, in rank
        order (halo_ids is grouped by owner because it is sorted).
    """

    r0: int
    r1: int
    pattern: CSRMatrix
    halo_ids: np.ndarray
    send_lists: list[np.ndarray]
    recv_counts: np.ndarray

    @property
    def n_own(self) -> int:
        return self.r1 - self.r0


def build_partition(
    comm: Communicator, a: CSRMatrix, n: int
) -> LocalPartition:
    """Slice the adjacency and negotiate the (static) halo plan.

    The index negotiation is one alltoall of integer id lists; it is
    charged to the ``setup`` phase so benchmarks can separate it from
    the per-epoch traffic (DistDGL likewise partitions offline).
    """
    comm.stats.set_phase("setup")
    p = comm.size
    r0, r1 = block_range(n, p, comm.rank)
    rows = a.extract_block(r0, r1, 0, n)

    owned = (rows.indices >= r0) & (rows.indices < r1)
    halo_ids = np.unique(rows.indices[~owned])
    # Remap columns: owned -> [0, n_own); halo -> n_own + rank in halo_ids.
    remapped = np.empty(rows.nnz, dtype=np.int64)
    remapped[owned] = rows.indices[owned] - r0
    remapped[~owned] = (r1 - r0) + np.searchsorted(
        halo_ids, rows.indices[~owned]
    )
    pattern = CSRMatrix(
        rows.indptr, remapped, rows.data,
        (r1 - r0, (r1 - r0) + halo_ids.shape[0]),
    )

    # Group halo ids by owner; negotiate send lists.
    boundaries = [block_range(n, p, s) for s in range(p)]
    requests = []
    recv_counts = np.zeros(p, dtype=np.int64)
    for s in range(p):
        s0, s1 = boundaries[s]
        wanted = halo_ids[(halo_ids >= s0) & (halo_ids < s1)]
        recv_counts[s] = wanted.shape[0]
        requests.append(wanted)
    incoming = comm.alltoall(requests)
    send_lists = [np.asarray(req, dtype=np.int64) - r0 for req in incoming]
    comm.stats.set_phase("default")
    return LocalPartition(
        r0=r0, r1=r1, pattern=pattern, halo_ids=halo_ids,
        send_lists=send_lists, recv_counts=recv_counts,
    )


def halo_exchange(
    comm: Communicator, part: LocalPartition, h_own: np.ndarray
) -> np.ndarray:
    """Fetch remote neighbour features: the local view's per-layer cost.

    Returns the extended feature table ``[H_own; H_halo]`` in local-id
    order. Per-rank send volume is ``k * sum_s |send_lists[s]|`` words.
    """
    payloads = [
        np.ascontiguousarray(h_own[idx]) for idx in part.send_lists
    ]
    received = comm.alltoall(payloads)
    halo = (
        np.concatenate(received, axis=0)
        if part.halo_ids.size
        else np.empty((0, h_own.shape[1]), dtype=h_own.dtype)
    )
    return np.concatenate([h_own, halo], axis=0)


def halo_reverse(
    comm: Communicator, part: LocalPartition, grad_ext: np.ndarray
) -> np.ndarray:
    """Return gradients of remote features to their owners and fold in.

    The adjoint of :func:`halo_exchange`: the halo slice of
    ``grad_ext`` is split by owner, alltoall'ed back, and accumulated
    into the owned slice at the indices each rank had requested.
    """
    n_own = part.n_own
    grad_own = grad_ext[:n_own].copy()
    halo_grad = grad_ext[n_own:]
    splits = np.cumsum(part.recv_counts)[:-1]
    payloads = [np.ascontiguousarray(c) for c in np.split(halo_grad, splits)]
    received = comm.alltoall(payloads)
    for idx, grad in zip(part.send_lists, received):
        if idx.size:
            np.add.at(grad_own, idx, grad)
    return grad_own


# ----------------------------------------------------------------------
# Per-model layer math on the (own-rows x extended-cols) pattern
# ----------------------------------------------------------------------
def _forward_layer(
    model: str,
    part: LocalPartition,
    h_own: np.ndarray,
    h_ext: np.ndarray,
    params: dict[str, np.ndarray],
    counter,
) -> tuple[np.ndarray, dict]:
    """One local-formulation layer forward; returns (Z_own, cache)."""
    pattern = part.pattern
    weight = params["weight"]
    rows = pattern.expand_rows()
    cols = pattern.indices
    cache: dict = {"h_own": h_own, "h_ext": h_ext}
    if model == "gcn":
        hp = h_ext @ weight
        z = spmm(pattern, hp, counter=counter)
        cache.update(hp=hp)
        return z, cache
    if model == "va":
        scores = pattern.data * sddmm_dot(pattern, h_own, h_ext, counter=counter)
    elif model == "agnn":
        norms_own = np.sqrt(np.einsum("ij,ij->i", h_own, h_own))
        norms_ext = np.sqrt(np.einsum("ij,ij->i", h_ext, h_ext))
        dots = sddmm_dot(pattern, h_own, h_ext, counter=counter)
        cos = dots / np.maximum(norms_own[rows] * norms_ext[cols], 1e-12)
        scores = segment_softmax(cos, pattern.indptr)
        cache.update(cos=cos, norms_own=norms_own, norms_ext=norms_ext)
    elif model == "gat":
        hp_own = h_own @ weight
        hp_ext = h_ext @ weight
        u = hp_own @ params["a_src"]
        v = hp_ext @ params["a_dst"]
        raw = u[rows] + v[cols]
        scores = segment_softmax(leaky_relu(raw, 0.2), pattern.indptr)
        cache.update(hp_own=hp_own, hp_ext=hp_ext, raw=raw)
    else:
        raise ValueError(f"unknown model {model!r}")
    counter.add(7 * pattern.nnz, "local_scores")
    s = pattern.with_data(scores)
    cache.update(s=s)
    if model == "gat":
        z = spmm(s, cache["hp_ext"], counter=counter)
    else:
        hp = h_ext @ weight
        z = spmm(s, hp, counter=counter)
        cache.update(hp=hp)
    return z, cache


def _backward_layer(
    model: str,
    part: LocalPartition,
    cache: dict,
    g: np.ndarray,
    params: dict[str, np.ndarray],
    counter,
) -> tuple[np.ndarray, np.ndarray, dict[str, np.ndarray]]:
    """One layer backward.

    Returns ``(d_own, d_ext, param_grads_local)``: the gradient w.r.t.
    this rank's owned input rows (aggregator role), the gradient w.r.t.
    the extended feature table (neighbour role — its halo slice travels
    back via :func:`halo_reverse`), and this rank's *local contribution*
    to the parameter gradients (caller allreduces).
    """
    pattern = part.pattern
    weight = params["weight"]
    h_own, h_ext = cache["h_own"], cache["h_ext"]
    rows = pattern.expand_rows()
    cols = pattern.indices
    if model == "gcn":
        stg = spmm(pattern.transpose(), g, counter=counter)
        d_weight = h_ext.T @ stg
        d_ext = stg @ weight.T
        d_own = np.zeros_like(h_own)
        return d_own, d_ext, {"weight": d_weight}

    s = cache["s"]
    if model == "gat":
        hp_ext = cache["hp_ext"]
        ds = sddmm_dot(pattern, g, hp_ext, counter=counter)
        inner = segment_sum(s.data * ds, pattern.indptr)
        dlog = s.data * (ds - expand_segments(inner, pattern.indptr))
        draw = dlog * leaky_relu_grad(cache["raw"], 0.2)
        du = segment_sum(draw, pattern.indptr)
        dv = bincount_sum(cols, draw, pattern.shape[1])
        dhp_own = np.outer(du, params["a_src"])
        dhp_ext = spmm(s.transpose(), g, counter=counter) + np.outer(
            dv, params["a_dst"]
        )
        d_weight = h_own.T @ dhp_own + h_ext.T @ dhp_ext
        da_src = cache["hp_own"].T @ du
        da_dst = hp_ext.T @ dv
        return (
            dhp_own @ weight.T,
            dhp_ext @ weight.T,
            {"weight": d_weight, "a_src": da_src, "a_dst": da_dst},
        )

    hp = cache["hp"]
    stg = spmm(s.transpose(), g, counter=counter)
    d_weight = h_ext.T @ stg
    d_ext = stg @ weight.T
    ds = sddmm_dot(pattern, g, hp, counter=counter)
    if model == "va":
        de = ds * pattern.data
        n_mat = pattern.with_data(de)
        d_own = spmm(n_mat, h_ext, counter=counter)
        d_ext = d_ext + spmm(n_mat.transpose(), h_own, counter=counter)
        return d_own, d_ext, {"weight": d_weight}
    if model == "agnn":
        inner = segment_sum(s.data * ds, pattern.indptr)
        dc = s.data * (ds - expand_segments(inner, pattern.indptr))
        norms_own = np.maximum(cache["norms_own"], 1e-12)
        norms_ext = np.maximum(cache["norms_ext"], 1e-12)
        d_mat = pattern.with_data(dc / (norms_own[rows] * norms_ext[cols]))
        d_own = spmm(d_mat, h_ext, counter=counter)
        d_ext = d_ext + spmm(d_mat.transpose(), h_own, counter=counter)
        dcc = dc * cache["cos"]
        rc = segment_sum(dcc, pattern.indptr)
        cc = bincount_sum(cols, dcc, pattern.shape[1])
        d_own -= (rc / norms_own**2)[:, None] * h_own
        d_ext -= (cc / norms_ext**2)[:, None] * h_ext
        return d_own, d_ext, {"weight": d_weight}
    raise ValueError(f"unknown model {model!r}")


def _build_params(
    model: str, dims: list[int], seed: int, dtype
) -> list[dict[str, np.ndarray]]:
    """Replicated parameters with the same draw order as the global models."""
    rng = make_rng(seed)
    params = []
    for i in range(len(dims) - 1):
        layer = {"weight": glorot(rng, (dims[i], dims[i + 1]), dtype)}
        if model == "gat":
            layer["a_src"] = glorot(rng, (dims[i + 1],), dtype)
            layer["a_dst"] = glorot(rng, (dims[i + 1],), dtype)
        params.append(layer)
    return params


def _activations(model: str, num_layers: int, activation: str | None):
    if activation is None:
        activation = "elu" if model == "gat" else "relu"
    return [
        get_activation(activation if i + 1 < num_layers else "identity")
        for i in range(num_layers)
    ]


def dist_local_inference(
    model_name: str,
    a: CSRMatrix,
    features: np.ndarray,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    p: int = 4,
    seed: int = 0,
    activation: str | None = None,
    dtype: np.dtype | type = np.float32,
    timeout: float = 120.0,
):
    """Full inference under the local formulation on ``p`` ranks.

    Returns ``(output, RunStats)``; the output rows are gathered at
    rank 0 in vertex order.
    """
    model = model_name.lower()
    n = features.shape[0]
    dims = [features.shape[1]] + [hidden_dim] * (num_layers - 1) + [out_dim]
    acts = _activations(model, num_layers, activation)

    def program(comm: Communicator):
        part = build_partition(comm, a, n)
        params = _build_params(model, dims, seed, dtype)
        h_own = np.ascontiguousarray(features[part.r0 : part.r1]).astype(dtype)
        for layer_index in range(num_layers):
            comm.stats.set_phase("halo")
            h_ext = halo_exchange(comm, part, h_own)
            comm.stats.set_phase("compute")
            z, _ = _forward_layer(
                model, part, h_own, h_ext, params[layer_index],
                comm.stats.flops,
            )
            h_own = acts[layer_index].fn(z)
        gathered = comm.gather(h_own, root=0)
        return np.concatenate(gathered, axis=0) if comm.rank == 0 else None

    result = run_spmd(p, program, timeout=timeout)
    return result.values[0], result.stats


def dist_local_train(
    model_name: str,
    a: CSRMatrix,
    features: np.ndarray,
    labels: np.ndarray,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    p: int = 4,
    epochs: int = 1,
    lr: float = 0.01,
    mask: np.ndarray | None = None,
    seed: int = 0,
    activation: str | None = None,
    dtype: np.dtype | type = np.float32,
    timeout: float = 300.0,
) -> tuple[list[float], RunStats]:
    """Full-batch training under the local formulation.

    Cross-entropy on (masked) vertices; per-epoch losses returned with
    the traffic statistics. Numerics match the single-node trainer (the
    equivalence tests assert it), so runtime/volume differences against
    :func:`repro.distributed.api.distributed_train` isolate the
    formulation, exactly as in the paper's comparison.
    """
    from repro.training.loss import log_softmax

    model = model_name.lower()
    n = features.shape[0]
    dims = [features.shape[1]] + [hidden_dim] * (num_layers - 1) + [out_dim]
    acts = _activations(model, num_layers, activation)
    global_count = int(mask.sum()) if mask is not None else n

    def program(comm: Communicator):
        part = build_partition(comm, a, n)
        params = _build_params(model, dims, seed, dtype)
        h_in = np.ascontiguousarray(features[part.r0 : part.r1]).astype(dtype)
        labels_own = labels[part.r0 : part.r1]
        mask_own = (
            np.ones(part.n_own, dtype=bool)
            if mask is None
            else mask[part.r0 : part.r1]
        )
        losses = []
        for _epoch in range(epochs):
            # Forward, caching per layer.
            h_own = h_in
            caches = []
            for li in range(num_layers):
                comm.stats.set_phase("halo")
                h_ext = halo_exchange(comm, part, h_own)
                comm.stats.set_phase("compute")
                z, cache = _forward_layer(
                    model, part, h_own, h_ext, params[li], comm.stats.flops
                )
                cache["z"] = z
                caches.append(cache)
                h_own = acts[li].fn(z)
            # Loss + gradient on owned rows.
            idx = np.flatnonzero(mask_own)
            grad = np.zeros_like(h_own, dtype=np.float64)
            local_sum = 0.0
            if idx.size:
                logp = log_softmax(h_own[idx].astype(np.float64))
                local_sum = float(
                    -logp[np.arange(idx.size), labels_own[idx]].sum()
                )
                gg = np.exp(logp)
                gg[np.arange(idx.size), labels_own[idx]] -= 1.0
                grad[idx] = gg / max(global_count, 1)
            losses.append(
                float(comm.allreduce(np.array(local_sum))) / max(global_count, 1)
            )
            # Backward with reverse halo exchanges.
            gamma = grad.astype(dtype)
            for li in range(num_layers - 1, -1, -1):
                comm.stats.set_phase("compute")
                g = gamma * acts[li].grad(caches[li]["z"])
                d_own, d_ext, local_grads = _backward_layer(
                    model, part, caches[li], g, params[li], comm.stats.flops
                )
                grads = {
                    name: comm.allreduce(value)
                    for name, value in local_grads.items()
                }
                for name, value in grads.items():
                    params[li][name] -= lr * value.astype(dtype)
                if li > 0:
                    comm.stats.set_phase("halo")
                    gamma = d_own + halo_reverse(comm, part, d_ext)
        return losses

    result = run_spmd(p, program, timeout=timeout)
    return result.values[0], result.stats
