"""A DGL-flavoured message-passing engine (the local formulation).

DGL's programming model exposes two primitives: ``apply_edges`` (a
generalized SDDMM — compute a value per edge from its endpoint data)
and ``update_all`` (a generalized SpMM — aggregate edge messages into
destination vertices). This module reimplements that model on our CSR
substrate and expresses VA, AGNN and GAT through it, i.e. *exactly the
local formulations of Section 2.2* the paper argues against. They serve
two purposes: a semantic cross-check (local and global formulations
must agree numerically, which the tests assert) and the single-node
compute engine of the DistDGL-like baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.activations import leaky_relu
from repro.tensor.csr import CSRMatrix
from repro.tensor.segment import segment_softmax, segment_sum
from repro.util.counters import FlopCounter, null_counter

__all__ = [
    "LocalGraph",
    "local_va_layer",
    "local_agnn_layer",
    "local_gat_layer",
]


@dataclass
class LocalGraph:
    """Graph view for message passing over possibly-remote columns.

    ``pattern`` is a (local-rows x extended-cols) CSR: in the
    single-node case extended == all vertices; in the distributed
    local engine the columns index the rank's owned-plus-halo feature
    table. ``row_features``/``col_features`` are the per-endpoint
    tables — identical objects on a single node.
    """

    pattern: CSRMatrix
    row_features: np.ndarray
    col_features: np.ndarray

    @classmethod
    def single_node(cls, a: CSRMatrix, h: np.ndarray) -> "LocalGraph":
        return cls(pattern=a, row_features=h, col_features=h)

    # ------------------------------------------------------------------
    # DGL-style primitives
    # ------------------------------------------------------------------
    def apply_edges(
        self,
        fn: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    ) -> np.ndarray:
        """Generalized SDDMM: ``fn(h_src, h_dst, edge_weight)`` per edge.

        ``h_src`` are destination-vertex rows? No — following the
        row-major CSR convention used throughout: the CSR *row* is the
        aggregating vertex and the *column* its neighbour, so ``fn``
        receives ``(h_row, h_col, weight)`` gathers of shape
        ``(nnz, k)``.
        """
        rows = self.pattern.expand_rows()
        cols = self.pattern.indices
        return fn(
            self.row_features[rows], self.col_features[cols], self.pattern.data
        )

    def update_all(
        self,
        messages: np.ndarray,
        reducer: str = "sum",
    ) -> np.ndarray:
        """Generalized SpMM: segment-reduce per-edge messages to rows."""
        if reducer != "sum":
            raise NotImplementedError("baseline engine reduces by sum")
        return segment_sum(messages, self.pattern.indptr)

    def edge_softmax(self, scores: np.ndarray) -> np.ndarray:
        """Per-destination softmax over incident edge scores."""
        return segment_softmax(scores, self.pattern.indptr)


# ----------------------------------------------------------------------
# Local formulations of the three A-GNN layers (inference forward)
# ----------------------------------------------------------------------
def local_va_layer(
    graph: LocalGraph,
    weight: np.ndarray,
    counter: FlopCounter = null_counter(),
) -> np.ndarray:
    """VA in the local view: per-edge dot scores, weighted sum, project.

    Numerically identical to the global :math:`(\\mathcal{A} \\odot
    H H^T) H W`, but expressed edge-wise as DGL would run it.
    """
    nnz, k = graph.pattern.nnz, graph.col_features.shape[1]
    scores = graph.apply_edges(
        lambda hr, hc, w: w * np.einsum("ij,ij->i", hr, hc)
    )
    counter.add(3 * nnz * k, "local_va_edges")
    messages = scores[:, None] * graph.col_features[graph.pattern.indices]
    aggregated = graph.update_all(messages)
    counter.add(2 * nnz * k + 2 * aggregated.size * weight.shape[1], "local_va_agg")
    return aggregated @ weight


def local_agnn_layer(
    graph: LocalGraph,
    weight: np.ndarray,
    beta: float = 1.0,
    eps: float = 1e-12,
    counter: FlopCounter = null_counter(),
) -> np.ndarray:
    """AGNN in the local view: cosine scores, edge softmax, sum, project."""
    nnz, k = graph.pattern.nnz, graph.col_features.shape[1]
    norms_row = np.sqrt(
        np.einsum("ij,ij->i", graph.row_features, graph.row_features)
    )
    norms_col = np.sqrt(
        np.einsum("ij,ij->i", graph.col_features, graph.col_features)
    )
    rows = graph.pattern.expand_rows()
    cols = graph.pattern.indices
    cos = graph.apply_edges(
        lambda hr, hc, w: np.einsum("ij,ij->i", hr, hc)
    ) / np.maximum(norms_row[rows] * norms_col[cols], eps)
    attn = graph.edge_softmax(beta * cos)
    counter.add(3 * nnz * k + 7 * nnz, "local_agnn_edges")
    messages = attn[:, None] * graph.col_features[cols]
    aggregated = graph.update_all(messages)
    counter.add(2 * nnz * k + 2 * aggregated.size * weight.shape[1], "local_agnn_agg")
    return aggregated @ weight


def local_gat_layer(
    graph: LocalGraph,
    weight: np.ndarray,
    a_src: np.ndarray,
    a_dst: np.ndarray,
    slope: float = 0.2,
    counter: FlopCounter = null_counter(),
) -> np.ndarray:
    """GAT in the local view: the per-edge concatenated dot product
    :math:`\\mathbf{a}^T[W h_i \\| W h_j]`, LeakyReLU, edge softmax,
    weighted sum of projected neighbours."""
    nnz = graph.pattern.nnz
    hp_row = graph.row_features @ weight
    hp_col = (
        hp_row
        if graph.col_features is graph.row_features
        else graph.col_features @ weight
    )
    counter.add(
        2 * graph.row_features.size * weight.shape[1], "local_gat_project"
    )
    u = hp_row @ a_src
    v = hp_col @ a_dst
    rows = graph.pattern.expand_rows()
    cols = graph.pattern.indices
    logits = leaky_relu(u[rows] + v[cols], slope)
    attn = graph.edge_softmax(logits)
    counter.add(8 * nnz, "local_gat_edges")
    messages = attn[:, None] * hp_col[cols]
    aggregated = graph.update_all(messages)
    counter.add(2 * nnz * weight.shape[1], "local_gat_agg")
    return aggregated
