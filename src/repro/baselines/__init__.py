"""Local-formulation (message-passing) baseline engines.

The paper compares against DGL / DistDGL, which execute A-GNNs through
the *local* formulation: per-edge message functions and per-vertex
aggregations (DGL's generalized SDDMM/SpMM programming model), with a
1D vertex partition and neighbour-feature halo exchanges when
distributed. These engines reproduce that execution model from scratch:

* :mod:`repro.baselines.message_passing` — a DGL-flavoured single-node
  engine (``apply_edges`` / ``update_all``) plus local-formulation
  implementations of VA/AGNN/GAT used as semantic cross-checks.
* :mod:`repro.baselines.dist_local` — the distributed full-batch local
  engine: 1D partition, halo exchange of :math:`\\Theta(nkd/p)` words
  per layer (the Section-7 lower bound for the local view), forward and
  backward.
* :mod:`repro.baselines.minibatch` — DistDGL-style mini-batch training
  with layer-wise neighbour sampling and remote feature fetches.
"""

from repro.baselines.message_passing import (
    LocalGraph,
    local_agnn_layer,
    local_gat_layer,
    local_va_layer,
)
from repro.baselines.dist_local import (
    dist_local_inference,
    dist_local_train,
)
from repro.baselines.minibatch import (
    MiniBatchConfig,
    minibatch_train,
)

__all__ = [
    "LocalGraph",
    "local_va_layer",
    "local_agnn_layer",
    "local_gat_layer",
    "dist_local_inference",
    "dist_local_train",
    "MiniBatchConfig",
    "minibatch_train",
]
