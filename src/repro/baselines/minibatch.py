"""DistDGL-style mini-batch training with neighbour sampling.

The paper's main baseline runs *mini-batch* training: each iteration
samples a batch of target vertices and an L-hop fan-out-limited
neighbourhood, fetches the features of sampled remote vertices, and
trains on the induced block — processing "many orders of magnitude
fewer vertices" than a full batch. This engine reproduces that cost
profile:

* each rank draws ``batch_size / p`` targets from its own 1D partition;
* layer-wise neighbour sampling with per-layer fan-out caps expands the
  target set into the input vertex set (structure lookups are local, as
  in DistDGL's partitioned graph store with local sampling servers);
* features of sampled vertices owned by other ranks are fetched
  (``alltoall``), charging :math:`k` words per remote vertex;
* the model runs forward + backward on a block containing only the
  *sampled* edges plus self loops (DGL's message-flow-block semantics,
  whose edge count is bounded by the fan-out budget, not by graph
  density), and weight gradients are allreduced (data-parallel
  training, as DistDGL does).

Loss/accuracy semantics of sampled training differ from full-batch by
construction (the sampling-induced information loss the paper cites);
the benchmark figures compare *per-iteration runtime*, which is what
this engine reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.partition import block_range
from repro.models import build_model
from repro.runtime.communicator import Communicator
from repro.runtime.executor import run_spmd
from repro.runtime.stats import RunStats
from repro.tensor.csr import CSRMatrix
from repro.training.loss import SoftmaxCrossEntropyLoss
from repro.util.rng import make_rng

__all__ = ["MiniBatchConfig", "minibatch_train", "sample_block"]

#: Flop-equivalents charged per sampled edge. Neighbour sampling is a
#: CPU-side pointer-chasing + feature-slicing pipeline (DistDGL's
#: sampler and dataloader); measured DGL/DistDGL end-to-end sampling
#: throughputs are on the order of 2e7 edges/s per node, versus ~1e12
#: dense flops/s on the accelerator — i.e. one sampled edge costs as
#: much machine time as ~5e4 dense flops. Without this charge the cost
#: model would credit mini-batch training with GPU-speed sampling,
#: which is not how DistDGL behaves (and not why the paper's full-batch
#: runs win at low density).
SAMPLING_FLOPS_PER_EDGE = 50_000


@dataclass
class MiniBatchConfig:
    """Sampling configuration (defaults follow common DistDGL setups)."""

    batch_size: int = 1024
    fanouts: tuple[int, ...] = (10, 10, 10)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if not self.fanouts or any(f < 1 for f in self.fanouts):
            raise ValueError("fanouts must be positive")


def sample_block(
    a: CSRMatrix,
    targets: np.ndarray,
    fanouts: tuple[int, ...],
    rng: np.random.Generator,
) -> tuple[np.ndarray, CSRMatrix, int]:
    """Layer-wise neighbour sampling producing a DGL-style block.

    Starting from ``targets``, each hop samples up to ``fanout``
    neighbours per frontier vertex (without replacement within a
    vertex). Returns ``(vertices, block, sampled_edges)`` where
    ``vertices`` is the sorted union of sampled vertices and ``block``
    is a square CSR over them containing only the *sampled* edges (plus
    self loops) — mirroring DGL's message-flow blocks, whose edge count
    is bounded by the fan-out budget rather than by graph density.
    """
    vertices = np.unique(targets)
    frontier = vertices
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    sampled_edges = 0
    for fanout in fanouts:
        picked = []
        for v in frontier:
            start, stop = a.indptr[v], a.indptr[v + 1]
            degree = stop - start
            if degree == 0:
                continue
            sampled_edges += min(degree, fanout)
            if degree <= fanout:
                neighbours = a.indices[start:stop]
            else:
                sel = rng.choice(degree, size=fanout, replace=False)
                neighbours = a.indices[start + sel]
            picked.append(neighbours)
            srcs.append(np.full(neighbours.shape[0], v, dtype=np.int64))
            dsts.append(neighbours)
        if picked:
            new = np.unique(np.concatenate(picked))
            frontier = np.setdiff1d(new, vertices, assume_unique=False)
            vertices = np.union1d(vertices, new)
        else:
            break
    nv = vertices.shape[0]
    if srcs:
        rows = np.searchsorted(vertices, np.concatenate(srcs))
        cols = np.searchsorted(vertices, np.concatenate(dsts))
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
    from repro.tensor.coo import COOMatrix

    coo = COOMatrix(rows, cols, None, shape=(nv, nv)).add_self_loops()
    block = coo.to_csr()
    block = block.with_data(np.ones(block.nnz, dtype=a.dtype))
    return vertices, block, sampled_edges


def minibatch_train(
    model_name: str,
    a: CSRMatrix,
    features: np.ndarray,
    labels: np.ndarray,
    hidden_dim: int,
    out_dim: int,
    num_layers: int = 3,
    p: int = 4,
    iterations: int = 1,
    lr: float = 0.01,
    config: MiniBatchConfig | None = None,
    seed: int = 0,
    dtype: np.dtype | type = np.float32,
    timeout: float = 300.0,
) -> tuple[list[float], RunStats]:
    """Run ``iterations`` mini-batch training steps on ``p`` ranks.

    Returns per-iteration mean losses (across ranks) and the traffic
    statistics. Remote-feature fetch volume is recorded under the
    ``fetch`` phase, gradient synchronisation under ``gradsync``.
    """
    config = config or MiniBatchConfig(fanouts=tuple([10] * num_layers))
    n = features.shape[0]

    def program(comm: Communicator):
        rng = make_rng(config.seed * 7919 + comm.rank)
        r0, r1 = block_range(n, comm.size, comm.rank)
        local_batch = max(1, config.batch_size // comm.size)
        model = build_model(
            model_name, features.shape[1], hidden_dim, out_dim,
            num_layers=num_layers, seed=seed, dtype=dtype,
        )
        loss = SoftmaxCrossEntropyLoss()
        losses = []
        for _it in range(iterations):
            comm.stats.set_phase("sample")
            targets = rng.integers(r0, r1, local_batch, dtype=np.int64)
            vertices, sub, sampled_edges = sample_block(
                a, targets, config.fanouts, rng
            )
            comm.stats.flops.add(
                SAMPLING_FLOPS_PER_EDGE * sampled_edges, "sampling"
            )

            comm.stats.set_phase("fetch")
            # Fetch features of sampled vertices from their owners.
            requests = []
            for s in range(comm.size):
                s0, s1 = block_range(n, comm.size, s)
                wanted = vertices[(vertices >= s0) & (vertices < s1)]
                requests.append(wanted if s != comm.rank else wanted[:0])
            incoming = comm.alltoall(requests)
            replies = [
                np.ascontiguousarray(features[req]) for req in incoming
            ]
            comm.alltoall(replies)
            # (The returned arrays model the wire transfer; feature
            # values themselves are globally addressable in-process.)
            h_block = np.ascontiguousarray(features[vertices]).astype(dtype)

            comm.stats.set_phase("compute")
            out = model.forward(sub, h_block, counter=comm.stats.flops,
                                training=True)
            y_block = labels[vertices]
            value = loss.value(out, y_block)
            grads = model.backward(
                loss.gradient(out, y_block), counter=comm.stats.flops
            )

            comm.stats.set_phase("gradsync")
            synced = [
                {
                    name: comm.allreduce(grad) / comm.size
                    for name, grad in layer.items()
                }
                for layer in grads
            ]
            model.apply_gradients(synced, lr)
            losses.append(float(comm.allreduce(np.array(value))) / comm.size)
        model.zero_caches()
        return losses

    result = run_spmd(p, program, timeout=timeout)
    return result.values[0], result.stats
