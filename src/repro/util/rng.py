"""Deterministic random number generation helpers.

Every stochastic component of the library (graph generators, parameter
initialisation, mini-batch sampling) threads an explicit seed through
:func:`make_rng`, so experiments are reproducible bit-for-bit — the
paper's artifact likewise exposes a ``--seed`` flag on its benchmark
drivers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed (or an existing generator) into a Generator.

    Passing an existing generator returns it unchanged, which lets
    call chains share one stream; passing ``None`` yields a fresh
    OS-seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
