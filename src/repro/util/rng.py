"""Deterministic random number generation helpers.

Every stochastic component of the library (graph generators, parameter
initialisation, mini-batch sampling) threads an explicit seed through
:func:`make_rng`, so experiments are reproducible bit-for-bit — the
paper's artifact likewise exposes a ``--seed`` flag on its benchmark
drivers.

The process-wide default seed can be pinned with ``$REPRO_SEED``
(a validated integer, read at call time like the other ``REPRO_*``
knobs): components that accept ``seed=None`` resolve it through
:func:`repro_seed_default`, which is how the CI determinism matrix
replays a sampled training run bit-for-bit and diffs the loss curves.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["make_rng", "repro_seed_default", "SEED_ENV_VAR"]

#: Environment variable supplying the process-wide default seed.
SEED_ENV_VAR = "REPRO_SEED"


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed (or an existing generator) into a Generator.

    Passing an existing generator returns it unchanged, which lets
    call chains share one stream; passing ``None`` yields a fresh
    OS-seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def repro_seed_default(fallback: int = 0) -> int:
    """Resolve the default seed from ``$REPRO_SEED``.

    Read at *call* time, not at import, so tests and CI can flip the
    variable per run. Unset (or empty) falls back to ``fallback``; a
    non-integer value raises — a silently ignored typo would defeat
    the determinism gate built on this knob.
    """
    raw = os.environ.get(SEED_ENV_VAR)
    if raw is None or not raw.strip():
        return int(fallback)
    try:
        return int(raw.strip(), 10)
    except ValueError:
        raise ValueError(
            f"invalid ${SEED_ENV_VAR}={raw!r}; must be an integer"
        ) from None
