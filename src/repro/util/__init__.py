"""Shared utilities: flop accounting, RNG handling, validation helpers."""

from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng

__all__ = ["FlopCounter", "null_counter", "make_rng"]
