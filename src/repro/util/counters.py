"""Floating-point operation accounting.

The simulated-cluster cost model (``repro.runtime.costmodel``) charges
each rank for its local compute by flop count rather than wall-clock
time — on a single host all simulated ranks share the same cores, so
wall-clock per rank is meaningless, while flop counts are exact and
deterministic. Every kernel in ``repro.tensor.kernels`` accepts an
optional :class:`FlopCounter` and reports the flops of the textbook
algorithm it implements.
"""

from __future__ import annotations

__all__ = ["FlopCounter", "null_counter"]


class FlopCounter:
    """Accumulates floating-point operations, grouped by kernel label."""

    __slots__ = ("total", "by_label")

    def __init__(self) -> None:
        self.total: int = 0
        self.by_label: dict[str, int] = {}

    def add(self, flops: int, label: str = "other") -> None:
        """Charge ``flops`` operations to ``label``."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        self.total += int(flops)
        self.by_label[label] = self.by_label.get(label, 0) + int(flops)

    def reset(self) -> None:
        self.total = 0
        self.by_label.clear()

    def merge(self, other: "FlopCounter") -> None:
        """Fold another counter's tallies into this one."""
        self.total += other.total
        for label, flops in other.by_label.items():
            self.by_label[label] = self.by_label.get(label, 0) + flops

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlopCounter(total={self.total})"


class _NullCounter(FlopCounter):
    """A counter that discards everything (avoids ``if counter`` checks)."""

    def add(self, flops: int, label: str = "other") -> None:  # noqa: D102
        pass


_NULL = _NullCounter()


def null_counter() -> FlopCounter:
    """The shared no-op counter used when accounting is disabled."""
    return _NULL
