"""Floating-point operation and cache-event accounting.

The simulated-cluster cost model (``repro.runtime.costmodel``) charges
each rank for its local compute by flop count rather than wall-clock
time — on a single host all simulated ranks share the same cores, so
wall-clock per rank is meaningless, while flop counts are exact and
deterministic. Every kernel in ``repro.tensor.kernels`` accepts an
optional :class:`FlopCounter` and reports the flops of the textbook
algorithm it implements.

:class:`EventCounter` is the companion *occurrence* counter: the
pattern-structure cache (``repro.tensor.structure``) and the workspace
pool (``repro.tensor.workspace``) report cache hits, cold computations
and buffer allocations to the process-global instance returned by
:func:`event_counter`, so benchmarks and tests can assert that
structural quantities are derived at most once per sparsity pattern.
"""

from __future__ import annotations

__all__ = ["FlopCounter", "EventCounter", "null_counter", "event_counter"]


class FlopCounter:
    """Accumulates floating-point operations, grouped by kernel label."""

    __slots__ = ("total", "by_label")

    def __init__(self) -> None:
        self.total: int = 0
        self.by_label: dict[str, int] = {}

    def add(self, flops: int, label: str = "other") -> None:
        """Charge ``flops`` operations to ``label``."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        self.total += int(flops)
        self.by_label[label] = self.by_label.get(label, 0) + int(flops)

    def reset(self) -> None:
        self.total = 0
        self.by_label.clear()

    def merge(self, other: "FlopCounter") -> None:
        """Fold another counter's tallies into this one."""
        self.total += other.total
        for label, flops in other.by_label.items():
            self.by_label[label] = self.by_label.get(label, 0) + flops

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlopCounter(total={self.total})"


class _NullCounter(FlopCounter):
    """A counter that discards everything (avoids ``if counter`` checks)."""

    def add(self, flops: int, label: str = "other") -> None:  # noqa: D102
        pass


_NULL = _NullCounter()


def null_counter() -> FlopCounter:
    """The shared no-op counter used when accounting is disabled."""
    return _NULL


class EventCounter:
    """Counts named occurrences (cache hits, allocations, recomputes).

    Unlike :class:`FlopCounter`, which weighs work, this counter tallies
    *how many times* something happened — e.g. how often a pattern's
    ``expand_rows`` was actually computed versus served from cache.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def bump(self, label: str, n: int = 1) -> None:
        """Record ``n`` occurrences of ``label``."""
        self.counts[label] = self.counts.get(label, 0) + n

    def count(self, label: str) -> int:
        """Occurrences recorded for ``label`` (0 if never seen)."""
        return self.counts.get(label, 0)

    def reset(self) -> None:
        self.counts.clear()

    def snapshot(self) -> dict[str, int]:
        """A point-in-time copy, for before/after deltas in tests."""
        return dict(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventCounter({self.counts!r})"


_EVENTS = EventCounter()


def event_counter() -> EventCounter:
    """The process-global event counter (structure cache + workspaces)."""
    return _EVENTS
