"""repro — Global tensor formulations for attentional GNNs.

A comprehensive reproduction of *"High-Performance and Programmable
Attentional Graph Neural Networks with Global Tensor Formulations"*
(Besta et al., SC '23).

The package is organised into subsystems mirroring the paper:

``repro.tensor``
    From-scratch sparse tensor substrate: COO/CSR formats, semirings
    (real, tropical min/max, average), and the paper's compute kernels
    (SpMM, SDDMM, SpMMM, MSpMM, masked row softmax).
``repro.core``
    The paper's primary contribution: global tensor formulations —
    the Table-2 building blocks (``rep``, ``sum``, ``rs``, ``sm``), the
    per-model attention operators :math:`\\Psi` and the generic
    programmable layer :math:`H^{l+1} = \\sigma((\\Phi\\circ\\oplus)(\\Psi(A,H),H))`.
``repro.models``
    VA / AGNN / GAT / GCN models with manual global-formulation
    forward *and* backward passes (Section 5 of the paper).
``repro.fusion``
    The op-DAG toolchain: sparsity inference, virtual tensors, and
    the fusion pass generating SDDMM-like fused kernels (Section 6.2).
``repro.runtime``
    Simulated MPI/BSP runtime: threaded SPMD ranks, collective
    algorithms, per-rank communication-volume accounting and an
    alpha-beta-gamma cost model.
``repro.distributed``
    The A-stationary 1.5D distribution (Section 6.3) and distributed
    implementations of all models, training and inference.
``repro.baselines``
    Local-formulation (message-passing) engines standing in for
    DGL / DistDGL, including a mini-batch sampled trainer.
``repro.graphs``
    Kronecker (Graph500-style), Erdős–Rényi and power-law generators,
    preprocessing and synthetic labelled datasets.
``repro.training``
    Losses, optimisers, a full-batch trainer and metrics.
``repro.theory``
    Closed-form communication-volume predictors (Section 7).
``repro.bench``
    The benchmark harness regenerating every figure of the paper.
"""

from repro._version import __version__

__all__ = ["__version__"]
