"""Coordinate-format (COO) sparse matrices.

COO is the construction format: graph generators emit edge lists, which
are deduplicated and sorted here before conversion to CSR for compute.
All heavy operations are vectorised NumPy; no Python-level per-edge
loops appear on any hot path (see the HPC guide: vectorise, avoid
copies, prefer in-place ops).
"""

from __future__ import annotations

import numpy as np

__all__ = ["COOMatrix"]


class COOMatrix:
    """A sparse matrix in coordinate format.

    Parameters
    ----------
    rows, cols:
        Integer arrays of equal length holding the coordinates of the
        stored entries.
    data:
        Values of the stored entries. If ``None``, an all-ones pattern
        matrix is created (the adjacency-matrix case).
    shape:
        ``(n_rows, n_cols)``.
    dedup:
        If ``True`` (default), duplicate coordinates are combined by
        *summing* their values, matching the artifact's Kronecker
        post-processing ("removing duplicate edges").

    Notes
    -----
    The class stores entries in canonical order (row-major, then column)
    after :meth:`canonicalize` — conversion to CSR requires this.
    """

    __slots__ = ("rows", "cols", "data", "shape", "_canonical")

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        data: np.ndarray | None = None,
        shape: tuple[int, int] | None = None,
        dedup: bool = True,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.ndim != 1 or cols.ndim != 1 or rows.shape != cols.shape:
            raise ValueError("rows and cols must be equal-length 1-D arrays")
        if data is None:
            data = np.ones(rows.shape[0], dtype=dtype)
        else:
            data = np.asarray(data)
            if data.shape != rows.shape:
                raise ValueError("data must have the same length as rows/cols")
        if shape is None:
            n_r = int(rows.max()) + 1 if rows.size else 0
            n_c = int(cols.max()) + 1 if cols.size else 0
            shape = (n_r, n_c)
        if rows.size:
            if rows.min() < 0 or cols.min() < 0:
                raise ValueError("negative indices are not allowed")
            if rows.max() >= shape[0] or cols.max() >= shape[1]:
                raise ValueError("index exceeds matrix shape")
        self.rows = rows
        self.cols = cols
        self.data = data
        self.shape = (int(shape[0]), int(shape[1]))
        self._canonical = False
        if dedup:
            self.canonicalize()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.rows.shape[0])

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.dtype})"

    # ------------------------------------------------------------------
    # Canonicalisation
    # ------------------------------------------------------------------
    def canonicalize(self) -> "COOMatrix":
        """Sort entries row-major and merge duplicates by summation.

        Idempotent; returns ``self`` for chaining.
        """
        if self._canonical:
            return self
        if self.nnz == 0:
            self._canonical = True
            return self
        # Linearised key guarantees a total row-major order.
        key = self.rows * np.int64(self.shape[1]) + self.cols
        order = np.argsort(key, kind="stable")
        key = key[order]
        data = self.data[order]
        # Merge duplicates: boundaries where the key changes.
        boundary = np.empty(key.shape[0], dtype=bool)
        boundary[0] = True
        np.not_equal(key[1:], key[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        merged = np.add.reduceat(data, starts)
        unique_key = key[starts]
        self.rows = unique_key // self.shape[1]
        self.cols = unique_key % self.shape[1]
        self.data = merged.astype(data.dtype, copy=False)
        self._canonical = True
        return self

    # ------------------------------------------------------------------
    # Structural transforms
    # ------------------------------------------------------------------
    def transpose(self) -> "COOMatrix":
        """Return the transpose as a new canonical COO matrix."""
        return COOMatrix(
            self.cols.copy(),
            self.rows.copy(),
            self.data.copy(),
            shape=(self.shape[1], self.shape[0]),
        )

    def symmetrize(self) -> "COOMatrix":
        """Return the pattern-symmetrised matrix ``sign(X + X^T)``.

        Used on generated graphs to model undirected edges; values are
        reset to ones (an adjacency pattern), matching the paper's
        pre-normalisation adjacency matrix.
        """
        if self.shape[0] != self.shape[1]:
            raise ValueError("symmetrize requires a square matrix")
        rows = np.concatenate([self.rows, self.cols])
        cols = np.concatenate([self.cols, self.rows])
        out = COOMatrix(rows, cols, None, shape=self.shape, dtype=self.dtype)
        out.data = np.ones(out.nnz, dtype=self.dtype)
        return out

    def remove_self_loops(self) -> "COOMatrix":
        """Return a copy without diagonal entries."""
        keep = self.rows != self.cols
        return COOMatrix(
            self.rows[keep],
            self.cols[keep],
            self.data[keep],
            shape=self.shape,
            dedup=not self._canonical,
        )

    def add_self_loops(self, value: float = 1.0) -> "COOMatrix":
        """Return a copy with the full diagonal present (set to ``value``).

        Existing diagonal entries are overwritten, not accumulated —
        models such as GAT attend over ``N(v) ∪ {v}``, where the self
        edge must appear exactly once.
        """
        if self.shape[0] != self.shape[1]:
            raise ValueError("add_self_loops requires a square matrix")
        base = self.remove_self_loops()
        n = self.shape[0]
        diag = np.arange(n, dtype=np.int64)
        rows = np.concatenate([base.rows, diag])
        cols = np.concatenate([base.cols, diag])
        data = np.concatenate(
            [base.data, np.full(n, value, dtype=self.dtype)]
        )
        return COOMatrix(rows, cols, data, shape=self.shape)

    # ------------------------------------------------------------------
    # Dense interop (test/reference use only — O(n^2) memory)
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array. Reference/testing use only."""
        out = np.zeros(self.shape, dtype=self.dtype)
        np.add.at(out, (self.rows, self.cols), self.data)
        return out

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build from a dense array, storing the nonzero entries."""
        dense = np.asarray(dense)
        rows, cols = np.nonzero(dense)
        return cls(rows, cols, dense[rows, cols], shape=dense.shape)

    def to_csr(self) -> "CSRMatrix":
        """Convert to CSR (the compute format)."""
        from repro.tensor.csr import CSRMatrix

        self.canonicalize()
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, self.rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(
            indptr, self.cols.copy(), self.data.copy(), shape=self.shape
        )

    # ------------------------------------------------------------------
    # Degree statistics (used by theory predictors and preprocessing)
    # ------------------------------------------------------------------
    def row_degrees(self) -> np.ndarray:
        """Number of stored entries per row."""
        deg = np.zeros(self.shape[0], dtype=np.int64)
        np.add.at(deg, self.rows, 1)
        return deg

    def col_degrees(self) -> np.ndarray:
        """Number of stored entries per column."""
        deg = np.zeros(self.shape[1], dtype=np.int64)
        np.add.at(deg, self.cols, 1)
        return deg
