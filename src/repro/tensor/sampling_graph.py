"""Compact CSC sampling structure and layered mini-batch blocks.

The global-tensor formulation is full-batch by construction: one
training iteration touches every vertex. For graphs whose activations
do not fit one rank, DistDGL-style systems instead train on *sampled
mini-batches* — a batch of target vertices plus a fan-out-limited
L-hop neighbourhood. This module provides the sampling substrate
(GraphBolt's ``CSCSamplingGraph`` is the exemplar):

* :class:`SamplingGraph` — a per-destination neighbour lookup built
  once from a :class:`~repro.tensor.csr.CSRMatrix` and interned on its
  :class:`~repro.tensor.structure.PatternStructure` (the aggregation
  ``Z[i] = Σ_j Ψ(A, H)[i, j] · H[j]`` reads row ``i`` of A, so A's CSR
  rows *are* the CSC in-adjacency of the aggregation operator: the
  index arrays are shared, not copied).
* :func:`SamplingGraph.sample_edges` — seeded per-seed fan-out
  neighbour sampling **without replacement**, vectorised: sub-fan-out
  seeds take their full CSR slice, over-fan-out seeds draw a uniform
  k-subset via random keys + per-segment top-k.
* :class:`Block` / :func:`sample_blocks` — layered (per-hop) message
  flow blocks over **compacted local ids**. Each block is a *square*
  CSR over its source vertex set whose non-destination rows are empty,
  so it flows through the pattern cache, the head-batched kernels, the
  fused megakernel and ``DagLayer`` completely unchanged.

Bit-identity anchor
-------------------
With ``fanout >= max degree`` every seed takes the full-neighbour
branch in CSR order, the RNG is never consulted, and the emitted block
over *all* vertices has ``indptr``/``indices``/``data`` exactly equal
to A's. Because the compaction map is monotone (source ids are kept
sorted), per-row summation order is preserved for any target subset of
a canonical (row-sorted) adjacency — sampled forward/backward are then
*bit-identical* to the full-batch path, which is what
``tests/test_minibatch.py`` asserts for VA/AGNN/GAT.

Events: ``sampling_graph.built`` / ``sampling_graph.hit`` (structure
interning), ``sample.hop`` (one hop sampled), reported through
:func:`repro.util.counters.event_counter`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.csr import CSRMatrix
from repro.tensor.structure import PatternStructure
from repro.util.counters import event_counter

__all__ = [
    "Block",
    "SamplingGraph",
    "sampling_graph_of",
    "sample_one_hop",
    "sample_blocks",
    "hub_bias_weights",
]


class SamplingGraph:
    """Per-destination neighbour lookup over one interned pattern.

    Holds (shared, frozen) references to the pattern's ``indptr`` /
    ``indices``; sampling methods return **edge ids** — positions into
    the owning matrix's ``indices``/``data`` — so callers can gather
    both the endpoints and the edge values of a sample.
    """

    __slots__ = ("structure", "indptr", "indices", "num_nodes")

    def __init__(self, structure: PatternStructure) -> None:
        if structure.shape[0] != structure.shape[1]:
            raise ValueError(
                "sampling requires a square adjacency; got shape "
                f"{structure.shape}"
            )
        self.structure = structure
        self.indptr = structure.indptr
        self.indices = structure.indices
        self.num_nodes = structure.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SamplingGraph(num_nodes={self.num_nodes}, "
            f"num_edges={int(self.indices.shape[0])})"
        )

    # ------------------------------------------------------------------
    def degrees(self, seeds: np.ndarray) -> np.ndarray:
        """Out-degree (stored-entry count) of each seed."""
        seeds = np.asarray(seeds, dtype=np.int64)
        return self.indptr[seeds + 1] - self.indptr[seeds]

    # ------------------------------------------------------------------
    def sample_edges(
        self,
        seeds: np.ndarray,
        fanout: int | None,
        rng: np.random.Generator,
        weights: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample up to ``fanout`` neighbours per seed, w/o replacement.

        Returns ``(eids, counts)``: ``counts[i] = min(degree_i,
        fanout)`` sampled edges for ``seeds[i]``, and ``eids`` their
        edge ids concatenated in seed order, **ascending within each
        seed's segment** (so a canonical adjacency yields canonical
        blocks). ``fanout=None`` means unlimited (take every
        neighbour); seeds whose degree does not exceed the fan-out take
        their full CSR slice without consulting ``rng`` — with a
        graph-wide full fan-out the RNG state is never advanced.

        ``weights`` selects *importance* sampling: a length-``nnz``
        per-edge array (aligned with the pattern's ``indices``) giving
        each edge's unnormalised inclusion propensity. It rides the
        existing random-key top-k as an Efraimidis–Spirakis exponential
        race — key ``-log(1 - u) / w`` per candidate, keep each
        segment's ``fanout`` smallest — so exactly one uniform draw per
        candidate edge is consumed either way and the unweighted path
        (``weights=None``) is *bit-identical* to before. Weights must
        be finite and non-negative where sampled; zero-weight edges
        draw an infinite key, so they are only taken when a segment has
        fewer than ``fanout`` positive-weight candidates. The
        full-fan-out fast path never consults weights or the RNG.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.size and (
            seeds.min() < 0 or seeds.max() >= self.num_nodes
        ):
            raise ValueError("seed vertex id out of range")
        if weights is not None:
            weights = np.asarray(weights)
            if weights.shape != self.indices.shape:
                raise ValueError(
                    "weights must be per-edge: expected shape "
                    f"{self.indices.shape}, got {weights.shape}"
                )
        starts = self.indptr[seeds]
        deg = self.indptr[seeds + 1] - starts
        if fanout is None:
            counts = deg
        else:
            fanout = int(fanout)
            if fanout < 0:
                raise ValueError("fanout must be >= 0 (or None)")
            counts = np.minimum(deg, fanout)
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), counts
        over = counts < deg
        if not over.any():
            # Full-neighbour fast path: one ragged-range gather.
            return _ragged_ranges(starts, counts), counts
        eids = np.empty(total, dtype=np.int64)
        offsets = np.zeros(seeds.shape[0], dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        take_all = ~over
        if take_all.any():
            dst_pos = _ragged_ranges(offsets[take_all], counts[take_all])
            eids[dst_pos] = _ragged_ranges(starts[take_all], counts[take_all])
        # Over-fan-out seeds: draw one uniform key per candidate edge
        # and keep each segment's ``fanout`` smallest — a uniform
        # k-subset without replacement, fully vectorised.
        deg_o = deg[over]
        cand = _ragged_ranges(starts[over], deg_o)
        seg = np.repeat(np.arange(deg_o.shape[0], dtype=np.int64), deg_o)
        keys = rng.random(cand.shape[0])
        if weights is not None:
            w = weights[cand].astype(np.float64, copy=False)
            if not np.all(np.isfinite(w)) or (w < 0).any():
                raise ValueError(
                    "sampling weights must be finite and non-negative"
                )
            # Efraimidis–Spirakis: exponential(1)/w races, smallest-k
            # wins — a weighted k-subset without replacement on the
            # same one-uniform-per-candidate budget as the unweighted
            # path. Zero weight -> infinite key (picked last).
            positive = w > 0.0
            with np.errstate(divide="ignore"):
                keys = np.where(
                    positive,
                    -np.log1p(-keys) / np.where(positive, w, 1.0),
                    np.inf,
                )
        order = np.lexsort((keys, seg))
        seg_starts = np.zeros(deg_o.shape[0], dtype=np.int64)
        np.cumsum(deg_o[:-1], out=seg_starts[1:])
        winners = np.repeat(seg_starts, fanout) + np.tile(
            np.arange(fanout, dtype=np.int64), deg_o.shape[0]
        )
        picked = cand[order][winners]
        # Restore ascending edge-id order inside each seed's segment.
        picked_seg = np.repeat(
            np.arange(deg_o.shape[0], dtype=np.int64), fanout
        )
        picked = picked[np.lexsort((picked, picked_seg))]
        dst_pos = _ragged_ranges(offsets[over], counts[over])
        eids[dst_pos] = picked
        return eids, counts


def _ragged_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + l)`` for each (start, length) pair.

    The vectorised ragged-range construction used throughout the
    tensor layer: ``repeat(starts - exclusive_cumsum(lengths),
    lengths) + arange(total)``.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.zeros(lengths.shape[0], dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    out = np.repeat(starts - offsets, lengths)
    out += np.arange(total, dtype=np.int64)
    return out


def sampling_graph_of(a: CSRMatrix) -> SamplingGraph:
    """The (interned) sampling structure of ``a``'s pattern.

    Built on first use and cached on the
    :class:`~repro.tensor.structure.PatternStructure`, so every matrix
    sharing the pattern — and every batch sampled from it — reuses one
    structure object.
    """
    structure = a.structure
    graph = structure._sampling_graph
    if graph is None:
        graph = SamplingGraph(structure)
        structure._sampling_graph = graph
        event_counter().bump("sampling_graph.built")
    else:
        event_counter().bump("sampling_graph.hit")
    return graph


# ----------------------------------------------------------------------
# Layered blocks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Block:
    """One hop's message-flow block over compacted local ids.

    ``matrix`` is a *square* CSR of shape ``(num_src, num_src)`` whose
    row ``r`` holds the sampled in-edges of ``src_nodes[r]`` if that
    vertex is a destination of this hop and is empty otherwise. Keeping
    the block square (rather than DGL's rectangular blocks) is what
    lets the existing pattern cache, head-batched kernels, fused
    megakernel and ``DagLayer`` run on it unchanged — empty rows cost
    nothing in a CSR sweep.

    ``src_nodes`` are the hop's input vertices as **sorted global
    ids** (the compaction map is monotone); ``dst_positions`` indexes
    the destination rows within ``src_nodes``. A layer consumes
    features over ``src_nodes`` and its meaningful outputs are
    ``z[dst_positions]``.
    """

    matrix: CSRMatrix
    src_nodes: np.ndarray
    dst_positions: np.ndarray
    sampled_edges: int

    @property
    def num_src(self) -> int:
        return int(self.src_nodes.shape[0])

    @property
    def num_dst(self) -> int:
        return int(self.dst_positions.shape[0])

    @property
    def dst_nodes(self) -> np.ndarray:
        """Global ids of this hop's destination vertices (sorted)."""
        return self.src_nodes[self.dst_positions]

    # ------------------------------------------------------------------
    # Wire format (pipelined sampler/trainer split)
    # ------------------------------------------------------------------
    def to_payload(self) -> tuple:
        """Serialise to a tuple of arrays for a fabric transfer."""
        m = self.matrix
        return (
            m.indptr,
            m.indices,
            m.data,
            self.src_nodes,
            self.dst_positions,
            int(self.sampled_edges),
        )

    @classmethod
    def from_payload(cls, payload: tuple) -> "Block":
        """Rebuild from :meth:`to_payload` output (post-transfer)."""
        indptr, indices, data, src_nodes, dst_positions, edges = payload
        num_src = int(src_nodes.shape[0])
        matrix = CSRMatrix(indptr, indices, data, (num_src, num_src))
        return cls(
            matrix=matrix,
            src_nodes=np.asarray(src_nodes, dtype=np.int64),
            dst_positions=np.asarray(dst_positions, dtype=np.int64),
            sampled_edges=int(edges),
        )


def sample_one_hop(
    a: CSRMatrix,
    dst_nodes: np.ndarray,
    fanout: int | None,
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
) -> Block:
    """Sample one hop of in-edges for ``dst_nodes`` (sorted, unique).

    Edge values are gathered from ``a.data`` so weighted adjacencies
    sample their weights along with the topology. ``weights`` (an
    optional per-edge propensity array, see
    :meth:`SamplingGraph.sample_edges`) biases *which* edges survive a
    limited fan-out without touching the sampled edge values.
    """
    dst_nodes = np.asarray(dst_nodes, dtype=np.int64)
    if dst_nodes.size and np.any(np.diff(dst_nodes) <= 0):
        raise ValueError("dst_nodes must be strictly increasing")
    graph = sampling_graph_of(a)
    eids, counts = graph.sample_edges(dst_nodes, fanout, rng, weights)
    cols_global = a.indices[eids]
    src_nodes = np.union1d(dst_nodes, cols_global)
    num_src = int(src_nodes.shape[0])
    dst_positions = np.searchsorted(src_nodes, dst_nodes)
    local_cols = np.searchsorted(src_nodes, cols_global)
    row_counts = np.zeros(num_src, dtype=np.int64)
    row_counts[dst_positions] = counts
    indptr = np.zeros(num_src + 1, dtype=np.int64)
    np.cumsum(row_counts, out=indptr[1:])
    matrix = CSRMatrix(
        indptr, local_cols, a.data[eids], (num_src, num_src)
    )
    event_counter().bump("sample.hop")
    return Block(
        matrix=matrix,
        src_nodes=src_nodes,
        dst_positions=dst_positions,
        sampled_edges=int(eids.shape[0]),
    )


def sample_blocks(
    a: CSRMatrix,
    targets: np.ndarray,
    fanouts: tuple[int | None, ...],
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
) -> list[Block]:
    """Layered neighbour sampling for an L-layer model.

    Samples outward from the batch targets: the *last* block's
    destinations are ``unique(targets)``, each earlier block's
    destinations are the next block's source set (so
    ``blocks[l].dst_nodes == blocks[l + 1].src_nodes`` exactly — the
    inter-layer contract the mini-batch trainer relies on). Blocks are
    returned in **layer order**: ``blocks[0]`` feeds layer 0 and its
    ``src_nodes`` index the input features. The RNG is consumed from
    the output hop inward; one seed stream therefore reproduces the
    whole batch. ``weights`` (optional per-edge propensities) applies
    to every hop — see :meth:`SamplingGraph.sample_edges`.
    """
    if not fanouts:
        raise ValueError("need at least one fan-out (one per layer)")
    dst = np.unique(np.asarray(targets, dtype=np.int64))
    blocks: list[Block] = []
    for fanout in reversed(tuple(fanouts)):
        block = sample_one_hop(a, dst, fanout, rng, weights)
        blocks.append(block)
        dst = block.src_nodes
    blocks.reverse()
    return blocks


def hub_bias_weights(a: CSRMatrix, power: float = 1.0) -> np.ndarray:
    """Per-edge propensities favouring high-degree source vertices.

    Weight of edge ``(i <- j)`` is ``deg(j) ** power`` (``deg`` counts
    stored entries of row ``j``) — the importance-sampling prior the
    serving engine uses to keep power-law hubs, whose activations are
    the most reusable cache entries, inside limited-fan-out ego
    batches. ``power=0`` reduces to uniform, negative powers bias
    toward the tail.
    """
    structure = a.structure
    deg = (structure.indptr[1:] - structure.indptr[:-1]).astype(np.float64)
    # Sources with no stored in-edges of their own count as degree 1 so
    # negative powers stay finite (weights must be finite to sample).
    return np.maximum(deg, 1.0)[a.indices] ** float(power)
