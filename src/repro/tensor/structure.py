"""Pattern-interned CSR structure cache.

The paper's central observation (Sections 6.1–6.2) is that every
attention matrix :math:`\\Psi(\\mathcal{A}, H)` shares the sparsity
pattern of the adjacency :math:`\\mathcal{A}`. Structural quantities —
the COO row vector (``expand_rows``), per-row lengths, the transpose
permutation, the transposed pattern itself and the scipy CSR view —
therefore depend only on ``(indptr, indices, shape)`` and can be
computed *once per pattern per process* instead of once per kernel
call. This module provides that cache:

* :class:`PatternStructure` memoizes every derived quantity lazily.
* Structures are **interned**: all CSR matrices built from the same
  ``indptr``/``indices`` array objects (``with_data``, ``astype``,
  ``scale_rows``, …) share one :class:`PatternStructure`, looked up by
  array identity in a weak registry.
* Structure arrays are frozen (``writeable = False``) on registration,
  so a cached quantity can never be invalidated by mutation; ``data``
  stays writable and is never cached here.
* The transpose is built with an O(nnz) counting sort (delegated to
  scipy's C ``csr -> csc`` conversion) instead of an O(nnz log nnz)
  ``argsort``, and carries a back-link: the transpose of a transposed
  pattern is the original object, with the inverse permutation derived
  by a single scatter.

Cache/compute events are reported to
:func:`repro.util.counters.event_counter` under the labels
``pattern.*``, ``expand_rows.*``, ``row_lengths.*``,
``transpose_perm.*`` and ``scipy_view.*`` so tests can assert the
amortization actually happens.
"""

from __future__ import annotations

import copy
import weakref
from dataclasses import dataclass

import numpy as np

from repro.util.counters import event_counter

__all__ = [
    "DegreeStats",
    "PatternStructure",
    "intern_structure",
    "lookup_structure",
]


@dataclass(frozen=True)
class DegreeStats:
    """Summary statistics of a pattern's row lengths (out-degrees).

    The planner input of the fused megakernel
    (:mod:`repro.tensor.megakernel`): the coefficient of variation
    separates near-uniform patterns (fixed row blocks suffice) from
    skewed/power-law ones (edge-balanced blocks needed), and the
    histogram makes the shape of the tail inspectable — useful on its
    own for the reordering diagnostics in :mod:`repro.graphs.reorder`.
    """

    n_rows: int
    nnz: int
    max: int
    mean: float
    std: float
    cv: float  #: std / mean; 0.0 for empty patterns
    empty_rows: int
    #: ``histogram[0]`` counts empty rows; ``histogram[b]`` (b >= 1)
    #: counts rows with length in ``[2**(b-1), 2**b)``.
    histogram: tuple[int, ...]


def _freeze(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


class PatternStructure:
    """Memoized structural quantities of one CSR sparsity pattern.

    Holds strong references to the (frozen) ``indptr``/``indices``
    arrays; all derived arrays are frozen too, so they can be returned
    without defensive copies.
    """

    __slots__ = (
        "indptr",
        "indices",
        "shape",
        "_row_lengths",
        "_expand_rows",
        "_tperm",
        "_transpose",
        "_scipy_proto",
        "_head_cache",
        "_degree_stats",
        "_sweep_plans",
        "_sampling_graph",
        "__weakref__",
    )

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, shape: tuple[int, int]
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.shape = shape
        self._row_lengths: np.ndarray | None = None
        self._expand_rows: np.ndarray | None = None
        self._tperm: np.ndarray | None = None
        self._transpose: "PatternStructure | None" = None
        self._scipy_proto = None
        self._head_cache: dict[int, list] = {}
        self._degree_stats: DegreeStats | None = None
        self._sweep_plans: dict = {}
        #: Interned :class:`repro.tensor.sampling_graph.SamplingGraph`
        #: (built lazily by ``sampling_graph_of``; structural only, so
        #: it is shared by every same-pattern matrix like the rest of
        #: the cache).
        self._sampling_graph = None

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PatternStructure(shape={self.shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------
    # Lazily-cached structural quantities
    # ------------------------------------------------------------------
    def row_lengths(self) -> np.ndarray:
        """Stored entries per row (read-only, cached)."""
        out = self._row_lengths
        if out is None:
            out = _freeze(np.diff(self.indptr))
            self._row_lengths = out
            event_counter().bump("row_lengths.computed")
        else:
            event_counter().bump("row_lengths.hit")
        return out

    def expand_rows(self) -> np.ndarray:
        """Row index of every stored entry (read-only, cached)."""
        out = self._expand_rows
        if out is None:
            out = _freeze(
                np.repeat(
                    np.arange(self.shape[0], dtype=np.int64),
                    self.row_lengths(),
                )
            )
            self._expand_rows = out
            event_counter().bump("expand_rows.computed")
        else:
            event_counter().bump("expand_rows.hit")
        return out

    def degree_stats(self) -> DegreeStats:
        """Row-length summary statistics (cached per pattern).

        Derived once from :meth:`row_lengths`; the megakernel planner
        reads these on every plan computation, so the warm path is a
        single attribute load. Events: ``degree_stats.computed`` /
        ``degree_stats.hit``.
        """
        out = self._degree_stats
        if out is None:
            lengths = self.row_lengths()
            n = int(lengths.shape[0])
            nnz = self.nnz
            if n == 0:
                hist: tuple[int, ...] = ()
                mx, mean, std = 0, 0.0, 0.0
                empty = 0
            else:
                # Bucket b >= 1 holds lengths in [2**(b-1), 2**b);
                # frexp's exponent is exactly bit_length for ints > 0
                # and 0 for length-0 rows.
                buckets = np.frexp(lengths.astype(np.float64))[1]
                hist = tuple(int(c) for c in np.bincount(buckets))
                mx = int(lengths.max())
                mean = float(lengths.mean())
                std = float(lengths.std())
                empty = int(np.count_nonzero(lengths == 0))
            out = DegreeStats(
                n_rows=n,
                nnz=nnz,
                max=mx,
                mean=mean,
                std=std,
                cv=(std / mean) if mean > 0 else 0.0,
                empty_rows=empty,
                histogram=hist,
            )
            self._degree_stats = out
            event_counter().bump("degree_stats.computed")
        else:
            event_counter().bump("degree_stats.hit")
        return out

    def transpose_permutation(self) -> np.ndarray:
        """Permutation mapping this pattern's entries to transpose order."""
        out = self._tperm
        if out is None:
            other = self._transpose
            if other is not None and other._tperm is not None:
                # This structure was created *as* someone's transpose:
                # its permutation is the inverse of the original's.
                inv = np.empty_like(other._tperm)
                inv[other._tperm] = np.arange(inv.shape[0], dtype=np.int64)
                out = _freeze(inv)
                self._tperm = out
                event_counter().bump("transpose_perm.computed")
            else:
                self._build_transpose()
                out = self._tperm
        else:
            event_counter().bump("transpose_perm.hit")
        return out

    def transpose(self) -> "PatternStructure":
        """The transposed pattern's structure (cached, back-linked)."""
        if self._transpose is None:
            self._build_transpose()
        return self._transpose

    def _build_transpose(self) -> None:
        indptr_t, indices_t, perm = _transpose_arrays(
            self.indptr, self.indices, self.shape
        )
        self._tperm = _freeze(perm)
        event_counter().bump("transpose_perm.computed")
        t = intern_structure(
            indptr_t, indices_t, (self.shape[1], self.shape[0])
        )
        t._transpose = self
        self._transpose = t

    # ------------------------------------------------------------------
    # scipy view
    # ------------------------------------------------------------------
    def scipy_view(self, data: np.ndarray):
        """A ``scipy.sparse.csr_matrix`` over this pattern with ``data``.

        The first call builds a prototype (paying scipy's validation and
        index-dtype downcast once per pattern); later calls shallow-copy
        the prototype and swap in ``data``, sharing the index buffers.
        """
        import scipy.sparse as sp

        proto = self._scipy_proto
        if proto is None:
            proto = sp.csr_matrix(
                (data, self.indices, self.indptr), shape=self.shape
            )
            self._scipy_proto = proto
            event_counter().bump("scipy_view.built")
        else:
            event_counter().bump("scipy_view.hit")
        view = copy.copy(proto)
        view.data = data
        return view

    # ------------------------------------------------------------------
    # Head-interleaved pattern (batched multi-head kernels)
    # ------------------------------------------------------------------
    def head_interleave(self, heads: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The head-interleaved expansion of this pattern, cached per ``heads``.

        For stacked edge values of shape ``(nnz, heads)`` the batched
        real-semiring SpMM runs as **one** sparse product over an
        ``(n·heads) x (m·heads)`` block-diagonal-per-entry pattern: row
        ``r·heads + h`` holds row ``r``'s entries at columns
        ``c·heads + h``, so every head's aggregation happens in a single
        CSR sweep. Returns ``(indptr_x, indices_x, perm)`` where
        ``perm`` gathers the expanded entry values from the C-order
        ravel of the stacked ``(nnz, heads)`` data
        (``perm[i] = e_i * heads + h_i``). All three arrays are frozen.
        """
        heads = int(heads)
        if heads < 1:
            raise ValueError("heads must be >= 1")
        cache = self._head_cache.get(heads)
        if cache is None:
            n = self.shape[0]
            lengths = self.row_lengths()
            lengths_x = np.repeat(lengths, heads)
            indptr_x = np.zeros(n * heads + 1, dtype=np.int64)
            np.cumsum(lengths_x, out=indptr_x[1:])
            total = self.nnz * heads
            if total:
                # Ragged-range gather: block b = (r, h) spans entries
                # indptr[r] + j for j < lengths[r].
                starts_x = np.repeat(self.indptr[:-1], heads)
                e = np.repeat(starts_x - indptr_x[:-1], lengths_x)
                e += np.arange(total, dtype=np.int64)
                h = np.repeat(
                    np.tile(np.arange(heads, dtype=np.int64), n), lengths_x
                )
            else:
                e = np.empty(0, dtype=np.int64)
                h = np.empty(0, dtype=np.int64)
            cache = [
                _freeze(indptr_x),
                _freeze(self.indices[e] * heads + h),
                _freeze(e * heads + h),
                None,  # scipy prototype, built lazily
            ]
            self._head_cache[heads] = cache
            event_counter().bump("head_interleave.computed")
        else:
            event_counter().bump("head_interleave.hit")
        return cache[0], cache[1], cache[2]

    def head_scipy_view(self, heads: int, data_x: np.ndarray):
        """Scipy CSR view over the head-interleaved pattern.

        ``data_x`` must already be in interleaved entry order (gathered
        through the ``perm`` of :meth:`head_interleave`). Prototype
        construction (scipy validation + index downcast) is paid once
        per ``(pattern, heads)`` pair, like :meth:`scipy_view`.
        """
        import scipy.sparse as sp

        indptr_x, indices_x, _ = self.head_interleave(heads)
        cache = self._head_cache[heads]
        proto = cache[3]
        if proto is None:
            proto = sp.csr_matrix(
                (data_x, indices_x, indptr_x),
                shape=(self.shape[0] * heads, self.shape[1] * heads),
            )
            cache[3] = proto
            event_counter().bump("head_scipy_view.built")
        else:
            event_counter().bump("head_scipy_view.hit")
        view = copy.copy(proto)
        view.data = data_x
        return view


def _transpose_arrays(
    indptr: np.ndarray, indices: np.ndarray, shape: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """O(nnz) counting-sort transpose of a CSR pattern.

    Returns ``(indptr_t, indices_t, perm)`` where ``perm`` maps
    transpose-order entries back to original entry positions. The
    counting sort is scipy's C ``csr -> csc`` conversion applied to the
    entry ordinals; it is stable, so within each column the original
    row order is preserved (matching the old stable ``argsort``).
    """
    n_rows, n_cols = shape
    nnz = int(indices.shape[0])
    if nnz == 0:
        return (
            np.zeros(n_cols + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    try:
        import scipy.sparse as sp
    except ImportError:  # pragma: no cover - scipy is a hard test dep
        key = indices * np.int64(n_rows) + np.repeat(
            np.arange(n_rows, dtype=np.int64), np.diff(indptr)
        )
        perm = np.argsort(key, kind="stable")
        indptr_t = np.zeros(n_cols + 1, dtype=np.int64)
        np.add.at(indptr_t, indices + 1, 1)
        np.cumsum(indptr_t, out=indptr_t)
        indices_t = np.repeat(
            np.arange(n_rows, dtype=np.int64), np.diff(indptr)
        )[perm]
        return indptr_t, indices_t, perm
    csc = sp.csr_matrix(
        (np.arange(nnz, dtype=np.int64), indices, indptr), shape=shape
    ).tocsc()
    return (
        csc.indptr.astype(np.int64, copy=False),
        csc.indices.astype(np.int64, copy=False),
        np.ascontiguousarray(csc.data, dtype=np.int64),
    )


# ----------------------------------------------------------------------
# Interning registry
# ----------------------------------------------------------------------
# Keyed by the identity of the index arrays: every matrix derived from a
# pattern via with_data/astype/scale_* shares the *same* array objects,
# so identity lookup is exact. The registry holds weak references to the
# structures while each structure holds strong references to its arrays,
# so a key's ids cannot be recycled while its entry is alive; identity
# is re-verified on hit regardless.
_REGISTRY: "weakref.WeakValueDictionary[tuple, PatternStructure]" = (
    weakref.WeakValueDictionary()
)


def lookup_structure(
    indptr: np.ndarray, indices: np.ndarray, shape: tuple[int, int]
) -> PatternStructure | None:
    """Find the interned structure for these exact array objects."""
    entry = _REGISTRY.get((id(indptr), id(indices), shape))
    if (
        entry is not None
        and entry.indptr is indptr
        and entry.indices is indices
    ):
        event_counter().bump("pattern.hit")
        return entry
    return None


def intern_structure(
    indptr: np.ndarray, indices: np.ndarray, shape: tuple[int, int]
) -> PatternStructure:
    """Intern (or fetch) the structure for validated index arrays.

    Freezes both arrays; the caller guarantees they describe a valid
    CSR pattern for ``shape``.
    """
    found = lookup_structure(indptr, indices, shape)
    if found is not None:
        return found
    _freeze(indptr)
    _freeze(indices)
    structure = PatternStructure(indptr, indices, shape)
    _REGISTRY[(id(indptr), id(indices), shape)] = structure
    event_counter().bump("pattern.registered")
    return structure
